//! Helper library for flowrank integration tests (shared fixtures).

//! Batch/per-packet agreement for the samplers the skip rewrite left on the
//! default `keep_batch` path: flow, smart and adaptive sampling.
//!
//! `skip_sampling_stats.rs` pins the skip-capable samplers (random,
//! periodic, stratified); this suite mirrors it for the other three. None
//! of them overrides [`PacketSampler::keep_batch`] today, so agreement is
//! currently structural — which is exactly why it must be pinned now: the
//! moment one of them grows a batch fast path (e.g. a vectorised flow-hash
//! decision), these tests are what distinguishes "same decisions, same RNG
//! stream" from a silent behaviour change. The pinned-seed regression
//! constants freeze each sampler's exact decision stream the same way the
//! random sampler's are frozen.

use flowrank_net::{PacketBatch, PacketRecord, Timestamp};
use flowrank_sampling::{AdaptiveRateSampler, FlowSampler, PacketSampler, SmartPacketSampler};
use flowrank_stats::rng::{Pcg64, SeedableRng};
use std::net::Ipv4Addr;

/// A named factory producing fresh boxed samplers for one configuration.
type SamplerFactory = (&'static str, Box<dyn Fn() -> Box<dyn PacketSampler>>);

/// A stream with real flow structure (the flow and smart samplers key on the
/// 5-tuple) spread over enough seconds that the adaptive sampler crosses
/// several adjustment intervals.
fn stream(n: usize) -> Vec<PacketRecord> {
    (0..n)
        .map(|i| {
            // Three quarters of the traffic belongs to 8 elephants (which
            // cross the smart threshold quickly); every fourth packet is a
            // mouse from a mostly-fresh flow that stays below it.
            let flow = if i % 4 == 0 {
                1_000 + (i / 4) % 5_000
            } else {
                i % 8
            };
            PacketRecord::tcp(
                Timestamp::from_secs_f64(12.0 * i as f64 / n as f64),
                Ipv4Addr::new(10, (flow >> 8) as u8, flow as u8, 1),
                20_000 + (flow % 1_000) as u16,
                Ipv4Addr::new(100, 64, (flow % 200) as u8, 9),
                443,
                500,
                (i * 500) as u32,
            )
        })
        .collect()
}

fn factories() -> Vec<SamplerFactory> {
    vec![
        (
            "flow-0.3",
            Box::new(|| Box::new(FlowSampler::new(0.3, 77)) as Box<dyn PacketSampler>),
        ),
        (
            "smart-20",
            Box::new(|| Box::new(SmartPacketSampler::new(20.0)) as Box<dyn PacketSampler>),
        ),
        (
            "adaptive-0.3",
            Box::new(|| {
                Box::new(AdaptiveRateSampler::new(
                    0.3,
                    150,
                    Timestamp::from_secs_f64(1.0),
                )) as Box<dyn PacketSampler>
            }),
        ),
    ]
}

/// Per-packet reference decisions for one fresh sampler.
fn per_packet_indices(sampler: &mut dyn PacketSampler, packets: &[PacketRecord]) -> Vec<u32> {
    let mut rng = Pcg64::seed_from_u64(0xBEEF);
    packets
        .iter()
        .enumerate()
        .filter(|(_, p)| sampler.keep(p, &mut rng))
        .map(|(i, _)| i as u32)
        .collect()
}

#[test]
fn stateful_samplers_agree_bit_for_bit_with_their_batch_forms() {
    // Same decisions AND same RNG consumption over irregular batch cuts —
    // the `keep`/`keep_batch` shared-state contract, checked through the
    // public trait exactly like the skip-sampler suite does.
    let packets = stream(30_000);
    let batch = PacketBatch::from_records(&packets);
    for (name, build) in factories() {
        let mut per_packet = build();
        let mut rng_a = Pcg64::seed_from_u64(0xAB);
        let expected: Vec<u32> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| per_packet.keep(p, &mut rng_a))
            .map(|(i, _)| i as u32)
            .collect();
        assert!(!expected.is_empty(), "{name}: fixture must keep something");
        assert!(
            (expected.len() as f64) < 0.95 * packets.len() as f64,
            "{name}: fixture must drop something"
        );

        let mut batched = build();
        let mut rng_b = Pcg64::seed_from_u64(0xAB);
        let mut kept: Vec<u32> = Vec::new();
        let mut start = 0usize;
        for piece in [13usize, 1, 999, 64, 5000, usize::MAX] {
            let end = batch.len().min(start.saturating_add(piece));
            batched.keep_batch(&batch, start..end, &mut rng_b, &mut kept);
            start = end;
            if start == batch.len() {
                break;
            }
        }
        assert_eq!(kept, expected, "{name}: decisions must match exactly");
        assert_eq!(rng_a, rng_b, "{name}: RNG streams must match exactly");
    }
}

#[test]
fn reset_restarts_the_decision_stream() {
    // After `reset()` + a fresh RNG, a sampler must replay its stream from
    // scratch — the monitor's per-bin restart contract, which the legacy
    // `run_bin` leg of the conformance harness relies on.
    let packets = stream(5_000);
    for (name, build) in factories() {
        let mut sampler = build();
        let first = per_packet_indices(&mut *sampler, &packets);
        sampler.reset();
        let second = per_packet_indices(&mut *sampler, &packets);
        assert_eq!(first, second, "{name}: reset must replay the stream");
    }
}

/// First ten kept indices and total keep count for every stateful sampler
/// over `stream(10_000)` under `Pcg64::seed_from_u64(0xBEEF)`, recorded when
/// this suite was introduced. A change here means every seeded experiment
/// using these samplers shifted — regenerate deliberately or fix the
/// regression.
const PINNED: [(&str, [u32; 10], usize); 3] = [
    ("flow-0.3", [5, 8, 13, 16, 20, 21, 24, 28, 29, 32], 2014),
    ("smart-20", [25, 29, 42, 43, 45, 46, 51, 53, 57, 58], 7579),
    ("adaptive-0.3", [3, 5, 6, 10, 12, 16, 21, 25, 29, 42], 1905),
];

#[test]
fn pinned_seed_regression_streams() {
    let packets = stream(10_000);
    let factories = factories();
    for (name, prefix, count) in PINNED {
        let (_, build) = factories
            .iter()
            .find(|(n, _)| *n == name)
            .expect("pinned sampler exists");
        let mut sampler = build();
        let kept = per_packet_indices(&mut *sampler, &packets);
        assert_eq!(
            kept.len(),
            count,
            "{name}: keep count drifted (got {})",
            kept.len()
        );
        assert_eq!(
            &kept[..10],
            &prefix,
            "{name}: kept-index prefix drifted (got {:?})",
            &kept[..10]
        );
    }
}

//! Closed-loop convergence goldens: each rate controller driven over the
//! non-stationary flash-crowd and rank-churn scenarios, judged bin by bin
//! against the offline-optimal rate from `core::optimal`, with the full
//! decision trace pinned by a committed FNV-1a digest.
//!
//! Two properties are asserted besides the digests:
//!
//! * `model-driven` comes within ε = 0.10 of the offline optimum by bin 2
//!   and stays there — its only residual regret is the one-bin lag behind
//!   the workload's own optimal-rate drift.
//! * `aimd-slo` (in its tracking-tuned configuration: a near-zero swapped
//!   target so any residual swap drives additive increase) comes within
//!   ε = 0.15 by bin 6 on both scenarios.
//!
//! `budget-tracking` optimises kept-packet volume, not ranking accuracy, so
//! only its trace digest is pinned.
//!
//! Golden digests live in `tests/goldens/controller_convergence.txt`.
//! Regenerate with `scripts/regen_goldens.sh` after an intentional
//! behaviour change; `REGEN_GOLDENS=1` rewrites the file directly.

use std::fmt::Write as _;

use flowrank_net::FlowDefinition;
use flowrank_sim::{run_convergence, ControllerSpec, ConvergenceConfig, SamplerSpec};
use flowrank_trace::Workload;

/// Trace seed shared with the conformance matrix.
const TRACE_SEED: u64 = 0x5EED_2026;
/// Monitor master seed (the controlled lane's seed derives from it).
const LANE_SEED: u64 = 0xACE5_0001;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/goldens/controller_convergence.txt"
);

/// Flash crowd stretched to 15 full bins so convergence has room to show:
/// a 2-minute spike starting at minute 4 over a 15-minute run.
fn flash_crowd_long() -> Workload {
    Workload::FlashCrowd {
        base_rate: 3.0,
        spike_rate: 30.0,
        spike_start: 240.0,
        spike_secs: 120.0,
        hot_prefixes: 3,
        duration_secs: 900.0,
    }
}

/// Rank churn stretched to 15 bins: the heavy set rotates every bin.
fn rank_churn_long() -> Workload {
    Workload::RankChurn {
        bin_secs: 60.0,
        bins: 15,
        heavy_per_bin: 8,
        heavy_packets: 260,
        mice_rate: 4.0,
    }
}

/// The AIMD controller in its *tracking-tuned* configuration: the swapped
/// target is near zero, so any residual swap drives additive increase and
/// the fixed point sits at the zero-swap frontier — which is exactly where
/// the paper's model places the optimal rate. (The catalog default instead
/// holds a 10% operator SLO, whose fixed point is far below the optimum.)
fn aimd_tracking() -> ControllerSpec {
    ControllerSpec::AimdSlo {
        target_fraction: 0.0002,
        hysteresis: 0.5,
        increase: 0.2,
        decrease: 0.95,
        min_rate: 0.001,
        max_rate: 1.0,
        initial_rate: 0.1,
    }
}

fn config(workload: Workload, controller: ControllerSpec) -> ConvergenceConfig {
    ConvergenceConfig {
        workload,
        controller,
        sampler: SamplerSpec::Random { rate: 0.1 },
        flow_definition: FlowDefinition::FiveTuple,
        bin_seconds: 60.0,
        top_t: 8,
        trace_seed: TRACE_SEED,
        lane_seed: LANE_SEED,
        target_misranking: 0.05,
        min_rate: 0.001,
    }
}

#[test]
fn controllers_converge_and_match_golden_digests() {
    let workloads = [
        ("flash-crowd-long", flash_crowd_long()),
        ("rank-churn-long", rank_churn_long()),
    ];
    let controllers = [
        ControllerSpec::model_driven(),
        aimd_tracking(),
        ControllerSpec::budget_tracking(),
    ];

    let mut lines = Vec::new();
    for (wname, workload) in &workloads {
        for controller in controllers {
            let result = run_convergence(&config(*workload, controller));
            assert!(
                result.points.len() >= 15,
                "{wname}/{}: long workloads must span ≥ 15 bins, got {}",
                result.controller,
                result.points.len()
            );

            // The convergence pins of the issue: the model-driven controller
            // locks on within two bins; tracking-tuned AIMD needs a handful
            // of additive steps but must settle by bin 6 and stay settled.
            let (epsilon, deadline) = match result.controller {
                "model-driven" => (0.10, 2),
                "aimd-slo" => (0.15, 6),
                _ => (f64::INFINITY, u64::MAX),
            };
            if epsilon.is_finite() {
                let converged = result.bins_to_converge(epsilon);
                assert!(
                    converged.is_some_and(|bin| bin <= deadline),
                    "{wname}/{}: expected convergence within ε={epsilon} by bin \
                     {deadline}, got {converged:?} (mean regret {:.4})",
                    result.controller,
                    result.mean_regret()
                );
            }

            lines.push(format!(
                "{wname}/{} {:016x} bins={} mean_regret={:.6}",
                result.controller,
                result.digest,
                result.points.len(),
                result.mean_regret()
            ));
        }
    }

    let mut rendered = String::from(
        "# Golden controller decision traces: workload/controller -> FNV-1a of\n\
         # (bin, applied, decided, offline-optimal) per bin, plus run shape.\n\
         # Regenerate with scripts/regen_goldens.sh (refuses dirty trees).\n",
    );
    for line in &lines {
        writeln!(rendered, "{line}").unwrap();
    }

    if std::env::var_os("REGEN_GOLDENS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("regenerated {} ({} cells)", GOLDEN_PATH, lines.len());
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run scripts/regen_goldens.sh");
    let golden_lines: Vec<&str> = golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "golden cell count diverged — run scripts/regen_goldens.sh if intentional"
    );
    for (computed, pinned) in lines.iter().zip(&golden_lines) {
        assert_eq!(
            computed, pinned,
            "golden decision-trace mismatch — a change altered controller \
             behaviour; if intentional, regenerate with scripts/regen_goldens.sh"
        );
    }
}

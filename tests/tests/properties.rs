//! Property-based integration tests over the cross-crate invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use flowrank_core::metrics::{compare_rankings, SizedFlow};
use flowrank_core::{misranking_probability_exact, misranking_probability_gaussian};
use flowrank_net::pcap::{pcap_bytes_to_records, records_to_pcap_bytes};
use flowrank_net::{FiveTuple, FlowKey, FlowTable, PacketRecord, Protocol, Timestamp};
use flowrank_sampling::{sample_and_classify, PacketSampler, RandomSampler};
use flowrank_stats::rng::{Pcg64, SeedableRng};

fn arbitrary_packet() -> impl Strategy<Value = PacketRecord> {
    (
        0u64..10_000_000,
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp), Just(Protocol::Icmp)],
        64u16..1500,
        any::<u32>(),
    )
        .prop_map(|(us, src, dst, sport, dport, protocol, len, seq)| {
            // ICMP has no transport ports: the frame encoder cannot carry
            // them, so the generator never produces them either.
            let has_ports = protocol != Protocol::Icmp;
            PacketRecord {
                timestamp: Timestamp::from_micros(us),
                src_ip: src.into(),
                dst_ip: dst.into(),
                src_port: if has_ports { sport } else { 0 },
                dst_port: if has_ports { dport } else { 0 },
                protocol,
                length: len,
                tcp_seq: if protocol == Protocol::Tcp { Some(seq) } else { None },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pcap_round_trip_preserves_flow_identity(packets in prop::collection::vec(arbitrary_packet(), 0..40)) {
        let bytes = records_to_pcap_bytes(&packets).unwrap();
        let decoded = pcap_bytes_to_records(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), packets.len());
        for (a, b) in packets.iter().zip(decoded.iter()) {
            prop_assert_eq!(FiveTuple::from_packet(a), FiveTuple::from_packet(b));
            prop_assert_eq!(a.timestamp.as_micros(), b.timestamp.as_micros());
        }
    }

    #[test]
    fn sampled_flow_sizes_never_exceed_originals(
        packets in prop::collection::vec(arbitrary_packet(), 1..200),
        rate in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut original: FlowTable<FiveTuple> = FlowTable::new();
        for p in &packets {
            original.observe(p);
        }
        let mut sampler = RandomSampler::new(rate);
        let mut rng = Pcg64::seed_from_u64(seed);
        let sampled: FlowTable<FiveTuple> = sample_and_classify(&packets, &mut sampler, &mut rng);
        prop_assert!(sampled.flow_count() <= original.flow_count());
        for (key, stats) in sampled.iter() {
            prop_assert!(stats.packets <= original.get(key).unwrap().packets);
        }
    }

    #[test]
    fn full_sampling_never_produces_ranking_errors(
        packets in prop::collection::vec(arbitrary_packet(), 1..150),
        top_t in 1usize..12,
    ) {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for p in &packets {
            table.observe(p);
        }
        let original: Vec<SizedFlow<FiveTuple>> = table
            .iter()
            .map(|(k, s)| SizedFlow { key: *k, packets: s.packets })
            .collect();
        let sizes: HashMap<FiveTuple, u64> =
            table.iter().map(|(k, s)| (*k, s.packets)).collect();
        let outcome = compare_rankings(&original, &sizes, top_t);
        prop_assert_eq!(outcome.ranking_swaps, 0);
        prop_assert_eq!(outcome.detection_swaps, 0);
        prop_assert_eq!(outcome.missed_top_flows, 0);
    }

    #[test]
    fn misranking_probabilities_are_valid_and_symmetric(
        s1 in 1u64..800,
        s2 in 1u64..800,
        p in 0.001f64..0.999,
    ) {
        let exact = misranking_probability_exact(s1, s2, p);
        let gauss = misranking_probability_gaussian(s1 as f64, s2 as f64, p);
        prop_assert!((0.0..=1.0).contains(&exact));
        prop_assert!((0.0..=1.0).contains(&gauss));
        prop_assert!((misranking_probability_exact(s2, s1, p) - exact).abs() < 1e-12);
        // The Gaussian form is within its documented error band whenever at
        // least one flow is comfortably sampled.
        if (s1 as f64 * p).max(s2 as f64 * p) > 5.0 && s1 != s2 {
            prop_assert!((exact - gauss).abs() < 0.25);
        }
    }

    #[test]
    fn sampler_empirical_rate_is_clamped(rate in -1.0f64..2.0) {
        let mut sampler = RandomSampler::new(rate);
        let mut rng = Pcg64::seed_from_u64(1);
        let packet = PacketRecord::udp(
            Timestamp::ZERO,
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            1,
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            2,
            100,
        );
        let keep = sampler.keep(&packet, &mut rng);
        if rate <= 0.0 {
            prop_assert!(!keep);
        }
        if rate >= 1.0 {
            prop_assert!(keep);
        }
        prop_assert!((0.0..=1.0).contains(&sampler.nominal_rate()));
    }
}

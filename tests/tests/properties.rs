//! Property-based integration tests over the cross-crate invariants.
//!
//! The properties are exercised with a small self-contained randomised
//! harness (deterministic Pcg64 case generation — no external test-framework
//! dependency): every case derives from a fixed master seed, so a failure
//! message's case index reproduces the exact inputs.

use flowrank_core::metrics::{compare_rankings, SizedFlow};
use flowrank_core::{misranking_probability_exact, misranking_probability_gaussian};
use flowrank_net::pcap::{pcap_bytes_to_records, records_to_pcap_bytes};
use flowrank_net::{FiveTuple, FlowKey, FlowMap, FlowTable, PacketRecord, Protocol, Timestamp};
use flowrank_sampling::{sample_and_classify, PacketSampler, RandomSampler};
use flowrank_stats::rng::{derive_seeds, Pcg64, Rng, SeedableRng};

const CASES: usize = 64;
const MASTER_SEED: u64 = 0xCA5E_5EED;

/// Draws one arbitrary packet.
fn arbitrary_packet(rng: &mut Pcg64) -> PacketRecord {
    let protocol = match rng.next_below(3) {
        0 => Protocol::Tcp,
        1 => Protocol::Udp,
        _ => Protocol::Icmp,
    };
    // ICMP has no transport ports: the frame encoder cannot carry them, so
    // the generator never produces them either.
    let has_ports = protocol != Protocol::Icmp;
    PacketRecord {
        timestamp: Timestamp::from_micros(rng.next_below(10_000_000)),
        src_ip: (rng.next_u64() as u32).into(),
        dst_ip: (rng.next_u64() as u32).into(),
        src_port: if has_ports { rng.next_u64() as u16 } else { 0 },
        dst_port: if has_ports { rng.next_u64() as u16 } else { 0 },
        protocol,
        length: 64 + rng.next_below(1436) as u16,
        tcp_seq: if protocol == Protocol::Tcp {
            Some(rng.next_u64() as u32)
        } else {
            None
        },
    }
}

fn arbitrary_packets(rng: &mut Pcg64, min: usize, max: usize) -> Vec<PacketRecord> {
    let len = min + rng.index(max - min + 1);
    (0..len).map(|_| arbitrary_packet(rng)).collect()
}

/// Runs `property` over [`CASES`] deterministic random cases.
fn for_all_cases(name: &str, property: impl Fn(&mut Pcg64)) {
    for (case, seed) in derive_seeds(MASTER_SEED, CASES).into_iter().enumerate() {
        let mut rng = Pcg64::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(panic) = result {
            panic!("property `{name}` failed on case {case} (seed {seed:#x}): {panic:?}");
        }
    }
}

#[test]
fn pcap_round_trip_preserves_flow_identity() {
    for_all_cases("pcap_round_trip", |rng| {
        let packets = arbitrary_packets(rng, 0, 39);
        let bytes = records_to_pcap_bytes(&packets).unwrap();
        let decoded = pcap_bytes_to_records(&bytes).unwrap();
        assert_eq!(decoded.len(), packets.len());
        for (a, b) in packets.iter().zip(decoded.iter()) {
            assert_eq!(FiveTuple::from_packet(a), FiveTuple::from_packet(b));
            assert_eq!(a.timestamp.as_micros(), b.timestamp.as_micros());
        }
    });
}

#[test]
fn sampled_flow_sizes_never_exceed_originals() {
    for_all_cases("sampled_subset", |rng| {
        let packets = arbitrary_packets(rng, 1, 199);
        let rate = rng.next_f64();
        let seed = rng.next_u64();
        let mut original: FlowTable<FiveTuple> = FlowTable::new();
        for p in &packets {
            original.observe(p);
        }
        let mut sampler = RandomSampler::new(rate);
        let mut sample_rng = Pcg64::seed_from_u64(seed);
        let sampled: FlowTable<FiveTuple> =
            sample_and_classify(&packets, &mut sampler, &mut sample_rng);
        assert!(sampled.flow_count() <= original.flow_count());
        for (key, stats) in sampled.iter() {
            assert!(stats.packets <= original.get(&key).unwrap().packets);
        }
    });
}

#[test]
fn full_sampling_never_produces_ranking_errors() {
    for_all_cases("full_sampling_perfect", |rng| {
        let packets = arbitrary_packets(rng, 1, 149);
        let top_t = 1 + rng.index(11);
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for p in &packets {
            table.observe(p);
        }
        let original: Vec<SizedFlow<FiveTuple>> = table
            .iter()
            .map(|(k, s)| SizedFlow {
                key: k,
                packets: s.packets,
            })
            .collect();
        let sizes: FlowMap<FiveTuple, u64> = table.iter().map(|(k, s)| (k, s.packets)).collect();
        let outcome = compare_rankings(&original, &sizes, top_t);
        assert_eq!(outcome.ranking_swaps, 0);
        assert_eq!(outcome.detection_swaps, 0);
        assert_eq!(outcome.missed_top_flows, 0);
    });
}

#[test]
fn compact_key_pack_round_trips_for_arbitrary_keys() {
    use flowrank_net::{CompactKey, DstPrefix};
    for_all_cases("compact_key_round_trip", |rng| {
        for _ in 0..50 {
            let packet = arbitrary_packet(rng);
            let five = FiveTuple::from_packet(&packet);
            assert_eq!(FiveTuple::unpack(five.pack()), five);
            let prefix = DstPrefix::from_packet(&packet);
            assert_eq!(DstPrefix::unpack(prefix.pack()), prefix);
            // An arbitrary (not just /24) prefix length round-trips too.
            let len = rng.next_below(33) as u8;
            let any_len = DstPrefix::of(packet.dst_ip, len);
            assert_eq!(DstPrefix::unpack(any_len.pack()), any_len);
            // Packing is injective on inequal keys (spot check against the
            // previous draw).
            let other = FiveTuple::from_packet(&arbitrary_packet(rng));
            assert_eq!(five == other, five.pack() == other.pack());
        }
    });
}

#[test]
fn flow_map_agrees_with_std_hashmap_reference() {
    use std::collections::HashMap;
    for_all_cases("flow_map_reference", |rng| {
        let mut map: FlowMap<FiveTuple, u64> = FlowMap::new();
        let mut reference: HashMap<FiveTuple, u64> = HashMap::new();
        // A small key universe forces collisions, updates and re-inserts.
        let universe: Vec<FiveTuple> = (0..40)
            .map(|_| FiveTuple::from_packet(&arbitrary_packet(rng)))
            .collect();
        for _ in 0..400 {
            let key = universe[rng.index(universe.len())];
            match rng.next_below(4) {
                0 => {
                    let value = rng.next_u64();
                    assert_eq!(map.insert(key, value), reference.insert(key, value));
                }
                1 => {
                    map.upsert(key, || 1, |v| *v += 1);
                    reference.entry(key).and_modify(|v| *v += 1).or_insert(1);
                }
                2 => assert_eq!(map.remove(&key), reference.remove(&key)),
                _ => assert_eq!(map.get(&key), reference.get(&key)),
            }
            assert_eq!(map.len(), reference.len());
        }
        // Drain comparison: element-for-element equality (order aside).
        let mut drained: Vec<(FiveTuple, u64)> = map.iter().map(|(k, v)| (k, *v)).collect();
        let mut expected: Vec<(FiveTuple, u64)> = reference.into_iter().collect();
        drained.sort();
        expected.sort();
        assert_eq!(drained, expected);
    });
}

#[test]
fn flow_map_drain_order_is_deterministic_and_clear_reuses() {
    for_all_cases("flow_map_drain_order", |rng| {
        let keys: Vec<FiveTuple> = (0..60)
            .map(|_| FiveTuple::from_packet(&arbitrary_packet(rng)))
            .collect();
        let run = |keys: &[FiveTuple]| {
            let mut map: FlowMap<FiveTuple, u64> = FlowMap::new();
            for key in keys {
                map.upsert(*key, || 1, |v| *v += 1);
            }
            map.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>()
        };
        // Same operation sequence → same drain order, twice over.
        assert_eq!(run(&keys), run(&keys));
        // And clear() preserves capacity while resetting contents.
        let mut map: FlowMap<FiveTuple, u64> = FlowMap::with_capacity(keys.len());
        for key in &keys {
            map.insert(*key, 0);
        }
        let capacity = map.capacity();
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.capacity(), capacity);
    });
}

#[test]
fn misranking_probabilities_are_valid_and_symmetric() {
    for_all_cases("misranking_valid", |rng| {
        let s1 = 1 + rng.next_below(799);
        let s2 = 1 + rng.next_below(799);
        let p = 0.001 + rng.next_f64() * 0.998;
        let exact = misranking_probability_exact(s1, s2, p);
        let gauss = misranking_probability_gaussian(s1 as f64, s2 as f64, p);
        assert!((0.0..=1.0).contains(&exact));
        assert!((0.0..=1.0).contains(&gauss));
        assert!((misranking_probability_exact(s2, s1, p) - exact).abs() < 1e-12);
        // The Gaussian form is within its documented error band whenever at
        // least one flow is comfortably sampled.
        if (s1 as f64 * p).max(s2 as f64 * p) > 5.0 && s1 != s2 {
            assert!((exact - gauss).abs() < 0.25);
        }
    });
}

#[test]
fn sampler_empirical_rate_is_clamped() {
    for_all_cases("rate_clamped", |rng| {
        let rate = -1.0 + 3.0 * rng.next_f64();
        let mut sampler = RandomSampler::new(rate);
        let mut keep_rng = Pcg64::seed_from_u64(1);
        let packet = PacketRecord::udp(
            Timestamp::ZERO,
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            1,
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            2,
            100,
        );
        let keep = sampler.keep(&packet, &mut keep_rng);
        if rate <= 0.0 {
            assert!(!keep);
        }
        if rate >= 1.0 {
            assert!(keep);
        }
        assert!((0.0..=1.0).contains(&sampler.nominal_rate()));
    });
}

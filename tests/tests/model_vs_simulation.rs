//! Cross-crate integration: the analytical ranking/detection models and the
//! trace-driven simulation must agree on the paper's qualitative conclusions.

use flowrank_core::Scenario;
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_sim::{ExperimentConfig, SamplerSpec, TraceExperiment};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

fn small_trace(seed: u64) -> Vec<flowrank_net::PacketRecord> {
    let flows = SprintModel::small(300.0, 30.0).generate_flows(seed);
    synthesize_packets(&flows, &SynthesisConfig::default(), seed)
}

#[test]
fn simulation_and_model_agree_on_rate_ordering() {
    // Both the model and the simulation must show the error decreasing with
    // the sampling rate, and detection errors at or below ranking errors.
    let packets = small_trace(1);
    let config = ExperimentConfig {
        flow_definition: FlowDefinition::FiveTuple,
        sampler: SamplerSpec::Random { rate: 0.01 },
        sampling_rates: vec![0.01, 0.1, 0.5],
        bin_length: Timestamp::from_secs_f64(300.0),
        top_t: 10,
        runs: 8,
        seed: 99,
        threads: 0,
    };
    let experiment = TraceExperiment::new(&packets, config);
    let n_flows = packets
        .iter()
        .map(|p| (p.src_ip, p.src_port))
        .collect::<std::collections::HashSet<_>>()
        .len() as u64;
    let result = experiment.run();

    let sim_means: Vec<f64> = result
        .series
        .iter()
        .map(|s| s.overall_ranking_mean())
        .collect();
    assert!(sim_means[0] > sim_means[1]);
    assert!(sim_means[1] > sim_means[2]);

    let scenario = Scenario::sprint_five_tuple(1.5).with_flow_count(n_flows.max(1_000));
    let model_means: Vec<f64> = [0.01, 0.1, 0.5]
        .iter()
        .map(|&p| scenario.ranking_model(10).mean_swapped_pairs(p))
        .collect();
    assert!(model_means[0] > model_means[1]);
    assert!(model_means[1] > model_means[2]);

    // Detection is never harder than ranking, in both worlds.
    for series in &result.series {
        assert!(series.overall_detection_mean() <= series.overall_ranking_mean() + 1e-9);
    }
    for &p in &[0.01, 0.1] {
        assert!(
            scenario.detection_model(10).mean_swapped_pairs(p)
                <= scenario.ranking_model(10).mean_swapped_pairs(p)
        );
    }
}

#[test]
fn model_tracks_simulation_within_two_orders_of_magnitude() {
    // On a population whose size matches the simulated bin, the analytical
    // metric and the empirical swapped-pair count should be broadly
    // comparable at a moderate sampling rate. The simulation is expected to
    // sit above the model because the binning truncates long-lived flows
    // (Sec. 8.1 of the paper makes the same observation), so the band here is
    // wide: the value matters less than the trend, which the other test pins.
    let packets = small_trace(7);
    let config = ExperimentConfig {
        flow_definition: FlowDefinition::FiveTuple,
        sampler: SamplerSpec::Random { rate: 0.01 },
        sampling_rates: vec![0.05],
        bin_length: Timestamp::from_secs_f64(300.0),
        top_t: 5,
        runs: 10,
        seed: 5,
        threads: 0,
    };
    let experiment = TraceExperiment::new(&packets, config);
    let result = experiment.run();
    let simulated = result.series[0].overall_ranking_mean().max(1e-3);

    let flows = SprintModel::small(300.0, 30.0).generate_flows(7);
    let scenario = Scenario::sprint_five_tuple(1.5).with_flow_count(flows.len() as u64);
    let predicted = scenario.ranking_model(5).mean_swapped_pairs(0.05).max(1e-3);

    let ratio = simulated / predicted;
    assert!(
        (0.02..=100.0).contains(&ratio),
        "simulated {simulated} vs predicted {predicted} (ratio {ratio})"
    );
}

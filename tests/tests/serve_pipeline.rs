//! Cross-crate integration: the serving path — live sources
//! ([`PcapTailSource`], [`NdjsonRecordSource`], [`ChannelSource`],
//! [`PacedReplay`]) driven through `Monitor::try_drive` under the
//! wall-clock stall detector, graceful shutdown via [`StopGate`], and the
//! rolling-snapshot sink behind `flowrank-serve`.
//!
//! The conformance anchor throughout: a fault-free serving drive over any
//! live source must be bit-identical to the equivalent batch drive of the
//! same packets.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flowrank_monitor::{
    BatchSource, ChannelSource, DigestSink, DrivePolicy, Monitor, NdjsonRecordSource, PacketSource,
    PcapTailSource, SamplerSpec, SourceError, SourcePoll, StopGate, TopKSpec,
};
use flowrank_net::pcap::records_to_pcap_bytes;
use flowrank_net::{PacketBatch, PacketRecord, Timestamp};
use flowrank_serve::{PublishSink, ServeConfig, SnapshotPublisher};
use flowrank_trace::{PacedReplay, Workload};

fn monitor(policy: DrivePolicy) -> Monitor {
    Monitor::builder()
        .sampler(SamplerSpec::Random { rate: 0.1 })
        .rates(&[0.1, 0.5])
        .runs(2)
        .bin_length(Timestamp::from_secs_f64(60.0))
        .top_t(10)
        .seed(0x5E2F_2026)
        .drive_policy(policy)
        .build()
}

/// The serving drive policy: wall-clock stall gate on, fast idle polling
/// so tests spend little real time.
fn serving_policy() -> DrivePolicy {
    DrivePolicy::resilient()
        .stall_polls(4)
        .stall_timeout(Duration::from_secs(30))
        .idle_wait(Duration::from_micros(100))
}

fn digest_of_batch(batch: &PacketBatch) -> u64 {
    let mut sink = DigestSink::new();
    monitor(DrivePolicy::strict()).drive(&mut BatchSource::new(batch), &mut sink);
    sink.digest()
}

/// A unique temp-file path (std-only; no tempfile crate).
fn temp_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "flowrank_serve_{}_{}_{}",
        tag,
        std::process::id(),
        n
    ))
}

fn tcp_record(i: usize) -> PacketRecord {
    PacketRecord::tcp(
        Timestamp::from_secs_f64(i as f64 * 0.05),
        std::net::Ipv4Addr::new(10, 9, 0, (i % 100) as u8),
        40_000 + (i % 1000) as u16,
        std::net::Ipv4Addr::new(100, 64, 9, 1),
        443,
        400 + (i % 700) as u16,
        (i * 400) as u32,
    )
}

#[test]
fn paced_replay_drive_is_bit_identical_to_the_direct_stream_drive() {
    // The tentpole conformance anchor: pacing (at any speed, including an
    // extreme one that finishes in microseconds) must not perturb reports.
    let workload = Workload::by_name("mixed").expect("catalog scenario");
    let mut reference = DigestSink::new();
    monitor(DrivePolicy::strict()).drive(&mut workload.stream(42), &mut reference);

    for speed in [0.0, 1e9] {
        let mut source = PacedReplay::new(workload.stream(42), speed);
        let mut sink = DigestSink::new();
        let stats = monitor(serving_policy())
            .try_drive(&mut source, &mut sink)
            .expect("paced replay completes");
        assert!(stats.packets > 0);
        assert_eq!(
            sink.digest(),
            reference.digest(),
            "speed {speed}: paced reports must equal the direct drive"
        );
    }
}

#[test]
fn pcap_tail_source_follows_a_growing_capture() {
    // A writer that lands the capture in arbitrary byte-level pieces —
    // including a cut inside a record header and one inside a payload. The
    // tail source must deliver exactly the full capture's packets, parking
    // on the incomplete tail in between.
    let records: Vec<_> = (0..300).map(tcp_record).collect();
    let bytes = records_to_pcap_bytes(&records).unwrap();
    let path = temp_path("tail");
    std::fs::write(&path, b"").unwrap();

    let mut tail = PcapTailSource::open(&path).unwrap().with_chunk_packets(64);
    let mut total = PacketBatch::new();
    let cuts = [
        0,
        10,
        24,
        24 + 16 + 3,
        1000,
        1007,
        bytes.len() / 2,
        bytes.len(),
    ];
    let mut written = 0usize;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    for cut in cuts {
        let cut = cut.clamp(written, bytes.len());
        file.write_all(&bytes[written..cut]).unwrap();
        file.flush().unwrap();
        written = cut;
        loop {
            match tail.poll_chunk().expect("valid capture never faults") {
                SourcePoll::Chunk(chunk) => {
                    let len = chunk.len();
                    total.extend_from_batch(chunk, 0..len);
                }
                SourcePoll::Pending => break,
                SourcePoll::End => panic!("a follow-mode tail never ends"),
            }
        }
    }
    assert_eq!(
        total.len(),
        records.len(),
        "every packet arrived exactly once"
    );
    assert_eq!(total, PacketBatch::from_records(&records));
    assert_eq!(
        tail.consumed(),
        bytes.len(),
        "committed through the whole capture"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn tail_driven_monitor_matches_the_batch_drive_and_stops_cleanly() {
    let records: Vec<_> = (0..500).map(tcp_record).collect();
    let bytes = records_to_pcap_bytes(&records).unwrap();
    let path = temp_path("tail_drive");
    std::fs::write(&path, &bytes).unwrap();

    // Follow mode + StopGate: a writer thread raises the stop flag once
    // the source has consumed the whole capture — the SIGINT shape.
    let tail = PcapTailSource::open(&path).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut source = StopGate::new(tail, Arc::clone(&stop));
    let stopper = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || {
            // Poll-driven oracle: in a real daemon this is the signal
            // handler; here we stop as soon as the drive had time to pull
            // the whole (already complete) capture through.
            std::thread::sleep(Duration::from_millis(150));
            stop.store(true, Ordering::Release);
        }
    });
    let mut sink = DigestSink::new();
    let stats = monitor(serving_policy())
        .try_drive(&mut source, &mut sink)
        .expect("stop flag ends the drive cleanly");
    stopper.join().unwrap();
    assert_eq!(stats.packets, records.len() as u64);
    assert_eq!(
        sink.digest(),
        digest_of_batch(&PacketBatch::from_records(&records)),
        "tail-served reports equal the batch drive"
    );
    assert!(stats.idle_polls > 0, "the tail idled after the capture end");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn ndjson_feed_matches_the_batch_drive_and_skips_malformed_lines() {
    let records: Vec<_> = (0..400).map(tcp_record).collect();
    let mut feed = String::new();
    for (i, r) in records.iter().enumerate() {
        if i == 137 {
            feed.push_str("{\"ts\": \"not a number\"}\n");
        }
        if i == 251 {
            feed.push_str("not json at all\n");
        }
        feed.push_str(&format!(
            "{{\"ts\": {}, \"src\": \"{}\", \"sport\": {}, \"dst\": \"{}\", \"dport\": {}, \"proto\": \"tcp\", \"len\": {}, \"seq\": {}}}\n",
            r.timestamp.as_secs_f64(),
            r.src_ip,
            r.src_port,
            r.dst_ip,
            r.dst_port,
            r.length,
            r.tcp_seq.unwrap_or(0),
        ));
    }
    let mut source = NdjsonRecordSource::new(std::io::Cursor::new(feed.into_bytes()));
    let mut sink = DigestSink::new();
    let stats = monitor(serving_policy())
        .try_drive(&mut source, &mut sink)
        .expect("malformed lines are skipped under the serving policy");
    assert_eq!(stats.packets, records.len() as u64);
    assert_eq!(stats.malformed_skipped, 2);
    assert_eq!(
        sink.digest(),
        digest_of_batch(&PacketBatch::from_records(&records)),
        "ndjson-fed reports equal the batch drive"
    );
}

#[test]
fn channel_source_is_pollable_and_ends_when_senders_drop() {
    let (sender, mut source) = ChannelSource::channel();
    assert!(matches!(source.poll_chunk(), Ok(SourcePoll::Pending)));

    let mut batch = PacketBatch::new();
    batch.push_record(&tcp_record(0));
    sender.send(Ok(batch)).unwrap();
    match source.poll_chunk() {
        Ok(SourcePoll::Chunk(chunk)) => assert_eq!(chunk.len(), 1),
        other => panic!("expected the sent chunk, got {other:?}"),
    }

    sender
        .send(Err(SourceError::Malformed(
            flowrank_net::NetError::InvalidField {
                field: "test",
                reason: "injected",
            },
        )))
        .unwrap();
    assert!(matches!(
        source.poll_chunk(),
        Err(SourceError::Malformed(_))
    ));

    drop(sender);
    assert!(matches!(source.poll_chunk(), Ok(SourcePoll::End)));
}

#[test]
fn publish_sink_bounds_retention_and_raises_the_stop_flag() {
    let workload = Workload::by_name("rank-churn").expect("catalog scenario");
    let publisher = SnapshotPublisher::new();
    let stop = Arc::new(AtomicBool::new(false));
    let mut sink = PublishSink::new(2, publisher.clone()).stop_after(3, Arc::clone(&stop));
    let mut source = StopGate::new(PacedReplay::unpaced(workload.stream(7)), Arc::clone(&stop));
    let mut mon = Monitor::builder()
        .sampler(SamplerSpec::Random { rate: 0.2 })
        .bin_length(Timestamp::from_secs_f64(30.0))
        .top_t(5)
        .topk(TopKSpec::SpaceSaving { capacity: 32 })
        .seed(3)
        .drive_policy(serving_policy())
        .build();
    let stats = mon
        .try_drive(&mut source, &mut sink)
        .expect("the bin limiter ends the drive cleanly");
    assert!(
        stop.load(Ordering::Acquire),
        "max_bins raised the stop flag"
    );
    assert!(sink.window().bins_seen() >= 3);
    assert!(stats.reports >= 3);
    assert_eq!(
        sink.window().bins().count(),
        2,
        "retention stays at the configured bound"
    );
    let poll = publisher.render_poll();
    assert!(poll.contains("\"state\":{\"bins_seen\":"), "{poll}");
    assert!(
        sink.window().latest().expect("bins closed").top.len() <= 5,
        "the snapshot top list is the lane's top-t view"
    );
}

#[test]
fn serve_config_builds_a_monitor_that_drives_the_described_measurement() {
    let config = ServeConfig::parse(
        "source = replay\nscenario = port-scan\nseed = 9\nspeed = 0\nrates = 0.1\nruns = 1\nbin_secs = 30\ntop_t = 5\ntopk = exact\nretain_bins = 4\n",
    )
    .expect("config parses");
    let mut mon = config.monitor();
    let workload = Workload::by_name(&config.scenario).unwrap();
    let mut source = PacedReplay::new(workload.stream(config.seed), config.speed);
    let publisher = SnapshotPublisher::new();
    let mut sink = PublishSink::new(config.retain_bins, publisher.clone());
    let stats = mon
        .try_drive(&mut source, &mut sink)
        .expect("described measurement completes");
    assert!(stats.packets > 0);
    assert!(sink.window().bins_seen() > 0);
    let poll = publisher.render_poll();
    assert!(poll.starts_with("{\"age_s\":"), "{poll}");
}

//! Behavioural pins for the pipelined worker runtime behind
//! `MonitorBuilder::threads(n > 1)`: the fan-out threshold knob, the
//! inline/dispatch split, shutdown hygiene, and bit-identity of every
//! combination against the single-threaded engine.
//!
//! (The 216-cell golden matrix in `scenario_conformance.rs` pins the
//! runtime's *reports*; this file pins its *mechanics* — which path a
//! segment takes, and that the pool always joins cleanly.)

use flowrank_monitor::{
    BatchSource, Chunked, Collect, ControllerSpec, Monitor, MonitorBuilder, SamplerSpec, TopKSpec,
    DEFAULT_PARALLEL_SEGMENT_MIN,
};
use flowrank_net::{PacketBatch, PacketRecord, Timestamp};
use flowrank_trace::Workload;

const SEED: u64 = 0x5EED_2026;

fn trace() -> Vec<PacketRecord> {
    Workload::flash_crowd().synthesize(SEED)
}

fn builder(threads: usize) -> MonitorBuilder {
    Monitor::builder()
        .sampler(SamplerSpec::Random { rate: 0.1 })
        .rates(&[0.01, 0.1, 0.5])
        .runs(4)
        .topk(TopKSpec::SpaceSaving { capacity: 16 })
        .bin_length(Timestamp::from_secs_f64(60.0))
        .seed(SEED)
        .threads(threads)
}

#[test]
fn tiny_segments_on_a_threaded_monitor_take_the_inline_path() {
    // A per-packet stream never reaches the default 1024-packet fan-out
    // threshold, so a threads(4) monitor must process every segment on the
    // calling thread — and still produce bit-identical reports.
    let packets = trace();
    let baseline = builder(1).build().run_trace(&packets);

    let mut threaded = builder(4).build();
    assert_eq!(
        threaded.parallel_segment_min(),
        DEFAULT_PARALLEL_SEGMENT_MIN
    );
    let mut reports = Vec::new();
    for packet in &packets {
        reports.extend(threaded.push(packet));
    }
    reports.extend(threaded.finish());
    let (inline, dispatched) = threaded.segment_stats();
    assert!(inline > 0, "per-packet pushes are inline segments");
    assert_eq!(
        dispatched, 0,
        "no one-packet segment may pay a worker-queue round-trip"
    );
    assert_eq!(reports, baseline, "inline path must stay bit-identical");
}

#[test]
fn threshold_knob_moves_segments_between_paths_bit_identically() {
    let packets = trace();
    let batch = PacketBatch::from_records(&packets);
    let baseline = builder(1).build().run_batch(&batch);

    // Threshold 1: every segment — even tiny bin tails — goes to the pool.
    let mut forced = builder(4).parallel_segment_min(1).build();
    let forced_reports = forced.run_batch(&batch);
    let (inline, dispatched) = forced.segment_stats();
    assert_eq!(inline, 0, "threshold 1 must dispatch every segment");
    assert!(dispatched > 0);
    assert_eq!(forced_reports, baseline);

    // Threshold usize::MAX: all classification stays on the calling thread
    // (bin seals still run on the pool).
    let mut inline_only = builder(4).parallel_segment_min(usize::MAX).build();
    let inline_reports = inline_only.run_batch(&batch);
    let (inline, dispatched) = inline_only.segment_stats();
    assert_eq!(dispatched, 0, "threshold MAX must never dispatch");
    assert!(inline > 0);
    assert_eq!(inline_reports, baseline);

    // Default threshold on a buffered trace: whole-bin segments are large
    // enough to fan out.
    let mut mixed = builder(4).build();
    let mixed_reports = mixed.run_batch(&batch);
    let (_, dispatched) = mixed.segment_stats();
    assert!(
        dispatched > 0,
        "whole-bin segments must cross the default threshold"
    );
    assert_eq!(mixed_reports, baseline);
}

#[test]
fn threaded_drive_matches_serial_over_irregular_chunks() {
    // `drive` over chunk sizes straddling the threshold, on 2 and 4
    // threads, against the serial engine — the sink must see the same bins
    // in the same order with the same bytes.
    let packets = trace();
    let batch = PacketBatch::from_records(&packets);
    let mut baseline = Collect::new();
    builder(1)
        .build()
        .drive(&mut BatchSource::new(&batch), &mut baseline);
    for threads in [2, 4] {
        for chunk in [463, 4096] {
            let mut collected = Collect::new();
            let summary = builder(threads).build().drive(
                &mut Chunked::new(BatchSource::new(&batch), chunk),
                &mut collected,
            );
            assert_eq!(summary.packets, batch.len() as u64);
            assert_eq!(
                collected.reports, baseline.reports,
                "threads({threads}) drive with {chunk}-packet chunks"
            );
        }
    }
}

#[test]
fn dropping_a_threaded_monitor_mid_bin_joins_cleanly() {
    // Build a threads(4) pool, feed it a partial bin (both inline and
    // dispatched segments, so the queues are warm), and drop it without
    // finish(): the drop must join every worker and the sequencer — no
    // detached threads, no deadlock on a full queue. The test passes by
    // returning at all; a shutdown hang would trip the suite timeout.
    let packets = trace();
    let batch = PacketBatch::from_records(&packets);
    {
        let mut monitor = builder(4).parallel_segment_min(1).build();
        let within_bin = 2000.min(batch.len());
        let mut sink = Collect::new();
        let partial = PacketBatch::from_records(&packets[..within_bin]);
        monitor.push_batch_into(&partial, &mut sink);
        drop(monitor);
    }
    // Same, mid-stream after several sealed bins.
    {
        let mut monitor = builder(4).build();
        monitor.push_batch(&batch);
        drop(monitor);
    }
    // And a pool that never saw a packet.
    drop(builder(4).build());
}

#[test]
fn controlled_threaded_monitor_drops_cleanly_and_stays_bit_identical() {
    // The controller path adds the sequencer-side retune and the Proceed
    // token to the seal handshake; both must survive shutdown mid-bin and
    // keep reports identical to the serial engine.
    let packets = trace();
    let build = |threads: usize| {
        builder(threads)
            .controller(ControllerSpec::model_driven())
            .build()
    };
    let baseline = build(1).run_trace(&packets);
    assert!(baseline.iter().all(|report| report.controller.is_some()));
    for threads in [2, 4] {
        assert_eq!(build(threads).run_trace(&packets), baseline, "{threads}");
    }
    let mut dropped = build(4);
    dropped.push_batch(&PacketBatch::from_records(
        &packets[..500.min(packets.len())],
    ));
    drop(dropped);
}

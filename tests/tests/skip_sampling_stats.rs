//! Statistical equivalence of the skip-based samplers.
//!
//! The random sampler was rewritten from one Bernoulli(p) draw per packet to
//! skip-based form: the gap to the next retained packet is drawn from the
//! geometric distribution `P(G = g) = p(1−p)^g`. The two processes are the
//! same *in distribution* but consume different RNG streams, so their
//! equivalence cannot be pinned bit-for-bit — this suite pins it
//! statistically instead:
//!
//! * a chi-square harness compares the gap histograms of the skip sampler
//!   and of a per-packet Bernoulli reference (the pre-skip implementation,
//!   reproduced locally) against the exact geometric law;
//! * sample-size tolerance checks bound the realised keep counts by their
//!   binomial standard deviation across rates;
//! * pinned seeds freeze the skip sampler's exact decisions as a regression
//!   guard.
//!
//! The periodic and stratified samplers' skip paths preserve both decisions
//! and RNG streams exactly, so for them the per-packet path is the reference
//! and agreement is checked bit-for-bit (plus a chi-square uniformity check
//! on the stratified offsets produced by the batch path).

use flowrank_net::{PacketBatch, PacketRecord, Timestamp};
use flowrank_sampling::{PacketSampler, PeriodicSampler, RandomSampler, StratifiedSampler};
use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};
use flowrank_stats::special::gamma_q;
use std::net::Ipv4Addr;

/// A named factory producing fresh boxed samplers for one configuration.
type SamplerFactory = (&'static str, Box<dyn Fn() -> Box<dyn PacketSampler>>);

fn stream(n: usize) -> Vec<PacketRecord> {
    (0..n)
        .map(|i| {
            PacketRecord::udp(
                Timestamp::from_micros(i as u64),
                Ipv4Addr::new(10, 0, (i / 251 % 256) as u8, (i % 251) as u8),
                4000,
                Ipv4Addr::new(100, 64, 0, 1),
                53,
                500,
            )
        })
        .collect()
}

/// The pre-skip random sampler: one Bernoulli(p) coin per packet. Kept here
/// as the distributional reference the skip form must agree with.
struct BernoulliReference {
    rate: f64,
}

impl BernoulliReference {
    fn kept_indices(&self, n: usize, rng: &mut dyn Rng) -> Vec<u32> {
        (0..n as u32).filter(|_| rng.bernoulli(self.rate)).collect()
    }
}

/// Chi-square p-value for observed counts against expected counts
/// (survival function of the chi-square distribution with
/// `cells − 1` degrees of freedom).
fn chi_square_p_value(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len());
    let statistic: f64 = observed
        .iter()
        .zip(expected)
        .map(|(o, e)| (o - e) * (o - e) / e)
        .sum();
    let df = (observed.len() - 1) as f64;
    gamma_q(df / 2.0, statistic / 2.0)
}

/// Histograms inter-keep gaps into `cells` bins (the last one open-ended).
fn gap_histogram(kept: &[u32], cells: usize) -> Vec<f64> {
    let mut histogram = vec![0.0; cells];
    let mut previous: Option<u32> = None;
    for &index in kept {
        let gap = match previous {
            Some(p) => (index - p - 1) as usize,
            None => index as usize,
        };
        histogram[gap.min(cells - 1)] += 1.0;
        previous = Some(index);
    }
    histogram
}

/// Expected gap counts under Geometric(p): `total · p(1−p)^g`, with the
/// final cell absorbing the tail mass.
fn geometric_expectation(total: f64, rate: f64, cells: usize) -> Vec<f64> {
    let mut expected: Vec<f64> = (0..cells - 1)
        .map(|g| total * rate * (1.0 - rate).powi(g as i32))
        .collect();
    let covered: f64 = expected.iter().sum();
    expected.push(total - covered);
    expected
}

#[test]
fn skip_gaps_follow_the_geometric_law_like_bernoulli_draws() {
    // Both the skip sampler and the Bernoulli reference must pass a
    // chi-square test against the exact geometric gap law at every rate.
    // Seeds are pinned, so the p-values are deterministic; 0.01 leaves no
    // flakiness while still rejecting a broken skip derivation outright
    // (an off-by-one in the gap, or ln/floor misuse, drives the p-value to
    // ~0 on samples this large).
    let packets = stream(400_000);
    let batch = PacketBatch::from_records(&packets);
    for (rate, cells) in [(0.01, 12), (0.1, 10), (0.5, 6)] {
        let mut skip = RandomSampler::new(rate);
        let mut rng = Pcg64::seed_from_u64(0x5EED_0001);
        let mut kept: Vec<u32> = Vec::new();
        skip.keep_batch(&batch, 0..batch.len(), &mut rng, &mut kept);

        let mut reference_rng = Pcg64::seed_from_u64(0x5EED_0002);
        let reference = BernoulliReference { rate }.kept_indices(packets.len(), &mut reference_rng);

        for (name, indices) in [("skip", &kept), ("bernoulli", &reference)] {
            let histogram = gap_histogram(indices, cells);
            let expected = geometric_expectation(indices.len() as f64, rate, cells);
            let p_value = chi_square_p_value(&histogram, &expected);
            assert!(
                p_value > 0.01,
                "rate {rate}: {name} gap histogram rejects Geometric(p) \
                 (p-value {p_value:.5})"
            );
        }
    }
}

#[test]
fn skip_keep_counts_stay_within_binomial_tolerance() {
    // Sample-size check: the realised keep count must sit within 4 binomial
    // standard deviations of p·n for every rate, like the Bernoulli form.
    let packets = stream(200_000);
    let batch = PacketBatch::from_records(&packets);
    let n = packets.len() as f64;
    for (rate, seed) in [(0.001, 11u64), (0.01, 12), (0.1, 13), (0.5, 14), (0.9, 15)] {
        let mut sampler = RandomSampler::new(rate);
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut kept: Vec<u32> = Vec::new();
        sampler.keep_batch(&batch, 0..batch.len(), &mut rng, &mut kept);
        let tolerance = 4.0 * (n * rate * (1.0 - rate)).sqrt();
        let delta = (kept.len() as f64 - n * rate).abs();
        assert!(
            delta <= tolerance,
            "rate {rate}: kept {} vs expected {} (tolerance {tolerance:.1})",
            kept.len(),
            n * rate
        );
    }
}

#[test]
fn deterministic_samplers_agree_bit_for_bit_with_their_batch_forms() {
    // Periodic and stratified sampling keep their RNG streams under the
    // skip rewrite, so batch vs per-packet agreement is exact — checked
    // here through the public trait over irregular batch splits, for
    // several configurations of each sampler.
    let packets = stream(30_000);
    let batch = PacketBatch::from_records(&packets);
    let samplers: Vec<SamplerFactory> = vec![
        (
            "periodic-100",
            Box::new(|| Box::new(PeriodicSampler::new(100))),
        ),
        (
            "periodic-phase-250",
            Box::new(|| Box::new(PeriodicSampler::new(250).with_random_phase())),
        ),
        (
            "stratified-64",
            Box::new(|| Box::new(StratifiedSampler::new(64))),
        ),
        (
            "stratified-1000",
            Box::new(|| Box::new(StratifiedSampler::new(1000))),
        ),
        (
            "random-0.05",
            Box::new(|| Box::new(RandomSampler::new(0.05))),
        ),
    ];
    for (name, build) in samplers {
        let mut per_packet = build();
        let mut rng_a = Pcg64::seed_from_u64(0xAB);
        let expected: Vec<u32> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| per_packet.keep(p, &mut rng_a))
            .map(|(i, _)| i as u32)
            .collect();

        let mut batched = build();
        let mut rng_b = Pcg64::seed_from_u64(0xAB);
        let mut kept: Vec<u32> = Vec::new();
        let mut start = 0usize;
        for piece in [13usize, 1, 999, 64, usize::MAX] {
            let end = batch.len().min(start.saturating_add(piece));
            batched.keep_batch(&batch, start..end, &mut rng_b, &mut kept);
            start = end;
            if start == batch.len() {
                break;
            }
        }
        assert_eq!(kept, expected, "{name}: decisions must match exactly");
        assert_eq!(rng_a, rng_b, "{name}: RNG streams must match exactly");
    }
}

#[test]
fn stratified_batch_offsets_are_uniform_within_strata() {
    // The stratified skip path draws one offset per stratum; across many
    // strata the chosen offsets must be uniform — chi-square against the
    // flat expectation.
    let stratum = 50usize;
    let strata = 8_000usize;
    let packets = stream(stratum * strata);
    let batch = PacketBatch::from_records(&packets);
    let mut sampler = StratifiedSampler::new(stratum as u64);
    let mut rng = Pcg64::seed_from_u64(0xC0FFEE);
    let mut kept: Vec<u32> = Vec::new();
    sampler.keep_batch(&batch, 0..batch.len(), &mut rng, &mut kept);
    assert_eq!(kept.len(), strata, "exactly one keep per stratum");
    let mut histogram = vec![0.0; stratum];
    for &index in &kept {
        histogram[index as usize % stratum] += 1.0;
    }
    let expected = vec![strata as f64 / stratum as f64; stratum];
    let p_value = chi_square_p_value(&histogram, &expected);
    assert!(
        p_value > 0.01,
        "stratified offsets reject uniformity (p-value {p_value:.5})"
    );
}

#[test]
fn pinned_seed_regression_for_the_skip_sampler() {
    // Freezes the skip sampler's exact stream for one pinned (rate, seed):
    // any change to the gap derivation — RNG call order, open-vs-closed
    // interval, floor vs round — shows up here before it silently shifts
    // every seeded experiment in the workspace.
    let packets = stream(10_000);
    let batch = PacketBatch::from_records(&packets);
    let mut sampler = RandomSampler::new(0.01);
    let mut rng = Pcg64::seed_from_u64(42);
    let mut kept: Vec<u32> = Vec::new();
    sampler.keep_batch(&batch, 0..batch.len(), &mut rng, &mut kept);

    // Per-packet form replays the identical stream.
    let mut replay = RandomSampler::new(0.01);
    let mut replay_rng = Pcg64::seed_from_u64(42);
    let replayed: Vec<u32> = packets
        .iter()
        .enumerate()
        .filter(|(_, p)| replay.keep(p, &mut replay_rng))
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(kept, replayed);

    let pinned_first_10: Vec<u32> = PINNED_KEPT_PREFIX.to_vec();
    assert_eq!(kept[..10].to_vec(), pinned_first_10);
    assert_eq!(kept.len(), PINNED_KEPT_COUNT);
}

/// First ten kept indices for `RandomSampler::new(0.01)` under
/// `Pcg64::seed_from_u64(42)` on a 10 000-packet stream, recorded when the
/// skip form was introduced.
const PINNED_KEPT_PREFIX: [u32; 10] = [23, 25, 390, 436, 731, 777, 790, 877, 898, 973];
/// Total kept count for the pinned configuration.
const PINNED_KEPT_COUNT: usize = 100;

//! The full conformance matrix: every catalog scenario × every sampler ×
//! every top-k backend, each cell driven through every execution path
//! (per-packet `push`, whole and chunked `push_batch`, sharded `threads(n)`,
//! legacy `run_bin`) with bit-identical reports — plus a committed golden
//! digest per cell, so a refactor that silently changes *results* (not just
//! paths disagreeing with each other) fails loudly.
//!
//! Golden digests live in `tests/goldens/scenario_conformance.txt`.
//! Regenerate them with `scripts/regen_goldens.sh` after an intentional
//! behaviour change (e.g. a new RNG stream); the script refuses to run on a
//! dirty tree so regenerations are always reviewable commits. Setting
//! `REGEN_GOLDENS=1` by hand rewrites the file directly.

use std::fmt::Write as _;

use flowrank_monitor::{SamplerSpec, TopKSpec};
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_sim::{run_conformance, ConformanceConfig};
use flowrank_trace::Workload;

/// Trace seed per scenario (index into the catalog is mixed in so scenarios
/// never share a synthesis stream).
const TRACE_SEED: u64 = 0x5EED_2026;
/// Lane seed for every cell.
const LANE_SEED: u64 = 0xACE5_0001;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/goldens/scenario_conformance.txt"
);

/// The six sampling disciplines, at fixed mid-range parameters.
fn samplers() -> Vec<SamplerSpec> {
    vec![
        SamplerSpec::Random { rate: 0.1 },
        SamplerSpec::Periodic {
            rate: 0.1,
            random_phase: true,
        },
        SamplerSpec::Stratified { rate: 0.1 },
        SamplerSpec::Flow { rate: 0.3 },
        SamplerSpec::Smart { threshold: 25.0 },
        SamplerSpec::Adaptive {
            initial_rate: 0.2,
            budget_per_interval: 400,
            interval: Timestamp::from_secs_f64(5.0),
        },
    ]
}

/// The five top-k backends, sized so eviction and filtering actually happen.
fn topk_backends() -> Vec<TopKSpec> {
    vec![
        TopKSpec::Exact,
        TopKSpec::SortedList { capacity: 24 },
        TopKSpec::SpaceSaving { capacity: 24 },
        TopKSpec::SampleAndHold {
            entry_probability: 0.05,
            capacity: 24,
        },
        TopKSpec::Multistage {
            stages: 2,
            counters_per_stage: 128,
            threshold: 8,
            memory_capacity: 24,
        },
    ]
}

/// Computes the digest lines of the whole matrix, in a fixed order.
fn compute_matrix() -> Vec<String> {
    let mut lines = Vec::new();
    for (index, workload) in Workload::catalog().into_iter().enumerate() {
        let packets = workload.synthesize(TRACE_SEED ^ ((index as u64) << 32));
        assert!(
            packets.len() > 3_000,
            "{}: conformance trace too small ({} packets)",
            workload.name(),
            packets.len()
        );

        // Full matrix under the 5-tuple definition: 6 samplers × 5 backends.
        for sampler in samplers() {
            for topk in topk_backends() {
                let label = format!(
                    "{}/5tuple/{}/{}",
                    workload.name(),
                    sampler.name(),
                    topk.name()
                );
                let config = ConformanceConfig {
                    flow_definition: FlowDefinition::FiveTuple,
                    sampler,
                    topk: Some(topk),
                    bin_length: Timestamp::from_secs_f64(60.0),
                    top_t: 10,
                    seed: LANE_SEED,
                    threads: 2,
                };
                let digest = run_conformance(&label, &packets, &config);
                lines.push(format!("{label} {digest:016x}"));
            }
        }

        // Prefix sub-matrix: every sampler under /24 aggregation (the top-k
        // backends are 5-tuple-keyed and orthogonal to the definition, so
        // one backendless pass per sampler pins the prefix path).
        for sampler in samplers() {
            let label = format!("{}/prefix24/{}/none", workload.name(), sampler.name());
            let config = ConformanceConfig {
                flow_definition: FlowDefinition::PREFIX24,
                sampler,
                topk: None,
                bin_length: Timestamp::from_secs_f64(60.0),
                top_t: 10,
                seed: LANE_SEED,
                threads: 2,
            };
            let digest = run_conformance(&label, &packets, &config);
            lines.push(format!("{label} {digest:016x}"));
        }
    }
    lines
}

#[test]
fn conformance_matrix_matches_golden_digests() {
    let lines = compute_matrix();
    let scenario_count = Workload::catalog().len();
    assert_eq!(
        lines.len(),
        scenario_count * (6 * 5 + 6),
        "matrix must cover scenarios × (samplers × backends + prefix pass)"
    );

    let mut rendered = String::from(
        "# Golden conformance digests: scenario/definition/sampler/topk -> \
         FNV-1a of the BinReport stream.\n\
         # Regenerate with scripts/regen_goldens.sh (refuses dirty trees).\n",
    );
    for line in &lines {
        writeln!(rendered, "{line}").unwrap();
    }

    if std::env::var_os("REGEN_GOLDENS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("regenerated {} ({} cells)", GOLDEN_PATH, lines.len());
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run scripts/regen_goldens.sh");
    let golden_lines: Vec<&str> = golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "golden cell count diverged — run scripts/regen_goldens.sh if intentional"
    );
    for (computed, pinned) in lines.iter().zip(&golden_lines) {
        assert_eq!(
            computed, pinned,
            "golden digest mismatch — a refactor changed observable results; \
             if intentional, regenerate with scripts/regen_goldens.sh"
        );
    }
}

//! Cross-crate integration: the full monitor pipeline over a pcap capture —
//! generate a trace, export it, re-import it, sample it, rank it.

use std::collections::HashMap;

use flowrank_core::metrics::{compare_rankings, SizedFlow};
use flowrank_net::pcap::pcap_bytes_to_records;
use flowrank_net::{FiveTuple, FlowTable};
use flowrank_sampling::{sample_and_classify, RandomSampler};
use flowrank_stats::rng::{Pcg64, SeedableRng};
use flowrank_trace::export::export_flows_to_pcap;
use flowrank_trace::{SprintModel, SynthesisConfig};

#[test]
fn pcap_export_import_sample_rank() {
    let flows = SprintModel::small(30.0, 40.0).generate_flows(77);
    let mut pcap = Vec::new();
    let written =
        export_flows_to_pcap(&flows, &SynthesisConfig::default(), 77, &mut pcap).unwrap();
    assert_eq!(written, flows.iter().map(|f| f.packets).sum::<u64>());

    let records = pcap_bytes_to_records(&pcap).unwrap();
    assert_eq!(records.len() as u64, written);

    // Ground truth from the re-imported capture matches the generated flows.
    let mut truth: FlowTable<FiveTuple> = FlowTable::new();
    for r in &records {
        truth.observe(r);
    }
    assert_eq!(truth.flow_count(), flows.len());
    for f in &flows {
        assert_eq!(truth.get(&f.key).unwrap().packets, f.packets);
    }

    // Full sampling keeps the ranking perfect; 1% sampling does not.
    let original: Vec<SizedFlow<FiveTuple>> = truth
        .iter()
        .map(|(k, s)| SizedFlow { key: *k, packets: s.packets })
        .collect();

    let outcome_full = {
        let mut sampler = RandomSampler::new(1.0);
        let mut rng = Pcg64::seed_from_u64(1);
        let sampled: FlowTable<FiveTuple> = sample_and_classify(&records, &mut sampler, &mut rng);
        let sizes: HashMap<FiveTuple, u64> =
            sampled.iter().map(|(k, s)| (*k, s.packets)).collect();
        compare_rankings(&original, &sizes, 10)
    };
    assert_eq!(outcome_full.ranking_swaps, 0);
    assert_eq!(outcome_full.missed_top_flows, 0);

    let outcome_sampled = {
        let mut sampler = RandomSampler::new(0.01);
        let mut rng = Pcg64::seed_from_u64(2);
        let sampled: FlowTable<FiveTuple> = sample_and_classify(&records, &mut sampler, &mut rng);
        let sizes: HashMap<FiveTuple, u64> =
            sampled.iter().map(|(k, s)| (*k, s.packets)).collect();
        compare_rankings(&original, &sizes, 10)
    };
    assert!(outcome_sampled.ranking_swaps > 0);
}

//! Cross-crate integration: the full monitor pipeline over a pcap capture —
//! generate a trace, export it, re-import it, and stream it through the
//! push-based monitor — plus the decoder error paths: truncated record
//! headers, `incl_len` past the end of the buffer, and frames the fast
//! parser bows out of (IP options, ICMP, short UDP), on which the zero-copy
//! batch decoder and the record reader must agree exactly.

use flowrank_monitor::{Monitor, SamplerSpec};
use flowrank_net::pcap::{
    pcap_bytes_to_batch, pcap_bytes_to_records, records_to_pcap_bytes, PcapBatchCursor, PcapReader,
    PcapWriter,
};
use flowrank_net::{
    FiveTuple, FlowDefinition, FlowTable, NetError, PacketBatch, PacketRecord, Protocol, Timestamp,
};
use flowrank_trace::export::export_flows_to_pcap;
use flowrank_trace::{SprintModel, SynthesisConfig};
use std::net::Ipv4Addr;

#[test]
fn pcap_export_import_stream_rank() {
    let flows = SprintModel::small(30.0, 40.0).generate_flows(77);
    let mut pcap = Vec::new();
    let written = export_flows_to_pcap(&flows, &SynthesisConfig::default(), 77, &mut pcap).unwrap();
    assert_eq!(written, flows.iter().map(|f| f.packets).sum::<u64>());

    let records = pcap_bytes_to_records(&pcap).unwrap();
    assert_eq!(records.len() as u64, written);

    // Ground truth from the re-imported capture matches the generated flows.
    let mut truth: FlowTable<FiveTuple> = FlowTable::new();
    for r in &records {
        truth.observe(r);
    }
    assert_eq!(truth.flow_count(), flows.len());
    for f in &flows {
        assert_eq!(truth.get(&f.key).unwrap().packets, f.packets);
    }

    // Stream the capture through a monitor carrying a full-sampling lane and
    // a 1% lane side by side: full sampling keeps the ranking perfect, 1%
    // does not, and both ride on the same ground-truth classification.
    let mut monitor = Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&[1.0, 0.01])
        .runs(1)
        .bin_length(Timestamp::ZERO)
        .top_t(10)
        .seed(1)
        .build();
    let mut reports = Vec::new();
    for record in &records {
        reports.extend(monitor.push(record));
    }
    reports.extend(monitor.finish());
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.packets, written);
    assert_eq!(report.flows, flows.len());

    let full = report
        .lanes_at_rate(1.0)
        .next()
        .expect("full-sampling lane");
    assert_eq!(full.outcome.ranking_swaps, 0);
    assert_eq!(full.outcome.missed_top_flows, 0);
    assert_eq!(full.sampled_packets, written);

    let sparse = report.lanes_at_rate(0.01).next().expect("1% lane");
    assert!(sparse.outcome.ranking_swaps > 0);
    assert!(sparse.sampled_packets < written);
}

/// A valid capture holding `records`, built through the production writer.
fn capture_of(records: &[PacketRecord]) -> Vec<u8> {
    records_to_pcap_bytes(records).unwrap()
}

fn tcp_record(i: usize) -> PacketRecord {
    PacketRecord::tcp(
        Timestamp::from_secs_f64(i as f64 * 0.001),
        Ipv4Addr::new(10, 2, 0, (i % 200) as u8),
        30_000 + i as u16,
        Ipv4Addr::new(100, 64, 1, 9),
        80,
        500,
        i as u32 * 500,
    )
}

/// Hand-builds an Ethernet/IPv4 frame with `options` extra IPv4 option
/// bytes (IHL = 5 + options/4) carrying a TCP or UDP header — the shape the
/// single-bounds-check fast parser refuses (IHL ≠ 5) and the general parser
/// must handle.
fn frame_with_ip_options(protocol: Protocol, options: usize, src_port: u16) -> Vec<u8> {
    assert_eq!(options % 4, 0);
    let ihl_bytes = 20 + options;
    let transport = match protocol {
        Protocol::Tcp => 20,
        Protocol::Udp => 8,
        _ => 0,
    };
    let total_len = ihl_bytes + transport;
    let mut frame = Vec::new();
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // dst MAC
    frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // src MAC
    frame.extend_from_slice(&0x0800u16.to_be_bytes()); // EtherType IPv4
    let mut ip = vec![0u8; ihl_bytes];
    ip[0] = 0x40 | (ihl_bytes / 4) as u8; // version 4, IHL > 5
    ip[2..4].copy_from_slice(&(total_len as u16).to_be_bytes());
    ip[8] = 64;
    ip[9] = protocol.number();
    ip[12..16].copy_from_slice(&Ipv4Addr::new(172, 16, 0, 5).octets());
    ip[16..20].copy_from_slice(&Ipv4Addr::new(100, 64, 3, 7).octets());
    for b in &mut ip[20..ihl_bytes] {
        *b = 0x01; // NOP options
    }
    frame.extend_from_slice(&ip);
    match protocol {
        Protocol::Tcp => {
            let mut tcp = [0u8; 20];
            tcp[0..2].copy_from_slice(&src_port.to_be_bytes());
            tcp[2..4].copy_from_slice(&8080u16.to_be_bytes());
            tcp[4..8].copy_from_slice(&0xFEEDBEEFu32.to_be_bytes());
            tcp[12] = 0x50;
            frame.extend_from_slice(&tcp);
        }
        Protocol::Udp => {
            let mut udp = [0u8; 8];
            udp[0..2].copy_from_slice(&src_port.to_be_bytes());
            udp[2..4].copy_from_slice(&53u16.to_be_bytes());
            udp[4..6].copy_from_slice(&(transport as u16).to_be_bytes());
            frame.extend_from_slice(&udp);
        }
        _ => {}
    }
    frame
}

/// Decodes `bytes` through both paths and asserts they agree record for
/// record; returns the records.
fn decode_both_ways(bytes: &[u8]) -> Vec<PacketRecord> {
    let records = pcap_bytes_to_records(bytes).unwrap();
    let mut batch = PacketBatch::new();
    let appended = pcap_bytes_to_batch(bytes, &mut batch).unwrap();
    assert_eq!(appended as usize, records.len());
    assert_eq!(batch.to_records(), records, "fast and fallback paths agree");
    records
}

#[test]
fn truncated_record_headers_error_in_both_decoders() {
    let bytes = capture_of(&(0..3).map(tcp_record).collect::<Vec<_>>());
    let record_len = 16 + 14 + 500;
    // Cut inside the second record's 16-byte header: 4–15 remaining header
    // bytes are an error for both paths; 1–3 are clean EOF for both.
    for cut in [4usize, 8, 15] {
        let cut_bytes = &bytes[..24 + record_len + cut];
        let mut reader = PcapReader::new(cut_bytes).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().is_err(), "reader, {cut} header bytes");
        let mut batch = PacketBatch::new();
        assert!(
            pcap_bytes_to_batch(cut_bytes, &mut batch).is_err(),
            "batch, {cut} header bytes"
        );
    }
    for cut in [1usize, 3] {
        let cut_bytes = &bytes[..24 + record_len + cut];
        assert_eq!(decode_both_ways(cut_bytes).len(), 1, "{cut} bytes is EOF");
    }
}

#[test]
fn cursor_resumes_a_corrected_capture_without_reprocessing_packets() {
    // A capture truncated mid-record — the shape left behind by a crashed
    // writer. Chunked decoding surfaces the `NetError` when it reaches the
    // bad record, keeps every packet decoded before it, and a cursor over
    // the corrected (full) capture resumes from the saved offset: the
    // combined stream is byte-for-byte the clean one-shot decode, with no
    // packet seen twice.
    let records: Vec<_> = (0..40).map(tcp_record).collect();
    let bytes = capture_of(&records);
    let record_len = 16 + 14 + 500;
    let bad_start = 24 + 25 * record_len;
    let cut = &bytes[..bad_start + 16 + 37];

    let mut whole = PacketBatch::new();
    pcap_bytes_to_batch(&bytes, &mut whole).unwrap();

    let mut cursor = PcapBatchCursor::new(cut).unwrap();
    let mut batch = PacketBatch::new();
    let err = loop {
        match cursor.decode_some(&mut batch, 7) {
            Ok(0) => panic!("the truncated record must surface an error"),
            Ok(_) => {}
            Err(err) => break err,
        }
    };
    assert!(matches!(err, NetError::MalformedPacket { .. }));
    assert_eq!(batch.len(), 25, "records before the cut stay committed");
    assert_eq!(
        cursor.offset(),
        bad_start,
        "cursor parked on the bad record"
    );

    let mut resumed = PcapBatchCursor::resume(&bytes, cursor.offset()).unwrap();
    while resumed.decode_some(&mut batch, 7).unwrap() > 0 {}
    assert!(resumed.is_done());
    assert_eq!(batch, whole, "resumed stream equals the clean decode");
}

#[test]
fn cursor_resume_rejects_offsets_outside_the_capture() {
    // Regression pin: `resume` used to accept any offset and fault later
    // (or silently decode garbage). An offset past the end of the capture
    // — e.g. a checkpoint saved against a longer file — must fail up front
    // with a clear `NetError`, not on some later decode call.
    let records: Vec<_> = (0..4).map(tcp_record).collect();
    let bytes = capture_of(&records);
    for offset in [0, 10, 23, bytes.len() + 1, usize::MAX] {
        let err = PcapBatchCursor::resume(&bytes, offset)
            .err()
            .unwrap_or_else(|| panic!("offset {offset} must be rejected"));
        match err {
            NetError::InvalidField { field, reason } => {
                assert_eq!(field, "resume offset");
                assert!(reason.contains("outside the capture"), "{offset}: {reason}");
            }
            other => panic!("offset {offset}: expected InvalidField, got {other:?}"),
        }
    }
    // The capture boundaries themselves stay valid: the header end (an
    // empty resume) and the exact end of the capture (a finished resume).
    assert!(PcapBatchCursor::resume(&bytes, 24).is_ok());
    assert!(PcapBatchCursor::resume(&bytes, bytes.len()).is_ok());
}

#[test]
fn cursor_resume_rejects_offsets_inside_a_record() {
    // Regression pin: an offset that is in bounds but not on a record
    // boundary desynchronises the decoder — the bytes at the offset are
    // payload, reinterpreted as a record header. `resume` walks the record
    // chain and rejects both mid-header and mid-payload offsets.
    let records: Vec<_> = (0..4).map(tcp_record).collect();
    let bytes = capture_of(&records);
    let record_len = 16 + 14 + 500;
    for (offset, expected) in [
        (24 + 7, "header"),                      // inside the first record header
        (24 + record_len + 3, "header"),         // inside the second record header
        (24 + 16 + 3, "payload"),                // inside the first record payload
        (24 + record_len + 16 + 499, "payload"), // last payload byte
    ] {
        let err = PcapBatchCursor::resume(&bytes, offset)
            .err()
            .unwrap_or_else(|| panic!("offset {offset} must be rejected"));
        match err {
            NetError::InvalidField { field, reason } => {
                assert_eq!(field, "resume offset");
                assert!(reason.contains(expected), "{offset}: {reason}");
            }
            other => panic!("offset {offset}: expected InvalidField, got {other:?}"),
        }
    }
    // Every true record boundary resumes, and the resumed decode finishes.
    for skip in 0..=records.len() {
        let offset = 24 + skip * record_len;
        let mut cursor = PcapBatchCursor::resume(&bytes, offset)
            .unwrap_or_else(|e| panic!("boundary {offset}: {e}"));
        let mut batch = PacketBatch::new();
        while cursor.decode_some(&mut batch, 2).unwrap() > 0 {}
        assert_eq!(batch.len(), records.len() - skip, "resumed at {offset}");
    }
}

#[test]
fn incl_len_past_end_of_buffer_is_rejected_by_both_decoders() {
    // A record header whose incl_len promises more payload than the buffer
    // holds — the remote-input shape a length-trusting decoder would
    // over-read on.
    for (claimed, present) in [(600u32, 100usize), (54, 53), (1, 0)] {
        let mut bytes = capture_of(&[]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend(std::iter::repeat_n(0u8, present));
        let mut reader = PcapReader::new(&bytes[..]).unwrap();
        assert!(reader.next_frame().is_err(), "reader, {claimed}/{present}");
        let mut batch = PacketBatch::new();
        assert!(
            pcap_bytes_to_batch(&bytes, &mut batch).is_err(),
            "batch, {claimed}/{present}"
        );
        assert!(batch.is_empty());
    }
}

#[test]
fn ihl_gt_5_frames_fall_back_to_the_general_parser() {
    // IPv4 frames with options (IHL 6 and 8), TCP and UDP: the fast parser
    // bows out, the general parser decodes them, and both decode paths
    // agree on every field — ports read *after* the options, not at the
    // IHL-5 offsets.
    let mut writer = PcapWriter::new(Vec::new()).unwrap();
    writer
        .write_frame(
            Timestamp::from_micros(10),
            &frame_with_ip_options(Protocol::Tcp, 4, 41_000),
        )
        .unwrap();
    writer
        .write_frame(
            Timestamp::from_micros(20),
            &frame_with_ip_options(Protocol::Udp, 12, 42_000),
        )
        .unwrap();
    // A plain fast-path record in between proves the two paths interleave.
    writer.write_record(&tcp_record(7)).unwrap();
    let bytes = writer.finish().unwrap();

    let records = decode_both_ways(&bytes);
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].protocol, Protocol::Tcp);
    assert_eq!(records[0].src_port, 41_000);
    assert_eq!(records[0].dst_port, 8080);
    assert_eq!(records[0].tcp_seq, Some(0xFEEDBEEF));
    assert_eq!(records[0].length, 44); // 24-byte IPv4 header + 20 TCP
    assert_eq!(records[1].protocol, Protocol::Udp);
    assert_eq!(records[1].src_port, 42_000);
    assert_eq!(records[1].dst_port, 53);
    assert_eq!(records[1].tcp_seq, None);
    assert_eq!(records[2], tcp_record(7));
}

#[test]
fn undecodable_frames_are_skipped_identically_by_both_decoders() {
    let mut writer = PcapWriter::new(Vec::new()).unwrap();
    // ARP (non-IPv4 EtherType).
    let mut arp = vec![0u8; 42];
    arp[12] = 0x08;
    arp[13] = 0x06;
    writer.write_frame(Timestamp::ZERO, &arp).unwrap();
    // IPv4 claiming TCP but truncated before the TCP header ends.
    let truncated_tcp = &frame_with_ip_options(Protocol::Tcp, 4, 43_000)[..14 + 24 + 10];
    writer
        .write_frame(Timestamp::from_micros(1), truncated_tcp)
        .unwrap();
    // IPv6 EtherType.
    let mut six = vec![0u8; 60];
    six[12] = 0x86;
    six[13] = 0xDD;
    writer.write_frame(Timestamp::from_micros(2), &six).unwrap();
    // A valid ICMP frame (no ports) and a short valid UDP frame — both
    // refuse the 54-byte fast path but decode via the general parser.
    let mut icmp = tcp_record(3);
    icmp.protocol = Protocol::Icmp;
    icmp.tcp_seq = None;
    icmp.src_port = 0;
    icmp.dst_port = 0;
    icmp.length = 84;
    writer.write_record(&icmp).unwrap();
    let short_udp = PacketRecord::udp(
        Timestamp::from_micros(4),
        Ipv4Addr::new(10, 9, 9, 9),
        5353,
        Ipv4Addr::new(100, 64, 2, 2),
        53,
        28, // IPv4 + UDP headers only: a 42-byte frame, below the fast cut
    );
    writer.write_record(&short_udp).unwrap();
    writer.write_record(&tcp_record(11)).unwrap();
    let bytes = writer.finish().unwrap();

    let records = decode_both_ways(&bytes);
    assert_eq!(records.len(), 3, "ARP, truncated TCP and IPv6 are skipped");
    assert_eq!(records[0], icmp);
    assert_eq!(records[1], short_udp);
    assert_eq!(records[2], tcp_record(11));
}

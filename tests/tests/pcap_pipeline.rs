//! Cross-crate integration: the full monitor pipeline over a pcap capture —
//! generate a trace, export it, re-import it, and stream it through the
//! push-based monitor.

use flowrank_monitor::{Monitor, SamplerSpec};
use flowrank_net::pcap::pcap_bytes_to_records;
use flowrank_net::{FiveTuple, FlowDefinition, FlowTable, Timestamp};
use flowrank_trace::export::export_flows_to_pcap;
use flowrank_trace::{SprintModel, SynthesisConfig};

#[test]
fn pcap_export_import_stream_rank() {
    let flows = SprintModel::small(30.0, 40.0).generate_flows(77);
    let mut pcap = Vec::new();
    let written = export_flows_to_pcap(&flows, &SynthesisConfig::default(), 77, &mut pcap).unwrap();
    assert_eq!(written, flows.iter().map(|f| f.packets).sum::<u64>());

    let records = pcap_bytes_to_records(&pcap).unwrap();
    assert_eq!(records.len() as u64, written);

    // Ground truth from the re-imported capture matches the generated flows.
    let mut truth: FlowTable<FiveTuple> = FlowTable::new();
    for r in &records {
        truth.observe(r);
    }
    assert_eq!(truth.flow_count(), flows.len());
    for f in &flows {
        assert_eq!(truth.get(&f.key).unwrap().packets, f.packets);
    }

    // Stream the capture through a monitor carrying a full-sampling lane and
    // a 1% lane side by side: full sampling keeps the ranking perfect, 1%
    // does not, and both ride on the same ground-truth classification.
    let mut monitor = Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&[1.0, 0.01])
        .runs(1)
        .bin_length(Timestamp::ZERO)
        .top_t(10)
        .seed(1)
        .build();
    let mut reports = Vec::new();
    for record in &records {
        reports.extend(monitor.push(record));
    }
    reports.extend(monitor.finish());
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.packets, written);
    assert_eq!(report.flows, flows.len());

    let full = report
        .lanes_at_rate(1.0)
        .next()
        .expect("full-sampling lane");
    assert_eq!(full.outcome.ranking_swaps, 0);
    assert_eq!(full.outcome.missed_top_flows, 0);
    assert_eq!(full.sampled_packets, written);

    let sparse = report.lanes_at_rate(0.01).next().expect("1% lane");
    assert!(sparse.outcome.ranking_swaps > 0);
    assert!(sparse.sampled_packets < written);
}

//! Fleet-vs-standalone conformance: a [`flowrank_fleet::Fleet`] hosting N
//! tenants must emit, for every tenant, *exactly* the `BinReport` stream a
//! standalone [`flowrank_monitor::Monitor`] produces when driven over that
//! tenant's own synthesis stream — bit-identical, at every fleet worker
//! count. The equivalence surface is [`FleetBuilder::tenant_builder`] (the
//! documented standalone-monitor constructor) on the monitor side and
//! [`FleetScenario::tenant_stream`] (the per-tenant view of the merged
//! tagged stream) on the traffic side.
//!
//! The budgeted half pins the *eviction* path the same way: per-tenant flow
//! budgets evict deterministically, so the budgeted report streams are also
//! thread-count invariant and their digests are committed as goldens in
//! `tests/goldens/fleet_eviction.txt`. Regenerate with
//! `scripts/regen_goldens.sh` (refuses dirty trees) after an intentional
//! behaviour change; `REGEN_GOLDENS=1` rewrites the file directly.

use std::fmt::Write as _;

use flowrank_fleet::{FleetBuilder, FleetCollect};
use flowrank_monitor::{
    BinReport, Collect, DigestSink, MonitorBuilder, ReportSink, SamplerSpec, TopKSpec,
};
use flowrank_net::{TenantId, Timestamp};
use flowrank_trace::FleetScenario;

/// One seed drives the whole suite: tenant seeds and tenant traffic are both
/// derived from it, on the fleet side and the standalone side alike.
const SEED: u64 = 0xF1EE_2026_0001;
/// Enough tenants to cover most of the catalog round-robin and both phase
/// extremes of the diurnal envelope.
const TENANTS: u32 = 5;
/// Per-tenant flow budget of the eviction half — small enough that several
/// tenants actually evict.
const BUDGET_FLOWS: usize = 32;
/// Fleet worker counts the equivalence must hold at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/goldens/fleet_eviction.txt");

/// The tenant monitor template: a sampler with per-lane RNG state, a
/// bounded top-k backend and a multi-lane grid, so the equivalence covers
/// seeded sampling, eviction and lane fan-out — not just counting.
fn template() -> MonitorBuilder {
    MonitorBuilder::new()
        .sampler(SamplerSpec::Random { rate: 0.1 })
        .rates(&[0.01, 0.1])
        .runs(2)
        .topk(TopKSpec::SpaceSaving { capacity: 24 })
        .top_t(10)
        .bin_length(Timestamp::from_secs_f64(60.0))
}

fn builder(threads: usize, budget: Option<usize>) -> FleetBuilder {
    let mut builder = FleetBuilder::new(TENANTS)
        .monitor(template())
        .seed(SEED)
        .threads(threads);
    if let Some(flows) = budget {
        builder = builder.flow_budget(flows);
    }
    builder
}

/// Drives the whole fleet scenario through one slab and collects every
/// `(tenant, report)` pair in delivery order.
fn fleet_reports(threads: usize, budget: Option<usize>) -> FleetCollect {
    let mut fleet = builder(threads, budget).build();
    let mut collect = FleetCollect::new();
    let mut stream = FleetScenario::new(TENANTS).stream(SEED);
    fleet.drive(&mut stream, &mut collect);
    collect
}

/// Drives each tenant's standalone twin: `tenant_builder` monitor over
/// `tenant_stream` traffic, no fleet anywhere.
fn standalone_reports(budget: Option<usize>) -> Vec<Vec<BinReport>> {
    let scenario = FleetScenario::new(TENANTS);
    let blueprint = builder(1, budget);
    (0..TENANTS)
        .map(|t| {
            let tenant = TenantId(t);
            let mut monitor = blueprint.tenant_builder(tenant).build();
            let mut collect = Collect::default();
            let mut stream = scenario.tenant_stream(SEED, tenant);
            monitor.drive(&mut stream, &mut collect);
            collect.reports
        })
        .collect()
}

/// Asserts the fleet's per-tenant streams equal the standalone baseline,
/// report for report, at every fleet worker count.
fn assert_matches_standalone(budget: Option<usize>, baseline: &[Vec<BinReport>]) {
    for threads in THREAD_COUNTS {
        let collect = fleet_reports(threads, budget);
        for (t, expected) in baseline.iter().enumerate() {
            let tenant = TenantId(t as u32);
            let got = collect.tenant_reports(tenant);
            assert_eq!(
                got.len(),
                expected.len(),
                "tenant {t} bin count diverged at {threads} fleet workers (budget {budget:?})"
            );
            for (bin, (fleet_report, standalone)) in got.iter().zip(expected).enumerate() {
                assert_eq!(
                    *fleet_report, standalone,
                    "tenant {t} bin {bin} diverged at {threads} fleet workers (budget {budget:?})"
                );
            }
        }
    }
}

#[test]
fn fleet_reports_are_bit_identical_to_standalone_monitors() {
    let baseline = standalone_reports(None);
    assert!(
        baseline.iter().all(|reports| !reports.is_empty()),
        "every tenant must close at least one bin"
    );
    assert_matches_standalone(None, &baseline);
}

#[test]
fn budgeted_fleet_matches_budgeted_standalone_monitors() {
    let baseline = standalone_reports(Some(BUDGET_FLOWS));
    let evictions: u64 = baseline
        .iter()
        .flatten()
        .map(|report| report.evictions)
        .sum();
    assert!(
        evictions > 0,
        "a {BUDGET_FLOWS}-flow budget must actually evict, or the test pins nothing"
    );
    assert_matches_standalone(Some(BUDGET_FLOWS), &baseline);
}

#[test]
fn budgeted_fleet_evictions_match_golden_digests() {
    let mut fleet = builder(2, Some(BUDGET_FLOWS)).build();
    let mut collect = FleetCollect::new();
    let mut stream = FleetScenario::new(TENANTS).stream(SEED);
    let summary = fleet.drive(&mut stream, &mut collect);
    assert!(summary.evictions > 0, "budgeted fleet must evict");

    let mut lines = Vec::new();
    for stats in fleet.tenant_stats() {
        let mut digest = DigestSink::new();
        for report in collect.tenant_reports(stats.tenant) {
            digest.accept(report);
        }
        lines.push(format!(
            "fleet/tenants={TENANTS}/budget={BUDGET_FLOWS}/tenant{} {:016x} packets={} bins={} evictions={}",
            stats.tenant.0,
            digest.digest(),
            stats.packets,
            stats.reports,
            stats.evictions
        ));
    }

    let mut rendered = String::from(
        "# Golden eviction digests: the budgeted fleet's per-tenant BinReport\n\
         # stream (FNV-1a) plus its packet/bin/eviction counters.\n\
         # Regenerate with scripts/regen_goldens.sh (refuses dirty trees).\n",
    );
    for line in &lines {
        writeln!(rendered, "{line}").unwrap();
    }

    if std::env::var_os("REGEN_GOLDENS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("regenerated {} ({} tenants)", GOLDEN_PATH, lines.len());
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run scripts/regen_goldens.sh");
    let golden_lines: Vec<&str> = golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "golden tenant count diverged — run scripts/regen_goldens.sh if intentional"
    );
    for (computed, pinned) in lines.iter().zip(&golden_lines) {
        assert_eq!(
            computed, pinned,
            "golden eviction digest mismatch — a refactor changed the budgeted \
             fleet's observable results; if intentional, regenerate with \
             scripts/regen_goldens.sh"
        );
    }
}

//! Streaming/batch equivalence: the same trace and seed pushed through
//! `Monitor::push` and run through the legacy `run_bin` wrapper must produce
//! bit-identical `ComparisonOutcome`s, for both flow definitions.
//!
//! This is the contract that lets the workspace keep `run_bin` /
//! `run_bin_random_sampling` as thin compatibility wrappers: the streaming
//! pipeline is not "approximately" the batch pipeline, it *is* the batch
//! pipeline, minus the redundant per-run ground-truth reclassifications.
//!
//! Since the SoA `PacketBatch` redesign the contract has a third leg:
//! `Monitor::push_batch` must produce bit-identical `BinReport`s to `push`
//! for **any** way of cutting the stream into batches (including the
//! sharded/threads configuration), because `push` *is* a one-element
//! `push_batch` and every sampler's per-packet and batch paths share state.

use flowrank_monitor::{Monitor, SamplerSpec};
use flowrank_net::{FlowDefinition, PacketBatch, Timestamp};
use flowrank_sim::engine::run_bin_random_sampling;
use flowrank_sim::split_into_bins;
use flowrank_stats::rng::derive_seeds;
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

fn trace(seed: u64) -> Vec<flowrank_net::PacketRecord> {
    let flows = SprintModel::small(180.0, 40.0).generate_flows(seed);
    synthesize_packets(&flows, &SynthesisConfig::default(), seed)
}

const BIN_SECONDS: f64 = 60.0;
const TOP_T: usize = 10;

/// Pushes the whole trace through one single-lane monitor and collects the
/// per-bin outcomes.
fn streaming_outcomes(
    packets: &[flowrank_net::PacketRecord],
    definition: FlowDefinition,
    rate: f64,
    seed: u64,
) -> Vec<flowrank_monitor::ComparisonOutcome> {
    let mut monitor = Monitor::builder()
        .flow_definition(definition)
        .sampler(SamplerSpec::Random { rate })
        .bin_length(Timestamp::from_secs_f64(BIN_SECONDS))
        .top_t(TOP_T)
        .seed(seed)
        .build();
    let mut reports = Vec::new();
    for packet in packets {
        reports.extend(monitor.push(packet));
    }
    reports.extend(monitor.finish());
    reports
        .iter()
        .map(|report| {
            assert_eq!(report.lanes.len(), 1);
            report.lanes[0].outcome
        })
        .collect()
}

#[test]
fn push_matches_run_bin_for_both_flow_definitions() {
    let packets = trace(41);
    let bins = split_into_bins(&packets, Timestamp::from_secs_f64(BIN_SECONDS));
    assert!(bins.len() >= 3, "trace must span several bins");

    for definition in [FlowDefinition::FiveTuple, FlowDefinition::PREFIX24] {
        for (rate, seed) in [(0.01, 7u64), (0.1, 8), (0.5, 9)] {
            let streamed = streaming_outcomes(&packets, definition, rate, seed);
            assert_eq!(streamed.len(), bins.len(), "one report per bin");
            for (bin_index, bin) in bins.iter().enumerate() {
                let batch = run_bin_random_sampling(bin, definition, rate, TOP_T, seed);
                assert_eq!(
                    streamed[bin_index], batch.outcome,
                    "{definition}, rate {rate}, bin {bin_index}: streaming and \
                     batch outcomes must be bit-identical"
                );
            }
        }
    }
}

#[test]
fn fanned_out_lanes_match_independent_batch_runs() {
    // The multi-run fan-out derives per-(rate, run) seeds exactly like the
    // batch experiment; every lane of every bin must coincide with the
    // corresponding run_bin call.
    let packets = trace(42);
    let bins = split_into_bins(&packets, Timestamp::from_secs_f64(BIN_SECONDS));
    let rates = [0.02, 0.2];
    let runs = 4;
    let master = 4242u64;

    let mut monitor = Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&rates)
        .runs(runs)
        .bin_length(Timestamp::from_secs_f64(BIN_SECONDS))
        .top_t(TOP_T)
        .seed(master)
        .build();
    let mut reports = Vec::new();
    for packet in &packets {
        reports.extend(monitor.push(packet));
    }
    reports.extend(monitor.finish());
    assert_eq!(reports.len(), bins.len());

    for (bin_index, report) in reports.iter().enumerate() {
        for &rate in &rates {
            let seeds = derive_seeds(master ^ rate.to_bits(), runs);
            let lanes: Vec<_> = report.lanes_at_rate(rate).collect();
            assert_eq!(lanes.len(), runs);
            for (run, lane) in lanes.iter().enumerate() {
                let batch = run_bin_random_sampling(
                    &bins[bin_index],
                    FlowDefinition::FiveTuple,
                    rate,
                    TOP_T,
                    seeds[run],
                );
                assert_eq!(lane.outcome, batch.outcome);
                assert_eq!(lane.sampled_flows, batch.sampled_flows);
                assert_eq!(lane.run, run);
            }
        }
    }
}

#[test]
fn sharded_monitor_is_bit_identical_to_single_thread() {
    // The compact-key refactor's parallel path: a monitor with worker
    // threads classifies each bin through a hash-sharded flow table and
    // scores lanes concurrently. Reports — outcomes, flow counts, lane
    // order, everything — must be bit-identical to the single-threaded
    // monitor (and therefore, via the tests above, to the legacy batch
    // path) for both flow definitions and any thread count.
    let packets = trace(44);
    let rates = [0.02, 0.2];
    for definition in [FlowDefinition::FiveTuple, FlowDefinition::PREFIX24] {
        let build = |threads: usize| {
            Monitor::builder()
                .flow_definition(definition)
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&rates)
                .runs(3)
                .bin_length(Timestamp::from_secs_f64(BIN_SECONDS))
                .top_t(TOP_T)
                .seed(4242)
                .threads(threads)
                .build()
        };
        let baseline = build(1).run_trace(&packets);
        assert!(baseline.len() >= 3, "trace must span several bins");
        for threads in [2, 4, 7] {
            let sharded = build(threads).run_trace(&packets);
            assert_eq!(
                sharded, baseline,
                "{definition}, {threads} threads: sharded reports must be \
                 bit-identical to single-threaded ones"
            );
        }
    }
}

#[test]
fn push_batch_is_bit_identical_to_push_for_any_batching() {
    // One monitor per ingestion shape, identical configuration; the trace
    // spans several bins so batch cuts land inside bins, on bin boundaries
    // and across idle gaps. Reports — outcomes, flow counts, lane order,
    // top-k entries, everything — must be bit-identical. Through
    // `push_matches_run_bin_for_both_flow_definitions` this transitively
    // pins the batch path to the legacy `run_bin` wrapper too.
    let packets = trace(45);
    let batch = PacketBatch::from_records(&packets);
    let rates = [0.02, 0.2];
    for definition in [FlowDefinition::FiveTuple, FlowDefinition::PREFIX24] {
        let build = |threads: usize| {
            Monitor::builder()
                .flow_definition(definition)
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&rates)
                .runs(3)
                .topk(flowrank_monitor::TopKSpec::SpaceSaving { capacity: 16 })
                .bin_length(Timestamp::from_secs_f64(BIN_SECONDS))
                .top_t(TOP_T)
                .seed(4646)
                .threads(threads)
                .build()
        };

        // Reference: packet-by-packet push.
        let mut pushed = build(1);
        let mut baseline = Vec::new();
        for packet in &packets {
            baseline.extend(pushed.push(packet));
        }
        baseline.extend(pushed.finish());
        assert!(baseline.len() >= 3, "trace must span several bins");

        // One batch covering the whole trace.
        let mut whole = build(1);
        let mut whole_reports = whole.push_batch(&batch);
        whole_reports.extend(whole.finish());
        assert_eq!(whole_reports, baseline, "{definition}: whole-trace batch");

        // Irregular batch cuts, including single-packet batches.
        let mut chunked = build(1);
        let mut chunked_reports = Vec::new();
        let mut start = 0usize;
        for piece in [1usize, 7, 501, 1, 4096, usize::MAX] {
            let end = packets.len().min(start.saturating_add(piece));
            chunked_reports
                .extend(chunked.push_batch(&PacketBatch::from_records(&packets[start..end])));
            start = end;
            if start == packets.len() {
                break;
            }
        }
        chunked_reports.extend(chunked.finish());
        assert_eq!(chunked_reports, baseline, "{definition}: chunked batches");

        // The sharded/threads case: whole-bin segments fan out across
        // worker threads and shards.
        for threads in [2, 4] {
            let sharded = build(threads).run_batch(&batch);
            assert_eq!(
                sharded, baseline,
                "{definition}, {threads} threads: sharded push_batch"
            );
        }
    }
}

#[test]
fn streaming_equivalence_holds_with_idle_gaps() {
    // A trace with an idle middle bin: the monitor emits the empty bin's
    // report in passing, and both paths agree on every bin.
    let mut packets = trace(43);
    let shift = Timestamp::from_secs_f64(3.0 * BIN_SECONDS);
    let shifted: Vec<_> = packets
        .iter()
        .map(|p| {
            let mut q = *p;
            q.timestamp = Timestamp::from_micros(p.timestamp.as_micros() + shift.as_micros());
            q
        })
        .collect();
    packets.extend(shifted);
    packets.sort_by_key(|p| p.timestamp);

    let bins = split_into_bins(&packets, Timestamp::from_secs_f64(BIN_SECONDS));
    let streamed = streaming_outcomes(&packets, FlowDefinition::FiveTuple, 0.1, 5);
    assert_eq!(streamed.len(), bins.len());
    for (bin_index, bin) in bins.iter().enumerate() {
        let batch = run_bin_random_sampling(bin, FlowDefinition::FiveTuple, 0.1, TOP_T, 5);
        assert_eq!(streamed[bin_index], batch.outcome, "bin {bin_index}");
    }
}

//! Drive-path conformance: the source/sink pipeline against the collect
//! path, for a sampled scenario × sampler × top-k slice of the golden
//! matrix.
//!
//! `scenario_conformance.rs` pins every cell of the full matrix through the
//! push / push_batch / sharded / legacy / whole-batch-drive legs. This suite
//! adds the leg those cells cannot cover: `Monitor::drive` over a **streamed
//! workload source** (`Workload::stream`, windowed synthesis, no
//! materialised trace) with a streaming digest sink, re-chunked down to
//! single-packet chunks — pinned bit-identical to `run_batch` on the
//! materialised trace, and the resulting reference digests pinned against
//! the very same committed golden file, so the streamed path can never
//! drift from the values every other path is held to.

use flowrank_monitor::{SamplerSpec, TopKSpec};
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_sim::{run_streamed_conformance, ConformanceConfig};
use flowrank_trace::Workload;

/// Same seeds as `scenario_conformance.rs`, so digests line up with the
/// committed golden file.
const TRACE_SEED: u64 = 0x5EED_2026;
const LANE_SEED: u64 = 0xACE5_0001;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/goldens/scenario_conformance.txt"
);

/// Looks one cell's digest up in the committed golden file.
fn golden_digest(label: &str) -> u64 {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let line = golden
        .lines()
        .find(|line| line.starts_with(label) && line[label.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("{label}: no such golden cell"));
    u64::from_str_radix(line.rsplit(' ').next().expect("digest column"), 16)
        .expect("parseable digest")
}

/// The sampled slice: the tie-heavy scenario (rank-churn), the mixed
/// composition, and a flood — across positional, RNG-heavy and
/// backend-carrying configurations.
fn slice() -> Vec<(
    Workload,
    usize,
    FlowDefinition,
    SamplerSpec,
    Option<TopKSpec>,
)> {
    vec![
        // rank-churn (catalog index 4): equal-timestamp packets exercise the
        // streamed ordering contract hardest.
        (
            Workload::rank_churn(),
            4,
            FlowDefinition::FiveTuple,
            SamplerSpec::Random { rate: 0.1 },
            Some(TopKSpec::SpaceSaving { capacity: 24 }),
        ),
        (
            Workload::rank_churn(),
            4,
            FlowDefinition::PREFIX24,
            SamplerSpec::Stratified { rate: 0.1 },
            None,
        ),
        // ddos-flood (index 2): key churn, sample-and-hold's extra RNG.
        (
            Workload::ddos_flood(),
            2,
            FlowDefinition::FiveTuple,
            SamplerSpec::Flow { rate: 0.3 },
            Some(TopKSpec::SampleAndHold {
                entry_probability: 0.05,
                capacity: 24,
            }),
        ),
        // mixed (index 5): every traffic component at once.
        (
            Workload::mixed(),
            5,
            FlowDefinition::FiveTuple,
            SamplerSpec::Smart { threshold: 25.0 },
            Some(TopKSpec::Multistage {
                stages: 2,
                counters_per_stage: 128,
                threshold: 8,
                memory_capacity: 24,
            }),
        ),
    ]
}

#[test]
fn streamed_drive_slice_matches_the_committed_goldens() {
    for (workload, catalog_index, definition, sampler, topk) in slice() {
        let label = match definition {
            FlowDefinition::FiveTuple => format!(
                "{}/5tuple/{}/{}",
                workload.name(),
                sampler.name(),
                topk.map_or("none".to_string(), |t| t.name().to_string())
            ),
            _ => format!("{}/prefix24/{}/none", workload.name(), sampler.name()),
        };
        let config = ConformanceConfig {
            flow_definition: definition,
            sampler,
            topk,
            bin_length: Timestamp::from_secs_f64(60.0),
            top_t: 10,
            seed: LANE_SEED,
            threads: 2,
        };
        let trace_seed = TRACE_SEED ^ ((catalog_index as u64) << 32);
        let digest = run_streamed_conformance(&label, &workload, trace_seed, &config);
        assert_eq!(
            digest,
            golden_digest(&label),
            "{label}: streamed reference digest diverged from the committed golden"
        );
    }
}

//! Chaos conformance: every injected fault class produces its documented
//! `DriveError`/`DriveStats` outcome, deterministically from the
//! fault-schedule seed — and no fault ever aborts the process.
//!
//! The harness is `flowrank_sim::faults`: a [`FaultySource`]/[`FaultySink`]
//! pair replaying seeded [`FaultPlan`] schedules over a real scenario
//! trace, driven through [`Monitor::try_drive`] under explicit
//! [`DrivePolicy`] choices. Fault-free transparency (try_drive ≡ drive,
//! bit for bit, against all committed goldens) is pinned separately by the
//! `run_conformance` legs in `scenario_conformance.rs`; this suite pins
//! the *faulted* behaviour.

use std::time::Duration;

use flowrank_monitor::{
    BatchSource, Chunked, Collect, DigestSink, DriveError, DrivePolicy, Monitor, SamplerSpec,
    TimestampPolicy,
};
use flowrank_net::{PacketBatch, Timestamp};
use flowrank_sim::faults::{FaultPlan, FaultySink, FaultySource, SinkFault, SourceFault};
use flowrank_trace::Workload;

/// Chunk size of every faulted drive: prime, lands inside bins and across
/// boundaries, gives the rank-churn trace a few dozen chunks to fault.
const CHUNK: usize = 463;

fn trace() -> PacketBatch {
    PacketBatch::from_records(&Workload::rank_churn().synthesize(0x000C_7A05))
}

/// Zero-backoff, zero-wait resilient policy, so retry tests spend no wall
/// clock. `stall_timeout(ZERO)` keeps the stall detector in its poll-count
/// form: these schedules inject exact idle-poll counts, and the wall-time
/// gate (on by default since the detector started measuring real time)
/// would otherwise never trip inside a fast test.
fn resilient() -> DrivePolicy {
    DrivePolicy::resilient()
        .sink_backoff(Duration::ZERO)
        .sink_backoff_cap(Duration::ZERO)
        .stall_timeout(Duration::ZERO)
        .idle_wait(Duration::ZERO)
}

fn monitor(threads: usize, policy: DrivePolicy) -> Monitor {
    Monitor::builder()
        .sampler(SamplerSpec::Random { rate: 0.1 })
        .bin_length(Timestamp::from_secs_f64(60.0))
        .top_t(10)
        .seed(0xC0F0_2026)
        .threads(threads)
        .drive_policy(policy)
        .build()
}

/// The fault-free reference digest for this suite's configuration.
fn reference_digest(threads: usize) -> u64 {
    let batch = trace();
    let mut sink = DigestSink::new();
    monitor(threads, DrivePolicy::strict()).drive(
        &mut Chunked::new(BatchSource::new(&batch), CHUNK),
        &mut sink,
    );
    sink.digest()
}

#[test]
fn skipped_malformed_records_keep_reports_bit_identical() {
    let batch = trace();
    for threads in [1, 2, 4] {
        let plan = FaultPlan::none()
            .at(1, SourceFault::MalformedRecord)
            .at(2, SourceFault::MalformedRecord)
            .at(9, SourceFault::MalformedRecord);
        let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
        let mut sink = DigestSink::new();
        let stats = monitor(threads, resilient())
            .try_drive(&mut source, &mut sink)
            .expect("resilient policy absorbs malformed records");
        assert_eq!(stats.malformed_skipped, 3);
        assert_eq!(stats.recoveries(), 3);
        assert_eq!(stats.packets, batch.len() as u64);
        // Injected faults consume no real packets, so the absorbed run is
        // bit-identical to the fault-free one.
        assert_eq!(
            sink.digest(),
            reference_digest(threads),
            "threads({threads}): skip-and-count must not perturb reports"
        );
    }
}

#[test]
fn strict_policy_aborts_on_the_first_malformed_record() {
    let batch = trace();
    let plan = FaultPlan::none().at(1, SourceFault::MalformedRecord);
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let error = monitor(1, DrivePolicy::strict())
        .try_drive(&mut source, &mut Collect::new())
        .expect_err("strict policy does not skip");
    match &error {
        DriveError::Source { error, stats } => {
            assert!(error.is_recoverable(), "the fault itself was recoverable");
            assert_eq!(stats.chunks, 1, "one clean chunk landed before the abort");
            assert_eq!(stats.malformed_skipped, 0);
        }
        other => panic!("expected DriveError::Source, got {other:?}"),
    }
}

#[test]
fn mid_stream_eof_completes_cleanly_with_fewer_packets() {
    let batch = trace();
    let plan = FaultPlan::none().at(3, SourceFault::MidStreamEof);
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let mut sink = Collect::new();
    let stats = monitor(1, resilient())
        .try_drive(&mut source, &mut sink)
        .expect("a truncated capture is a short capture, not an error");
    assert_eq!(stats.chunks, 3);
    assert_eq!(stats.packets, (3 * CHUNK) as u64);
    assert!(stats.packets < batch.len() as u64);
    assert!(source.injected().truncated);
    assert!(
        !sink.reports.is_empty(),
        "the final partial bin is still flushed"
    );
}

#[test]
fn fatal_read_failures_abort_under_any_policy() {
    let batch = trace();
    for policy in [DrivePolicy::strict(), resilient()] {
        let plan = FaultPlan::none().at(2, SourceFault::FatalRead);
        let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
        let error = monitor(1, policy)
            .try_drive(&mut source, &mut Collect::new())
            .expect_err("fatal source errors are never absorbed");
        match &error {
            DriveError::Source { error, stats } => {
                assert!(!error.is_recoverable());
                assert_eq!(stats.chunks, 2);
            }
            other => panic!("expected DriveError::Source, got {other:?}"),
        }
    }
}

#[test]
fn transient_sink_failures_are_retried_and_counted() {
    let batch = trace();
    let mut source = FaultySource::new(
        Chunked::new(BatchSource::new(&batch), CHUNK),
        FaultPlan::none(),
    );
    let mut sink = FaultySink::new(DigestSink::new())
        .fail_at(0, SinkFault::Transient { failures: 2 })
        .fail_at(2, SinkFault::Transient { failures: 1 });
    let stats = monitor(1, resilient())
        .try_drive(&mut source, &mut sink)
        .expect("three transient failures fit a 3-retry budget");
    assert_eq!(stats.sink_retries, 3);
    assert_eq!(stats.recoveries(), 3);
    assert_eq!(sink.injected_transient, 3);
    // Every report was eventually delivered, unperturbed.
    assert_eq!(stats.reports, sink.delivered());
    assert_eq!(sink.into_inner().digest(), reference_digest(1));
}

#[test]
fn exhausted_retries_surface_the_transient_failure() {
    let batch = trace();
    let mut source = FaultySource::new(
        Chunked::new(BatchSource::new(&batch), CHUNK),
        FaultPlan::none(),
    );
    let mut sink =
        FaultySink::new(Collect::new()).fail_at(0, SinkFault::Transient { failures: 10 });
    let error = monitor(1, resilient())
        .try_drive(&mut source, &mut sink)
        .expect_err("10 consecutive failures exhaust 3 retries");
    match &error {
        DriveError::Sink { error, stats } => {
            assert!(error.is_transient());
            assert_eq!(stats.sink_retries, 3, "the full retry budget was spent");
            assert_eq!(stats.reports, 0);
        }
        other => panic!("expected DriveError::Sink, got {other:?}"),
    }
}

#[test]
fn permanent_sink_failures_abort_without_retrying() {
    let batch = trace();
    let mut source = FaultySource::new(
        Chunked::new(BatchSource::new(&batch), CHUNK),
        FaultPlan::none(),
    );
    let mut sink = FaultySink::new(Collect::new()).fail_at(1, SinkFault::Permanent);
    let error = monitor(1, resilient())
        .try_drive(&mut source, &mut sink)
        .expect_err("permanent sink failures are not retried");
    match &error {
        DriveError::Sink { error, stats } => {
            assert!(!error.is_transient());
            assert_eq!(stats.sink_retries, 0);
            assert_eq!(stats.reports, 1, "the first report had been delivered");
        }
        other => panic!("expected DriveError::Sink, got {other:?}"),
    }
}

#[test]
fn stall_detector_trips_on_consecutive_idle_polls() {
    let batch = trace();
    let mut plan = FaultPlan::none();
    for call in 2..10 {
        plan = plan.at(call, SourceFault::Stall);
    }
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let error = monitor(1, resilient().stall_polls(5))
        .try_drive(&mut source, &mut Collect::new())
        .expect_err("5 consecutive idle polls trip a 5-poll threshold");
    match &error {
        DriveError::SourceStalled {
            idle_polls,
            stalled_for,
            stats,
        } => {
            assert_eq!(*idle_polls, 5);
            assert_eq!(stats.idle_polls, 5);
            assert_eq!(stats.chunks, 2);
            assert!(*stalled_for >= Duration::ZERO);
        }
        other => panic!("expected DriveError::SourceStalled, got {other:?}"),
    }
}

#[test]
fn skipped_malformed_records_reset_the_idle_streak() {
    // Regression pin: a source alternating "no data yet" with malformed
    // records is *making progress* — each skip must reset the idle streak.
    // Before the fix, only delivered chunks reset it, so this schedule
    // (never more than 2 consecutive idle polls) aborted with
    // SourceStalled under stall_polls(3).
    let batch = trace();
    let mut plan = FaultPlan::none();
    for call in 1..20 {
        plan = plan.at(
            call,
            if call % 3 == 0 {
                SourceFault::MalformedRecord
            } else {
                SourceFault::Stall
            },
        );
    }
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let mut sink = DigestSink::new();
    let stats = monitor(1, resilient().stall_polls(3).error_budget(100))
        .try_drive(&mut source, &mut sink)
        .expect("interleaved skips keep the source counted as live");
    assert!(stats.malformed_skipped > 0);
    assert!(stats.idle_polls > 0);
    assert_eq!(sink.digest(), reference_digest(1));
}

#[test]
fn poll_count_alone_does_not_trip_the_wall_clock_stall_detector() {
    // The PR 8 detector counted loop iterations, so a fast poll loop over a
    // merely quiet source aborted in microseconds. With a wall-clock
    // threshold the same burst of idle polls is absorbed: 8 consecutive
    // idle polls blow far past stall_polls(1), but nowhere near 30 s.
    let batch = trace();
    let mut plan = FaultPlan::none();
    for call in 2..10 {
        plan = plan.at(call, SourceFault::Stall);
    }
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let mut sink = DigestSink::new();
    let stats = monitor(
        1,
        resilient()
            .stall_polls(1)
            .stall_timeout(Duration::from_secs(30)),
    )
    .try_drive(&mut source, &mut sink)
    .expect("a quiet source is not a stalled source until wall time passes");
    assert_eq!(stats.idle_polls, 8);
    assert_eq!(sink.digest(), reference_digest(1));
}

#[test]
fn wall_clock_stalls_carry_how_long_the_source_was_silent() {
    let batch = trace();
    let mut plan = FaultPlan::none();
    for call in 2..200 {
        plan = plan.at(call, SourceFault::Stall);
    }
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let timeout = Duration::from_millis(20);
    let error = monitor(
        1,
        resilient()
            .stall_polls(3)
            .stall_timeout(timeout)
            .idle_wait(Duration::from_millis(1)),
    )
    .try_drive(&mut source, &mut Collect::new())
    .expect_err("200 idle polls at 1 ms each outlast a 20 ms stall timeout");
    match &error {
        DriveError::SourceStalled {
            idle_polls,
            stalled_for,
            stats,
        } => {
            assert!(*stalled_for >= timeout, "stalled_for = {stalled_for:?}");
            assert!(*idle_polls >= 3);
            assert_eq!(stats.chunks, 2);
        }
        other => panic!("expected DriveError::SourceStalled, got {other:?}"),
    }
}

#[test]
fn idle_polls_below_the_threshold_are_counted_not_fatal() {
    let batch = trace();
    let plan = FaultPlan::none()
        .at(0, SourceFault::Stall)
        .at(4, SourceFault::Stall)
        .at(5, SourceFault::Stall);
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let mut sink = DigestSink::new();
    let stats = monitor(1, resilient().stall_polls(3))
        .try_drive(&mut source, &mut sink)
        .expect("the idle streaks stay below the threshold");
    assert_eq!(stats.idle_polls, 3);
    assert_eq!(
        stats.recoveries(),
        0,
        "idle polls are accounted but are not recoveries"
    );
    assert_eq!(sink.digest(), reference_digest(1));
}

#[test]
fn slow_sinks_do_not_look_like_stalled_sources() {
    let batch = trace();
    let mut source = FaultySource::new(
        Chunked::new(BatchSource::new(&batch), CHUNK),
        FaultPlan::none(),
    );
    let mut sink = FaultySink::new(DigestSink::new()).fail_at(0, SinkFault::Slow { millis: 30 });
    let stats = monitor(1, resilient().stall_polls(1))
        .try_drive(&mut source, &mut sink)
        .expect("a slow sink must not trip the source-stall detector");
    assert_eq!(stats.idle_polls, 0);
    assert_eq!(sink.into_inner().digest(), reference_digest(1));
}

#[test]
fn the_error_budget_bounds_total_absorbed_recoveries() {
    let batch = trace();
    let mut plan = FaultPlan::none();
    // A consecutive burst, so the budget trips regardless of trace length.
    for call in 1..9 {
        plan = plan.at(call, SourceFault::MalformedRecord);
    }
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let error = monitor(1, resilient().error_budget(5))
        .try_drive(&mut source, &mut Collect::new())
        .expect_err("the 6th absorbed recovery exceeds a budget of 5");
    match &error {
        DriveError::ErrorBudgetExhausted { budget, stats } => {
            assert_eq!(*budget, 5);
            assert_eq!(stats.malformed_skipped, 6);
            assert_eq!(stats.recoveries(), 6);
            assert_eq!(stats.chunks, 1);
        }
        other => panic!("expected DriveError::ErrorBudgetExhausted, got {other:?}"),
    }
}

#[test]
fn out_of_order_timestamps_reject_or_clamp_per_policy() {
    let batch = trace();
    // Reject: the regressed chunk aborts the drive.
    let plan = FaultPlan::none().at(2, SourceFault::OutOfOrder);
    let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
    let error = monitor(1, resilient().timestamps(TimestampPolicy::Reject))
        .try_drive(&mut source, &mut Collect::new())
        .expect_err("Reject surfaces the regression");
    match &error {
        DriveError::TimestampRegression {
            prev_nanos,
            ts_nanos,
            stats,
        } => {
            assert_eq!(*ts_nanos + 1, *prev_nanos, "rewritten to newest-1 ns");
            assert_eq!(
                stats.chunks, 3,
                "the offending chunk was counted, not applied"
            );
        }
        other => panic!("expected DriveError::TimestampRegression, got {other:?}"),
    }

    // ClampAndCount: the same schedule completes, counts the clamp, and is
    // deterministic across thread counts.
    let mut digests = Vec::new();
    for threads in [1, 2, 4] {
        let plan = FaultPlan::none().at(2, SourceFault::OutOfOrder);
        let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
        let mut sink = DigestSink::new();
        let stats = monitor(
            threads,
            resilient().timestamps(TimestampPolicy::ClampAndCount),
        )
        .try_drive(&mut source, &mut sink)
        .expect("ClampAndCount absorbs the regression");
        assert_eq!(stats.clamped_timestamps, 1);
        assert_eq!(stats.recoveries(), 1);
        assert_eq!(stats.packets, batch.len() as u64);
        digests.push(sink.digest());
    }
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], digests[2]);
}

#[test]
fn worker_panics_poison_the_monitor_instead_of_the_process() {
    let batch = trace();
    for threads in [2, 4] {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.1 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .top_t(10)
            .seed(0xC0F0_2026)
            .threads(threads)
            // Force every chunk through the worker pool so the panic lands
            // on a pool thread, not the caller.
            .parallel_segment_min(1)
            .inject_lane_panic_after(CHUNK as u64)
            .build();
        let mut source = FaultySource::new(
            Chunked::new(BatchSource::new(&batch), CHUNK),
            FaultPlan::none(),
        );
        let error = monitor
            .try_drive(&mut source, &mut Collect::new())
            .expect_err("the injected lane panic must surface as an error");
        match &error {
            DriveError::WorkerPanicked { worker, .. } => {
                assert_eq!(*worker, 0, "lane 0 lives on worker 0");
            }
            other => panic!("threads({threads}): expected WorkerPanicked, got {other:?}"),
        }
        assert!(monitor.is_poisoned());
        // Poisoned-but-droppable: further fallible calls return the same
        // error instead of hanging or panicking...
        let again = monitor
            .try_drive(
                &mut FaultySource::new(
                    Chunked::new(BatchSource::new(&batch), CHUNK),
                    FaultPlan::none(),
                ),
                &mut Collect::new(),
            )
            .expect_err("a poisoned monitor stays poisoned");
        assert!(matches!(again, DriveError::WorkerPanicked { .. }));
        // ...and the drop at the end of this scope joins every pool thread
        // without a double panic (the old abort path).
        drop(monitor);
    }
}

#[test]
fn seeded_fault_schedules_are_deterministic_across_threads() {
    let batch = trace();
    let classes = [SourceFault::MalformedRecord, SourceFault::Stall];
    let mut outcomes = Vec::new();
    for threads in [1, 2, 4] {
        // Same seed every round: the schedule is a pure function of it.
        let plan = FaultPlan::seeded(0xBEEF, 16, 0.3, &classes);
        let mut source = FaultySource::new(Chunked::new(BatchSource::new(&batch), CHUNK), plan);
        let mut sink = DigestSink::new();
        let stats = monitor(threads, resilient())
            .try_drive(&mut source, &mut sink)
            .expect("the resilient policy absorbs the whole schedule");
        // The monitor's books agree with what the harness actually fired.
        let injected = source.injected();
        assert_eq!(stats.malformed_skipped, injected.malformed);
        assert_eq!(stats.idle_polls, injected.stalls);
        assert!(
            injected.malformed > 0 && injected.stalls > 0,
            "this seed fires both classes before the trace ends"
        );
        assert_eq!(stats.packets, batch.len() as u64);
        outcomes.push((stats, injected, sink.digest()));
    }
    assert_eq!(outcomes[0], outcomes[1], "threads(2) replays threads(1)");
    assert_eq!(outcomes[0], outcomes[2], "threads(4) replays threads(1)");
    assert_eq!(
        outcomes[0].2,
        reference_digest(1),
        "the absorbed schedule reproduces the fault-free reports"
    );
}

//! Pcap round-trip: export a synthetic trace as a standard capture file and
//! run the ranking pipeline on what comes back.
//!
//! Demonstrates that the monitor pipeline operates on ordinary libpcap
//! captures (the format every production tap produces), not just on in-memory
//! synthetic traces: generate → write pcap → read pcap → sample → rank.
//!
//! Run with `cargo run --release -p flowrank-examples --bin pcap_roundtrip -- [output.pcap]`.

use std::collections::HashMap;
use std::fs;

use flowrank_core::metrics::{compare_rankings, SizedFlow};
use flowrank_net::pcap::pcap_bytes_to_records;
use flowrank_net::{FiveTuple, FlowTable};
use flowrank_sampling::{sample_and_classify, RandomSampler};
use flowrank_stats::rng::{Pcg64, SeedableRng};
use flowrank_trace::export::export_flows_to_pcap;
use flowrank_trace::{SprintModel, SynthesisConfig};

fn main() {
    println!("== pcap round-trip ==\n");
    let model = SprintModel::small(60.0, 30.0);
    let flows = model.generate_flows(3);

    // Export to a pcap byte buffer (and optionally to a file given on the
    // command line, so the capture can be opened in Wireshark/tcpdump).
    let mut buffer = Vec::new();
    let written = export_flows_to_pcap(&flows, &SynthesisConfig::default(), 3, &mut buffer)
        .expect("pcap export failed");
    println!("Exported {written} packets ({} bytes of pcap).", buffer.len());
    if let Some(path) = std::env::args().nth(1) {
        fs::write(&path, &buffer).expect("failed to write capture file");
        println!("Capture written to {path}");
    }

    // Read the capture back and rebuild the flow table.
    let records = pcap_bytes_to_records(&buffer).expect("pcap parse failed");
    let mut truth: FlowTable<FiveTuple> = FlowTable::new();
    for record in &records {
        truth.observe(record);
    }
    println!(
        "Re-imported {} packets, {} flows; largest flow has {} packets.\n",
        records.len(),
        truth.flow_count(),
        truth.top_by_packets(1)[0].packets
    );

    // Sample the re-imported capture and measure the ranking error.
    let original: Vec<SizedFlow<FiveTuple>> = truth
        .iter()
        .map(|(k, s)| SizedFlow { key: *k, packets: s.packets })
        .collect();
    println!("{:>10} {:>18} {:>18}", "rate", "ranking swaps", "detection swaps");
    for &rate in &[0.01, 0.1, 0.5] {
        let mut sampler = RandomSampler::new(rate);
        let mut rng = Pcg64::seed_from_u64(17);
        let sampled: FlowTable<FiveTuple> = sample_and_classify(&records, &mut sampler, &mut rng);
        let sampled_sizes: HashMap<FiveTuple, u64> =
            sampled.iter().map(|(k, s)| (*k, s.packets)).collect();
        let outcome = compare_rankings(&original, &sampled_sizes, 10);
        println!(
            "{:>9.0}% {:>18} {:>18}",
            rate * 100.0,
            outcome.ranking_swaps,
            outcome.detection_swaps
        );
    }
}

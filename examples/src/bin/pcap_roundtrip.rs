//! Pcap round-trip: export a synthetic trace as a standard capture file and
//! stream what comes back through the push-based monitor.
//!
//! Demonstrates that the monitor pipeline operates on ordinary libpcap
//! captures (the format every production tap produces), not just on in-memory
//! synthetic traces: generate → write pcap → read pcap → `monitor.push` each
//! record → ranked bin reports, with three sampling rates riding on one
//! shared ground-truth classification.
//!
//! Run with `cargo run --release -p flowrank-examples --bin pcap_roundtrip -- [output.pcap]`.

use std::fs;

use flowrank_monitor::{Monitor, SamplerSpec};
use flowrank_net::pcap::pcap_bytes_to_records;
use flowrank_net::{FiveTuple, FlowDefinition, FlowTable, Timestamp};
use flowrank_trace::export::export_flows_to_pcap;
use flowrank_trace::{SprintModel, SynthesisConfig};

fn main() {
    println!("== pcap round-trip ==\n");
    let model = SprintModel::small(60.0, 30.0);
    let flows = model.generate_flows(3);

    // Export to a pcap byte buffer (and optionally to a file given on the
    // command line, so the capture can be opened in Wireshark/tcpdump).
    let mut buffer = Vec::new();
    let written = export_flows_to_pcap(&flows, &SynthesisConfig::default(), 3, &mut buffer)
        .expect("pcap export failed");
    println!(
        "Exported {written} packets ({} bytes of pcap).",
        buffer.len()
    );
    if let Some(path) = std::env::args().nth(1) {
        fs::write(&path, &buffer).expect("failed to write capture file");
        println!("Capture written to {path}");
    }

    // Read the capture back and sanity-check the flow structure.
    let records = pcap_bytes_to_records(&buffer).expect("pcap parse failed");
    let mut truth: FlowTable<FiveTuple> = FlowTable::new();
    for record in &records {
        truth.observe(record);
    }
    println!(
        "Re-imported {} packets, {} flows; largest flow has {} packets.\n",
        records.len(),
        truth.flow_count(),
        truth.top_by_packets(1)[0].packets
    );

    // Stream the re-imported capture through the monitor, one push per
    // record, exactly as a live tap would drive it.
    let rates = [0.01, 0.1, 0.5];
    let mut monitor = Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&rates)
        .runs(1)
        .bin_length(Timestamp::ZERO)
        .top_t(10)
        .seed(17)
        .build();
    let mut reports = Vec::new();
    for record in &records {
        reports.extend(monitor.push(record));
    }
    reports.extend(monitor.finish());

    println!(
        "{:>10} {:>18} {:>18}",
        "rate", "ranking swaps", "detection swaps"
    );
    for report in &reports {
        for lane in &report.lanes {
            println!(
                "{:>9.0}% {:>18} {:>18}",
                lane.rate * 100.0,
                lane.outcome.ranking_swaps,
                lane.outcome.detection_swaps
            );
        }
    }
}

//! Pcap round-trip: export a synthetic trace as a standard capture file and
//! stream what comes back through the monitor's source/sink pipeline.
//!
//! Demonstrates that the monitor pipeline operates on ordinary libpcap
//! captures (the format every production tap produces), not just on
//! in-memory synthetic traces: generate → write pcap → open the capture as
//! a [`PcapBytesSource`] (incremental zero-copy decode, bounded chunks) →
//! `monitor.drive` into a collecting sink → ranked bin reports, with three
//! sampling rates riding on one shared ground-truth classification and peak
//! memory bounded by one chunk of packets.
//!
//! Run with `cargo run --release -p flowrank-examples --bin pcap_roundtrip -- [output.pcap]`.

use std::fs;

use flowrank_monitor::{Collect, Monitor, PcapBytesSource, SamplerSpec};
use flowrank_net::pcap::pcap_bytes_to_records;
use flowrank_net::{FiveTuple, FlowDefinition, FlowTable, Timestamp};
use flowrank_trace::export::export_flows_to_pcap;
use flowrank_trace::{SprintModel, SynthesisConfig};

fn main() {
    println!("== pcap round-trip ==\n");
    let model = SprintModel::small(60.0, 30.0);
    let flows = model.generate_flows(3);

    // Export to a pcap byte buffer (and optionally to a file given on the
    // command line, so the capture can be opened in Wireshark/tcpdump).
    let mut buffer = Vec::new();
    let written = export_flows_to_pcap(&flows, &SynthesisConfig::default(), 3, &mut buffer)
        .expect("pcap export failed");
    println!(
        "Exported {written} packets ({} bytes of pcap).",
        buffer.len()
    );
    if let Some(path) = std::env::args().nth(1) {
        fs::write(&path, &buffer).expect("failed to write capture file");
        println!("Capture written to {path}");
    }

    // Read the capture back and sanity-check the flow structure.
    let records = pcap_bytes_to_records(&buffer).expect("pcap parse failed");
    let mut truth: FlowTable<FiveTuple> = FlowTable::new();
    for record in &records {
        truth.observe(record);
    }
    println!(
        "Re-imported {} packets, {} flows; largest flow has {} packets.\n",
        records.len(),
        truth.flow_count(),
        truth.top_by_packets(1)[0].packets
    );

    // Drive the capture bytes straight through the monitor: the source
    // decodes 1024 packets at a time with the zero-copy batch decoder, so
    // an arbitrarily large capture never materialises as records.
    let rates = [0.01, 0.1, 0.5];
    let mut monitor = Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&rates)
        .runs(1)
        .bin_length(Timestamp::ZERO)
        .top_t(10)
        .seed(17)
        .build();
    let mut source = PcapBytesSource::new(&buffer)
        .expect("pcap header invalid")
        .with_chunk_packets(1024);
    let mut sink = Collect::new();
    let summary = monitor.drive(&mut source, &mut sink);
    assert!(source.error().is_none(), "capture decoded cleanly");
    let reports = sink.reports;
    println!(
        "Drove {} packets in {} chunks -> {} bin report(s).\n",
        summary.packets, summary.chunks, summary.reports
    );

    println!(
        "{:>10} {:>18} {:>18}",
        "rate", "ranking swaps", "detection swaps"
    );
    for report in &reports {
        for lane in &report.lanes {
            println!(
                "{:>9.0}% {:>18} {:>18}",
                lane.rate * 100.0,
                lane.outcome.ranking_swaps,
                lane.outcome.detection_swaps
            );
        }
    }
}

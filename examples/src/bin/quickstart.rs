//! Quickstart: the paper's question in under a hundred lines.
//!
//! Two things happen here:
//!
//! 1. **The analytical models** — the probability of misranking two flows
//!    under packet sampling, the sampling rate that keeps it below 0.1%, and
//!    the paper's ranking/detection metrics for the Sprint backbone scenario.
//! 2. **The streaming monitor** — the workspace's front door for actual
//!    packet streams. A [`flowrank_monitor::Monitor`] is configured once
//!    through its fluent builder (flow definition, a runtime-selected
//!    sampler, bin length, top-t, seed, and a fan-out of independent runs
//!    per sampling rate), then driven with `monitor.push(&packet)` per
//!    packet; it classifies ground truth once per bin, samples every lane,
//!    and emits a `BinReport` whenever a bin closes:
//!
//!    ```no_run
//!    use flowrank_monitor::{Monitor, SamplerSpec};
//!    use flowrank_net::{FlowDefinition, Timestamp};
//!
//!    let mut monitor = Monitor::builder()
//!        .flow_definition(FlowDefinition::FiveTuple)
//!        .sampler(SamplerSpec::Random { rate: 0.01 })
//!        .rates(&[0.001, 0.01, 0.1, 0.5])
//!        .runs(30)
//!        .bin_length(Timestamp::from_secs_f64(60.0))
//!        .top_t(10)
//!        .seed(2026)
//!        .build();
//!    ```
//!
//! Run with `cargo run --release -p flowrank-examples --bin quickstart`.

use flowrank_core::{
    misranking_probability_exact, misranking_probability_gaussian, optimal_sampling_rate,
    FlowSizeModel, PairwiseModel, Scenario,
};
use flowrank_monitor::{Monitor, RateCurve, SamplerSpec};
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_trace::{SprintModel, SynthesisConfig, SynthesisStream};

fn main() {
    println!("== flowrank quickstart ==\n");

    // 1. Two flows of 500 and 600 packets, sampled at 1%.
    let (s1, s2) = (500u64, 600u64);
    let p = 0.01;
    let exact = misranking_probability_exact(s1, s2, p);
    let gauss = misranking_probability_gaussian(s1 as f64, s2 as f64, p);
    println!(
        "Two flows of {s1} and {s2} packets, sampled at {:.0}%:",
        p * 100.0
    );
    println!("  probability their order is swapped (exact, Eq. 1):    {exact:.4}");
    println!("  probability their order is swapped (Gaussian, Eq. 2): {gauss:.4}\n");

    // 2. What sampling rate keeps the misranking probability below 0.1%?
    let target = 1e-3;
    let rate = optimal_sampling_rate(s1, s2, target, PairwiseModel::Gaussian, 1e-4);
    println!(
        "Sampling rate needed to misrank them less than once in 1000 trials: {:.1}%\n",
        rate * 100.0
    );

    // 3. The full ranking problem on the Sprint backbone scenario.
    let scenario = Scenario::sprint_five_tuple(1.5);
    println!(
        "Scenario: {} ({})",
        scenario.label,
        scenario.flow_sizes.describe()
    );
    println!(
        "{:>10} {:>22} {:>22}",
        "rate", "ranking metric", "detection metric"
    );
    for &p in &[0.001, 0.01, 0.1, 0.5] {
        let ranking = scenario.ranking_model(10).mean_swapped_pairs(p);
        let detection = scenario.detection_model(10).mean_swapped_pairs(p);
        println!("{:>9.1}% {:>22.3} {:>22.3}", p * 100.0, ranking, detection);
    }
    println!("\n(The ranking is acceptable when the metric is below 1.)");

    // 4. The same question, empirically, through the streaming pipeline:
    //    the synthetic Sprint-like minute is synthesised window by window
    //    (never materialised as a whole trace), `Monitor::drive` samples it
    //    at every rate simultaneously over one shared ground-truth
    //    classification, and the accuracy-vs-rate curve accumulates online
    //    in the sink — the same shape scales to arbitrarily long traces.
    let flows = SprintModel::small(60.0, 60.0).generate_flows(1);
    let rates = [0.001, 0.01, 0.1, 0.5];
    let mut monitor = Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&rates)
        .runs(10)
        .bin_length(Timestamp::from_secs_f64(60.0))
        .top_t(10)
        .seed(2026)
        .build();
    let mut source = SynthesisStream::new(&flows, &SynthesisConfig::default(), 1);
    let mut curve = RateCurve::new();
    let summary = monitor.drive(&mut source, &mut curve);
    println!(
        "\nStreaming pipeline on a synthetic minute ({} packets, {} bins, {} lanes):",
        summary.packets,
        summary.reports,
        monitor.lane_count(),
    );
    println!("{:>10} {:>26}", "rate", "mean swapped pairs");
    for point in curve.points() {
        println!("{:>9.1}% {:>26.2}", point.rate * 100.0, point.ranking_mean);
    }

    let required_ranking = scenario.ranking_model(10).required_sampling_rate(1.0, 1e-3);
    let required_detection = scenario
        .detection_model(10)
        .required_sampling_rate(1.0, 1e-3);
    println!(
        "\nHeadline: ranking the top 10 flows needs a sampling rate of about {:.0}%,",
        required_ranking * 100.0
    );
    println!(
        "but merely *detecting* them (order ignored) only needs about {:.0}%.",
        required_detection * 100.0
    );
}

//! Quickstart: the paper's question in fifty lines.
//!
//! Computes (1) the probability of misranking two flows under packet
//! sampling, (2) the sampling rate needed to keep that probability below
//! 0.1%, and (3) the paper's ranking/detection metrics for the Sprint
//! backbone scenario — then prints the headline conclusion.
//!
//! Run with `cargo run --release -p flowrank-examples --bin quickstart`.

use flowrank_core::{
    misranking_probability_exact, misranking_probability_gaussian, optimal_sampling_rate,
    FlowSizeModel, PairwiseModel, Scenario,
};

fn main() {
    println!("== flowrank quickstart ==\n");

    // 1. Two flows of 500 and 600 packets, sampled at 1%.
    let (s1, s2) = (500u64, 600u64);
    let p = 0.01;
    let exact = misranking_probability_exact(s1, s2, p);
    let gauss = misranking_probability_gaussian(s1 as f64, s2 as f64, p);
    println!("Two flows of {s1} and {s2} packets, sampled at {:.0}%:", p * 100.0);
    println!("  probability their order is swapped (exact, Eq. 1):    {exact:.4}");
    println!("  probability their order is swapped (Gaussian, Eq. 2): {gauss:.4}\n");

    // 2. What sampling rate keeps the misranking probability below 0.1%?
    let target = 1e-3;
    let rate = optimal_sampling_rate(s1, s2, target, PairwiseModel::Gaussian, 1e-4);
    println!(
        "Sampling rate needed to misrank them less than once in 1000 trials: {:.1}%\n",
        rate * 100.0
    );

    // 3. The full ranking problem on the Sprint backbone scenario.
    let scenario = Scenario::sprint_five_tuple(1.5);
    println!("Scenario: {} ({})", scenario.label, scenario.flow_sizes.describe());
    println!("{:>10} {:>22} {:>22}", "rate", "ranking metric", "detection metric");
    for &p in &[0.001, 0.01, 0.1, 0.5] {
        let ranking = scenario.ranking_model(10).mean_swapped_pairs(p);
        let detection = scenario.detection_model(10).mean_swapped_pairs(p);
        println!("{:>9.1}% {:>22.3} {:>22.3}", p * 100.0, ranking, detection);
    }
    println!("\n(The ranking is acceptable when the metric is below 1.)");

    let required_ranking = scenario.ranking_model(10).required_sampling_rate(1.0, 1e-3);
    let required_detection = scenario.detection_model(10).required_sampling_rate(1.0, 1e-3);
    println!(
        "\nHeadline: ranking the top 10 flows needs a sampling rate of about {:.0}%,",
        required_ranking * 100.0
    );
    println!(
        "but merely *detecting* them (order ignored) only needs about {:.0}%.",
        required_detection * 100.0
    );
}

//! SLO tracking through a flash crowd: an AIMD rate controller holding a
//! ranking-accuracy target while the traffic underneath it triples.
//!
//! The paper's optimal-rate model answers "what rate do I need for this
//! accuracy?" offline. This example closes the loop online: a monitor
//! carries one controlled lane whose rate the `aimd-slo` controller retunes
//! at every bin close — additive increase while the observed swapped-pair
//! fraction violates the SLO, gentle multiplicative decrease once it is
//! comfortably met. A flash crowd erupts mid-trace; watch the applied rate
//! climb through the spike and relax after it passes, while the
//! `model-driven` controller (the paper's model inverted on the observed
//! top-t sizes) is shown beside it as the reference.
//!
//! Run with `cargo run --release -p flowrank-examples --bin slo_tracking`.

use flowrank_monitor::{Collect, ControllerSpec, Monitor, SamplerSpec};
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_trace::Workload;

/// A 15-minute trace: steady base load, a two-minute flash crowd from
/// minute 4 that roughly triples the arrival rate onto three hot prefixes.
fn flash_crowd() -> Workload {
    Workload::FlashCrowd {
        base_rate: 3.0,
        spike_rate: 30.0,
        spike_start: 240.0,
        spike_secs: 120.0,
        hot_prefixes: 3,
        duration_secs: 900.0,
    }
}

/// Drives one controller over the flash crowd and returns the per-bin
/// (applied rate, swapped fraction) trail of its controlled lane.
fn drive(controller: ControllerSpec) -> Vec<(u64, f64, f64, f64)> {
    let mut monitor: Monitor = Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.1 })
        // No static grid: the monitor carries exactly one lane — the
        // controlled one.
        .rates(&[])
        .controller(controller)
        .bin_length(Timestamp::from_secs_f64(60.0))
        .top_t(8)
        .seed(0xACE5_0001)
        .build();
    let mut sink = Collect::new();
    monitor.drive(&mut flash_crowd().stream(0x5EED_2026), &mut sink);
    sink.reports
        .iter()
        .map(|report| {
            let trail = report.controller.as_ref().expect("controlled lane trail");
            (
                report.bin_index,
                trail.applied_rate,
                trail.decided_rate,
                trail.swapped_fraction,
            )
        })
        .collect()
}

fn main() {
    println!("== SLO tracking: aimd-slo through a flash crowd ==\n");

    // The SLO: at most 2% of ranking pairs swapped in any bin. Increase
    // while violated, decay once the error drops under half the target.
    let slo = ControllerSpec::AimdSlo {
        target_fraction: 0.02,
        hysteresis: 0.5,
        increase: 0.1,
        decrease: 0.9,
        min_rate: 0.001,
        max_rate: 1.0,
        initial_rate: 0.02,
    };
    let aimd = drive(slo);
    let model = drive(ControllerSpec::model_driven());

    println!("SLO: swapped-pair fraction <= 2.0% per bin (flash crowd: bins 4-5)\n");
    println!(
        "{:>3}  {:>12} {:>10} {:>9}   {:>12} {:>9}",
        "bin", "aimd applied", "aimd next", "swapped", "model applied", "swapped"
    );
    for ((bin, applied, decided, swapped), (_, m_applied, _, m_swapped)) in aimd.iter().zip(&model)
    {
        let badge = if *swapped > 0.02 {
            " <- SLO violated"
        } else {
            ""
        };
        println!(
            "{bin:>3}  {applied:>12.4} {decided:>10.4} {:>8.2}%   {m_applied:>13.4} {:>8.2}%{badge}",
            swapped * 100.0,
            m_swapped * 100.0,
        );
    }

    // Skip the 3-bin warm-up and the final flush (a partial bin whose few
    // packets make the swapped fraction meaningless).
    let steady = &aimd[3..aimd.len().saturating_sub(1)];
    let worst = steady
        .iter()
        .map(|(_, _, _, swapped)| *swapped)
        .fold(0.0f64, f64::max);
    let mean_rate = steady
        .iter()
        .map(|(_, applied, _, _)| *applied)
        .sum::<f64>()
        / steady.len() as f64;
    println!(
        "\nSteady state (warm-up and final partial bin excluded): worst bin swapped \
         {:.2}% of pairs at a mean\napplied rate of {:.0}% — the AIMD loop rides the \
         SLO boundary through the spike, while model-driven\npays the full \
         model-optimal rate (~99%) for near-zero error.",
        worst * 100.0,
        mean_rate * 100.0
    );
}

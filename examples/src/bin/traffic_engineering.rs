//! Traffic-engineering scenario: which sampling rate can my NetFlow monitor
//! use and still find the heavy hitters?
//!
//! This is the first motivating application in the paper's introduction:
//! traffic engineering needs the largest flows (to reroute or rate-limit
//! them). The example builds a Sprint-like synthetic backbone trace, runs
//! the trace-driven sampling simulation at router-practical rates, and
//! compares the empirical ranking/detection errors with the analytical model
//! prediction for the same parameters.
//!
//! Run with `cargo run --release -p flowrank-examples --bin traffic_engineering`.

use flowrank_core::Scenario;
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_sim::report::result_summary_table;
use flowrank_sim::{ExperimentConfig, SamplerSpec, TraceExperiment};
use flowrank_trace::{summary::summarize, synthesize_packets, SprintModel, SynthesisConfig};

fn main() {
    println!("== traffic engineering: finding heavy hitters under sampling ==\n");

    // A scaled-down Sprint-like trace (5 minutes, ~50 flows/s) so the example
    // runs in seconds; the per-flow statistics match the published ones.
    let model = SprintModel::small(300.0, 50.0);
    let flows = model.generate_flows(2026);
    let stats = summarize(&flows).expect("non-empty trace");
    println!(
        "Synthetic backbone trace: {} flows, {} packets, mean flow size {:.1} packets,",
        stats.flow_count, stats.total_packets, stats.mean_packets
    );
    println!(
        "top 1% of flows carry {:.0}% of the packets (heavy tail).\n",
        stats.top_1pct_packet_share * 100.0
    );

    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 99);

    // The experiment fans a runtime-selected sampler template out across the
    // rate grid; every bin is classified once and shared by all 60 lanes.
    let config = ExperimentConfig {
        flow_definition: FlowDefinition::FiveTuple,
        sampler: SamplerSpec::Random { rate: 0.01 },
        sampling_rates: vec![0.001, 0.01, 0.1, 0.5],
        bin_length: Timestamp::from_secs_f64(300.0),
        top_t: 10,
        runs: 15,
        seed: 4,
        threads: 0,
    };
    let result = TraceExperiment::new(&packets, config).run();
    println!("Trace-driven simulation (top 10 flows, 5-minute bin, 15 runs):");
    println!("{}", result_summary_table(&result));

    // Model prediction for the same population size.
    let scenario = Scenario::sprint_five_tuple(1.5).with_flow_count(stats.flow_count as u64);
    println!(
        "Analytical model prediction for N = {} flows:",
        stats.flow_count
    );
    println!(
        "{:>10} {:>22} {:>22}",
        "rate", "ranking metric", "detection metric"
    );
    for &p in &[0.001, 0.01, 0.1, 0.5] {
        println!(
            "{:>9.1}% {:>22.3} {:>22.3}",
            p * 100.0,
            scenario.ranking_model(10).mean_swapped_pairs(p),
            scenario.detection_model(10).mean_swapped_pairs(p)
        );
    }

    println!(
        "\nOperator guidance: with the 0.1%–1% rates router vendors recommend, the\n\
         top-10 ranking is unreliable on a link of this size; plan for ≥10% sampling\n\
         if the relative order matters, or accept detection-only reporting."
    );
}

//! Usage-based pricing scenario: estimating customer volumes from sampled
//! traffic, with and without TCP sequence-number refinement.
//!
//! The paper's third motivating application is usage-based pricing: ranking
//! customers by the traffic they send. This example compares three size
//! estimators on a sampled trace — raw sampled counts, `count/p` scaling and
//! the TCP sequence-number span estimator the paper proposes as future work —
//! and shows how each affects the billing ranking of the top customers.
//!
//! The sampled table is built with `sample_and_classify`, the same
//! single-pass stage the streaming monitor's lanes use (no intermediate
//! packet copies): estimators need the per-flow [`flowrank_net::FlowStats`],
//! which the full flow table retains.
//!
//! Run with `cargo run --release -p flowrank-examples --bin usage_pricing`.

use flowrank_net::{FiveTuple, FlowTable};
use flowrank_sampling::inversion::estimate_flow_size;
use flowrank_sampling::seqno::SeqnoSizeEstimator;
use flowrank_sampling::{sample_and_classify, RandomSampler};
use flowrank_stats::rank::{kendall_tau, ranks};
use flowrank_stats::rng::{Pcg64, SeedableRng};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

fn main() {
    println!("== usage-based pricing: estimating per-customer volume from samples ==\n");

    let model = SprintModel::small(180.0, 40.0);
    let flows = model.generate_flows(55);
    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 56);

    // Ground truth per 5-tuple "customer".
    let mut truth: FlowTable<FiveTuple> = FlowTable::new();
    for p in &packets {
        truth.observe(p);
    }

    let rate = 0.02; // 2% sampling — generous by router standards.
    let mut sampler = RandomSampler::new(rate);
    let mut rng = Pcg64::seed_from_u64(1);
    let sampled: FlowTable<FiveTuple> = sample_and_classify(&packets, &mut sampler, &mut rng);
    println!(
        "{} customers before sampling, {} still visible after {:.0}% sampling.\n",
        truth.flow_count(),
        sampled.flow_count(),
        rate * 100.0
    );

    // Evaluate the three estimators on the true top 20 customers.
    let estimator = SeqnoSizeEstimator::new(rate, 500.0);
    let top_customers = truth.top_by_packets(20);
    let mut true_sizes = Vec::new();
    let mut scaled_estimates = Vec::new();
    let mut seqno_estimates = Vec::new();
    println!(
        "{:>22} {:>12} {:>14} {:>14}",
        "customer", "true pkts", "count/p est.", "seq-span est."
    );
    for flow in &top_customers {
        let sampled_stats = sampled.get(&flow.key);
        let sampled_packets = sampled_stats.map_or(0, |s| s.packets);
        let scaled = estimate_flow_size(sampled_packets, rate);
        let seqno = sampled_stats
            .map(|s| estimator.estimate(s).packets)
            .unwrap_or(0.0);
        println!(
            "{:>22} {:>12} {:>14.0} {:>14.0}",
            format!("{}:{}", flow.key.dst_ip, flow.key.dst_port),
            flow.packets,
            scaled,
            seqno
        );
        true_sizes.push(flow.packets as f64);
        scaled_estimates.push(scaled);
        seqno_estimates.push(seqno);
    }

    let tau_scaled = kendall_tau(&true_sizes, &scaled_estimates).unwrap_or(0.0);
    let tau_seqno = kendall_tau(&true_sizes, &seqno_estimates).unwrap_or(0.0);
    println!(
        "\nBilling-rank agreement with the truth (Kendall tau over the top 20):\n\
         \tcount/p scaling:        {tau_scaled:.3}\n\
         \tTCP sequence-number:    {tau_seqno:.3}"
    );
    let mean_abs = |estimates: &[f64]| -> f64 {
        estimates
            .iter()
            .zip(&true_sizes)
            .map(|(e, t)| (e - t).abs() / t)
            .sum::<f64>()
            / estimates.len() as f64
    };
    println!(
        "Mean relative size error: count/p {:.1}%, seq-span {:.1}%",
        mean_abs(&scaled_estimates) * 100.0,
        mean_abs(&seqno_estimates) * 100.0
    );
    // The ranks helper is also handy for inspecting individual positions.
    let _ = ranks(&true_sizes);
    println!(
        "\nThe sequence-number estimator sharply reduces the per-customer size error\n\
         for TCP traffic, at the price of generality (it cannot be applied to prefix\n\
         aggregates or non-TCP flows), exactly the trade-off the paper describes."
    );
}

//! Anomaly-detection scenario: does /24 aggregation help a sampled monitor
//! spot a volume anomaly?
//!
//! The paper's second motivating application is the detection of traffic
//! anomalies. This example injects a high-volume "anomalous" destination
//! prefix (e.g. a flash crowd or DDoS victim) into a Sprint-like trace and
//! asks, for both flow definitions, at which sampling rates the monitor still
//! places the anomaly in its reported top flows.
//!
//! The whole sweep — 3 rates × 20 independent runs, for each flow
//! definition — is one streaming `Monitor` per definition: every packet is
//! pushed once, the ground truth is classified once, and all 60 sampling
//! lanes ride on it. A lane "detects" the anomaly when its bin closes with
//! zero detection swaps, i.e. no flow outside the true top-10 out-sampled a
//! top-10 flow.
//!
//! Run with `cargo run --release -p flowrank-examples --bin anomaly_detection`.

use std::net::Ipv4Addr;

use flowrank_monitor::{Monitor, SamplerSpec};
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_trace::flow_record::{synthetic_key, FlowRecord};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

fn main() {
    println!("== anomaly detection: a hot /24 prefix under packet sampling ==\n");

    // Background traffic.
    let model = SprintModel::small(120.0, 60.0);
    let mut flows = model.generate_flows(7);

    // The anomaly: 40 medium flows towards one /24 prefix, together far larger
    // than any single background flow.
    let victim = Ipv4Addr::new(203, 0, 113, 0);
    for i in 0..40u64 {
        let dst = Ipv4Addr::new(203, 0, 113, (i % 200 + 1) as u8);
        let key = synthetic_key(1_000_000 + i, dst, 80);
        flows.push(FlowRecord::new(key, 400, 400 * 500, 10.0 + i as f64, 60.0));
    }
    println!(
        "Injected anomaly: 40 flows x 400 packets towards {victim}/24 on top of {} background flows.\n",
        flows.len() - 40
    );

    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 13);
    let rates = [0.001, 0.01, 0.1];
    let runs = 20;

    for definition in [FlowDefinition::FiveTuple, FlowDefinition::PREFIX24] {
        println!("Flow definition: {definition}");
        let mut monitor = Monitor::builder()
            .flow_definition(definition)
            .sampler(SamplerSpec::Random { rate: 0.01 })
            .rates(&rates)
            .runs(runs)
            // One unbounded bin: the whole trace is the measurement period.
            .bin_length(Timestamp::ZERO)
            .top_t(10)
            .seed(99)
            .build();
        // Drive the trace through the source/sink pipeline (chunked record
        // conversion, collected reports) — identical to run_trace, but the
        // same call shape scales to sources that never materialise.
        let mut sink = flowrank_monitor::Collect::new();
        monitor.drive(
            &mut flowrank_monitor::RecordSource::new(&packets),
            &mut sink,
        );
        let report = &sink.reports[0];
        for &rate in &rates {
            let successes = report
                .lanes_at_rate(rate)
                .filter(|lane| lane.outcome.detection_swaps == 0)
                .count();
            println!(
                "  sampling {:>5.1}%: top-10 set held in {successes}/{runs} runs \
                 (mean missed top flows {:.1})",
                rate * 100.0,
                report
                    .lanes_at_rate(rate)
                    .map(|l| l.outcome.missed_top_flows as f64)
                    .sum::<f64>()
                    / runs as f64,
            );
        }
        println!();
    }
    println!(
        "As in the paper (Sec. 6.4), the coarser /24 definition makes the individual\n\
         flows larger but does not dramatically reduce the sampling rate needed —\n\
         the competing prefixes grow too."
    );
}

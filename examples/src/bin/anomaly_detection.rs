//! Anomaly-detection scenario: does /24 aggregation help a sampled monitor
//! spot a volume anomaly?
//!
//! The paper's second motivating application is the detection of traffic
//! anomalies. This example injects a high-volume "anomalous" destination
//! prefix (e.g. a flash crowd or DDoS victim) into a Sprint-like trace and
//! asks, for both flow definitions, at which sampling rates the monitor still
//! places the anomaly in its reported top flows.
//!
//! Run with `cargo run --release -p flowrank-examples --bin anomaly_detection`.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use flowrank_core::metrics::{top_set_matches, SizedFlow};
use flowrank_net::{AnyFlowKey, FlowDefinition, FlowTable};
use flowrank_sampling::{sample_and_classify, RandomSampler};
use flowrank_trace::flow_record::{synthetic_key, FlowRecord};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};
use flowrank_stats::rng::{Pcg64, SeedableRng};

fn main() {
    println!("== anomaly detection: a hot /24 prefix under packet sampling ==\n");

    // Background traffic.
    let model = SprintModel::small(120.0, 60.0);
    let mut flows = model.generate_flows(7);

    // The anomaly: 40 medium flows towards one /24 prefix, together far larger
    // than any single background flow.
    let victim = Ipv4Addr::new(203, 0, 113, 0);
    for i in 0..40u64 {
        let dst = Ipv4Addr::new(203, 0, 113, (i % 200 + 1) as u8);
        let key = synthetic_key(1_000_000 + i, dst, 80);
        flows.push(FlowRecord::new(key, 400, 400 * 500, 10.0 + i as f64, 60.0));
    }
    println!(
        "Injected anomaly: 40 flows x 400 packets towards {victim}/24 on top of {} background flows.\n",
        flows.len() - 40
    );

    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 13);

    for definition in [FlowDefinition::FiveTuple, FlowDefinition::PREFIX24] {
        println!("Flow definition: {definition}");
        // Ground truth.
        let mut truth: FlowTable<AnyFlowKey> = FlowTable::new();
        for p in &packets {
            truth.observe_keyed(definition.key_of(p), p);
        }
        let original: Vec<SizedFlow<AnyFlowKey>> = truth
            .iter()
            .map(|(k, s)| SizedFlow { key: *k, packets: s.packets })
            .collect();

        for &rate in &[0.001, 0.01, 0.1] {
            // Fraction of 20 independent sampling runs in which the sampled
            // top-10 set equals the true top-10 set.
            let mut successes = 0;
            let runs = 20;
            for seed in 0..runs {
                let mut sampler = RandomSampler::new(rate);
                let mut rng = Pcg64::seed_from_u64(seed);
                let sampled: FlowTable<AnyFlowKey> = {
                    let mut table = FlowTable::new();
                    for p in &packets {
                        if flowrank_sampling::PacketSampler::keep(&mut sampler, p, &mut rng) {
                            table.observe_keyed(definition.key_of(p), p);
                        }
                    }
                    table
                };
                let sampled_sizes: HashMap<AnyFlowKey, u64> =
                    sampled.iter().map(|(k, s)| (*k, s.packets)).collect();
                if top_set_matches(&original, &sampled_sizes, 10) {
                    successes += 1;
                }
            }
            println!(
                "  sampling {:>5.1}%: true top-10 set recovered in {successes}/{runs} runs",
                rate * 100.0
            );
        }
        println!();
    }
    // Silence an unused-import warning path when the generic helper is not
    // monomorphised above.
    let _ = sample_and_classify::<AnyFlowKey, RandomSampler>;
    println!(
        "As in the paper (Sec. 6.4), the coarser /24 definition makes the individual\n\
         flows larger but does not dramatically reduce the sampling rate needed —\n\
         the competing prefixes grow too."
    );
}

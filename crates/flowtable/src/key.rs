//! Compact key encodings.
//!
//! A [`CompactKey`] is a flow identity that packs losslessly into a single
//! machine integer. [`crate::FlowMap`] stores and compares only the packed
//! form, so equality is one integer compare and hashing is a couple of
//! multiplies — the structural `Hash`/`Eq` of the original struct never runs
//! on the hot path. `unpack` restores the original key on iteration, which
//! keeps the packed representation an internal detail of the table.

use crate::hash::{fx_fold, fx_mix64};

/// A packed key representation: a plain unsigned integer that can mix
/// itself into a 64-bit hash. (`Send + Sync` is part of the contract —
/// packed keys are plain data, and the sharded tables move them across
/// worker threads.)
pub trait PackedKey: Copy + Eq + Ord + std::fmt::Debug + Send + Sync {
    /// Mixes the packed value into a full-avalanche 64-bit hash.
    fn mix(self) -> u64;
}

impl PackedKey for u32 {
    #[inline]
    fn mix(self) -> u64 {
        fx_mix64(fx_fold(0, u64::from(self)))
    }
}

impl PackedKey for u64 {
    #[inline]
    fn mix(self) -> u64 {
        fx_mix64(fx_fold(0, self))
    }
}

impl PackedKey for u128 {
    #[inline]
    fn mix(self) -> u64 {
        fx_mix64(fx_fold(fx_fold(0, (self >> 64) as u64), self as u64))
    }
}

/// A key that converts losslessly to and from a packed integer form.
///
/// The contract is a bijection on the key's value space:
/// `unpack(pack(k)) == k` for every key, and `pack(a) == pack(b)` implies
/// `a == b`. [`crate::FlowMap`] relies on both directions — the first to
/// return original keys from iteration, the second to use integer equality
/// as key equality.
pub trait CompactKey: Copy + Eq + std::fmt::Debug + Send + Sync {
    /// The packed integer representation.
    type Packed: PackedKey;

    /// Packs the key into its integer form.
    fn pack(self) -> Self::Packed;

    /// Restores the key from its packed form.
    ///
    /// Only values produced by [`CompactKey::pack`] are valid inputs.
    fn unpack(packed: Self::Packed) -> Self;
}

/// Integers are their own packed form.
macro_rules! identity_compact_key {
    ($($t:ty),+) => {$(
        impl CompactKey for $t {
            type Packed = $t;

            #[inline]
            fn pack(self) -> $t {
                self
            }

            #[inline]
            fn unpack(packed: $t) -> $t {
                packed
            }
        }
    )+};
}

identity_compact_key!(u32, u64, u128);

/// An IPv4 address packs into its 32-bit integer form (useful for keyed
/// accumulators over hosts or prefix networks).
impl CompactKey for std::net::Ipv4Addr {
    type Packed = u32;

    #[inline]
    fn pack(self) -> u32 {
        u32::from(self)
    }

    #[inline]
    fn unpack(packed: u32) -> Self {
        std::net::Ipv4Addr::from(packed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn integer_keys_are_identity() {
        assert_eq!(u32::unpack(7u32.pack()), 7);
        assert_eq!(u64::unpack(7u64.pack()), 7);
        assert_eq!(u128::unpack(7u128.pack()), 7);
    }

    #[test]
    fn ipv4_round_trips() {
        let addr = Ipv4Addr::new(192, 168, 55, 77);
        assert_eq!(Ipv4Addr::unpack(addr.pack()), addr);
    }

    #[test]
    fn mixes_differ_across_widths_of_same_value() {
        // Not a requirement, but a sanity check that each impl folds its
        // own word pattern.
        let a = 0x1234_5678u32.mix();
        let b = u64::from(0x1234_5678u32).mix();
        assert_eq!(a, b, "u32 promotes to the same single-word fold");
        let c = ((1u128 << 64) | 0x1234_5678).mix();
        assert_ne!(b, c, "a set high word folds differently");
    }
}

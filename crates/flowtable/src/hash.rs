//! FxHash-style integer hashing.
//!
//! The rustc/Firefox "Fx" hash folds each input word into the accumulator
//! with a rotate–xor–multiply step. It is extremely fast on integers but its
//! low output bits avalanche poorly, which matters here because [`crate::FlowMap`]
//! masks the hash with a power-of-two table size. [`fx_mix64`] therefore
//! finishes the fold with a SplitMix64-style avalanche so every output bit
//! depends on every input bit. Like the original, the function is unkeyed
//! and deterministic across processes and platforms — a requirement of the
//! workspace's bit-identical-results contract (see the crate docs for why
//! hash-flooding resistance is deliberately not a goal).

/// The Fx multiplier (64-bit golden-ratio-like constant used by rustc-hash).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One Fx fold step: absorbs `word` into `acc`.
#[inline]
pub fn fx_fold(acc: u64, word: u64) -> u64 {
    (acc.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// SplitMix64 finalizer: avalanches the folded accumulator so the low bits
/// are usable as a power-of-two table index.
#[inline]
pub fn fx_mix64(mut acc: u64) -> u64 {
    acc = (acc ^ (acc >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    acc = (acc ^ (acc >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    acc ^ (acc >> 31)
}

/// A [`std::hash::Hasher`] over the Fx fold, for call sites that want the
/// same fast integer hashing through the standard `Hash` machinery (e.g. a
/// `HashMap` keyed by types without a [`crate::CompactKey`] encoding).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    acc: u64,
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        fx_mix64(self.acc)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Whole 8-byte words first, then the tail padded with zeros. The
        // length is folded in so "ab" + "c" != "a" + "bc".
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.acc = fx_fold(self.acc, word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.acc = fx_fold(self.acc, u64::from_le_bytes(word));
        }
        self.acc = fx_fold(self.acc, bytes.len() as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.acc = fx_fold(self.acc, value);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.acc = fx_fold(self.acc, u64::from(value));
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.acc = fx_fold(self.acc, (value >> 64) as u64);
        self.acc = fx_fold(self.acc, value as u64);
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.acc = fx_fold(self.acc, u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.acc = fx_fold(self.acc, u64::from(value));
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.acc = fx_fold(self.acc, value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn mix_is_deterministic_and_spreads_low_bits() {
        assert_eq!(fx_mix64(12345), fx_mix64(12345));
        // Sequential inputs must not produce sequential low bits.
        let lows: std::collections::HashSet<u64> = (0u64..256)
            .map(|i| fx_mix64(fx_fold(0, i)) & 0xFF)
            .collect();
        assert!(lows.len() > 150, "low byte collapses: {}", lows.len());
    }

    #[test]
    fn hasher_separates_concatenations() {
        let hash = |parts: &[&[u8]]| {
            let mut h = FxHasher::default();
            for p in parts {
                h.write(p);
            }
            h.finish()
        };
        assert_ne!(hash(&[b"ab", b"c"]), hash(&[b"a", b"bc"]));
        assert_eq!(hash(&[b"abc"]), hash(&[b"abc"]));
    }

    #[test]
    fn hasher_integer_writes_match_fold() {
        let mut h = FxHasher::default();
        h.write_u64(7);
        assert_eq!(h.finish(), fx_mix64(fx_fold(0, 7)));
        let mut h = FxHasher::default();
        h.write_u128((3u128 << 64) | 9);
        assert_eq!(h.finish(), fx_mix64(fx_fold(fx_fold(0, 3), 9)));
    }
}

//! # flowrank-flowtable
//!
//! The keyed-accumulator substrate every hot path of the workspace keys off:
//! compact flow keys, an in-tree integer hasher, and an open-addressing
//! [`FlowMap`] with slab-backed values.
//!
//! The paper's monitor is, at its core, a per-bin flow table — ground-truth
//! classification, the sampled lanes, the bounded top-k backends and the
//! rank-comparison metrics all aggregate *something* per flow key. Before
//! this crate each of them re-implemented that table as a SipHash-hashed
//! `std::collections::HashMap`, which capped classification throughput: the
//! traces are trusted (synthetic or operator-captured), so SipHash's
//! hash-flooding resistance buys nothing and costs a long keyed permutation
//! per lookup. This crate replaces that with
//!
//! * [`CompactKey`] — a lossless packing of a flow identity into a single
//!   machine integer (`FiveTuple` → `u128`, `/24` prefixes → 32 significant
//!   bits of a `u64`), so hashing and equality are register operations,
//! * [`hash`] — an FxHash-style multiply–rotate fold over the packed words
//!   with a final avalanche, strong enough for power-of-two open addressing,
//! * [`FlowMap`] — an open-addressing table mapping packed keys to
//!   slab-backed values, with `clear()` that keeps its allocations so a
//!   streaming monitor reuses one table across measurement bins instead of
//!   rehashing from zero,
//! * [`shard_of`] — the key-hash shard router used to classify one bin in
//!   parallel across N disjoint sub-tables.
//!
//! ## Determinism contract
//!
//! Rank-comparison outcomes in this workspace are pinned bit-identical
//! across runs, platforms and thread counts, so the table's behaviour is
//! fully specified:
//!
//! * Iteration (and therefore drain) order is a pure function of the
//!   operation sequence — insertion order, except that [`FlowMap::remove`]
//!   swaps the last-inserted entry into the removed entry's position. No
//!   hash-iteration order ever leaks into results.
//! * The hash function is fixed and unseeded: the same key hashes the same
//!   everywhere. This is a deliberate trade — see *Why not SipHash?* below.
//! * Shard assignment ([`shard_of`]) depends only on the packed key and the
//!   shard count, and uses hash bits disjoint from the in-table probe bits,
//!   so a sharded classification of a bin observes exactly the per-key
//!   counts of a sequential one; merging shards in index order yields a
//!   deterministic combined drain.
//!
//! ## Why not SipHash?
//!
//! `std`'s default hasher defends hash maps exposed to *adversarial* keys
//! (e.g. attacker-chosen HTTP headers) against collision flooding. A flow
//! monitor replaying trusted traces — or deployed behind its own sampling
//! stage — does not face that adversary through this table, and the paper's
//! experiments spend most of their time in per-packet map lookups, so the
//! keyed permutation is pure overhead. An attacker who *can* inject traffic
//! can already blow up the flow table's cardinality without engineering
//! collisions. Deployments that disagree can wrap their keys' packing with a
//! secret permutation; the table itself stays deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod key;
pub mod map;

pub use hash::{fx_fold, fx_mix64, FxHasher};
pub use key::{CompactKey, PackedKey};
pub use map::FlowMap;

/// Routes a packed key to one of `shards` disjoint sub-tables.
///
/// Uses the upper half of the mixed hash so shard membership is independent
/// of the low bits [`FlowMap`] probes with — otherwise every key inside one
/// shard would share its low probe bits and collide. `shards` of 0 or 1 puts
/// everything in shard 0.
#[inline]
pub fn shard_of<P: PackedKey>(packed: P, shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        ((packed.mix() >> 32) as usize) % shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for key in 0u64..1_000 {
            let s = shard_of(key, 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(key, 7), "same key, same shard");
        }
        assert_eq!(shard_of(42u64, 0), 0);
        assert_eq!(shard_of(42u64, 1), 0);
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0u64..10_000 {
            counts[shard_of(key, shards)] += 1;
        }
        for &c in &counts {
            assert!(
                (1_500..=3_500).contains(&c),
                "severely unbalanced shards: {counts:?}"
            );
        }
    }

    #[test]
    fn shard_bits_are_independent_of_probe_bits() {
        // Keys crafted to share low mixed bits must still spread over
        // shards; conversely one shard's keys must not share low bits.
        let shards = 8;
        let mut low_bits_in_shard0 = std::collections::HashSet::new();
        for key in 0u64..4_096 {
            if shard_of(key, shards) == 0 {
                low_bits_in_shard0.insert(key.mix() & 0xFF);
            }
        }
        assert!(
            low_bits_in_shard0.len() > 64,
            "shard 0 keys collapse onto {} low-bit patterns",
            low_bits_in_shard0.len()
        );
    }
}

//! The open-addressing keyed accumulator.
//!
//! [`FlowMap`] maps a [`CompactKey`] to a value through a two-part layout:
//!
//! * a power-of-two **slot array** of `u32` indices, probed linearly from
//!   the key's mixed hash (with tombstones for removals), and
//! * a **slab** (`Vec`) of `(packed key, value)` entries in insertion
//!   order.
//!
//! The split buys the two properties the workspace needs from its flow
//! tables. First, *reuse*: [`FlowMap::clear`] empties both parts but keeps
//! their allocations, so a streaming monitor pays the table's growth once
//! and then recycles it bin after bin. Second, *determinism*: iteration
//! walks the slab, so the order every consumer drains flows in is a pure
//! function of the operation sequence (insertion order, with
//! [`FlowMap::remove`] swapping the last entry into the vacated position) —
//! never of hash-table internals. See the crate docs for the full contract.

use crate::key::{CompactKey, PackedKey};

/// Slot marker: never occupied.
const EMPTY: u32 = u32::MAX;
/// Slot marker: previously occupied, removed (probe chains continue past it).
const TOMBSTONE: u32 = u32::MAX - 1;
/// Largest representable entry index.
const MAX_ENTRIES: usize = (u32::MAX - 2) as usize;

/// Maximum slot load (live entries plus tombstones) is 7/8.
#[inline]
fn slots_for(entries: usize) -> usize {
    (entries * 8 / 7 + 1).max(16).next_power_of_two()
}

/// An open-addressing map from compact flow keys to slab-backed values.
#[derive(Debug, Clone)]
pub struct FlowMap<K: CompactKey, V> {
    slots: Vec<u32>,
    entries: Vec<(K::Packed, V)>,
    tombstones: usize,
}

impl<K: CompactKey, V> Default for FlowMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: CompactKey, V> FlowMap<K, V> {
    /// Creates an empty map. No allocation happens until the first insert.
    pub fn new() -> Self {
        FlowMap {
            slots: Vec::new(),
            entries: Vec::new(),
            tombstones: 0,
        }
    }

    /// Creates an empty map pre-sized for `n` entries: both the slot array
    /// and the entry slab are allocated up front, so the first `n` inserts
    /// never reallocate.
    pub fn with_capacity(n: usize) -> Self {
        let mut map = Self::new();
        if n > 0 {
            map.slots = vec![EMPTY; slots_for(n)];
            map.entries = Vec::with_capacity(n);
        }
        map
    }

    /// Number of entries in the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries the map can hold before the slot array grows.
    pub fn capacity(&self) -> usize {
        self.slots.len() * 7 / 8
    }

    /// Ensures room for `additional` more entries without slot growth.
    pub fn reserve(&mut self, additional: usize) {
        let target = self.entries.len() + additional;
        if slots_for(target) > self.slots.len() {
            self.rehash(slots_for(target));
        }
        self.entries.reserve(additional);
    }

    /// Removes every entry but keeps both allocations for reuse — the
    /// start-of-bin reset of the paper's binning methodology, without the
    /// per-bin rehash-from-zero a fresh map would pay.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.slots.fill(EMPTY);
        self.tombstones = 0;
    }

    /// Returns a reference to the value of `key`, if present.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find_entry(key.pack()).map(|i| &self.entries[i].1)
    }

    /// Returns a mutable reference to the value of `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.find_entry(key.pack()).map(|i| &mut self.entries[i].1)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.find_entry(key.pack()).is_some()
    }

    /// Returns the value of `key`, inserting `default()` first when absent.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let packed = key.pack();
        match self.find_entry(packed) {
            Some(i) => &mut self.entries[i].1,
            None => {
                let i = self.push_new(packed, default());
                &mut self.entries[i].1
            }
        }
    }

    /// The one-lookup update-or-insert every per-packet hot path uses:
    /// applies `update` when the key is present, inserts `insert()`
    /// otherwise, and returns the entry's value either way.
    #[inline]
    pub fn upsert(
        &mut self,
        key: K,
        insert: impl FnOnce() -> V,
        update: impl FnOnce(&mut V),
    ) -> &mut V {
        let packed = key.pack();
        match self.find_entry(packed) {
            Some(i) => {
                let value = &mut self.entries[i].1;
                update(value);
                value
            }
            None => {
                let i = self.push_new(packed, insert());
                &mut self.entries[i].1
            }
        }
    }

    /// Inserts or replaces the value of `key`; returns the previous value
    /// when the key was already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let packed = key.pack();
        match self.find_entry(packed) {
            Some(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            None => {
                self.push_new(packed, value);
                None
            }
        }
    }

    /// Removes `key`, returning its value when present.
    ///
    /// The last-inserted entry is swapped into the removed entry's slab
    /// position, so subsequent iteration order changes deterministically
    /// (a pure function of the operation sequence, never of hashing).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let packed = key.pack();
        let slot = self.find_slot(packed)?;
        let entry_index = self.slots[slot] as usize;
        self.slots[slot] = TOMBSTONE;
        self.tombstones += 1;
        let (_, value) = self.entries.swap_remove(entry_index);
        let moved_from = self.entries.len();
        if entry_index < moved_from {
            // The entry that lived at the slab's end moved into the hole;
            // repoint its slot.
            let moved_packed = self.entries[entry_index].0;
            let moved_slot = self
                .slot_of_entry(moved_packed, moved_from as u32)
                .expect("moved entry must have a slot");
            self.slots[moved_slot] = entry_index as u32;
        }
        Some(value)
    }

    /// Iterates over `(key, &value)` pairs in deterministic slab order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.entries.iter().map(|(p, v)| (K::unpack(*p), v))
    }

    /// Iterates over the keys in deterministic slab order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|(p, _)| K::unpack(*p))
    }

    /// Iterates over the values in deterministic slab order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Finds the entry index of `packed`, if present.
    #[inline]
    fn find_entry(&self, packed: K::Packed) -> Option<usize> {
        self.find_slot(packed).map(|s| self.slots[s] as usize)
    }

    /// Finds the slot index holding `packed`, if present.
    #[inline]
    fn find_slot(&self, packed: K::Packed) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut index = packed.mix() as usize & mask;
        loop {
            match self.slots[index] {
                EMPTY => return None,
                TOMBSTONE => {}
                entry => {
                    if self.entries[entry as usize].0 == packed {
                        return Some(index);
                    }
                }
            }
            index = (index + 1) & mask;
        }
    }

    /// Finds the slot currently pointing at entry index `entry_index` along
    /// `packed`'s probe chain (used to fix up a swap-removed entry).
    fn slot_of_entry(&self, packed: K::Packed, entry_index: u32) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut index = packed.mix() as usize & mask;
        loop {
            match self.slots[index] {
                EMPTY => return None,
                slot_entry if slot_entry == entry_index => return Some(index),
                _ => {}
            }
            index = (index + 1) & mask;
        }
    }

    /// Appends a new entry and links it from the slot array. The caller
    /// guarantees `packed` is absent.
    fn push_new(&mut self, packed: K::Packed, value: V) -> usize {
        assert!(self.entries.len() < MAX_ENTRIES, "FlowMap is full");
        if (self.entries.len() + self.tombstones + 1) * 8 > self.slots.len() * 7 {
            // Rehashing rebuilds the slots from the slab, which also purges
            // tombstones; size for the live entries only.
            self.rehash(slots_for(self.entries.len() + 1));
        }
        let entry_index = self.entries.len();
        self.entries.push((packed, value));
        let slot = self.free_slot(packed);
        if self.slots[slot] == TOMBSTONE {
            self.tombstones -= 1;
        }
        self.slots[slot] = entry_index as u32;
        entry_index
    }

    /// First reusable slot (tombstone or empty) on `packed`'s probe chain.
    /// The caller guarantees `packed` is absent from the map.
    #[inline]
    fn free_slot(&self, packed: K::Packed) -> usize {
        let mask = self.slots.len() - 1;
        let mut index = packed.mix() as usize & mask;
        loop {
            if self.slots[index] == EMPTY || self.slots[index] == TOMBSTONE {
                return index;
            }
            index = (index + 1) & mask;
        }
    }

    /// Extends the map from `(key, value)` pairs; later pairs replace
    /// earlier values for the same key (like `HashMap`).
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = (K, V)>) {
        for (key, value) in pairs {
            self.insert(key, value);
        }
    }

    /// Rebuilds the slot array at `new_len` slots from the entry slab.
    fn rehash(&mut self, new_len: usize) {
        let mask = new_len - 1;
        let mut slots = vec![EMPTY; new_len];
        for (entry_index, (packed, _)) in self.entries.iter().enumerate() {
            let mut index = packed.mix() as usize & mask;
            while slots[index] != EMPTY {
                index = (index + 1) & mask;
            }
            slots[index] = entry_index as u32;
        }
        self.slots = slots;
        self.tombstones = 0;
    }
}

impl<K: CompactKey, V> FromIterator<(K, V)> for FlowMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(pairs: I) -> Self {
        let mut map = FlowMap::new();
        map.extend(pairs);
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_map() {
        let map: FlowMap<u64, u32> = FlowMap::new();
        assert_eq!(map.len(), 0);
        assert!(map.is_empty());
        assert_eq!(map.get(&1), None);
        assert_eq!(map.iter().count(), 0);
    }

    #[test]
    fn insert_get_update() {
        let mut map: FlowMap<u64, u32> = FlowMap::new();
        assert_eq!(map.insert(10, 1), None);
        assert_eq!(map.insert(20, 2), None);
        assert_eq!(map.insert(10, 3), Some(1));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&10), Some(&3));
        *map.get_mut(&20).unwrap() += 5;
        assert_eq!(map.get(&20), Some(&7));
        assert!(map.contains_key(&10));
        assert!(!map.contains_key(&30));
    }

    #[test]
    fn upsert_counts() {
        let mut map: FlowMap<u32, u64> = FlowMap::new();
        for _ in 0..5 {
            map.upsert(9, || 1, |c| *c += 1);
        }
        assert_eq!(map.get(&9), Some(&5));
        assert_eq!(*map.get_or_insert_with(9, || 100), 5);
        assert_eq!(*map.get_or_insert_with(10, || 100), 100);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut map: FlowMap<u64, usize> = FlowMap::new();
        let keys: Vec<u64> = (0..200).map(|i| i * 7 + 3).collect();
        for (rank, &k) in keys.iter().enumerate() {
            map.insert(k, rank);
        }
        let seen: Vec<u64> = map.keys().collect();
        assert_eq!(seen, keys);
        let values: Vec<usize> = map.values().copied().collect();
        assert_eq!(values, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn remove_swaps_last_entry_into_hole() {
        let mut map: FlowMap<u64, u32> = FlowMap::new();
        for k in 0..6u64 {
            map.insert(k, k as u32 * 10);
        }
        assert_eq!(map.remove(&1), Some(10));
        assert_eq!(map.remove(&1), None);
        assert_eq!(map.len(), 5);
        // Entry 5 moved into position 1.
        assert_eq!(map.keys().collect::<Vec<_>>(), vec![0, 5, 2, 3, 4]);
        assert_eq!(map.get(&5), Some(&50));
        assert_eq!(map.get(&0), Some(&0));
    }

    #[test]
    fn clear_keeps_capacity_and_resets_content() {
        let mut map: FlowMap<u64, u32> = FlowMap::with_capacity(100);
        let cap = map.capacity();
        assert!(cap >= 100);
        for k in 0..100u64 {
            map.insert(k, 0);
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.capacity(), cap, "clear must not shrink the table");
        for k in 0..100u64 {
            map.insert(k, 1);
        }
        assert_eq!(map.capacity(), cap, "reuse must not regrow");
        assert_eq!(map.len(), 100);
    }

    #[test]
    fn with_capacity_presizes() {
        let map: FlowMap<u128, u8> = FlowMap::with_capacity(1000);
        assert!(map.capacity() >= 1000);
        let none: FlowMap<u128, u8> = FlowMap::with_capacity(0);
        assert_eq!(none.capacity(), 0);
    }

    #[test]
    fn reserve_grows_once() {
        let mut map: FlowMap<u64, u8> = FlowMap::new();
        map.reserve(500);
        let cap = map.capacity();
        assert!(cap >= 500);
        for k in 0..500u64 {
            map.insert(k, 0);
        }
        assert_eq!(map.capacity(), cap);
    }

    #[test]
    fn heavy_churn_matches_reference_hashmap() {
        // Deterministic pseudo-random op sequence (no external RNG): an LCG
        // drives inserts, upserts and removals; the map must agree with
        // std::HashMap on contents at every step.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 16
        };
        let mut map: FlowMap<u64, u64> = FlowMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for op in 0..20_000 {
            let key = next() % 512; // force collisions and revisits
            match next() % 4 {
                0 => {
                    let value = next();
                    assert_eq!(map.insert(key, value), reference.insert(key, value));
                }
                1 => {
                    map.upsert(key, || 1, |v| *v += 1);
                    reference.entry(key).and_modify(|v| *v += 1).or_insert(1);
                }
                2 => {
                    assert_eq!(map.remove(&key), reference.remove(&key), "op {op}");
                }
                _ => {
                    assert_eq!(map.get(&key), reference.get(&key), "op {op}");
                }
            }
            assert_eq!(map.len(), reference.len(), "op {op}");
        }
        // Final full-content comparison.
        for (k, v) in map.iter() {
            assert_eq!(reference.get(&k), Some(v));
        }
    }

    #[test]
    fn clear_reuse_across_many_bins() {
        // The monitor's steady state: one table recycled bin after bin with
        // a *different* key population each bin. Contents must be exact per
        // bin, no stale entries may leak across a clear, and the
        // allocations must be paid once.
        let mut map: FlowMap<u64, u64> = FlowMap::new();
        let mut grown_capacity = 0;
        for bin in 0..5u64 {
            let keys: Vec<u64> = (0..300u64).map(|i| bin * 1_000_000 + i * 3).collect();
            for (rank, &k) in keys.iter().enumerate() {
                map.upsert(k, || rank as u64, |v| *v += 1);
            }
            assert_eq!(map.len(), keys.len(), "bin {bin}");
            // No key of any previous bin survives the clear.
            if bin > 0 {
                assert!(!map.contains_key(&((bin - 1) * 1_000_000)), "bin {bin}");
            }
            for (rank, &k) in keys.iter().enumerate() {
                assert_eq!(map.get(&k), Some(&(rank as u64)), "bin {bin}");
            }
            assert_eq!(map.keys().collect::<Vec<_>>(), keys, "bin {bin} order");
            if bin == 0 {
                grown_capacity = map.capacity();
            } else {
                assert_eq!(
                    map.capacity(),
                    grown_capacity,
                    "bin {bin}: clear() reuse must never regrow"
                );
            }
            map.clear();
            assert!(map.is_empty());
            assert_eq!(map.get(&(bin * 1_000_000)), None);
        }
    }

    #[test]
    fn growth_happens_exactly_at_the_load_boundary() {
        // The 7/8 load rule, pinned at the exact boundary for several
        // power-of-two slot sizes: `capacity()` inserts fit without growth,
        // one more entry grows the table, and every key stays reachable
        // through the rehash.
        for requested in [14usize, 100, 448, 1_000] {
            let mut map: FlowMap<u64, usize> = FlowMap::with_capacity(requested);
            let boundary = map.capacity();
            assert!(boundary >= requested);
            for i in 0..boundary as u64 {
                map.insert(i * 7 + 1, i as usize);
                assert_eq!(
                    map.capacity(),
                    boundary,
                    "insert {i} of {boundary} must not grow"
                );
            }
            assert_eq!(map.len(), boundary);
            // The boundary-crossing insert grows the slot array…
            map.insert(u64::MAX - 3, usize::MAX);
            assert!(
                map.capacity() > boundary,
                "insert {} must grow past {boundary}",
                boundary + 1
            );
            // …and the rehash keeps every entry reachable, in slab order.
            assert_eq!(map.len(), boundary + 1);
            for i in 0..boundary as u64 {
                assert_eq!(map.get(&(i * 7 + 1)), Some(&(i as usize)));
            }
            assert_eq!(map.get(&(u64::MAX - 3)), Some(&usize::MAX));
            let keys: Vec<u64> = map.keys().collect();
            assert_eq!(keys.len(), boundary + 1);
            assert_eq!(keys[0], 1);
            assert_eq!(*keys.last().unwrap(), u64::MAX - 3);
        }
    }

    #[test]
    fn tombstone_reuse_keeps_a_churned_table_from_growing() {
        // Heavy insert/remove churn with a bounded live population: every
        // slot gets tombstoned over and over, yet because dead slots are
        // reused (and rehashes size for live entries only) the table must
        // never grow beyond its initial sizing — while agreeing with a
        // reference map at every step.
        let mut map: FlowMap<u64, u64> = FlowMap::with_capacity(14);
        let cap = map.capacity();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 16
        };
        for op in 0..50_000u64 {
            let key = next() % 10; // ≤ 10 live entries, far under capacity
            if next() % 2 == 0 {
                let value = next();
                assert_eq!(
                    map.insert(key, value),
                    reference.insert(key, value),
                    "op {op}"
                );
            } else {
                assert_eq!(map.remove(&key), reference.remove(&key), "op {op}");
            }
            assert_eq!(map.len(), reference.len(), "op {op}");
            assert!(
                map.capacity() <= cap,
                "op {op}: churn with ≤10 live entries grew the table \
                 ({} > {cap}) — tombstones treated as live?",
                map.capacity()
            );
        }
        for (k, v) in map.iter() {
            assert_eq!(reference.get(&k), Some(v));
        }
        // Absent-key probes still terminate and miss correctly after the
        // churn (chains are full of reused slots).
        for k in 100..200u64 {
            assert_eq!(map.get(&k), None);
        }
    }

    #[test]
    fn tombstone_buildup_triggers_purging_rehash() {
        let mut map: FlowMap<u64, u64> = FlowMap::with_capacity(64);
        // Insert/remove cycles far beyond the slot count: without tombstone
        // purging the probe chains would fill up and loop forever.
        for round in 0..10_000u64 {
            map.insert(round, round);
            assert_eq!(map.remove(&round), Some(round));
        }
        assert!(map.is_empty());
        map.insert(7, 7);
        assert_eq!(map.get(&7), Some(&7));
    }
}

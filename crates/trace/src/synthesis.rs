//! Packet-level synthesis from flow-level records.
//!
//! Section 8.1 of the paper: *"For a flow of size S, duration D and starting
//! time T, we compute first the number of packets for this flow, then we
//! distribute these packets uniformly in the interval [T, T+D]."* This module
//! implements exactly that expansion, producing a time-ordered packet trace
//! ready for sampling and classification. Packets carry a synthetic TCP
//! sequence number equal to the cumulative byte offset within their flow so
//! that the sequence-number size estimator can be exercised.

use flowrank_net::{PacketBatch, PacketRecord, Timestamp};
use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

use crate::flow_record::FlowRecord;

/// Options controlling flow-to-packet expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisConfig {
    /// Packet size in bytes written into each synthesised packet.
    pub packet_bytes: u16,
    /// When `true` (the default, matching the paper), packet times are drawn
    /// uniformly at random over the flow's lifetime; when `false` they are
    /// evenly spaced, which is useful for deterministic tests.
    pub uniform_placement: bool,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            packet_bytes: 500,
            uniform_placement: true,
        }
    }
}

/// Expands flow-level records into a time-sorted packet-level trace.
///
/// The expansion is deterministic given `seed`. Flows whose lifetime extends
/// past the end of the observation window are *not* truncated here — the
/// binning step of the simulator handles truncation, exactly as the paper's
/// binning methodology does.
pub fn synthesize_packets(
    flows: &[FlowRecord],
    config: &SynthesisConfig,
    seed: u64,
) -> Vec<PacketRecord> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let total_packets: u64 = flows.iter().map(|f| f.packets).sum();
    let mut packets = Vec::with_capacity(total_packets as usize);

    for flow in flows {
        let n = flow.packets;
        for i in 0..n {
            let offset = if n == 1 || flow.duration == 0.0 {
                0.0
            } else if config.uniform_placement {
                rng.next_f64() * flow.duration
            } else {
                flow.duration * i as f64 / (n - 1) as f64
            };
            let timestamp = Timestamp::from_secs_f64(flow.start + offset);
            let tcp_seq = (i * config.packet_bytes as u64) as u32;
            packets.push(PacketRecord {
                timestamp,
                src_ip: flow.key.src_ip,
                dst_ip: flow.key.dst_ip,
                src_port: flow.key.src_port,
                dst_port: flow.key.dst_port,
                protocol: flow.key.protocol,
                length: config.packet_bytes,
                tcp_seq: Some(tcp_seq),
            });
        }
    }
    packets.sort_unstable_by_key(|p| p.timestamp);
    packets
}

/// Expands flow-level records straight into a SoA [`PacketBatch`] — the
/// batched ingestion form of [`synthesize_packets`], producing the
/// column-for-column equivalent of converting its output
/// (`PacketBatch::from_records`) without keeping the intermediate record
/// vector alive.
pub fn synthesize_packet_batch(
    flows: &[FlowRecord],
    config: &SynthesisConfig,
    seed: u64,
) -> PacketBatch {
    // Placement draws per flow and the final time sort both need the whole
    // trace in hand, so synthesis builds records first and columnarises
    // once; the batch is what flows onward through the pipeline.
    let packets = synthesize_packets(flows, config, seed);
    PacketBatch::from_records(&packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_record::synthetic_key;
    use flowrank_net::{FiveTuple, FlowKey, FlowTable};
    use std::net::Ipv4Addr;

    fn flow(index: u64, packets: u64, start: f64, duration: f64) -> FlowRecord {
        FlowRecord::new(
            synthetic_key(index, Ipv4Addr::new(100, 64, 0, 10), 80),
            packets,
            packets * 500,
            start,
            duration,
        )
    }

    #[test]
    fn batch_synthesis_matches_record_synthesis() {
        let flows = vec![
            flow(0, 9, 0.0, 3.0),
            flow(1, 1, 1.0, 0.0),
            flow(2, 25, 2.0, 10.0),
        ];
        let config = SynthesisConfig::default();
        let batch = synthesize_packet_batch(&flows, &config, 77);
        let packets = synthesize_packets(&flows, &config, 77);
        assert_eq!(batch.len(), packets.len());
        assert_eq!(batch.to_records(), packets);
    }

    #[test]
    fn packet_count_matches_flow_sizes() {
        let flows = vec![
            flow(0, 5, 0.0, 2.0),
            flow(1, 1, 1.0, 0.0),
            flow(2, 12, 3.0, 8.0),
        ];
        let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 1);
        assert_eq!(packets.len(), 18);
    }

    #[test]
    fn packets_fall_within_flow_lifetime() {
        let flows = vec![flow(0, 50, 2.0, 4.0)];
        let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 2);
        for p in &packets {
            let t = p.timestamp.as_secs_f64();
            assert!((2.0 - 1e-9..=6.0 + 1e-9).contains(&t), "packet at {t}");
        }
    }

    #[test]
    fn trace_is_time_sorted() {
        let flows = vec![flow(0, 30, 5.0, 10.0), flow(1, 30, 0.0, 10.0)];
        let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 3);
        for w in packets.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn classification_recovers_flow_sizes() {
        let flows = vec![
            flow(0, 7, 0.0, 3.0),
            flow(1, 19, 1.0, 5.0),
            flow(2, 2, 2.0, 1.0),
        ];
        let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 4);
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for p in &packets {
            table.observe(p);
        }
        assert_eq!(table.flow_count(), 3);
        for f in &flows {
            assert_eq!(table.get(&f.key).unwrap().packets, f.packets);
        }
    }

    #[test]
    fn even_placement_is_deterministic_and_spaced() {
        let flows = vec![flow(0, 5, 10.0, 4.0)];
        let cfg = SynthesisConfig {
            uniform_placement: false,
            ..SynthesisConfig::default()
        };
        let packets = synthesize_packets(&flows, &cfg, 1);
        let times: Vec<f64> = packets.iter().map(|p| p.timestamp.as_secs_f64()).collect();
        assert_eq!(times.len(), 5);
        assert!((times[0] - 10.0).abs() < 1e-6);
        assert!((times[4] - 14.0).abs() < 1e-6);
        assert!((times[2] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn tcp_sequence_numbers_encode_byte_offsets() {
        let flows = vec![flow(0, 4, 0.0, 1.0)];
        let cfg = SynthesisConfig {
            uniform_placement: false,
            ..SynthesisConfig::default()
        };
        let packets = synthesize_packets(&flows, &cfg, 1);
        let mut seqs: Vec<u32> = packets.iter().map(|p| p.tcp_seq.unwrap()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 500, 1000, 1500]);
        let key = FiveTuple::from_packet(&packets[0]);
        assert_eq!(key, flows[0].key);
    }

    #[test]
    fn deterministic_per_seed() {
        let flows = vec![flow(0, 100, 0.0, 10.0)];
        let a = synthesize_packets(&flows, &SynthesisConfig::default(), 9);
        let b = synthesize_packets(&flows, &SynthesisConfig::default(), 9);
        let c = synthesize_packets(&flows, &SynthesisConfig::default(), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_input_produces_empty_trace() {
        let packets = synthesize_packets(&[], &SynthesisConfig::default(), 0);
        assert!(packets.is_empty());
    }
}

//! Trace summary statistics.
//!
//! Lightweight descriptive statistics over a flow-level trace: flow counts,
//! mean sizes, heavy-tail indicators. The examples use these to show that a
//! generated trace matches the published Sprint/Abilene characteristics
//! before running the ranking experiments on it.

use flowrank_stats::summary::RunningStats;

use crate::flow_record::FlowRecord;

/// Descriptive statistics of a flow-level trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of flows.
    pub flow_count: usize,
    /// Total packets across all flows.
    pub total_packets: u64,
    /// Total bytes across all flows.
    pub total_bytes: u64,
    /// Mean flow size in packets.
    pub mean_packets: f64,
    /// Mean flow size in bytes.
    pub mean_bytes: f64,
    /// Mean flow duration in seconds.
    pub mean_duration: f64,
    /// Largest flow size in packets.
    pub max_packets: u64,
    /// Fraction of total packets carried by the largest 1% of flows — a
    /// simple heavy-tail indicator ("elephants and mice").
    pub top_1pct_packet_share: f64,
    /// Trace duration covered by flow activity (max end time), seconds.
    pub active_duration: f64,
}

/// Computes summary statistics over a flow-level trace.
///
/// Returns `None` for an empty trace.
pub fn summarize(flows: &[FlowRecord]) -> Option<TraceSummary> {
    if flows.is_empty() {
        return None;
    }
    let mut packets = RunningStats::new();
    let mut bytes = RunningStats::new();
    let mut durations = RunningStats::new();
    let mut end = 0.0f64;
    for f in flows {
        packets.push(f.packets as f64);
        bytes.push(f.bytes as f64);
        durations.push(f.duration);
        end = end.max(f.end());
    }
    let total_packets: u64 = flows.iter().map(|f| f.packets).sum();
    let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();

    let mut sizes: Vec<u64> = flows.iter().map(|f| f.packets).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let top_count = (flows.len() / 100).max(1);
    let top_packets: u64 = sizes.iter().take(top_count).sum();

    Some(TraceSummary {
        flow_count: flows.len(),
        total_packets,
        total_bytes,
        mean_packets: packets.mean().unwrap_or(0.0),
        mean_bytes: bytes.mean().unwrap_or(0.0),
        mean_duration: durations.mean().unwrap_or(0.0),
        max_packets: sizes.first().copied().unwrap_or(0),
        top_1pct_packet_share: top_packets as f64 / total_packets.max(1) as f64,
        active_duration: end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_record::synthetic_key;
    use crate::sprint::SprintModel;
    use std::net::Ipv4Addr;

    fn flow(index: u64, packets: u64, start: f64, duration: f64) -> FlowRecord {
        FlowRecord::new(
            synthetic_key(index, Ipv4Addr::new(100, 64, 1, 1), 80),
            packets,
            packets * 500,
            start,
            duration,
        )
    }

    #[test]
    fn empty_trace_yields_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn simple_statistics() {
        let flows = vec![flow(0, 10, 0.0, 5.0), flow(1, 30, 2.0, 10.0)];
        let s = summarize(&flows).unwrap();
        assert_eq!(s.flow_count, 2);
        assert_eq!(s.total_packets, 40);
        assert_eq!(s.total_bytes, 20_000);
        assert!((s.mean_packets - 20.0).abs() < 1e-12);
        assert!((s.mean_duration - 7.5).abs() < 1e-12);
        assert_eq!(s.max_packets, 30);
        assert!((s.active_duration - 12.0).abs() < 1e-12);
        // top 1% of 2 flows = 1 flow = the 30-packet one.
        assert!((s.top_1pct_packet_share - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sprint_trace_is_heavy_tailed() {
        let flows = SprintModel::small(30.0, 300.0).generate_flows(77);
        let s = summarize(&flows).unwrap();
        // With a Pareto β=1.5 size law the top 1% of flows carries a large
        // share of the packets.
        assert!(
            s.top_1pct_packet_share > 0.15,
            "top-1% share {} unexpectedly small",
            s.top_1pct_packet_share
        );
        assert!(s.mean_packets > 4.0 && s.mean_packets < 60.0);
        assert!(s.max_packets as f64 > 10.0 * s.mean_packets);
    }
}

//! Exporting synthetic traces to pcap captures.
//!
//! A convenience bridge between the trace generators and the from-scratch
//! pcap writer in `flowrank-net`: a synthetic flow population can be written
//! out as a standard capture file for inspection with external tooling, and
//! read back into the same ranking pipeline.

use std::io::Write;

use flowrank_net::pcap::PcapWriter;
use flowrank_net::NetResult;

use crate::flow_record::FlowRecord;
use crate::synthesis::{synthesize_packets, SynthesisConfig};

/// Expands `flows` into packets and writes them to `out` as a pcap capture.
///
/// Returns the number of packets written.
pub fn export_flows_to_pcap<W: Write>(
    flows: &[FlowRecord],
    config: &SynthesisConfig,
    seed: u64,
    out: W,
) -> NetResult<u64> {
    let packets = synthesize_packets(flows, config, seed);
    let mut writer = PcapWriter::new(out)?;
    for packet in &packets {
        writer.write_record(packet)?;
    }
    let written = writer.packets_written();
    writer.finish()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sprint::SprintModel;
    use flowrank_net::pcap::pcap_bytes_to_records;
    use flowrank_net::{FiveTuple, FlowTable};

    #[test]
    fn export_then_reimport_preserves_flow_sizes() {
        let flows = SprintModel::small(5.0, 50.0).generate_flows(3);
        let mut buffer = Vec::new();
        let written =
            export_flows_to_pcap(&flows, &SynthesisConfig::default(), 3, &mut buffer).unwrap();
        let expected: u64 = flows.iter().map(|f| f.packets).sum();
        assert_eq!(written, expected);

        let records = pcap_bytes_to_records(&buffer).unwrap();
        assert_eq!(records.len() as u64, expected);
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for r in &records {
            table.observe(r);
        }
        assert_eq!(table.flow_count(), flows.len());
        for f in &flows {
            assert_eq!(table.get(&f.key).unwrap().packets, f.packets);
        }
    }

    #[test]
    fn exported_capture_decodes_straight_into_a_batch() {
        // The batched replay loop: flows → pcap → zero-copy decode into a
        // reusable PacketBatch → batch classification, with the same flow
        // sizes as the record-by-record path.
        use flowrank_net::pcap::pcap_bytes_to_batch;
        use flowrank_net::PacketBatch;

        let flows = SprintModel::small(5.0, 50.0).generate_flows(9);
        let mut buffer = Vec::new();
        export_flows_to_pcap(&flows, &SynthesisConfig::default(), 9, &mut buffer).unwrap();

        let mut batch = PacketBatch::new();
        let decoded = pcap_bytes_to_batch(&buffer, &mut batch).unwrap();
        assert_eq!(decoded, batch.len() as u64);
        assert_eq!(batch.to_records(), pcap_bytes_to_records(&buffer).unwrap());

        let keys: Vec<FiveTuple> = (0..batch.len()).map(|i| batch.five_tuple(i)).collect();
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        table.observe_batch(&keys, &batch, 0..batch.len());
        assert_eq!(table.flow_count(), flows.len());
        for f in &flows {
            assert_eq!(table.get(&f.key).unwrap().packets, f.packets);
        }
    }

    #[test]
    fn empty_trace_produces_valid_empty_capture() {
        let mut buffer = Vec::new();
        let written =
            export_flows_to_pcap(&[], &SynthesisConfig::default(), 0, &mut buffer).unwrap();
        assert_eq!(written, 0);
        assert_eq!(pcap_bytes_to_records(&buffer).unwrap().len(), 0);
    }
}

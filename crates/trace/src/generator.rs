//! Generic flow-population generator shared by the Sprint and Abilene models.
//!
//! A flow population is produced in three steps, mirroring how the paper
//! describes its traces:
//!
//! 1. flow arrival times are drawn from a Poisson process with the published
//!    flow arrival rate;
//! 2. each flow gets a size (in packets) from the configured size law and a
//!    duration from an exponential law with the published mean;
//! 3. each flow gets a destination address from the Zipf prefix-popularity
//!    model so that /24 aggregation yields fewer, larger flows.

use flowrank_stats::dist::{BoundedPareto, ContinuousDistribution, Exponential, LogNormal, Pareto};
use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

use crate::addressing::PrefixAddresser;
use crate::arrivals::{ArrivalProcess, PoissonArrivals};
use crate::flow_record::{synthetic_key, FlowRecord};

/// Flow-size law used by a generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// Heavy-tailed Pareto law parameterised by its mean (in packets) and
    /// shape β — the model of Sec. 6.
    Pareto {
        /// Mean flow size in packets.
        mean_packets: f64,
        /// Tail index β.
        shape: f64,
    },
    /// Pareto law truncated at `max_packets` — "Pareto body, capped tail".
    BoundedPareto {
        /// Scale (minimum size) in packets.
        min_packets: f64,
        /// Truncation point in packets.
        max_packets: f64,
        /// Tail index β.
        shape: f64,
    },
    /// Log-normal law parameterised by mean and squared coefficient of
    /// variation — the short-tailed model used for the Abilene-like trace.
    LogNormal {
        /// Mean flow size in packets.
        mean_packets: f64,
        /// Squared coefficient of variation.
        cv2: f64,
    },
}

impl SizeModel {
    /// Draws one flow size in packets (at least 1).
    pub fn sample_packets(&self, rng: &mut dyn Rng) -> u64 {
        let raw = match self {
            SizeModel::Pareto {
                mean_packets,
                shape,
            } => Pareto::with_mean(*mean_packets, *shape)
                .expect("invalid Pareto size model")
                .sample(rng),
            SizeModel::BoundedPareto {
                min_packets,
                max_packets,
                shape,
            } => BoundedPareto::new(*min_packets, *max_packets, *shape)
                .expect("invalid bounded Pareto size model")
                .sample(rng),
            SizeModel::LogNormal { mean_packets, cv2 } => {
                LogNormal::with_mean_cv2(*mean_packets, *cv2)
                    .expect("invalid log-normal size model")
                    .sample(rng)
            }
        };
        raw.round().max(1.0) as u64
    }
}

/// Configuration of a synthetic flow population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowPopulationConfig {
    /// Length of the generated trace in seconds.
    pub duration_secs: f64,
    /// Flow arrival rate in flows per second (5-tuple definition).
    pub flow_rate: f64,
    /// Flow-size law.
    pub size_model: SizeModel,
    /// Mean flow duration in seconds (durations are exponential).
    pub mean_flow_duration: f64,
    /// Average packet size in bytes (the paper uses 500 B everywhere).
    pub packet_bytes: u32,
    /// Number of /24 destination prefixes in the popularity pool.
    pub prefix_count: usize,
    /// Zipf exponent of the prefix popularity.
    pub prefix_zipf_exponent: f64,
}

impl FlowPopulationConfig {
    /// Applies a scale factor to the flow arrival rate (used by the figure
    /// harness to run reduced-size experiments); the per-flow statistics are
    /// untouched so the flow-size distribution is preserved.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.flow_rate *= scale.max(0.0);
        self
    }

    /// Expected number of flows in the whole trace.
    pub fn expected_flow_count(&self) -> f64 {
        self.flow_rate * self.duration_secs
    }
}

/// Generates the flow population described by `config`, deterministically
/// from `seed`.
pub fn generate_flow_population(config: &FlowPopulationConfig, seed: u64) -> Vec<FlowRecord> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut arrivals = PoissonArrivals::new(config.flow_rate.max(f64::MIN_POSITIVE));
    let addresser = PrefixAddresser::new(config.prefix_count, config.prefix_zipf_exponent);
    let duration_dist =
        Exponential::with_mean(config.mean_flow_duration.max(1e-9)).expect("mean duration > 0");

    let starts = arrivals.arrivals_until(config.duration_secs, &mut rng);
    let mut flows = Vec::with_capacity(starts.len());
    for (index, start) in starts.into_iter().enumerate() {
        let packets = config.size_model.sample_packets(&mut rng);
        let bytes = packets * config.packet_bytes as u64;
        let dst_ip = addresser.draw(&mut rng);
        // Common well-known ports make the synthetic traffic look plausible
        // in pcap form but play no role in the ranking.
        let dst_port = match rng.next_below(4) {
            0 => 80,
            1 => 443,
            2 => 25,
            _ => 8080,
        };
        let key = synthetic_key(index as u64, dst_ip, dst_port);
        let mut duration = duration_dist.sample(&mut rng);
        // Single-packet flows have zero duration by construction.
        if packets == 1 {
            duration = 0.0;
        }
        flows.push(FlowRecord::new(key, packets, bytes, start, duration));
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> FlowPopulationConfig {
        FlowPopulationConfig {
            duration_secs: 10.0,
            flow_rate: 200.0,
            size_model: SizeModel::Pareto {
                mean_packets: 9.6,
                shape: 1.5,
            },
            mean_flow_duration: 3.0,
            packet_bytes: 500,
            prefix_count: 64,
            prefix_zipf_exponent: 1.0,
        }
    }

    #[test]
    fn population_size_matches_rate() {
        let flows = generate_flow_population(&test_config(), 1);
        let expected = test_config().expected_flow_count();
        assert!(
            (flows.len() as f64 - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "got {} flows, expected ≈ {expected}",
            flows.len()
        );
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = generate_flow_population(&test_config(), 7);
        let b = generate_flow_population(&test_config(), 7);
        let c = generate_flow_population(&test_config(), 8);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert!(a.len() != c.len() || a[0] != c[0]);
    }

    #[test]
    fn flows_lie_within_trace_and_have_positive_sizes() {
        let cfg = test_config();
        let flows = generate_flow_population(&cfg, 3);
        for f in &flows {
            assert!(f.start >= 0.0 && f.start < cfg.duration_secs);
            assert!(f.packets >= 1);
            assert_eq!(f.bytes, f.packets * 500);
            assert!(f.duration >= 0.0);
            if f.packets == 1 {
                assert_eq!(f.duration, 0.0);
            }
        }
    }

    #[test]
    fn mean_size_roughly_calibrated() {
        let mut cfg = test_config();
        cfg.flow_rate = 2_000.0;
        let flows = generate_flow_population(&cfg, 5);
        let mean = flows.iter().map(|f| f.packets as f64).sum::<f64>() / flows.len() as f64;
        // Pareto(mean 9.6, β=1.5) has infinite variance, so the sample mean is
        // noisy; only check the right order of magnitude.
        assert!(mean > 4.0 && mean < 40.0, "mean packets {mean}");
    }

    #[test]
    fn scaled_config_reduces_population() {
        let cfg = test_config();
        let scaled = cfg.scaled(0.25);
        assert!((scaled.flow_rate - 50.0).abs() < 1e-12);
        assert_eq!(scaled.size_model, cfg.size_model);
        let flows = generate_flow_population(&scaled, 1);
        assert!(flows.len() < generate_flow_population(&cfg, 1).len());
    }

    #[test]
    fn size_models_sample_reasonable_values() {
        let mut rng = Pcg64::seed_from_u64(2);
        let bounded = SizeModel::BoundedPareto {
            min_packets: 1.0,
            max_packets: 100.0,
            shape: 1.1,
        };
        for _ in 0..1000 {
            let s = bounded.sample_packets(&mut rng);
            assert!((1..=100).contains(&s));
        }
        let lognormal = SizeModel::LogNormal {
            mean_packets: 12.0,
            cv2: 1.0,
        };
        let mean: f64 = (0..5_000)
            .map(|_| lognormal.sample_packets(&mut rng) as f64)
            .sum::<f64>()
            / 5_000.0;
        assert!((mean - 12.0).abs() < 2.0, "lognormal mean {mean}");
    }
}

//! The fleet scenario: N tenants with heterogeneous workload mixes and
//! diurnal intensity envelopes, streamed as tenant-tagged batches.
//!
//! The multi-tenant fleet layer (`flowrank-fleet`) hosts thousands of
//! independent monitored links in one process; this module is the traffic
//! side of that story. A [`FleetScenario`] assigns every tenant one
//! scenario from the existing [`Workload::catalog`] (round-robin, so a
//! fleet mixes heavy-tail links with flood victims and scan targets),
//! shapes each tenant's intensity with a deterministic diurnal envelope
//! (tenants are spread across phase groups, like links in different time
//! zones), and normalises intensities by the tenant count so the *fleet
//! aggregate* stays at catalog scale — growing the tenant count splits the
//! same traffic across more links instead of multiplying total load, which
//! is exactly the regime where one amortised decode pass pays off.
//!
//! [`FleetScenario::stream`] merges the per-tenant packet streams window by
//! window into [`TaggedBatch`]es: within one window, tenants appear in
//! tenant order as contiguous runs, and within each tenant packets are in
//! the tenant's own canonical stream order. A fleet demultiplexer that
//! routes runs to tenants therefore feeds every tenant monitor *exactly*
//! the chunk sequence [`FleetScenario::tenant_stream`] would feed a
//! standalone monitor — the property the fleet-vs-standalone conformance
//! suite pins bit-identically.
//!
//! Everything is a pure function of `(scenario parameters, seed)`: tenant
//! seeds are derived with a splitmix64 mix, the envelope is piecewise
//! linear (no transcendentals), and window merging follows tenant order.

use flowrank_net::tenant::{TaggedBatch, TenantId};
use flowrank_net::Timestamp;

use crate::stream::{SynthesisStream, DEFAULT_WINDOW};
use crate::workloads::Workload;

/// Salt separating per-tenant seed derivation from every other consumer of
/// the fleet seed.
const FLEET_TENANT_SALT: u64 = 0xF1EE_7AB1_E000_0007;

/// splitmix64 finaliser: full-avalanche mixing for tenant seed derivation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fleet of N tenant links with heterogeneous scenario mixes and diurnal
/// intensity envelopes, built entirely from the existing catalog +
/// [`Workload::scaled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScenario {
    /// Number of tenants (monitored links) in the fleet, at least 1.
    pub tenants: u32,
    /// Aggregate intensity: the fleet-wide load is roughly this multiple of
    /// one catalog-scale scenario, independent of the tenant count (each
    /// tenant runs at `aggregate_scale / tenants` before its envelope).
    pub aggregate_scale: f64,
    /// Depth of the diurnal envelope in `[0, 1]`: an off-peak tenant runs
    /// at `1 - diurnal_depth` of its peak intensity. `0` flattens the fleet.
    pub diurnal_depth: f64,
    /// Number of phase groups the tenants are spread across (time zones);
    /// tenant `t` sits at phase `t mod groups`.
    pub phase_groups: u32,
}

impl FleetScenario {
    /// A fleet of `tenants` links at the default mix: catalog aggregate
    /// scale, 60% diurnal depth, 4 phase groups.
    pub fn new(tenants: u32) -> Self {
        FleetScenario {
            tenants: tenants.max(1),
            aggregate_scale: 1.0,
            diurnal_depth: 0.6,
            phase_groups: 4,
        }
    }

    /// Stable scenario name (`reproduce --fleet` keys on it).
    pub fn name(&self) -> &'static str {
        "fleet"
    }

    /// The tenant's diurnal intensity factor in `[1 - diurnal_depth, 1]`:
    /// a piecewise-linear peak/off-peak cycle across the phase groups
    /// (tenant 0 at peak), deterministic with no transcendentals.
    pub fn tenant_envelope(&self, tenant: TenantId) -> f64 {
        let depth = self.diurnal_depth.clamp(0.0, 1.0);
        let groups = self.phase_groups.max(1);
        let x = (tenant.0 % groups) as f64 / groups as f64;
        (1.0 - depth) + depth * (2.0 * x - 1.0).abs()
    }

    /// The tenant's full intensity multiplier: envelope over the
    /// tenant-count normalisation.
    pub fn tenant_intensity(&self, tenant: TenantId) -> f64 {
        self.aggregate_scale / self.tenants as f64 * self.tenant_envelope(tenant)
    }

    /// The tenant's workload: its round-robin catalog scenario scaled to
    /// its intensity.
    pub fn tenant_workload(&self, tenant: TenantId) -> Workload {
        let catalog = Workload::catalog();
        let base = catalog[tenant.index() % catalog.len()];
        base.scaled(self.tenant_intensity(tenant))
    }

    /// The tenant's derived seed: a splitmix64 mix of the fleet seed, the
    /// fleet salt and the tenant index, so tenants draw independent
    /// randomness from one fleet-level seed.
    pub fn tenant_seed(&self, seed: u64, tenant: TenantId) -> u64 {
        splitmix64(seed ^ FLEET_TENANT_SALT ^ u64::from(tenant.0))
    }

    /// Trace length in seconds: the longest tenant workload.
    pub fn duration_secs(&self) -> f64 {
        (0..self.tenants)
            .map(|t| self.tenant_workload(TenantId(t)).duration_secs())
            .fold(0.0, f64::max)
    }

    /// Opens one tenant's packet stream exactly as a standalone monitor
    /// would consume it — the per-tenant reference the fleet conformance
    /// suite drives N independent monitors with.
    pub fn tenant_stream(&self, seed: u64, tenant: TenantId) -> SynthesisStream {
        self.tenant_stream_with_window(seed, tenant, DEFAULT_WINDOW)
    }

    /// [`FleetScenario::tenant_stream`] with an explicit window length.
    pub fn tenant_stream_with_window(
        &self,
        seed: u64,
        tenant: TenantId,
        window: Timestamp,
    ) -> SynthesisStream {
        self.tenant_workload(tenant)
            .stream_with_window(self.tenant_seed(seed, tenant), window)
    }

    /// Opens the whole fleet as one tenant-tagged stream: per-tenant
    /// synthesis streams merged window by window (see [`FleetStream`]).
    pub fn stream(&self, seed: u64) -> FleetStream {
        self.stream_with_window(seed, DEFAULT_WINDOW)
    }

    /// [`FleetScenario::stream`] with an explicit window length (chunk
    /// granularity only — each tenant's packet sequence is invariant).
    pub fn stream_with_window(&self, seed: u64, window: Timestamp) -> FleetStream {
        let window = if window == Timestamp::ZERO {
            DEFAULT_WINDOW
        } else {
            window
        };
        let lanes = (0..self.tenants)
            .map(|t| {
                let tenant = TenantId(t);
                TenantLane {
                    tenant,
                    stream: self.tenant_stream_with_window(seed, tenant, window),
                    pending: None,
                    done: false,
                }
            })
            .collect();
        FleetStream {
            lanes,
            window_nanos: window.as_nanos(),
            tagged: TaggedBatch::new(),
        }
    }
}

/// One tenant's slot in the merged fleet stream.
#[derive(Debug)]
struct TenantLane {
    tenant: TenantId,
    stream: SynthesisStream,
    /// The tenant's next window, held until the merge reaches its index:
    /// `(window index, packets)`.
    pending: Option<(u64, flowrank_net::PacketBatch)>,
    done: bool,
}

impl TenantLane {
    /// Ensures `pending` holds the tenant's next non-empty window.
    fn refill(&mut self) {
        if self.done || self.pending.is_some() {
            return;
        }
        match self.stream.next_window() {
            None => self.done = true,
            Some(batch) => {
                // The stream yields whole windows of its fixed window
                // length, so the first timestamp identifies the index.
                let index = batch.ts_nanos().first().copied().unwrap_or(0);
                self.pending = Some((index, batch.clone()));
            }
        }
    }
}

/// The merged, tenant-tagged packet stream of a whole fleet.
///
/// Each call to [`FleetStream::next_window`] produces the earliest
/// not-yet-emitted time window that any tenant has traffic in, as one
/// [`TaggedBatch`]: tenants in tenant order, each as one contiguous run,
/// each run in the tenant's own canonical stream order. Concatenating a
/// tenant's runs across all windows reproduces that tenant's
/// [`FleetScenario::tenant_stream`] byte for byte — the invariant that
/// makes fleet demultiplexing conformance-testable against standalone
/// monitors.
#[derive(Debug)]
pub struct FleetStream {
    lanes: Vec<TenantLane>,
    window_nanos: u64,
    tagged: TaggedBatch,
}

impl FleetStream {
    /// Synthesises the next non-empty fleet window, or `None` when every
    /// tenant is exhausted. The returned batch is owned by the stream and
    /// overwritten by the next call.
    pub fn next_window(&mut self) -> Option<&TaggedBatch> {
        for lane in &mut self.lanes {
            lane.refill();
        }
        let window_nanos = self.window_nanos;
        let next = self
            .lanes
            .iter()
            .filter_map(|lane| lane.pending.as_ref().map(|(ts, _)| *ts / window_nanos))
            .min()?;
        self.tagged.clear();
        for lane in &mut self.lanes {
            let due = matches!(&lane.pending, Some((ts, _)) if *ts / window_nanos == next);
            if due {
                let (_, batch) = lane.pending.take().expect("checked above");
                self.tagged
                    .extend_from_batch(lane.tenant, &batch, 0..batch.len());
            }
        }
        Some(&self.tagged)
    }

    /// Number of tenants in the stream (exhausted ones included).
    pub fn tenant_count(&self) -> usize {
        self.lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_net::PacketBatch;

    fn drain_tagged(scenario: &FleetScenario, seed: u64) -> Vec<TaggedBatch> {
        let mut stream = scenario.stream(seed);
        let mut out = Vec::new();
        while let Some(batch) = stream.next_window() {
            assert!(!batch.is_empty(), "never yields empty fleet windows");
            out.push(batch.clone());
        }
        out
    }

    #[test]
    fn merged_stream_reproduces_every_tenant_stream() {
        let scenario = FleetScenario {
            tenants: 5,
            aggregate_scale: 1.0,
            diurnal_depth: 0.6,
            phase_groups: 3,
        };
        let seed = 0xF1EE7;
        let windows = drain_tagged(&scenario, seed);
        // Reassemble each tenant's packets from the tagged runs…
        let mut per_tenant: Vec<PacketBatch> =
            (0..scenario.tenants).map(|_| PacketBatch::new()).collect();
        for window in &windows {
            let mut last_seen: Option<TenantId> = None;
            for (tenant, range) in window.runs() {
                // …tenants appear in order, one run each, per window.
                assert!(last_seen.is_none_or(|prev| prev < tenant), "tenant order");
                last_seen = Some(tenant);
                per_tenant[tenant.index()].extend_from_batch(window.batch(), range);
            }
        }
        // …and each must equal the standalone tenant stream byte for byte.
        for t in 0..scenario.tenants {
            let mut reference = PacketBatch::new();
            let mut stream = scenario.tenant_stream(seed, TenantId(t));
            while let Some(batch) = stream.next_window() {
                reference.extend_from_batch(batch, 0..batch.len());
            }
            assert_eq!(per_tenant[t as usize], reference, "tenant {t}");
            assert!(!reference.is_empty(), "tenant {t} has traffic");
        }
    }

    #[test]
    fn fleet_stream_is_deterministic_and_seed_sensitive() {
        let scenario = FleetScenario::new(4);
        let a = drain_tagged(&scenario, 1);
        let b = drain_tagged(&scenario, 1);
        let c = drain_tagged(&scenario, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(scenario.stream(1).tenant_count(), 4);
    }

    #[test]
    fn envelope_and_intensity_follow_the_phase_groups() {
        let scenario = FleetScenario {
            tenants: 8,
            aggregate_scale: 2.0,
            diurnal_depth: 0.5,
            phase_groups: 4,
        };
        // Peak at phase 0, trough mid-cycle, piecewise linear between.
        assert_eq!(scenario.tenant_envelope(TenantId(0)), 1.0);
        assert_eq!(scenario.tenant_envelope(TenantId(2)), 0.5);
        assert_eq!(scenario.tenant_envelope(TenantId(4)), 1.0, "cycle repeats");
        // Intensity divides the aggregate across tenants.
        let peak = scenario.tenant_intensity(TenantId(0));
        assert!((peak - 2.0 / 8.0).abs() < 1e-12);
        // Workloads round-robin the catalog.
        let catalog = Workload::catalog();
        assert_eq!(
            scenario.tenant_workload(TenantId(6)).name(),
            catalog[0].name()
        );
        assert_eq!(
            scenario.tenant_workload(TenantId(1)).name(),
            catalog[1].name()
        );
        // Tenant seeds differ.
        assert_ne!(
            scenario.tenant_seed(9, TenantId(0)),
            scenario.tenant_seed(9, TenantId(1))
        );
        // Aggregate duration covers the longest tenant workload.
        assert!(scenario.duration_secs() >= 170.0);
    }

    #[test]
    fn growing_the_fleet_keeps_the_aggregate_roughly_flat() {
        let packets = |tenants: u32| -> usize {
            drain_tagged(&FleetScenario::new(tenants), 5)
                .iter()
                .map(TaggedBatch::len)
                .sum()
        };
        let one = packets(1);
        let ten = packets(10);
        // Per-tenant minimum counts (`scaled` clamps at 1 elephant etc.)
        // let the aggregate creep, but it must stay far from 10×.
        assert!(
            ten < one * 5,
            "aggregate must not scale with tenant count: {one} -> {ten}"
        );
    }
}

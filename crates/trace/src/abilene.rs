//! Abilene-like synthetic trace model.
//!
//! Section 8.3 of the paper repeats the ranking experiment on a 30-minute
//! NLANR Abilene-I OC-48 trace. Compared with the Sprint trace, the Abilene
//! link carries more flows, has a higher utilisation, and — crucially for the
//! result — a *short-tailed* flow-size distribution, which makes ranking the
//! largest flows noticeably harder (a sampling rate above 50% is required).
//!
//! The original trace is not redistributable, so this model generates the
//! closest synthetic equivalent: a higher flow arrival rate and a log-normal
//! (short-tailed) flow-size law with the same mean flow size order of
//! magnitude. The packet-placement step is identical, which matches the fact
//! that the Abilene trace gives exact packet times — the ranking metric only
//! depends on per-bin flow sizes, not on intra-flow packet spacing.

use crate::flow_record::FlowRecord;
use crate::generator::{generate_flow_population, FlowPopulationConfig, SizeModel};
use crate::sprint::PACKET_BYTES;

/// Abilene OC-48 trace model (Sec. 8.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbileneModel {
    /// Underlying population configuration.
    pub config: FlowPopulationConfig,
}

/// Flow arrival rate of the Abilene-like scenario (flows per second).
///
/// The paper states the Abilene link has "a larger number of flows" than the
/// Sprint link without quoting a number; 1.5× the Sprint rate reproduces the
/// qualitative relationship.
pub const ABILENE_FLOW_RATE: f64 = 3_500.0;
/// Mean flow size in packets for the Abilene-like scenario.
pub const ABILENE_MEAN_PACKETS: f64 = 12.0;
/// Squared coefficient of variation of the short-tailed size law.
pub const ABILENE_SIZE_CV2: f64 = 4.0;
/// Mean flow duration in seconds.
pub const ABILENE_MEAN_FLOW_DURATION: f64 = 10.0;
/// Trace duration in seconds (30 minutes).
pub const ABILENE_TRACE_DURATION: f64 = 1_800.0;

impl AbileneModel {
    /// The Abilene-like scenario, scaled by `scale` (1.0 = full size).
    pub fn paper(scale: f64) -> Self {
        let config = FlowPopulationConfig {
            duration_secs: ABILENE_TRACE_DURATION,
            flow_rate: ABILENE_FLOW_RATE,
            size_model: SizeModel::LogNormal {
                mean_packets: ABILENE_MEAN_PACKETS,
                cv2: ABILENE_SIZE_CV2,
            },
            mean_flow_duration: ABILENE_MEAN_FLOW_DURATION,
            packet_bytes: PACKET_BYTES,
            prefix_count: 16_384,
            prefix_zipf_exponent: 0.9,
        }
        .scaled(scale);
        AbileneModel { config }
    }

    /// A small scenario for unit tests and examples.
    pub fn small(duration_secs: f64, flow_rate: f64) -> Self {
        let config = FlowPopulationConfig {
            duration_secs,
            flow_rate,
            ..Self::paper(1.0).config
        };
        AbileneModel { config }
    }

    /// Generates the flow-level trace deterministically from `seed`.
    pub fn generate_flows(&self, seed: u64) -> Vec<FlowRecord> {
        generate_flow_population(&self.config, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sprint::SprintModel;

    #[test]
    fn uses_short_tailed_size_law() {
        let m = AbileneModel::paper(1.0);
        assert!(matches!(m.config.size_model, SizeModel::LogNormal { .. }));
        assert!(m.config.flow_rate > SprintModel::paper(1.0).config.flow_rate);
    }

    #[test]
    fn tail_is_shorter_than_sprint() {
        // Compare the largest flow of equal-rate populations: the heavy-tailed
        // Sprint model should produce a (much) larger maximum.
        let sprint = SprintModel::small(30.0, 200.0).generate_flows(11);
        let abilene = AbileneModel::small(30.0, 200.0).generate_flows(11);
        let max_sprint = sprint.iter().map(|f| f.packets).max().unwrap();
        let max_abilene = abilene.iter().map(|f| f.packets).max().unwrap();
        assert!(
            max_sprint > max_abilene,
            "sprint max {max_sprint} should exceed abilene max {max_abilene}"
        );
    }

    #[test]
    fn small_scenario_counts() {
        let flows = AbileneModel::small(10.0, 300.0).generate_flows(1);
        let expected = 3_000.0;
        assert!((flows.len() as f64 - expected).abs() < 300.0);
        assert!(flows.iter().all(|f| f.packets >= 1));
    }

    #[test]
    fn scale_factor_applies() {
        let m = AbileneModel::paper(0.2);
        assert!((m.config.flow_rate - 700.0).abs() < 1e-9);
    }
}

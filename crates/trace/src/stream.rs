//! Streaming flow-to-packet synthesis: windows of packets on demand.
//!
//! [`crate::synthesize_packets`] materialises a whole trace before anything
//! downstream runs, so experiment length is capped by RAM. This module is
//! the pull-based form of the same expansion: a [`SynthesisStream`] holds
//! the *flow-level* records (memory proportional to flows, not packets) and
//! produces the packet trace one time window at a time, each window as a
//! ready-to-push SoA [`PacketBatch`]. It is the packet source behind
//! `Monitor::drive` for scenario workloads.
//!
//! # How a window is produced
//!
//! Packet placement draws come from one [`Pcg64`] stream consumed flow by
//! flow in generation order — exactly the draws [`crate::synthesize_packets`]
//! makes. At construction the stream walks that RNG once, snapshotting its
//! state *before* each flow's draws (a [`Pcg64`] is a few machine words).
//! A window is then synthesised by replaying, from its snapshot, every flow
//! whose lifetime overlaps the window and keeping the packets whose
//! timestamps fall inside it; flows enter and leave the active set as the
//! window advances, so a window's cost is proportional to the flows alive
//! in it.
//!
//! # Ordering contract
//!
//! Within a window, packets are ordered by the total key
//! `(timestamp, flow index, packet index)`; concatenating all windows yields
//! the whole trace in that order. [`crate::synthesize_packets`] sorts with
//! an *unstable* sort whose order among equal timestamps is unspecified, so
//! the two traces can permute packets that share a timestamp. The
//! systematic source of equal timestamps is multi-packet flows of zero
//! duration, whose packets differ only in their TCP sequence number — a
//! field no `flowrank-monitor` report depends on — so for such ties the
//! permutation is report-invisible, and the drive-path conformance tests
//! pin the streamed and materialised paths to bit-identical reports for the
//! pinned scenarios. *Cross-flow* nanosecond collisions (two continuous
//! arrival processes rounding to the same nanosecond) are also possible,
//! just vanishingly rare at catalog scale; if one ever lands on opposite
//! sides of the two sort orders, the streamed and materialised *packet
//! sequences* — and hence the sampled reports — may differ, which the
//! conformance harness reports loudly rather than papering over. The
//! streamed order is the canonical one: it is a pure function of the
//! workload, not of a sort implementation.
//!
//! # Cost model
//!
//! Construction walks the placement RNG once (`O(total packets)`, no packet
//! storage). Each window then replays, from its snapshot, *every* packet of
//! every flow overlapping the window, keeping the in-window ones — so a
//! flow's expansion cost is its packet count times the number of windows
//! its lifetime spans. That is the right trade for the catalog's
//! short-lived flows (mean lifetime well under one window); a population
//! dominated by flows living across many windows pays the multiplier and
//! would want per-flow resume state instead.

use flowrank_net::{CompactKey, PacketBatch, Timestamp};
use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

use crate::flow_record::FlowRecord;
use crate::synthesis::SynthesisConfig;

/// Default window length: one of the paper's 60-second measurement bins.
pub const DEFAULT_WINDOW: Timestamp = Timestamp::from_nanos(60_000_000_000);

/// A pull-based packet synthesiser: yields the trace window by window.
///
/// Construct one with [`SynthesisStream::new`] (or
/// [`crate::Workload::stream`] for a scenario) and call
/// [`SynthesisStream::next_window`] until it returns `None`. Peak memory is
/// the flow population plus one window of packets, independent of trace
/// length.
#[derive(Debug)]
pub struct SynthesisStream {
    flows: Vec<FlowRecord>,
    /// RNG state immediately before each flow's placement draws.
    draw_states: Vec<Pcg64>,
    /// First/last possible packet timestamp of each flow, in nanoseconds.
    starts: Vec<u64>,
    ends: Vec<u64>,
    /// Flow indices ordered by `starts`, consumed as windows advance.
    by_start: Vec<u32>,
    config: SynthesisConfig,
    window_nanos: u64,
    /// Next window index, and one past the last non-empty window.
    window: u64,
    windows: u64,
    /// Cursor into `by_start`; flows before it have been activated.
    activated: usize,
    /// Flows whose lifetime may still overlap the current or later windows.
    active: Vec<u32>,
    /// Scratch: `(timestamp, flow index, packet index)` of the window.
    staged: Vec<(u64, u32, u32)>,
    batch: PacketBatch,
}

impl SynthesisStream {
    /// Prepares a stream over `flows` with the given synthesis options and
    /// placement seed — the streaming counterpart of
    /// [`crate::synthesize_packets`] with the same arguments.
    pub fn new(flows: &[FlowRecord], config: &SynthesisConfig, seed: u64) -> Self {
        Self::with_window(flows, config, seed, DEFAULT_WINDOW)
    }

    /// [`SynthesisStream::new`] with an explicit window length. Reports are
    /// invariant to the window length (it only sets the chunk granularity);
    /// [`Timestamp::ZERO`] is treated as [`DEFAULT_WINDOW`].
    pub fn with_window(
        flows: &[FlowRecord],
        config: &SynthesisConfig,
        seed: u64,
        window: Timestamp,
    ) -> Self {
        Self::from_flows(flows.to_vec(), config, seed, window)
    }

    /// [`SynthesisStream::with_window`] taking the flow population by value
    /// — the flow vector is the stream's dominant memory term, so callers
    /// that generate flows just to stream them (e.g.
    /// [`crate::Workload::stream`]) hand them over instead of copying.
    pub fn from_flows(
        flows: Vec<FlowRecord>,
        config: &SynthesisConfig,
        seed: u64,
        window: Timestamp,
    ) -> Self {
        let window_nanos = if window == Timestamp::ZERO {
            DEFAULT_WINDOW.as_nanos()
        } else {
            window.as_nanos()
        };
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut draw_states = Vec::with_capacity(flows.len());
        let mut starts = Vec::with_capacity(flows.len());
        let mut ends = Vec::with_capacity(flows.len());
        let mut max_end = 0u64;
        for flow in &flows {
            draw_states.push(rng.clone());
            // Advance the shared stream by exactly the draws
            // `synthesize_packets` makes for this flow.
            if placement_draws(flow, config) {
                for _ in 0..flow.packets {
                    rng.next_f64();
                }
            }
            // Packet timestamps are `from_secs_f64(start + offset)` with
            // `0 <= offset <= duration`; the conversion is monotone, so the
            // flow's packets live in this closed nanosecond interval.
            let start = Timestamp::from_secs_f64(flow.start).as_nanos();
            let end = Timestamp::from_secs_f64(flow.start + flow.duration).as_nanos();
            starts.push(start);
            ends.push(end);
            if flow.packets > 0 {
                max_end = max_end.max(end);
            }
        }
        let mut by_start: Vec<u32> = (0..flows.len() as u32).collect();
        by_start.sort_unstable_by_key(|&i| starts[i as usize]);
        let windows = if flows.iter().all(|f| f.packets == 0) {
            0
        } else {
            max_end / window_nanos + 1
        };
        SynthesisStream {
            flows,
            draw_states,
            starts,
            ends,
            by_start,
            config: *config,
            window_nanos,
            window: 0,
            windows,
            activated: 0,
            active: Vec::new(),
            staged: Vec::new(),
            batch: PacketBatch::new(),
        }
    }

    /// Total number of flows in the stream.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Synthesises the next non-empty window of packets, or `None` when the
    /// trace is exhausted. The returned batch is owned by the stream and is
    /// overwritten by the next call.
    pub fn next_window(&mut self) -> Option<&PacketBatch> {
        while self.window < self.windows {
            let lo = self.window * self.window_nanos;
            let hi = lo.saturating_add(self.window_nanos);
            let last = self.window + 1 == self.windows;
            self.window += 1;

            // Admit flows whose earliest packet can fall before the window
            // ends; retire flows already past.
            while self.activated < self.by_start.len() {
                let flow = self.by_start[self.activated];
                if self.starts[flow as usize] >= hi {
                    break;
                }
                self.active.push(flow);
                self.activated += 1;
            }
            let ends = &self.ends;
            self.active.retain(|&flow| ends[flow as usize] >= lo);

            self.staged.clear();
            for &flow_index in &self.active {
                let flow = &self.flows[flow_index as usize];
                let draws = placement_draws(flow, &self.config);
                let mut rng = self.draw_states[flow_index as usize].clone();
                for i in 0..flow.packets {
                    let offset = if !draws {
                        if flow.packets == 1 || flow.duration == 0.0 {
                            0.0
                        } else {
                            flow.duration * i as f64 / (flow.packets - 1) as f64
                        }
                    } else {
                        rng.next_f64() * flow.duration
                    };
                    let ts = Timestamp::from_secs_f64(flow.start + offset).as_nanos();
                    // The final window is closed on the right so the very
                    // last timestamp (== max_end) is not dropped.
                    if ts >= lo && (ts < hi || (last && ts == hi)) {
                        self.staged.push((ts, flow_index, i as u32));
                    }
                }
            }
            if self.staged.is_empty() {
                continue;
            }
            // The key is unique, so this total order is what the module docs
            // promise: timestamp first, generation order among ties.
            self.staged.sort_unstable();
            self.batch.clear();
            self.batch.reserve(self.staged.len());
            for &(ts, flow_index, packet_index) in &self.staged {
                let flow = &self.flows[flow_index as usize];
                self.batch.push_columns(
                    ts,
                    flow.key.pack(),
                    self.config.packet_bytes,
                    Some((packet_index as u64 * self.config.packet_bytes as u64) as u32),
                );
            }
            return Some(&self.batch);
        }
        None
    }
}

/// Whether `synthesize_packets` consumes one RNG draw per packet of `flow`.
fn placement_draws(flow: &FlowRecord, config: &SynthesisConfig) -> bool {
    config.uniform_placement && flow.packets > 1 && flow.duration != 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::synthesize_packets;
    use crate::workloads::Workload;
    use flowrank_net::PacketRecord;
    use std::collections::HashMap;

    fn drain(stream: &mut SynthesisStream) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        while let Some(batch) = stream.next_window() {
            assert!(!batch.is_empty(), "next_window never yields empty batches");
            out.extend(batch.iter_records());
        }
        out
    }

    /// The streamed trace must equal the materialised one up to permutations
    /// within one timestamp — and any permuted pair must be two packets of
    /// the same flow with the same length (only `tcp_seq` may differ), which
    /// is what makes the permutation invisible to every monitor report.
    fn assert_equivalent(streamed: &[PacketRecord], materialised: &[PacketRecord], label: &str) {
        assert_eq!(streamed.len(), materialised.len(), "{label}: packet count");
        for (a, b) in streamed.iter().zip(materialised) {
            if a == b {
                continue;
            }
            assert_eq!(a.timestamp, b.timestamp, "{label}: tie permutation only");
            assert_eq!(a.length, b.length, "{label}");
            assert_eq!(
                (a.src_ip, a.dst_ip, a.src_port, a.dst_port, a.protocol),
                (b.src_ip, b.dst_ip, b.src_port, b.dst_port, b.protocol),
                "{label}: permuted packets must share their flow"
            );
        }
        // And as multisets the two traces are identical.
        let mut counts: HashMap<String, i64> = HashMap::new();
        for p in streamed {
            *counts.entry(format!("{p:?}")).or_default() += 1;
        }
        for p in materialised {
            *counts.entry(format!("{p:?}")).or_default() -= 1;
        }
        assert!(
            counts.values().all(|&c| c == 0),
            "{label}: multiset mismatch"
        );
    }

    #[test]
    fn every_catalog_stream_matches_its_materialised_trace() {
        for workload in Workload::catalog() {
            let seed = 0xBEE5;
            let materialised = workload.synthesize(seed);
            let mut stream = workload.stream(seed);
            let streamed = drain(&mut stream);
            assert_equivalent(&streamed, &materialised, workload.name());
            assert!(stream.next_window().is_none(), "stream stays exhausted");
        }
    }

    #[test]
    fn window_length_does_not_change_the_stream() {
        let workload = Workload::ddos_flood();
        let flows = workload.generate_flows(3);
        let config = SynthesisConfig::default();
        let baseline = drain(&mut SynthesisStream::new(&flows, &config, 3));
        for secs in [0.25, 7.0, 61.0, 10_000.0] {
            let mut stream =
                SynthesisStream::with_window(&flows, &config, 3, Timestamp::from_secs_f64(secs));
            assert_eq!(drain(&mut stream), baseline, "window {secs}s");
        }
        // Zero falls back to the default window.
        let mut stream = SynthesisStream::with_window(&flows, &config, 3, Timestamp::ZERO);
        assert_eq!(drain(&mut stream), baseline);
    }

    #[test]
    fn stream_is_sorted_and_deterministic() {
        let workload = Workload::rank_churn();
        let a = drain(&mut workload.stream(9));
        let b = drain(&mut workload.stream(9));
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
        let c = drain(&mut workload.stream(10));
        assert_ne!(a, c, "seed-sensitive");
    }

    #[test]
    fn even_placement_streams_identically() {
        let flows = Workload::heavy_tail(1.5).generate_flows(4);
        let config = SynthesisConfig {
            uniform_placement: false,
            ..SynthesisConfig::default()
        };
        let streamed = drain(&mut SynthesisStream::new(&flows, &config, 4));
        let materialised = synthesize_packets(&flows, &config, 4);
        assert_equivalent(&streamed, &materialised, "even placement");
    }

    #[test]
    fn empty_population_streams_nothing() {
        let mut stream = SynthesisStream::new(&[], &SynthesisConfig::default(), 1);
        assert!(stream.next_window().is_none());
        assert_eq!(stream.flow_count(), 0);
    }
}

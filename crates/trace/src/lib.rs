//! # flowrank-trace
//!
//! Synthetic traffic-trace models for the `flowrank` workspace.
//!
//! The paper validates its analytical models with trace-driven simulations on
//! two traces that are not publicly redistributable:
//!
//! * a 30-minute **Sprint** OC-12 backbone flow-level trace (Sec. 8.1–8.2) —
//!   the paper itself only uses the per-flow size, duration and start time and
//!   re-synthesises packet arrivals uniformly over each flow's lifetime;
//! * a 30-minute **Abilene-I** OC-48 packet trace from NLANR (Sec. 8.3),
//!   characterised by more flows, higher utilisation and a short-tailed
//!   flow-size distribution.
//!
//! This crate builds the closest synthetic equivalents from the published
//! parameters (flow arrival rate, mean flow size, mean duration, Pareto
//! shape) so the same code path — flow-level records → packet-level trace →
//! sampling → ranking — can be exercised end to end:
//!
//! * [`flow_record`] — the flow-level record (size, duration, start time,
//!   5-tuple).
//! * [`arrivals`] — Poisson and deterministic flow-arrival processes.
//! * [`addressing`] — 5-tuple/prefix assignment with Zipf prefix popularity so
//!   that /24 aggregation produces fewer, larger flows as in the paper.
//! * [`sprint`] — the Sprint-backbone-like flow-level model.
//! * [`abilene`] — the Abilene-like short-tailed model.
//! * [`synthesis`] — expansion of flow records into a packet-level trace
//!   (uniform packet placement over the flow lifetime, Sec. 8.1).
//! * [`stream`] — the pull-based form of that expansion: a
//!   [`SynthesisStream`] yields the trace window by window as SoA packet
//!   batches, with peak memory independent of trace length — the packet
//!   source behind `Monitor::drive` for scenario workloads.
//! * [`summary`] — trace summary statistics.
//! * [`export`] — pcap export of synthetic traces via `flowrank-net`.
//! * [`workloads`] — the deterministic scenario catalog (heavy-tail α, flash
//!   crowd, DDoS flood, port scan, rank churn, mixed) that stresses the
//!   pipeline with traffic shapes beyond the Sprint/Abilene models.
//! * [`fleet`] — the multi-tenant fleet scenario: N tenants with
//!   heterogeneous catalog mixes and diurnal intensity envelopes, merged
//!   into one tenant-tagged stream for the `flowrank-fleet` layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abilene;
pub mod addressing;
pub mod arrivals;
pub mod export;
pub mod fleet;
pub mod flow_record;
pub mod generator;
pub mod replay;
pub mod sprint;
pub mod stream;
pub mod summary;
pub mod synthesis;
pub mod workloads;

pub use abilene::AbileneModel;
pub use fleet::{FleetScenario, FleetStream};
pub use flow_record::FlowRecord;
pub use generator::{FlowPopulationConfig, SizeModel};
pub use replay::{PacedReplay, ReplayTick};
pub use sprint::SprintModel;
pub use stream::SynthesisStream;
pub use synthesis::{synthesize_packet_batch, synthesize_packets, SynthesisConfig};
pub use workloads::Workload;

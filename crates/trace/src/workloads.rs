//! Deterministic scenario workload engine.
//!
//! The paper's claims are about how well flow *rank* survives sampling under
//! real traffic shapes, yet a single Sprint-like population exercises only
//! one of those shapes. This module is a catalog of parameterised, seedable
//! traffic models that stress the ranking pipeline in qualitatively
//! different ways:
//!
//! * [`Workload::HeavyTail`] — Pareto flow sizes with a tunable tail index α
//!   (the paper's β), from "mild" (α near 3) to "wild" (α near 1.1);
//! * [`Workload::FlashCrowd`] — a sudden arrival-rate spike whose flows all
//!   land on a handful of hot /24 prefixes (many clients, one service);
//! * [`Workload::DdosFlood`] — a huge population of 1–3-packet flows aimed
//!   at a few victim prefixes, drowning a small set of long-lived elephants;
//! * [`Workload::PortScan`] — one source sweeping thousands of destination
//!   addresses, one packet per 5-tuple, over light background traffic;
//! * [`Workload::RankChurn`] — the heavy-hitter *identities* rotate every
//!   measurement bin, so top-t membership never settles;
//! * [`Workload::Mixed`] — an internet-like composition of all of the above.
//!
//! Every scenario emits ordinary [`FlowRecord`]s, so the existing synthesis
//! pipeline ([`synthesize_packets`] / [`synthesize_packet_batch`]) turns any
//! of them into a packet trace or SoA batch unchanged. Destination addresses
//! come from the Zipf prefix-popularity model of [`crate::addressing`] (or
//! deliberate prefix sweeps), so `/24` aggregation is non-trivial in every
//! scenario.
//!
//! # Determinism
//!
//! A workload is a pure function of its parameters and the `seed` passed to
//! [`Workload::generate_flows`] / [`Workload::synthesize`]: all randomness
//! flows from [`Pcg64`] generators seeded with `seed` xor a per-component
//! salt, and no iteration order depends on hash internals. The conformance
//! harness in `flowrank-sim` relies on this to pin golden digests of whole
//! report streams per (scenario, sampler, top-k) cell; regenerate them with
//! `scripts/regen_goldens.sh` after an *intentional* behaviour change (the
//! script refuses to run on a dirty tree, so a regeneration is always its
//! own commit).

use std::net::Ipv4Addr;

use flowrank_net::{FiveTuple, PacketBatch, PacketRecord, Protocol};
use flowrank_stats::dist::{ContinuousDistribution, Exponential};
use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

use crate::addressing::PrefixAddresser;
use crate::arrivals::{ArrivalProcess, PoissonArrivals};
use crate::flow_record::{synthetic_key, FlowRecord};
use crate::generator::{generate_flow_population, FlowPopulationConfig, SizeModel};
use crate::synthesis::{synthesize_packet_batch, synthesize_packets, SynthesisConfig};

/// Salt separating a workload's packet-placement stream from its flow stream.
pub(crate) const SYNTHESIS_SALT: u64 = 0x5CE2_A110_0000_0001;
/// Salt for flash-crowd spike randomness.
const SPIKE_SALT: u64 = 0xF1A5_4C20_3D00_0002;
/// Salt for DDoS-flood randomness.
const FLOOD_SALT: u64 = 0xDD05_F100_D000_0003;
/// Salt for port-scan randomness.
const SCAN_SALT: u64 = 0x5CAA_0000_0000_0004;
/// Salt for rank-churn randomness.
const CHURN_SALT: u64 = 0xC4C4_0000_0000_0005;
/// Flow-index namespaces keep manually keyed components from sharing
/// synthetic 5-tuples with the Poisson background population (which numbers
/// its flows from zero).
const SPIKE_INDEX_BASE: u64 = 10_000_000;
const FLOOD_INDEX_BASE: u64 = 20_000_000;
const CHURN_INDEX_BASE: u64 = 30_000_000;
const MICE_INDEX_BASE: u64 = 40_000_000;

/// A parameterised, seedable traffic scenario.
///
/// Construct one directly, or use the default-parameterised constructors
/// ([`Workload::heavy_tail`], [`Workload::flash_crowd`], …) and
/// [`Workload::catalog`], which is the conformance-scale set the golden
/// digests are pinned on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Heavy-tailed Pareto flow sizes with tunable tail index `alpha`.
    HeavyTail {
        /// Pareto tail index (the paper's β); smaller is heavier.
        alpha: f64,
        /// Flow arrival rate in flows per second.
        flow_rate: f64,
        /// Trace length in seconds.
        duration_secs: f64,
    },
    /// Flash crowd: baseline traffic plus a sudden arrival spike whose flows
    /// concentrate on a few hot /24 prefixes.
    FlashCrowd {
        /// Baseline flow arrival rate (flows per second).
        base_rate: f64,
        /// Spike flow arrival rate during the crowd window.
        spike_rate: f64,
        /// Start of the crowd window in seconds.
        spike_start: f64,
        /// Length of the crowd window in seconds.
        spike_secs: f64,
        /// Number of hot /24 prefixes the crowd lands on.
        hot_prefixes: usize,
        /// Trace length in seconds.
        duration_secs: f64,
    },
    /// DDoS-like flood: a handful of long-lived elephants under a storm of
    /// 1–3-packet flows aimed at a few victim prefixes.
    DdosFlood {
        /// Number of long-lived elephant flows.
        elephants: usize,
        /// Packets per elephant (spread slightly so ranks are distinct).
        elephant_packets: u64,
        /// Arrival rate of the tiny attack flows (flows per second).
        mice_rate: f64,
        /// Number of victim /24 prefixes absorbing the flood.
        victim_prefixes: usize,
        /// Trace length in seconds.
        duration_secs: f64,
    },
    /// Port-scan sweep: one source walks thousands of destination addresses
    /// (one packet per 5-tuple) over light background traffic.
    PortScan {
        /// Probe rate in probes per second (each probe is one 1-packet flow).
        scan_rate: f64,
        /// Size of the swept destination-address pool (sequential hosts, so
        /// the sweep crosses `targets / 256` distinct /24 prefixes).
        targets: usize,
        /// Background flow arrival rate (flows per second).
        background_rate: f64,
        /// Trace length in seconds.
        duration_secs: f64,
    },
    /// Rank churn: the heavy-hitter identities rotate every bin, so the
    /// top-t membership of consecutive bins overlaps only partially.
    RankChurn {
        /// Measurement-bin length the rotation is aligned to.
        bin_secs: f64,
        /// Number of bins in the trace.
        bins: usize,
        /// Heavy flows active in each bin.
        heavy_per_bin: usize,
        /// Packets of the largest heavy flow in each bin.
        heavy_packets: u64,
        /// Background mice arrival rate (flows per second).
        mice_rate: f64,
    },
    /// Internet-like mix: heavy-tail base load + a flash crowd + a port scan
    /// + a tiny-flow flood, all in one trace.
    Mixed {
        /// Intensity multiplier applied to every component's arrival rate.
        scale: f64,
        /// Trace length in seconds.
        duration_secs: f64,
    },
}

impl Workload {
    /// Heavy-tail scenario with tail index `alpha` at catalog scale.
    pub fn heavy_tail(alpha: f64) -> Self {
        Workload::HeavyTail {
            alpha,
            flow_rate: 4.0,
            duration_secs: 170.0,
        }
    }

    /// Flash-crowd scenario at catalog scale.
    pub fn flash_crowd() -> Self {
        Workload::FlashCrowd {
            base_rate: 3.0,
            spike_rate: 35.0,
            spike_start: 70.0,
            spike_secs: 20.0,
            hot_prefixes: 3,
            duration_secs: 170.0,
        }
    }

    /// DDoS-flood scenario at catalog scale.
    pub fn ddos_flood() -> Self {
        Workload::DdosFlood {
            elephants: 8,
            elephant_packets: 300,
            mice_rate: 15.0,
            victim_prefixes: 4,
            duration_secs: 170.0,
        }
    }

    /// Port-scan scenario at catalog scale.
    pub fn port_scan() -> Self {
        Workload::PortScan {
            scan_rate: 12.0,
            targets: 2_048,
            background_rate: 2.5,
            duration_secs: 170.0,
        }
    }

    /// Rank-churn scenario at catalog scale (three 60-second bins).
    pub fn rank_churn() -> Self {
        Workload::RankChurn {
            bin_secs: 60.0,
            bins: 3,
            heavy_per_bin: 8,
            heavy_packets: 260,
            mice_rate: 4.0,
        }
    }

    /// Mixed internet-like scenario at catalog scale.
    pub fn mixed() -> Self {
        Workload::Mixed {
            scale: 0.4,
            duration_secs: 170.0,
        }
    }

    /// The conformance-scale catalog: one instance of every scenario, in the
    /// fixed order the golden digests are recorded in.
    pub fn catalog() -> Vec<Workload> {
        vec![
            Workload::heavy_tail(1.3),
            Workload::flash_crowd(),
            Workload::ddos_flood(),
            Workload::port_scan(),
            Workload::rank_churn(),
            Workload::mixed(),
        ]
    }

    /// Short kebab-case scenario name (stable: golden digests key on it).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::HeavyTail { .. } => "heavy-tail",
            Workload::FlashCrowd { .. } => "flash-crowd",
            Workload::DdosFlood { .. } => "ddos-flood",
            Workload::PortScan { .. } => "port-scan",
            Workload::RankChurn { .. } => "rank-churn",
            Workload::Mixed { .. } => "mixed",
        }
    }

    /// Looks a catalog-scale scenario up by its [`Workload::name`].
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::catalog().into_iter().find(|w| w.name() == name)
    }

    /// Trace length in seconds.
    pub fn duration_secs(&self) -> f64 {
        match *self {
            Workload::HeavyTail { duration_secs, .. }
            | Workload::FlashCrowd { duration_secs, .. }
            | Workload::DdosFlood { duration_secs, .. }
            | Workload::PortScan { duration_secs, .. }
            | Workload::Mixed { duration_secs, .. } => duration_secs,
            Workload::RankChurn { bin_secs, bins, .. } => bin_secs * bins as f64,
        }
    }

    /// Scales every arrival-rate-like parameter by `scale` (per-flow
    /// statistics are untouched), mirroring
    /// [`FlowPopulationConfig::scaled`]. Used by `reproduce --scenario` and
    /// the per-scenario benches to grow or shrink a scenario without
    /// changing its shape.
    pub fn scaled(self, scale: f64) -> Self {
        let scale = scale.max(0.0);
        let count = |n: usize| ((n as f64 * scale).round() as usize).max(1);
        match self {
            Workload::HeavyTail {
                alpha,
                flow_rate,
                duration_secs,
            } => Workload::HeavyTail {
                alpha,
                flow_rate: flow_rate * scale,
                duration_secs,
            },
            Workload::FlashCrowd {
                base_rate,
                spike_rate,
                spike_start,
                spike_secs,
                hot_prefixes,
                duration_secs,
            } => Workload::FlashCrowd {
                base_rate: base_rate * scale,
                spike_rate: spike_rate * scale,
                spike_start,
                spike_secs,
                hot_prefixes,
                duration_secs,
            },
            Workload::DdosFlood {
                elephants,
                elephant_packets,
                mice_rate,
                victim_prefixes,
                duration_secs,
            } => Workload::DdosFlood {
                elephants: count(elephants),
                elephant_packets,
                mice_rate: mice_rate * scale,
                victim_prefixes,
                duration_secs,
            },
            Workload::PortScan {
                scan_rate,
                targets,
                background_rate,
                duration_secs,
            } => Workload::PortScan {
                scan_rate: scan_rate * scale,
                targets,
                background_rate: background_rate * scale,
                duration_secs,
            },
            Workload::RankChurn {
                bin_secs,
                bins,
                heavy_per_bin,
                heavy_packets,
                mice_rate,
            } => Workload::RankChurn {
                bin_secs,
                bins,
                heavy_per_bin: count(heavy_per_bin),
                heavy_packets,
                mice_rate: mice_rate * scale,
            },
            Workload::Mixed {
                scale: intensity,
                duration_secs,
            } => Workload::Mixed {
                scale: intensity * scale,
                duration_secs,
            },
        }
    }

    /// Generates the scenario's flow-level records, deterministically from
    /// `seed`.
    pub fn generate_flows(&self, seed: u64) -> Vec<FlowRecord> {
        match *self {
            Workload::HeavyTail {
                alpha,
                flow_rate,
                duration_secs,
            } => heavy_tail_flows(alpha, flow_rate, duration_secs, seed),
            Workload::FlashCrowd {
                base_rate,
                spike_rate,
                spike_start,
                spike_secs,
                hot_prefixes,
                duration_secs,
            } => flash_crowd_flows(
                base_rate,
                spike_rate,
                spike_start,
                spike_secs,
                hot_prefixes,
                duration_secs,
                seed,
            ),
            Workload::DdosFlood {
                elephants,
                elephant_packets,
                mice_rate,
                victim_prefixes,
                duration_secs,
            } => ddos_flood_flows(
                elephants,
                elephant_packets,
                mice_rate,
                victim_prefixes,
                duration_secs,
                seed,
            ),
            Workload::PortScan {
                scan_rate,
                targets,
                background_rate,
                duration_secs,
            } => port_scan_flows(scan_rate, targets, background_rate, duration_secs, seed),
            Workload::RankChurn {
                bin_secs,
                bins,
                heavy_per_bin,
                heavy_packets,
                mice_rate,
            } => rank_churn_flows(
                bin_secs,
                bins,
                heavy_per_bin,
                heavy_packets,
                mice_rate,
                seed,
            ),
            Workload::Mixed {
                scale,
                duration_secs,
            } => mixed_flows(scale, duration_secs, seed),
        }
    }

    /// Expands the scenario into a time-sorted packet trace — the
    /// flow-to-packet expansion is the same [`synthesize_packets`] step every
    /// other trace model uses.
    pub fn synthesize(&self, seed: u64) -> Vec<PacketRecord> {
        synthesize_packets(
            &self.generate_flows(seed),
            &SynthesisConfig::default(),
            seed ^ SYNTHESIS_SALT,
        )
    }

    /// Expands the scenario straight into a SoA [`PacketBatch`]
    /// (column-for-column equal to batching [`Workload::synthesize`]).
    pub fn synthesize_batch(&self, seed: u64) -> PacketBatch {
        synthesize_packet_batch(
            &self.generate_flows(seed),
            &SynthesisConfig::default(),
            seed ^ SYNTHESIS_SALT,
        )
    }

    /// Opens the scenario as a pull-based packet stream: the same expansion
    /// as [`Workload::synthesize`] (same flows, same placement draws),
    /// produced window by window with peak memory independent of trace
    /// length. See [`crate::SynthesisStream`] for the ordering contract.
    pub fn stream(&self, seed: u64) -> crate::SynthesisStream {
        self.stream_with_window(seed, crate::stream::DEFAULT_WINDOW)
    }

    /// [`Workload::stream`] with an explicit window length (the same flows
    /// and placement draws — window length only sets chunk granularity).
    /// Sub-second windows make a paced replay ([`crate::PacedReplay`])
    /// smooth instead of bursty.
    pub fn stream_with_window(
        &self,
        seed: u64,
        window: flowrank_net::Timestamp,
    ) -> crate::SynthesisStream {
        crate::SynthesisStream::from_flows(
            self.generate_flows(seed),
            &SynthesisConfig::default(),
            seed ^ SYNTHESIS_SALT,
            window,
        )
    }
}

/// The Poisson background population shared by several scenarios: Pareto
/// sizes over a Zipf-popular /24 pool.
fn background_config(flow_rate: f64, duration_secs: f64, shape: f64) -> FlowPopulationConfig {
    FlowPopulationConfig {
        duration_secs,
        flow_rate: flow_rate.max(f64::MIN_POSITIVE),
        size_model: SizeModel::Pareto {
            mean_packets: 9.6,
            shape,
        },
        mean_flow_duration: 6.0,
        packet_bytes: 500,
        prefix_count: 512,
        prefix_zipf_exponent: 1.1,
    }
}

fn heavy_tail_flows(alpha: f64, flow_rate: f64, duration_secs: f64, seed: u64) -> Vec<FlowRecord> {
    generate_flow_population(&background_config(flow_rate, duration_secs, alpha), seed)
}

fn flash_crowd_flows(
    base_rate: f64,
    spike_rate: f64,
    spike_start: f64,
    spike_secs: f64,
    hot_prefixes: usize,
    duration_secs: f64,
    seed: u64,
) -> Vec<FlowRecord> {
    let mut flows = heavy_tail_flows(1.5, base_rate, duration_secs, seed);
    let mut rng = Pcg64::seed_from_u64(seed ^ SPIKE_SALT);
    // The crowd lands on the *popular* end of the same prefix pool the
    // background uses, so under /24 aggregation the hot prefixes spike on
    // top of their baseline volume.
    let hot = PrefixAddresser::new(hot_prefixes.max(1), 1.2);
    let sizes = Exponential::with_mean(4.0).expect("positive mean");
    let durations = Exponential::with_mean(1.5).expect("positive mean");
    let starts = PoissonArrivals::new(spike_rate.max(f64::MIN_POSITIVE))
        .arrivals_until(spike_secs, &mut rng);
    for (index, offset) in starts.into_iter().enumerate() {
        // Request-like flows: small, short, all aimed at the hot prefixes.
        let packets = sizes.sample(&mut rng).round().max(1.0) as u64;
        let dst = hot.draw(&mut rng);
        let key = synthetic_key(SPIKE_INDEX_BASE + index as u64, dst, 443);
        let duration = if packets == 1 {
            0.0
        } else {
            durations.sample(&mut rng)
        };
        flows.push(FlowRecord::new(
            key,
            packets,
            packets * 500,
            spike_start + offset,
            duration,
        ));
    }
    flows
}

fn ddos_flood_flows(
    elephants: usize,
    elephant_packets: u64,
    mice_rate: f64,
    victim_prefixes: usize,
    duration_secs: f64,
    seed: u64,
) -> Vec<FlowRecord> {
    let mut rng = Pcg64::seed_from_u64(seed ^ FLOOD_SALT);
    let legit = PrefixAddresser::new(64, 1.05);
    let victims = PrefixAddresser::new(victim_prefixes.max(1), 1.0);
    let mut flows = Vec::new();
    // The elephants: long-lived flows spanning almost the whole trace, with
    // deliberately distinct sizes so the true ranking is unambiguous.
    for i in 0..elephants {
        let start = rng.next_f64() * 4.0;
        let duration = (duration_secs - start - rng.next_f64() * 4.0).max(1.0);
        let packets = elephant_packets + (elephants - i) as u64 * 13;
        let key = synthetic_key(i as u64, legit.draw(&mut rng), 443);
        flows.push(FlowRecord::new(
            key,
            packets,
            packets * 500,
            start,
            duration,
        ));
    }
    // The flood: 1–3-packet flows from ever-new sources onto the victims.
    let starts = PoissonArrivals::new(mice_rate.max(f64::MIN_POSITIVE))
        .arrivals_until(duration_secs, &mut rng);
    for (index, start) in starts.into_iter().enumerate() {
        let packets = 1 + rng.next_below(3);
        let dst = victims.draw(&mut rng);
        let key = synthetic_key(FLOOD_INDEX_BASE + index as u64, dst, 80);
        let duration = if packets == 1 {
            0.0
        } else {
            rng.next_f64() * 0.3
        };
        flows.push(FlowRecord::new(
            key,
            packets,
            packets * 500,
            start,
            duration,
        ));
    }
    flows
}

fn port_scan_flows(
    scan_rate: f64,
    targets: usize,
    background_rate: f64,
    duration_secs: f64,
    seed: u64,
) -> Vec<FlowRecord> {
    let mut flows = heavy_tail_flows(1.5, background_rate, duration_secs, seed);
    let mut rng = Pcg64::seed_from_u64(seed ^ SCAN_SALT);
    // One scanner host paces probes evenly; each probe is a 1-packet flow to
    // the next address of a sequential sweep, so consecutive probes share a
    // /24 until the sweep crosses into the next prefix.
    let scanner = Ipv4Addr::new(198, 51, 100, 7);
    let sweep_base = u32::from(Ipv4Addr::new(100, 64, 0, 0));
    let probes = (scan_rate * duration_secs).floor() as usize;
    let pool = targets.max(1) as u32;
    for probe in 0..probes {
        let start = (probe as f64 + rng.next_f64()) / scan_rate.max(f64::MIN_POSITIVE);
        let key = FiveTuple {
            src_ip: scanner,
            dst_ip: Ipv4Addr::from(sweep_base + probe as u32 % pool),
            src_port: 40_000 + (probe % 20_000) as u16,
            dst_port: 1 + (probe % 1_024) as u16,
            protocol: Protocol::Tcp,
        };
        flows.push(FlowRecord::new(key, 1, 500, start.min(duration_secs), 0.0));
    }
    flows
}

fn rank_churn_flows(
    bin_secs: f64,
    bins: usize,
    heavy_per_bin: usize,
    heavy_packets: u64,
    mice_rate: f64,
    seed: u64,
) -> Vec<FlowRecord> {
    let mut rng = Pcg64::seed_from_u64(seed ^ CHURN_SALT);
    let heavy_per_bin = heavy_per_bin.max(1);
    let addresser = PrefixAddresser::new(64, 1.0);
    // A pool of stable heavy identities twice the per-bin head count; each
    // bin advances the window by half a head, so roughly half the top set
    // churns between consecutive bins.
    let pool = heavy_per_bin * 2;
    let identities: Vec<FiveTuple> = (0..pool)
        .map(|i| synthetic_key(CHURN_INDEX_BASE + i as u64, addresser.draw(&mut rng), 443))
        .collect();
    let step = (heavy_per_bin / 2).max(1);
    let mut flows = Vec::new();
    for bin in 0..bins {
        let bin_start = bin as f64 * bin_secs;
        for j in 0..heavy_per_bin {
            let identity = identities[(bin * step + j) % pool];
            // Distinct sizes per bin rank; small jitter keeps placement
            // non-degenerate without letting the flow cross the bin edge.
            let packets = heavy_packets.saturating_sub(j as u64 * 12).max(4);
            let start = bin_start + rng.next_f64() * 0.1 * bin_secs;
            let duration = 0.75 * bin_secs;
            flows.push(FlowRecord::new(
                identity,
                packets,
                packets * 500,
                start,
                duration,
            ));
        }
    }
    // Light background mice across the whole trace.
    let horizon = bin_secs * bins as f64;
    let starts =
        PoissonArrivals::new(mice_rate.max(f64::MIN_POSITIVE)).arrivals_until(horizon, &mut rng);
    for (index, start) in starts.into_iter().enumerate() {
        let packets = 1 + rng.next_below(3);
        let key = synthetic_key(MICE_INDEX_BASE + index as u64, addresser.draw(&mut rng), 80);
        flows.push(FlowRecord::new(key, packets, packets * 500, start, 0.0));
    }
    flows
}

fn mixed_flows(scale: f64, duration_secs: f64, seed: u64) -> Vec<FlowRecord> {
    // Each component reuses its dedicated builder with a derived seed, a
    // scaled rate and windows staggered across the trace, so the mix carries
    // a heavy-tail base, a mid-trace flash crowd, a continuous slow scan and
    // a late flood — all in one key space.
    let mut flows = heavy_tail_flows(1.4, 3.0 * scale, duration_secs, seed);
    flows.extend(flash_crowd_flows(
        0.0, // base handled above; only the spike
        25.0 * scale,
        duration_secs * 0.35,
        duration_secs * 0.15,
        2,
        duration_secs,
        seed ^ 0x1111,
    ));
    flows.extend(port_scan_flows(
        6.0 * scale,
        1_024,
        0.0,
        duration_secs,
        seed ^ 0x2222,
    ));
    let flood_window = duration_secs * 0.3;
    let mut flood = ddos_flood_flows(4, 180, 12.0 * scale, 2, flood_window, seed ^ 0x3333);
    // Shift the flood into the last third of the trace.
    let shift = duration_secs - flood_window;
    for flow in &mut flood {
        flow.start += shift;
    }
    flows.extend(flood);
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_net::DstPrefix;
    use std::collections::HashSet;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let catalog = Workload::catalog();
        let names: HashSet<&str> = catalog.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), catalog.len());
        for workload in &catalog {
            assert_eq!(Workload::by_name(workload.name()), Some(*workload));
        }
        assert_eq!(Workload::by_name("no-such-scenario"), None);
    }

    #[test]
    fn every_scenario_is_deterministic_and_seed_sensitive() {
        for workload in Workload::catalog() {
            let a = workload.synthesize(7);
            let b = workload.synthesize(7);
            let c = workload.synthesize(8);
            assert_eq!(a, b, "{}", workload.name());
            assert_ne!(a, c, "{}", workload.name());
            assert!(!a.is_empty(), "{}", workload.name());
            for w in a.windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp, "{}", workload.name());
            }
        }
    }

    #[test]
    fn batch_synthesis_matches_record_synthesis() {
        for workload in Workload::catalog() {
            let batch = workload.synthesize_batch(3);
            assert_eq!(
                batch.to_records(),
                workload.synthesize(3),
                "{}",
                workload.name()
            );
        }
    }

    #[test]
    fn heavy_tail_alpha_controls_the_tail() {
        let wild = Workload::heavy_tail(1.1).generate_flows(5);
        let mild = Workload::heavy_tail(3.0).generate_flows(5);
        let max_wild = wild.iter().map(|f| f.packets).max().unwrap();
        let max_mild = mild.iter().map(|f| f.packets).max().unwrap();
        assert!(
            max_wild > 2 * max_mild,
            "α=1.1 max {max_wild} must dwarf α=3 max {max_mild}"
        );
        // The heavier tail concentrates more of the total volume in its
        // single largest flow.
        let share = |flows: &[crate::FlowRecord], max: u64| {
            max as f64 / flows.iter().map(|f| f.packets).sum::<u64>() as f64
        };
        assert!(share(&wild, max_wild) > 1.5 * share(&mild, max_mild));
    }

    #[test]
    fn flash_crowd_spikes_inside_its_window() {
        let workload = Workload::flash_crowd();
        let (spike_start, spike_secs) = match workload {
            Workload::FlashCrowd {
                spike_start,
                spike_secs,
                ..
            } => (spike_start, spike_secs),
            _ => unreachable!(),
        };
        let flows = workload.generate_flows(9);
        let window = |lo: f64, hi: f64| {
            flows
                .iter()
                .filter(|f| f.start >= lo && f.start < hi)
                .count() as f64
                / (hi - lo)
        };
        let in_spike = window(spike_start, spike_start + spike_secs);
        let before = window(0.0, spike_start);
        assert!(
            in_spike > 4.0 * before,
            "arrival rate in the window ({in_spike:.1}/s) must dwarf the baseline ({before:.1}/s)"
        );
    }

    #[test]
    fn ddos_flood_drowns_elephants_in_mice() {
        let flows = Workload::ddos_flood().generate_flows(11);
        let mice = flows.iter().filter(|f| f.packets <= 3).count();
        let elephants = flows.iter().filter(|f| f.packets >= 200).count();
        assert!(elephants >= 4, "{elephants} elephants");
        assert!(
            mice > 50 * elephants,
            "{mice} mice must drown {elephants} elephants"
        );
        // The flood concentrates on few /24s: mice prefixes ≪ mice flows.
        let mice_prefixes: HashSet<DstPrefix> = flows
            .iter()
            .filter(|f| f.packets <= 3)
            .map(|f| DstPrefix::of(f.key.dst_ip, 24))
            .collect();
        assert!(mice_prefixes.len() <= 8, "{} prefixes", mice_prefixes.len());
    }

    #[test]
    fn port_scan_sweeps_many_keys_from_one_source() {
        let flows = Workload::port_scan().generate_flows(13);
        let scanner = Ipv4Addr::new(198, 51, 100, 7);
        let probes: Vec<_> = flows.iter().filter(|f| f.key.src_ip == scanner).collect();
        assert!(probes.len() > 1_000, "{} probes", probes.len());
        assert!(probes.iter().all(|f| f.packets == 1));
        let keys: HashSet<FiveTuple> = probes.iter().map(|f| f.key).collect();
        assert_eq!(keys.len(), probes.len(), "every probe is its own 5-tuple");
        let prefixes: HashSet<DstPrefix> = probes
            .iter()
            .map(|f| DstPrefix::of(f.key.dst_ip, 24))
            .collect();
        assert!(prefixes.len() >= 8, "{} swept prefixes", prefixes.len());
    }

    #[test]
    fn rank_churn_rotates_top_membership_between_bins() {
        let workload = Workload::rank_churn();
        let flows = workload.generate_flows(17);
        let top_keys = |bin: usize| -> HashSet<FiveTuple> {
            let lo = bin as f64 * 60.0;
            let mut heavy: Vec<_> = flows
                .iter()
                .filter(|f| f.start >= lo && f.start < lo + 60.0 && f.packets >= 100)
                .collect();
            heavy.sort_by_key(|f| std::cmp::Reverse(f.packets));
            heavy.iter().take(8).map(|f| f.key).collect()
        };
        let a = top_keys(0);
        let b = top_keys(1);
        assert_eq!(a.len(), 8);
        let shared = a.intersection(&b).count();
        assert!(shared < 8, "membership must churn (shared {shared})");
        assert!(shared > 0, "rotation keeps some identities");
    }

    #[test]
    fn mixed_contains_every_component() {
        let flows = Workload::mixed().generate_flows(19);
        let scanner = Ipv4Addr::new(198, 51, 100, 7);
        assert!(flows.iter().any(|f| f.key.src_ip == scanner), "scan");
        assert!(flows.iter().any(|f| f.packets >= 150), "elephants");
        assert!(
            flows.iter().filter(|f| f.packets <= 3).count() > 200,
            "flood mice"
        );
    }

    #[test]
    fn scaled_shrinks_the_population_without_changing_shape() {
        for workload in Workload::catalog() {
            let full: u64 = workload.generate_flows(23).iter().map(|f| f.packets).sum();
            let quarter: u64 = workload
                .scaled(0.25)
                .generate_flows(23)
                .iter()
                .map(|f| f.packets)
                .sum();
            assert!(quarter < full, "{}: {quarter} !< {full}", workload.name());
            assert_eq!(workload.scaled(1.0), workload, "{}", workload.name());
        }
    }
}

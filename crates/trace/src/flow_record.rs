//! Flow-level records.
//!
//! The Sprint trace used by the paper is *flow level*: for every flow it
//! gives the size, the duration and the starting time, but not the individual
//! packets. [`FlowRecord`] mirrors that shape and carries in addition the
//! synthetic 5-tuple assigned by the generator, so that both flow definitions
//! (5-tuple and /24 destination prefix) can later be applied to the
//! synthesised packets.

use std::net::Ipv4Addr;

use flowrank_net::{FiveTuple, Protocol};

/// One flow as recorded by a flow-level trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// The flow's 5-tuple identity.
    pub key: FiveTuple,
    /// Number of packets in the flow (≥ 1).
    pub packets: u64,
    /// Total bytes carried by the flow.
    pub bytes: u64,
    /// Start time in seconds from the beginning of the trace.
    pub start: f64,
    /// Duration in seconds (0 for single-packet flows).
    pub duration: f64,
}

impl FlowRecord {
    /// Creates a flow record, clamping packets to at least one and the
    /// duration to a non-negative value.
    pub fn new(key: FiveTuple, packets: u64, bytes: u64, start: f64, duration: f64) -> Self {
        FlowRecord {
            key,
            packets: packets.max(1),
            bytes,
            start: start.max(0.0),
            duration: duration.max(0.0),
        }
    }

    /// End time of the flow in seconds.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// Average packet size in bytes.
    pub fn mean_packet_size(&self) -> f64 {
        self.bytes as f64 / self.packets as f64
    }
}

/// Builds a simple synthetic 5-tuple for generator use.
///
/// The source address encodes the flow index so every generated flow is
/// distinct at the 5-tuple level; the destination address is chosen by the
/// caller (typically via the prefix popularity model in
/// [`crate::addressing`]).
pub fn synthetic_key(flow_index: u64, dst_ip: Ipv4Addr, dst_port: u16) -> FiveTuple {
    // Spread flow indices over the 10.0.0.0/8 space and ephemeral ports.
    let host = (flow_index % (1 << 22)) as u32; // 4M distinct hosts
    let src_ip = Ipv4Addr::from(0x0A00_0000u32 | host);
    let src_port = 32_768 + (flow_index % 28_000) as u16;
    FiveTuple {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        protocol: Protocol::Tcp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_clamps_degenerate_inputs() {
        let key = synthetic_key(0, Ipv4Addr::new(1, 2, 3, 4), 80);
        let r = FlowRecord::new(key, 0, 500, -1.0, -2.0);
        assert_eq!(r.packets, 1);
        assert_eq!(r.start, 0.0);
        assert_eq!(r.duration, 0.0);
        assert_eq!(r.end(), 0.0);
    }

    #[test]
    fn accessors() {
        let key = synthetic_key(7, Ipv4Addr::new(9, 9, 9, 9), 443);
        let r = FlowRecord::new(key, 10, 5_000, 3.0, 13.0);
        assert_eq!(r.end(), 16.0);
        assert!((r.mean_packet_size() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_keys_distinct_for_distinct_indices() {
        let dst = Ipv4Addr::new(100, 1, 1, 1);
        let a = synthetic_key(1, dst, 80);
        let b = synthetic_key(2, dst, 80);
        assert_ne!(a, b);
        assert_eq!(a.protocol, Protocol::Tcp);
        // Source addresses stay in 10/8.
        assert_eq!(a.src_ip.octets()[0], 10);
    }

    #[test]
    fn synthetic_keys_wrap_safely_for_huge_indices() {
        let dst = Ipv4Addr::new(100, 1, 1, 1);
        let k = synthetic_key(u64::MAX, dst, 80);
        assert_eq!(k.src_ip.octets()[0], 10);
        assert!(k.src_port >= 32_768);
    }
}

//! Flow-arrival processes.
//!
//! The paper reports average flow arrival rates on the monitored Sprint link
//! (2360 flows/s for 5-tuple flows). The synthetic generators model flow
//! arrivals as a homogeneous Poisson process with that rate; a deterministic
//! (evenly spaced) process is also provided for tests and ablations.

use flowrank_stats::dist::{ContinuousDistribution, Exponential};
use flowrank_stats::rng::Rng;

/// A process producing a monotonically increasing sequence of arrival times.
pub trait ArrivalProcess {
    /// Returns the next arrival time in seconds, given the previous one.
    fn next_arrival(&mut self, previous: f64, rng: &mut dyn Rng) -> f64;

    /// Generates every arrival time in `[0, horizon)` seconds.
    fn arrivals_until(&mut self, horizon: f64, rng: &mut dyn Rng) -> Vec<f64>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        let mut t = self.next_arrival(0.0, rng);
        while t < horizon {
            out.push(t);
            t = self.next_arrival(t, rng);
        }
        out
    }
}

/// Homogeneous Poisson arrivals with a given rate (arrivals per second).
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    inter_arrival: Exponential,
}

impl PoissonArrivals {
    /// Creates a Poisson arrival process with `rate` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive (a configuration error in
    /// the experiment definition, not a data-dependent condition).
    pub fn new(rate: f64) -> Self {
        PoissonArrivals {
            inter_arrival: Exponential::new(rate).expect("arrival rate must be positive"),
        }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(&mut self, previous: f64, rng: &mut dyn Rng) -> f64 {
        previous + self.inter_arrival.sample(rng)
    }
}

/// Deterministic, evenly spaced arrivals (one every `1/rate` seconds).
#[derive(Debug, Clone, Copy)]
pub struct DeterministicArrivals {
    interval: f64,
}

impl DeterministicArrivals {
    /// Creates a deterministic arrival process with `rate` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        DeterministicArrivals {
            interval: 1.0 / rate,
        }
    }
}

impl ArrivalProcess for DeterministicArrivals {
    fn next_arrival(&mut self, previous: f64, _rng: &mut dyn Rng) -> f64 {
        previous + self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn poisson_arrival_count_matches_rate() {
        let mut process = PoissonArrivals::new(100.0);
        let mut rng = Pcg64::seed_from_u64(42);
        let arrivals = process.arrivals_until(50.0, &mut rng);
        // Expect ~5000 arrivals; Poisson std dev ≈ 70.
        let n = arrivals.len() as f64;
        assert!((n - 5000.0).abs() < 350.0, "got {n} arrivals");
        // Strictly increasing.
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(arrivals.iter().all(|&t| t < 50.0));
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let mut a = PoissonArrivals::new(10.0);
        let mut b = PoissonArrivals::new(10.0);
        let mut ra = Pcg64::seed_from_u64(7);
        let mut rb = Pcg64::seed_from_u64(7);
        assert_eq!(
            a.arrivals_until(10.0, &mut ra),
            b.arrivals_until(10.0, &mut rb)
        );
    }

    #[test]
    fn deterministic_arrivals_evenly_spaced() {
        let mut process = DeterministicArrivals::new(4.0);
        let mut rng = Pcg64::seed_from_u64(1);
        let arrivals = process.arrivals_until(1.0, &mut rng);
        assert_eq!(arrivals.len(), 3); // 0.25, 0.5, 0.75
        assert!((arrivals[0] - 0.25).abs() < 1e-12);
        assert!((arrivals[2] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn deterministic_rejects_zero_rate() {
        DeterministicArrivals::new(0.0);
    }

    #[test]
    fn empty_horizon_yields_no_arrivals() {
        let mut process = PoissonArrivals::new(1000.0);
        let mut rng = Pcg64::seed_from_u64(3);
        assert!(process.arrivals_until(0.0, &mut rng).is_empty());
    }
}

//! Destination-address assignment with prefix popularity.
//!
//! The paper compares two flow definitions on the same traffic: 5-tuple flows
//! and /24 destination-prefix flows. On the Sprint link the prefix definition
//! yields roughly 7× fewer, 3.5× larger flows (0.1M vs 0.7M flows per 5-minute
//! interval; 16.6 KB vs 4.8 KB mean size). To reproduce that relationship the
//! generator draws each flow's destination /24 prefix from a Zipf popularity
//! law over a finite prefix pool — a handful of popular prefixes receive many
//! flows while the long tail receives one or two — and then picks a host
//! within the prefix.

use std::net::Ipv4Addr;

use flowrank_stats::dist::{DiscreteDistribution, Zipf};
use flowrank_stats::rng::Rng;

/// Assigns destination addresses to generated flows.
#[derive(Debug, Clone)]
pub struct PrefixAddresser {
    popularity: Zipf,
    /// Base of the address range; prefix `i` is `base + i·256`.
    base: u32,
}

impl PrefixAddresser {
    /// Creates an addresser over `prefix_count` /24 prefixes with Zipf
    /// exponent `zipf_exponent`.
    ///
    /// # Panics
    ///
    /// Panics when `prefix_count` is zero or the exponent is not positive
    /// (configuration errors).
    pub fn new(prefix_count: usize, zipf_exponent: f64) -> Self {
        let popularity = Zipf::new(prefix_count, zipf_exponent)
            .expect("prefix pool must be non-empty with a positive Zipf exponent");
        PrefixAddresser {
            popularity,
            // 100.64.0.0 keeps generated prefixes inside a recognisable block.
            base: u32::from(Ipv4Addr::new(100, 64, 0, 0)),
        }
    }

    /// Number of /24 prefixes in the pool.
    pub fn prefix_count(&self) -> usize {
        self.popularity.n()
    }

    /// Draws a destination address: a Zipf-popular /24 prefix and a uniform
    /// host within it.
    pub fn draw(&self, rng: &mut dyn Rng) -> Ipv4Addr {
        let prefix_rank = self.popularity.sample(rng) as u32;
        let host = 1 + (rng.next_below(254)) as u32; // avoid .0 and .255
        Ipv4Addr::from(self.base + prefix_rank * 256 + host)
    }

    /// The network address of the `rank`-th prefix (for assertions/tests).
    pub fn prefix_network(&self, rank: usize) -> Ipv4Addr {
        Ipv4Addr::from(self.base + (rank as u32) * 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_net::{DstPrefix, FlowMap};
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn draws_stay_in_pool() {
        let addresser = PrefixAddresser::new(100, 1.0);
        let mut rng = Pcg64::seed_from_u64(11);
        for _ in 0..10_000 {
            let addr = addresser.draw(&mut rng);
            let prefix = DstPrefix::of(addr, 24);
            let offset = u32::from(prefix.network) - u32::from(Ipv4Addr::new(100, 64, 0, 0));
            assert_eq!(offset % 256, 0);
            assert!((offset / 256) < 100);
            let host = addr.octets()[3];
            assert!((1..=254).contains(&host));
        }
    }

    #[test]
    fn popular_prefix_receives_most_flows() {
        let addresser = PrefixAddresser::new(50, 1.2);
        let mut rng = Pcg64::seed_from_u64(5);
        let mut counts: FlowMap<Ipv4Addr, usize> = FlowMap::new();
        for _ in 0..20_000 {
            let addr = addresser.draw(&mut rng);
            counts.upsert(DstPrefix::of(addr, 24).network, || 1, |c| *c += 1);
        }
        let rank0 = counts
            .get(&addresser.prefix_network(0))
            .copied()
            .unwrap_or(0);
        let max = counts.values().copied().max().unwrap();
        assert_eq!(rank0, max, "the rank-0 prefix must be the most popular");
        // Aggregation actually reduces the number of distinct keys.
        assert!(counts.len() <= 50);
        assert!(counts.len() > 10);
    }

    #[test]
    fn aggregation_ratio_is_tunable() {
        // A steeper Zipf over a smaller pool concentrates flows more.
        let concentrated = PrefixAddresser::new(20, 1.5);
        let spread = PrefixAddresser::new(2000, 0.5);
        let mut rng = Pcg64::seed_from_u64(17);
        let distinct = |a: &PrefixAddresser, rng: &mut Pcg64| {
            let mut set = std::collections::HashSet::new();
            for _ in 0..5_000 {
                set.insert(DstPrefix::of(a.draw(rng), 24).network);
            }
            set.len()
        };
        let d_conc = distinct(&concentrated, &mut rng);
        let d_spread = distinct(&spread, &mut rng);
        assert!(d_conc < d_spread);
    }

    #[test]
    fn deterministic_per_seed() {
        let addresser = PrefixAddresser::new(64, 1.0);
        let mut a = Pcg64::seed_from_u64(9);
        let mut b = Pcg64::seed_from_u64(9);
        let seq_a: Vec<Ipv4Addr> = (0..100).map(|_| addresser.draw(&mut a)).collect();
        let seq_b: Vec<Ipv4Addr> = (0..100).map(|_| addresser.draw(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    #[should_panic(expected = "prefix pool")]
    fn zero_pool_panics() {
        PrefixAddresser::new(0, 1.0);
    }
}

//! Real-time paced replay of a synthesised workload.
//!
//! A [`SynthesisStream`] produces its windows as fast as the caller pulls
//! them; a [`PacedReplay`] wraps one and meters the windows out on the wall
//! clock instead, so a long-lived monitor (the `flowrank-serve` daemon) can
//! replay a scenario the way a live link would deliver it. The replay is
//! *non-blocking by construction*: [`PacedReplay::tick`] answers whether the
//! next window is due now, not yet (and how long until it is), or the trace
//! is over — the caller decides whether to sleep, poll something else, or
//! shut down. Pacing never changes the packet sequence: a paced drive is
//! bit-identical to driving the underlying stream directly.
//!
//! Pacing granularity is the synthesis window: a window's packets are
//! released together when the window's *first* timestamp falls due. Choose
//! the window length ([`SynthesisStream::with_window`]) for the
//! latency/overhead trade: sub-second windows make the replay smooth,
//! bin-length windows make it bursty.

use std::time::{Duration, Instant};

use flowrank_net::PacketBatch;

use crate::stream::SynthesisStream;

/// What one [`PacedReplay::tick`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayTick {
    /// The next window's first timestamp has been reached: take it with
    /// [`PacedReplay::take_window`].
    Due,
    /// The next window exists but is not yet due; the payload is how much
    /// wall time remains until it is.
    NotYet(Duration),
    /// The trace is exhausted.
    Done,
}

/// Wall-clock pacing over a [`SynthesisStream`].
///
/// `speed` is trace-seconds per wall-second: `1.0` replays in real time,
/// `60.0` replays a minute of trace per second, and any value `<= 0.0`
/// disables pacing entirely (every window is immediately [`ReplayTick::Due`]
/// — the as-fast-as-possible mode benchmarks use). The wall clock starts at
/// the first `tick`, anchored to the trace's first packet timestamp, so
/// leading quiet time in the trace is not replayed as dead air.
#[derive(Debug)]
pub struct PacedReplay {
    stream: SynthesisStream,
    speed: f64,
    epoch: Option<Instant>,
    origin_nanos: u64,
    /// A staged window is held here (copied out of the stream's recycled
    /// buffer) until the caller takes it.
    batch: PacketBatch,
    held: bool,
    held_first_nanos: u64,
}

impl PacedReplay {
    /// Paces `stream` at `speed` trace-seconds per wall-second.
    pub fn new(stream: SynthesisStream, speed: f64) -> Self {
        PacedReplay {
            stream,
            speed,
            epoch: None,
            origin_nanos: 0,
            batch: PacketBatch::new(),
            held: false,
            held_first_nanos: 0,
        }
    }

    /// An unpaced replay: every window is due immediately. Equivalent to
    /// driving the stream directly, plus one copy per window.
    pub fn unpaced(stream: SynthesisStream) -> Self {
        PacedReplay::new(stream, 0.0)
    }

    /// The configured trace-seconds-per-wall-second factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Stages the next window if none is staged, then answers whether it is
    /// due on the wall clock. Never sleeps.
    pub fn tick(&mut self) -> ReplayTick {
        if !self.held {
            match self.stream.next_window() {
                None => return ReplayTick::Done,
                Some(window) => {
                    self.batch.clear();
                    self.batch.extend_from_batch(window, 0..window.len());
                    // next_window never yields an empty batch.
                    self.held_first_nanos = self.batch.ts_nanos()[0];
                    self.held = true;
                }
            }
        }
        if self.speed <= 0.0 {
            return ReplayTick::Due;
        }
        let epoch = match self.epoch {
            Some(epoch) => epoch,
            None => {
                let now = Instant::now();
                self.epoch = Some(now);
                self.origin_nanos = self.held_first_nanos;
                now
            }
        };
        let due_wall_nanos =
            ((self.held_first_nanos - self.origin_nanos) as f64 / self.speed) as u64;
        let elapsed_nanos = epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        if elapsed_nanos >= due_wall_nanos {
            ReplayTick::Due
        } else {
            ReplayTick::NotYet(Duration::from_nanos(due_wall_nanos - elapsed_nanos))
        }
    }

    /// Takes the staged window after a [`ReplayTick::Due`]. The borrow is
    /// valid until the next [`PacedReplay::tick`].
    ///
    /// # Panics
    ///
    /// If no window is staged (no preceding `Due` tick).
    pub fn take_window(&mut self) -> &PacketBatch {
        assert!(self.held, "take_window without a Due tick");
        self.held = false;
        &self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use flowrank_net::PacketRecord;

    fn drain_paced(replay: &mut PacedReplay) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        loop {
            match replay.tick() {
                ReplayTick::Due => out.extend(replay.take_window().iter_records()),
                ReplayTick::NotYet(wait) => std::thread::sleep(wait),
                ReplayTick::Done => return out,
            }
        }
    }

    #[test]
    fn unpaced_replay_equals_the_raw_stream() {
        let workload = Workload::rank_churn();
        let mut direct = Vec::new();
        let mut stream = workload.stream(11);
        while let Some(window) = stream.next_window() {
            direct.extend(window.iter_records());
        }
        let mut replay = PacedReplay::unpaced(workload.stream(11));
        assert_eq!(drain_paced(&mut replay), direct);
        assert_eq!(replay.tick(), ReplayTick::Done, "stays exhausted");
    }

    #[test]
    fn extreme_speed_factors_release_everything_quickly_and_identically() {
        let workload = Workload::port_scan();
        let baseline = drain_paced(&mut PacedReplay::unpaced(workload.stream(5)));
        // A workload spanning minutes of trace time replays in microseconds
        // at this speed; pacing must only delay, never reorder or drop.
        let mut fast = PacedReplay::new(workload.stream(5), 1e9);
        assert_eq!(drain_paced(&mut fast), baseline);
    }

    #[test]
    fn pacing_delays_the_second_window() {
        // Two windows far apart in trace time: at a modest speed the second
        // is NotYet immediately after the first is taken.
        let workload = Workload::rank_churn();
        let mut replay = PacedReplay::new(workload.stream(3), 60.0);
        assert_eq!(replay.tick(), ReplayTick::Due, "first window is due now");
        let first_len = replay.take_window().len();
        assert!(first_len > 0);
        match replay.tick() {
            ReplayTick::NotYet(wait) => assert!(wait > Duration::ZERO),
            other => panic!("second window should be paced, got {other:?}"),
        }
    }
}

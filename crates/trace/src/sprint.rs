//! Sprint-backbone-like synthetic trace model.
//!
//! Calibrated to the measurements the paper takes from the Sprint IP
//! backbone (its reference \[1\], Fig. 9, restated in Sec. 6 and Sec. 8.1):
//!
//! * flow arrival rate 2360 flows/s under the 5-tuple definition
//!   (≈ 350 prefix flows/s under /24 aggregation);
//! * mean flow size 4.8 KB (5-tuple) and 16.6 KB (/24), i.e. ≈ 9.6 and
//!   ≈ 33 packets of 500 bytes;
//! * mean flow duration 13 s;
//! * heavy-tailed (Pareto, β ≈ 1.5) flow sizes;
//! * 30-minute trace, analysed in 1- and 5-minute bins.

use crate::flow_record::FlowRecord;
use crate::generator::{generate_flow_population, FlowPopulationConfig, SizeModel};

/// Sprint OC-12 backbone trace model (Sec. 8.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprintModel {
    /// Underlying population configuration.
    pub config: FlowPopulationConfig,
}

/// Flow arrival rate measured on the Sprint link (5-tuple flows/s).
pub const SPRINT_FLOW_RATE: f64 = 2_360.0;
/// Mean 5-tuple flow size in packets (4.8 KB at 500 B per packet).
pub const SPRINT_MEAN_PACKETS_5TUPLE: f64 = 9.6;
/// Mean /24-prefix flow size in packets (16.6 KB at 500 B per packet).
pub const SPRINT_MEAN_PACKETS_PREFIX: f64 = 33.2;
/// Mean flow duration in seconds.
pub const SPRINT_MEAN_FLOW_DURATION: f64 = 13.0;
/// Trace duration in seconds (30 minutes).
pub const SPRINT_TRACE_DURATION: f64 = 1_800.0;
/// Average packet size in bytes used throughout the paper.
pub const PACKET_BYTES: u32 = 500;

impl SprintModel {
    /// The paper's Sprint scenario with the published parameters, scaled by
    /// `scale` (1.0 = full size; the figure harness defaults to 0.1 to keep
    /// benchmark runtimes reasonable; see EXPERIMENTS.md).
    pub fn paper(scale: f64) -> Self {
        SprintModel {
            config: Self::base_config().scaled(scale),
        }
    }

    /// A small scenario for unit tests and examples: a few seconds of
    /// traffic with the same per-flow statistics as the paper scenario.
    pub fn small(duration_secs: f64, flow_rate: f64) -> Self {
        let config = FlowPopulationConfig {
            duration_secs,
            flow_rate,
            ..Self::paper(1.0).config
        };
        SprintModel { config }
    }

    /// Overrides the Pareto shape β (Figs. 6–7 vary β from 1.2 to 3).
    pub fn with_shape(mut self, shape: f64) -> Self {
        if let SizeModel::Pareto { mean_packets, .. } = self.config.size_model {
            self.config.size_model = SizeModel::Pareto {
                mean_packets,
                shape,
            };
        }
        self
    }

    fn base_config() -> FlowPopulationConfig {
        FlowPopulationConfig {
            duration_secs: SPRINT_TRACE_DURATION,
            flow_rate: SPRINT_FLOW_RATE,
            // The pool size and exponent are chosen so that /24 aggregation
            // reduces the number of flows by roughly the paper's factor ~7
            // while keeping a long tail of rarely used prefixes.
            size_model: SizeModel::Pareto {
                mean_packets: SPRINT_MEAN_PACKETS_5TUPLE,
                shape: 1.5,
            },
            mean_flow_duration: SPRINT_MEAN_FLOW_DURATION,
            packet_bytes: PACKET_BYTES,
            prefix_count: 8_192,
            prefix_zipf_exponent: 1.05,
        }
    }

    /// Generates the flow-level trace deterministically from `seed`.
    pub fn generate_flows(&self, seed: u64) -> Vec<FlowRecord> {
        generate_flow_population(&self.config, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_net::{DstPrefix, FiveTuple, FlowKey};
    use std::collections::HashSet;

    #[test]
    fn paper_parameters_are_published_values() {
        let m = SprintModel::paper(1.0);
        assert!((m.config.flow_rate - 2360.0).abs() < 1e-9);
        assert!((m.config.duration_secs - 1800.0).abs() < 1e-9);
        assert!((m.config.mean_flow_duration - 13.0).abs() < 1e-9);
        match m.config.size_model {
            SizeModel::Pareto {
                mean_packets,
                shape,
            } => {
                assert!((mean_packets - 9.6).abs() < 1e-9);
                assert!((shape - 1.5).abs() < 1e-9);
            }
            _ => panic!("Sprint model must use a Pareto size law"),
        }
    }

    #[test]
    fn scale_reduces_flow_rate_only() {
        let m = SprintModel::paper(0.1);
        assert!((m.config.flow_rate - 236.0).abs() < 1e-9);
        assert!((m.config.duration_secs - 1800.0).abs() < 1e-9);
    }

    #[test]
    fn with_shape_changes_beta() {
        let m = SprintModel::paper(1.0).with_shape(1.2);
        match m.config.size_model {
            SizeModel::Pareto { shape, .. } => assert!((shape - 1.2).abs() < 1e-12),
            _ => panic!(),
        }
    }

    #[test]
    fn small_scenario_generates_plausible_flows() {
        let m = SprintModel::small(20.0, 100.0);
        let flows = m.generate_flows(42);
        assert!(
            flows.len() > 1_000 && flows.len() < 3_000,
            "{}",
            flows.len()
        );
        // Prefix aggregation must reduce the number of distinct keys.
        let five: HashSet<FiveTuple> = flows.iter().map(|f| f.key).collect();
        let prefixes: HashSet<DstPrefix> = flows
            .iter()
            .map(|f| DstPrefix::of(f.key.dst_ip, 24))
            .collect();
        assert_eq!(five.len(), flows.len(), "synthetic 5-tuples must be unique");
        assert!(
            prefixes.len() * 2 < five.len(),
            "prefix aggregation too weak"
        );
        let _ = FiveTuple::definition_name();
    }
}

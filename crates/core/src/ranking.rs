//! The general ranking model (Sec. 5) and its numerical evaluation (Sec. 6).
//!
//! Performance metric (Sec. 5.1): form every pair whose first element is one
//! of the true top-`t` flows and whose second element is any other flow in
//! the population of `N` flows, and count how many pairs are swapped after
//! sampling. The expected count is
//!
//! ```text
//! metric(p) = (2N − t − 1) · t / 2 · P̄mt(p)
//! ```
//!
//! where `P̄mt` is the probability that a top-`t` flow is swapped with a
//! random other flow (Eq. 3). The ranking is deemed acceptable when the
//! metric is below one.
//!
//! Two evaluations are provided:
//!
//! * [`RankingModel::mean_swapped_pairs`] — the **continuous** form the paper
//!   uses for all of its figures: flow sizes follow a continuous law (Pareto
//!   in Sec. 6), the pairwise misranking probability uses the Gaussian
//!   closed form, and the double sum of Eq. 3 becomes a double integral
//!   evaluated with Gauss–Legendre panels concentrated where the integrand
//!   actually lives (near the top-`t` boundary and near the diagonal
//!   `y ≈ x`, because `Pm(x, y)` vanishes once the sizes differ by more than
//!   a few standard deviations of the sampled difference).
//! * [`discrete_mean_swapped_pairs`] — a direct summation of Eq. 3 over an
//!   integer size grid, usable for small populations; it validates the
//!   continuous model in the tests and serves as the exact-vs-Gaussian
//!   ablation.

use flowrank_stats::quadrature::gauss_legendre_composite;
use flowrank_stats::special::{gamma_q, ln_factorial};

use crate::flowdist::FlowSizeModel;
use crate::gaussian::misranking_probability_gaussian;
use crate::optimal::PairwiseModel;

/// Number of Gauss–Legendre panels for the inner (y) integrals.
const INNER_PANELS: usize = 6;
/// Number of standard deviations of the sampled-size difference covered by
/// the inner integration window.
const INNER_WIDTH_SIGMAS: f64 = 12.0;
/// Safety factor on the top-`t` boundary when choosing the outer range.
const OUTER_BOUNDARY_FACTOR: f64 = 40.0;
/// Number of geometric panels for the outer (x) tail integration.
const OUTER_PANELS: usize = 48;
/// Relative tolerance at which the outer tail integration stops.
const OUTER_REL_TOL: f64 = 1e-7;

/// Probability that at most `k` of `n` flows exceed a size whose survival
/// probability is `sf` — `P(Binomial(n, sf) ≤ k)`, evaluated through the
/// Poisson limit for the large populations of the paper's scenarios.
///
/// Returns 0 for `k < 0` (expressed as `k_plus_one == 0`).
pub(crate) fn prob_at_most(k_plus_one: u32, n: f64, sf: f64) -> f64 {
    if k_plus_one == 0 {
        return 0.0;
    }
    if sf <= 0.0 {
        return 1.0;
    }
    if sf >= 1.0 {
        return if (k_plus_one as f64) > n { 1.0 } else { 0.0 };
    }
    let lambda = n * sf;
    // P(Poisson(λ) ≤ k) = Q(k + 1, λ). For the scenarios of the paper
    // (N ≥ 2·10⁴, sf(x) of order t/N at the boundary) the Poisson limit of
    // the binomial is accurate to many digits.
    gamma_q(k_plus_one as f64, lambda)
}

/// Poisson probability mass `P(K = k)` with mean `lambda`.
pub(crate) fn poisson_pmf(k: u32, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    ((k as f64) * lambda.ln() - lambda - ln_factorial(k as u64)).exp()
}

/// The general ranking model: `N` flows with a given size law, ranking of the
/// top `t`.
#[derive(Debug, Clone, Copy)]
pub struct RankingModel<'a, D: FlowSizeModel + ?Sized> {
    dist: &'a D,
    n_flows: f64,
    top_t: u32,
}

impl<'a, D: FlowSizeModel + ?Sized> RankingModel<'a, D> {
    /// Creates a ranking model for `n_flows` flows drawn from `dist`,
    /// evaluating the ranking of the top `top_t` flows.
    ///
    /// # Panics
    ///
    /// Panics when `top_t` is zero or `n_flows < top_t` (configuration
    /// errors in an experiment definition).
    pub fn new(dist: &'a D, n_flows: u64, top_t: u32) -> Self {
        assert!(top_t >= 1, "top_t must be at least 1");
        assert!(
            n_flows as f64 >= top_t as f64,
            "the population must contain at least top_t flows"
        );
        RankingModel {
            dist,
            n_flows: n_flows as f64,
            top_t,
        }
    }

    /// Total number of flows `N`.
    pub fn n_flows(&self) -> f64 {
        self.n_flows
    }

    /// Number of top flows to rank, `t`.
    pub fn top_t(&self) -> u32 {
        self.top_t
    }

    /// Number of (top-`t` flow, other flow) pairs: `(2N − t − 1)·t/2`.
    pub fn pair_count(&self) -> f64 {
        (2.0 * self.n_flows - self.top_t as f64 - 1.0) * self.top_t as f64 / 2.0
    }

    /// Lower end of the outer integration range: flows whose survival
    /// probability is far above `t/N` have a negligible probability of being
    /// in the top `t`.
    fn outer_lower_bound(&self) -> f64 {
        let boundary_sf = (OUTER_BOUNDARY_FACTOR * self.top_t as f64 / self.n_flows).min(1.0);
        if boundary_sf >= 1.0 {
            self.dist.lower_bound()
        } else {
            self.dist
                .quantile(1.0 - boundary_sf)
                .max(self.dist.lower_bound())
        }
    }

    /// Half-width of the inner integration window around `x` at sampling
    /// rate `p`: misranking is only likely within a few standard deviations
    /// of the sampled size difference, `σ ≈ √(2(1/p − 1)·2x)` in packets.
    fn inner_half_width(&self, x: f64, p: f64) -> f64 {
        let sigma = (2.0 * (1.0 / p - 1.0) * 2.0 * x).sqrt();
        (INNER_WIDTH_SIGMAS * sigma).max(2.0)
    }

    /// Probability `P̄mt(p)` that a top-`t` flow is swapped with a random
    /// other flow after sampling at rate `p` (Eq. 3, continuous form).
    pub fn average_misranking_probability(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 1.0;
        }
        if p >= 1.0 {
            return 0.0;
        }
        let n = self.n_flows;
        let t = self.top_t;
        let lower = self.dist.lower_bound();
        let x_start = self.outer_lower_bound();

        // Outer integrand over the size x of the (candidate) top flow.
        let outer = |x: f64| {
            let fx = self.dist.pdf(x);
            if fx <= 0.0 {
                return 0.0;
            }
            let sfx = self.dist.sf(x);
            // Probability weights of Eq. 3: the other flow is smaller
            // (weight A) or larger (weight B) than x.
            let weight_smaller = prob_at_most(t, n - 2.0, sfx);
            let weight_larger = if t >= 2 {
                prob_at_most(t - 1, n - 2.0, sfx)
            } else {
                0.0
            };
            // Flows far below the top-t boundary contribute nothing; skip the
            // inner integrals entirely for them.
            if weight_smaller < 1e-14 && weight_larger < 1e-14 {
                return 0.0;
            }
            let w = self.inner_half_width(x, p);
            let below = if weight_smaller > 0.0 {
                let lo = (x - w).max(lower);
                gauss_legendre_composite(
                    |y| self.dist.pdf(y) * misranking_probability_gaussian(y, x, p),
                    lo,
                    x,
                    INNER_PANELS,
                )
            } else {
                0.0
            };
            let above = if weight_larger > 0.0 {
                gauss_legendre_composite(
                    |y| self.dist.pdf(y) * misranking_probability_gaussian(x, y, p),
                    x,
                    x + w,
                    INNER_PANELS,
                )
            } else {
                0.0
            };
            fx * (weight_smaller * below + weight_larger * above)
        };

        // Outer integration over geometrically growing panels from x_start.
        let mut total = 0.0;
        let mut lo = x_start;
        let mut width = x_start.abs().max(1.0);
        for _ in 0..OUTER_PANELS {
            let hi = lo + width;
            let piece = gauss_legendre_composite(outer, lo, hi, 2);
            total += piece;
            if piece.abs() <= OUTER_REL_TOL * total.abs().max(f64::MIN_POSITIVE) && total > 0.0 {
                break;
            }
            lo = hi;
            width *= 2.0;
        }

        ((n / t as f64) * total).clamp(0.0, 1.0)
    }

    /// The paper's ranking metric: expected number of swapped pairs involving
    /// a top-`t` flow, `(2N − t − 1)·t/2 · P̄mt(p)`.
    pub fn mean_swapped_pairs(&self, p: f64) -> f64 {
        self.pair_count() * self.average_misranking_probability(p)
    }

    /// Smallest sampling rate (within `[min_rate, 1]`) for which the metric
    /// drops below `threshold` (typically 1.0, the paper's acceptability
    /// criterion). Uses bisection on the monotone metric.
    pub fn required_sampling_rate(&self, threshold: f64, min_rate: f64) -> f64 {
        let lo = min_rate.clamp(1e-6, 1.0);
        flowrank_stats::roots::monotone_threshold(
            |p| self.mean_swapped_pairs(p),
            lo,
            1.0,
            threshold,
            1e-4,
            60,
        )
        .unwrap_or(1.0)
    }
}

/// Direct (discrete) evaluation of Eq. 3 over an integer size grid.
///
/// `pmf[k]` is the probability that a flow has `k + 1` packets (sizes start
/// at one packet). Intended for populations small enough that the O(M²)
/// double sum is affordable; the `model` argument selects the exact binomial
/// or Gaussian pairwise probability, which is the exact-vs-Gaussian ablation
/// of the paper's Sec. 4/5 discussion.
pub fn discrete_mean_swapped_pairs(
    pmf: &[f64],
    n_flows: u64,
    top_t: u32,
    p: f64,
    model: PairwiseModel,
) -> f64 {
    assert!(top_t >= 1, "top_t must be at least 1");
    let m = pmf.len();
    let n = n_flows as f64;
    let t = top_t;
    if m == 0 {
        return 0.0;
    }
    // Survival function P_i = P(size >= i), sizes are 1-based.
    let mut sf_at_least = vec![0.0; m + 1];
    for i in (0..m).rev() {
        sf_at_least[i] = sf_at_least[i + 1] + pmf[i];
    }

    let mut pmt_weighted = 0.0;
    for i in 0..m {
        let size_i = (i + 1) as u64;
        let p_i = pmf[i];
        if p_i <= 0.0 {
            continue;
        }
        // P_i in the paper: probability another flow is at least as large.
        let sf_i = sf_at_least[i];
        let weight_smaller = prob_at_most(t, n - 1.0, sf_i);
        let weight_larger = if t >= 2 {
            prob_at_most(t - 1, n - 1.0, sf_i)
        } else {
            0.0
        };
        // Sizes far below the top-t boundary cannot contribute; skipping them
        // keeps the double sum proportional to the top region only.
        if weight_smaller < 1e-14 && weight_larger < 1e-14 {
            continue;
        }
        let mut below = 0.0;
        let mut above = 0.0;
        for (j, &p_j) in pmf.iter().enumerate().take(m) {
            if p_j <= 0.0 {
                continue;
            }
            let size_j = (j + 1) as u64;
            let pm = model.misranking_probability(size_j.min(size_i), size_j.max(size_i), p);
            if size_j < size_i {
                below += p_j * pm;
            } else {
                above += p_j * pm;
            }
        }
        pmt_weighted += p_i * (weight_smaller * below + weight_larger * above);
    }
    let pmt_bar = (n / t as f64) * pmt_weighted;
    (2.0 * n - t as f64 - 1.0) * t as f64 / 2.0 * pmt_bar.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowdist::ParetoFlowModel;
    use crate::scenario::Scenario;

    fn five_tuple_model(beta: f64) -> ParetoFlowModel {
        ParetoFlowModel::with_mean(9.6, beta).unwrap()
    }

    #[test]
    fn prob_at_most_limits() {
        assert_eq!(prob_at_most(0, 100.0, 0.5), 0.0);
        assert_eq!(prob_at_most(3, 100.0, 0.0), 1.0);
        assert_eq!(prob_at_most(3, 100.0, 1.0), 0.0);
        // Matches the Poisson CDF.
        let lambda: f64 = 2.0;
        let direct: f64 = (0..=3)
            .map(|k| (-lambda).exp() * lambda.powi(k) / (1..=k).product::<i32>().max(1) as f64)
            .sum();
        assert!((prob_at_most(4, 1000.0, lambda / 1000.0) - direct).abs() < 1e-6);
    }

    #[test]
    fn poisson_pmf_normalises() {
        let total: f64 = (0..60).map(|k| poisson_pmf(k, 7.5)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
    }

    #[test]
    fn metric_is_monotone_in_sampling_rate() {
        let dist = five_tuple_model(1.5);
        let model = RankingModel::new(&dist, 700_000, 10);
        let rates = [0.001, 0.01, 0.1, 0.5];
        let values: Vec<f64> = rates.iter().map(|&p| model.mean_swapped_pairs(p)).collect();
        for w in values.windows(2) {
            assert!(w[1] < w[0], "metric must decrease with p: {values:?}");
        }
        // Degenerate rates.
        assert_eq!(model.average_misranking_probability(0.0), 1.0);
        assert_eq!(model.average_misranking_probability(1.0), 0.0);
    }

    #[test]
    fn paper_scale_behaviour_five_tuple() {
        // Fig. 4 (5-tuple, N = 0.7M, β = 1.5, t = 10): a 0.1% sampling rate
        // is hopeless (metric ≫ 1), while ~50% sampling is acceptable.
        let dist = five_tuple_model(1.5);
        let model = RankingModel::new(&dist, 700_000, 10);
        assert!(
            model.mean_swapped_pairs(0.001) > 100.0,
            "0.1% sampling should be far above the acceptability line"
        );
        assert!(
            model.mean_swapped_pairs(0.5) < 5.0,
            "50% sampling should be close to (or below) acceptability"
        );
    }

    #[test]
    fn more_top_flows_is_harder() {
        // Fig. 4: larger t needs higher rates.
        let dist = five_tuple_model(1.5);
        let p = 0.02;
        let metric_t1 = RankingModel::new(&dist, 700_000, 1).mean_swapped_pairs(p);
        let metric_t5 = RankingModel::new(&dist, 700_000, 5).mean_swapped_pairs(p);
        let metric_t25 = RankingModel::new(&dist, 700_000, 25).mean_swapped_pairs(p);
        assert!(metric_t1 < metric_t5);
        assert!(metric_t5 < metric_t25);
    }

    #[test]
    fn heavier_tail_is_easier_to_rank() {
        // Fig. 6: smaller β (heavier tail) improves the ranking.
        let p = 0.05;
        let heavy = ParetoFlowModel::with_mean(9.6, 1.2).unwrap();
        let light = ParetoFlowModel::with_mean(9.6, 2.5).unwrap();
        let m_heavy = RankingModel::new(&heavy, 700_000, 10).mean_swapped_pairs(p);
        let m_light = RankingModel::new(&light, 700_000, 10).mean_swapped_pairs(p);
        assert!(
            m_heavy < m_light,
            "heavy tail {m_heavy} should beat light tail {m_light}"
        );
    }

    #[test]
    fn more_flows_is_easier() {
        // Fig. 8: increasing N improves the ranking at a fixed rate.
        let dist = five_tuple_model(1.5);
        let p = 0.01;
        let m_small = RankingModel::new(&dist, 140_000, 10).mean_swapped_pairs(p);
        let m_large = RankingModel::new(&dist, 3_500_000, 10).mean_swapped_pairs(p);
        assert!(
            m_large < m_small,
            "N = 3.5M ({m_large}) should beat N = 140K ({m_small})"
        );
    }

    #[test]
    fn required_rate_reproduces_headline_result() {
        // Headline: ranking the top 10 of ~10⁵–10⁶ Pareto flows needs a
        // sampling rate above 10%.
        let dist = five_tuple_model(1.5);
        let model = RankingModel::new(&dist, 700_000, 10);
        let rate = model.required_sampling_rate(1.0, 1e-3);
        assert!(rate > 0.10, "required rate {rate} should exceed 10%");
        // The top-1 flow is much easier.
        let rate_top1 = RankingModel::new(&dist, 700_000, 1).required_sampling_rate(1.0, 1e-3);
        assert!(rate_top1 < rate);
    }

    #[test]
    fn prefix_scenario_not_dramatically_better() {
        // Sec. 6.4 (4): /24 aggregation does not significantly improve the
        // ranking — at 1% the metric stays above the acceptability line for
        // t = 10 in both definitions.
        let p = 0.01;
        let five = Scenario::sprint_five_tuple(1.5);
        let prefix = Scenario::sprint_prefix24(1.5);
        let m5 = five.ranking_model(10).mean_swapped_pairs(p);
        let m24 = prefix.ranking_model(10).mean_swapped_pairs(p);
        assert!(m5 > 1.0);
        assert!(m24 > 1.0);
    }

    #[test]
    fn discrete_model_agrees_with_continuous_on_small_population() {
        // Small population where both evaluations are affordable: the
        // discretised Pareto fed to the discrete model should give a metric
        // within a factor ~2 of the continuous evaluation.
        let dist = ParetoFlowModel::with_mean(20.0, 1.5).unwrap();
        let n = 2_000u64;
        let t = 5u32;
        let p = 0.05;
        // Discretise the Pareto onto sizes 1..=4000 packets.
        let max_size = 4_000usize;
        let mut pmf = vec![0.0; max_size];
        for (k, slot) in pmf.iter_mut().enumerate() {
            let lo = (k as f64) + 0.5;
            let hi = (k as f64) + 1.5;
            *slot = (dist.sf(lo) - dist.sf(hi)).max(0.0);
        }
        // Renormalise the truncated grid.
        let total: f64 = pmf.iter().sum();
        pmf.iter_mut().for_each(|v| *v /= total);

        let discrete = discrete_mean_swapped_pairs(&pmf, n, t, p, PairwiseModel::Gaussian);
        let continuous = RankingModel::new(&dist, n, t).mean_swapped_pairs(p);
        assert!(discrete > 0.0 && continuous > 0.0);
        let ratio = discrete / continuous;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "discrete {discrete} vs continuous {continuous} (ratio {ratio})"
        );
    }

    #[test]
    fn discrete_model_exact_vs_gaussian_agree() {
        // Moderate sizes, moderate rate: the two pairwise models give nearly
        // the same aggregate metric.
        let dist = ParetoFlowModel::with_mean(50.0, 1.5).unwrap();
        let max_size = 800usize;
        let mut pmf = vec![0.0; max_size];
        for (k, slot) in pmf.iter_mut().enumerate() {
            *slot = (dist.sf(k as f64 + 0.5) - dist.sf(k as f64 + 1.5)).max(0.0);
        }
        let total: f64 = pmf.iter().sum();
        pmf.iter_mut().for_each(|v| *v /= total);
        let exact = discrete_mean_swapped_pairs(&pmf, 500, 3, 0.2, PairwiseModel::Exact);
        let gauss = discrete_mean_swapped_pairs(&pmf, 500, 3, 0.2, PairwiseModel::Gaussian);
        let ratio = exact / gauss;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "exact {exact} vs gaussian {gauss}"
        );
    }

    #[test]
    #[should_panic(expected = "top_t")]
    fn zero_top_t_is_rejected() {
        let dist = five_tuple_model(1.5);
        let _ = RankingModel::new(&dist, 100, 0);
    }
}

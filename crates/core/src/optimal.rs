//! Optimal sampling rate for a pair of flows (Sec. 3.2, Figs. 1–2).
//!
//! For any pair of flow sizes the misranking probability decreases
//! monotonically from 1 to 0 as `p` goes from 0 to 1, so for a desired
//! misranking probability `Pm,d` there is a unique minimum ("optimal")
//! sampling rate `p_d` achieving it. Figures 1 and 2 of the paper plot this
//! surface over a grid of flow-size pairs for `Pm,d = 0.1%`.

use flowrank_stats::roots::monotone_threshold;

use crate::gaussian::misranking_probability_gaussian;
use crate::pairwise::misranking_probability_exact;

/// Which pairwise misranking model to use when solving for the rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairwiseModel {
    /// The exact binomial double sum of Eq. 1.
    Exact,
    /// The Gaussian closed form of Eq. 2.
    Gaussian,
}

impl PairwiseModel {
    /// Evaluates the chosen model.
    pub fn misranking_probability(self, s1: u64, s2: u64, p: f64) -> f64 {
        match self {
            PairwiseModel::Exact => misranking_probability_exact(s1, s2, p),
            PairwiseModel::Gaussian => misranking_probability_gaussian(s1 as f64, s2 as f64, p),
        }
    }
}

/// Smallest sampling rate `p_d ∈ [min_rate, 1]` such that the misranking
/// probability of flows `s1` and `s2` is at most `target`.
///
/// Returns 1.0 when even full sampling cannot reach the target (e.g. two
/// equal-size flows under the exact model) and `min_rate` when the target is
/// already met at the lowest rate considered.
pub fn optimal_sampling_rate(
    s1: u64,
    s2: u64,
    target: f64,
    model: PairwiseModel,
    min_rate: f64,
) -> f64 {
    let lo = min_rate.clamp(1e-9, 1.0);
    monotone_threshold(
        |p| model.misranking_probability(s1, s2, p),
        lo,
        1.0,
        target,
        1e-6,
        200,
    )
    .unwrap_or(1.0)
}

/// Computes the optimal-rate surface over a grid of flow sizes (the data
/// behind Figs. 1–2): entry `(i, j)` is the optimal rate for sizes
/// `(sizes[i], sizes[j])`.
pub fn optimal_rate_surface(
    sizes: &[u64],
    target: f64,
    model: PairwiseModel,
    min_rate: f64,
) -> Vec<Vec<f64>> {
    sizes
        .iter()
        .map(|&s1| {
            sizes
                .iter()
                .map(|&s2| optimal_sampling_rate(s1, s2, target, model, min_rate))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achieves_the_target() {
        let target = 1e-3; // the paper's Pm,d = 0.1 %
        for &(s1, s2) in &[(100u64, 300u64), (50, 500), (1_000, 2_000)] {
            let p = optimal_sampling_rate(s1, s2, target, PairwiseModel::Gaussian, 1e-4);
            let pm = misranking_probability_gaussian(s1 as f64, s2 as f64, p);
            assert!(
                pm <= target * 1.05,
                "Pm({s1},{s2};{p}) = {pm} exceeds target"
            );
            // And just below the optimum the target is violated (minimality),
            // unless the optimum saturated at the lower bound.
            if p > 2e-4 {
                let pm_below = misranking_probability_gaussian(s1 as f64, s2 as f64, p * 0.8);
                assert!(pm_below > target);
            }
        }
    }

    #[test]
    fn similar_sizes_need_high_rates_distant_sizes_low_rates() {
        // The qualitative shape of Fig. 1.
        let target = 1e-3;
        let close = optimal_sampling_rate(500, 520, target, PairwiseModel::Gaussian, 1e-4);
        let far = optimal_sampling_rate(50, 1_000, target, PairwiseModel::Gaussian, 1e-4);
        assert!(
            close > 0.5,
            "close sizes should need a high rate, got {close}"
        );
        assert!(far < 0.3, "distant sizes should need a low rate, got {far}");
        assert!(far < close);
    }

    #[test]
    fn fixed_ratio_rate_decreases_with_scale() {
        // Fig. 1 (log scale): for sizes (αS, S) the optimal rate decreases as
        // S grows.
        let target = 1e-3;
        let small = optimal_sampling_rate(50, 100, target, PairwiseModel::Gaussian, 1e-5);
        let large = optimal_sampling_rate(500, 1_000, target, PairwiseModel::Gaussian, 1e-5);
        assert!(large < small);
    }

    #[test]
    fn fixed_gap_rate_increases_with_scale() {
        // Fig. 2 (linear scale): for sizes (S−k, S) the optimal rate increases
        // as S grows.
        let target = 1e-2;
        let small = optimal_sampling_rate(80, 100, target, PairwiseModel::Gaussian, 1e-5);
        let large = optimal_sampling_rate(880, 900, target, PairwiseModel::Gaussian, 1e-5);
        assert!(large > small);
    }

    #[test]
    fn exact_and_gaussian_agree_for_large_flows() {
        let target = 1e-3;
        let exact = optimal_sampling_rate(400, 800, target, PairwiseModel::Exact, 1e-4);
        let gauss = optimal_sampling_rate(400, 800, target, PairwiseModel::Gaussian, 1e-4);
        let rel = (exact - gauss).abs() / exact.max(gauss);
        assert!(rel < 0.25, "exact {exact} vs gaussian {gauss}");
    }

    #[test]
    fn equal_sizes_saturate_near_full_sampling() {
        // Two equal flows can only be "ranked" reliably (i.e. tie correctly
        // observed) when essentially every packet is sampled.
        let p = optimal_sampling_rate(200, 200, 1e-3, PairwiseModel::Exact, 1e-4);
        assert!(p > 0.99, "optimal rate for equal sizes is {p}");
    }

    #[test]
    fn surface_shape() {
        let sizes = [10u64, 100, 1_000];
        let surface = optimal_rate_surface(&sizes, 1e-3, PairwiseModel::Gaussian, 1e-4);
        assert_eq!(surface.len(), 3);
        assert!(surface.iter().all(|row| row.len() == 3));
        // Diagonal (equal sizes) needs the highest rate in each row.
        for (i, row) in surface.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                assert!(value <= surface[i][i] + 1e-9, "({i},{j})");
                assert!((0.0..=1.0).contains(&value));
            }
        }
    }
}

//! The paper's evaluation scenarios as ready-made configurations.
//!
//! Section 6 fixes its parameters from the Sprint backbone measurements:
//!
//! | quantity                  | 5-tuple flows | /24 prefix flows |
//! |---------------------------|---------------|------------------|
//! | mean flow size            | 4.8 KB ≈ 9.6 packets | 16.6 KB ≈ 33.2 packets |
//! | flows per 5-minute bin, N | 0.7 M         | 0.1 M            |
//! | flow size law             | Pareto, β varied (default 1.5) | same |
//!
//! A [`Scenario`] bundles those numbers with the flow-size model and hands
//! out ready-to-evaluate [`RankingModel`]s and [`DetectionModel`]s.

use flowrank_net::FlowDefinition;

use crate::detection::DetectionModel;
use crate::flowdist::ParetoFlowModel;
use crate::ranking::RankingModel;

/// Mean 5-tuple flow size in packets (4.8 KB at 500-byte packets).
pub const MEAN_PACKETS_5TUPLE: f64 = 9.6;
/// Mean /24-prefix flow size in packets (16.6 KB at 500-byte packets).
pub const MEAN_PACKETS_PREFIX24: f64 = 33.2;
/// Number of 5-tuple flows in a 5-minute measurement interval on the Sprint
/// link.
pub const N_FLOWS_5TUPLE: u64 = 700_000;
/// Number of /24-prefix flows in a 5-minute measurement interval.
pub const N_FLOWS_PREFIX24: u64 = 100_000;

/// A fully specified analytical scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Flow definition the scenario corresponds to.
    pub flow_definition: FlowDefinition,
    /// Total number of flows `N` in the measurement interval.
    pub n_flows: u64,
    /// Flow-size model.
    pub flow_sizes: ParetoFlowModel,
    /// Human-readable label used in reports.
    pub label: String,
}

impl Scenario {
    /// The Sprint 5-tuple scenario with the given Pareto shape β.
    ///
    /// # Panics
    ///
    /// Panics if `beta ≤ 1` (the calibrated mean would not exist).
    pub fn sprint_five_tuple(beta: f64) -> Self {
        Scenario {
            flow_definition: FlowDefinition::FiveTuple,
            n_flows: N_FLOWS_5TUPLE,
            flow_sizes: ParetoFlowModel::with_mean(MEAN_PACKETS_5TUPLE, beta)
                .expect("beta must exceed 1"),
            label: format!("5-tuple flows, N = 0.7M, beta = {beta}"),
        }
    }

    /// The Sprint /24 destination-prefix scenario with the given Pareto
    /// shape β.
    ///
    /// # Panics
    ///
    /// Panics if `beta ≤ 1`.
    pub fn sprint_prefix24(beta: f64) -> Self {
        Scenario {
            flow_definition: FlowDefinition::PREFIX24,
            n_flows: N_FLOWS_PREFIX24,
            flow_sizes: ParetoFlowModel::with_mean(MEAN_PACKETS_PREFIX24, beta)
                .expect("beta must exceed 1"),
            label: format!("/24 prefix flows, N = 0.1M, beta = {beta}"),
        }
    }

    /// Returns a copy of the scenario with the flow count multiplied by
    /// `factor` — the sweep of Figs. 8–9 (0.2× to 5× the baseline `N`).
    pub fn with_flow_count_factor(&self, factor: f64) -> Self {
        let mut copy = self.clone();
        copy.n_flows = ((self.n_flows as f64) * factor).round().max(1.0) as u64;
        copy.label = format!("{} (N x {factor})", self.label);
        copy
    }

    /// Returns a copy with an explicit flow count.
    pub fn with_flow_count(&self, n_flows: u64) -> Self {
        let mut copy = self.clone();
        copy.n_flows = n_flows.max(1);
        copy
    }

    /// Ranking model for the top `t` flows of this scenario.
    pub fn ranking_model(&self, top_t: u32) -> RankingModel<'_, ParetoFlowModel> {
        RankingModel::new(&self.flow_sizes, self.n_flows, top_t)
    }

    /// Detection model for the top `t` flows of this scenario.
    pub fn detection_model(&self, top_t: u32) -> DetectionModel<'_, ParetoFlowModel> {
        DetectionModel::new(&self.flow_sizes, self.n_flows, top_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tuple_scenario_parameters() {
        let s = Scenario::sprint_five_tuple(1.5);
        assert_eq!(s.n_flows, 700_000);
        assert_eq!(s.flow_definition, FlowDefinition::FiveTuple);
        assert!((s.flow_sizes.shape() - 1.5).abs() < 1e-12);
        assert!(s.label.contains("0.7M"));
    }

    #[test]
    fn prefix_scenario_parameters() {
        let s = Scenario::sprint_prefix24(1.2);
        assert_eq!(s.n_flows, 100_000);
        assert_eq!(s.flow_definition, FlowDefinition::PREFIX24);
        // Mean flow size is larger under aggregation.
        assert!(
            Scenario::sprint_prefix24(1.5).flow_sizes.scale()
                > Scenario::sprint_five_tuple(1.5).flow_sizes.scale()
        );
    }

    #[test]
    fn flow_count_factor_sweep() {
        let base = Scenario::sprint_five_tuple(1.5);
        assert_eq!(base.with_flow_count_factor(0.2).n_flows, 140_000);
        assert_eq!(base.with_flow_count_factor(5.0).n_flows, 3_500_000);
        assert_eq!(base.with_flow_count(42).n_flows, 42);
        assert_eq!(base.with_flow_count(0).n_flows, 1);
    }

    #[test]
    fn models_are_constructible_and_consistent() {
        let s = Scenario::sprint_five_tuple(1.5);
        let ranking = s.ranking_model(10);
        let detection = s.detection_model(10);
        assert_eq!(ranking.pair_count() as u64, (2 * 700_000 - 10 - 1) * 10 / 2);
        assert_eq!(detection.pair_count() as u64, 10 * (700_000 - 10));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_panics() {
        let _ = Scenario::sprint_five_tuple(0.8);
    }
}

//! Exact pairwise misranking probability (Sec. 3, Eq. 1).
//!
//! Two flows of true sizes `S1 < S2` (packets) are sampled at rate `p`; their
//! sampled sizes `s1 ~ Binomial(S1, p)` and `s2 ~ Binomial(S2, p)` are
//! independent. The flows are *misranked* when `s1 ≥ s2` (this includes the
//! case where neither flow is sampled at all — the monitor then cannot order
//! them). Equation 1 of the paper:
//!
//! ```text
//! Pm(S1, S2) = Σ_{i=0}^{S1} b_p(i, S1) · Σ_{j=0}^{i} b_p(j, S2)
//! ```
//!
//! The probability is symmetric in its arguments; the equal-size case is
//! handled separately as in the paper (`1 − Σ_{i≥1} b_p(i, S)²`).

use flowrank_stats::dist::{Binomial, DiscreteDistribution};

/// Exact misranking probability of two flows of `s1` and `s2` packets under
/// independent packet sampling at rate `p` (Eq. 1).
///
/// * For `s1 ≠ s2` this is `P{s_small ≥ s_large}`.
/// * For `s1 == s2` it is `P{s1 ≠ s2 or s1 = s2 = 0}` — two equal flows are
///   considered correctly ranked only when they are sampled equally and at
///   least once, exactly as defined in Sec. 3 of the paper.
///
/// Degenerate rates are handled explicitly: `p ≤ 0` always misranks
/// (probability 1) and `p ≥ 1` never misranks distinct sizes.
pub fn misranking_probability_exact(s1: u64, s2: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        // Full sampling ranks correctly whether or not the sizes coincide.
        return 0.0;
    }
    if s1 == s2 {
        return misranking_probability_equal_sizes(s1, p);
    }
    let (small, large) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
    let b_small = Binomial::new(small, p).expect("validated probability");
    let b_large = Binomial::new(large, p).expect("validated probability");

    // Pm = Σ_i b(i, small) · P(large_sample ≤ i)
    // Evaluate with cached pmf/cdf of the larger flow to keep the cost
    // O(small + large) rather than O(small · large).
    let mut large_cdf = Vec::with_capacity((small + 2) as usize);
    let mut acc = 0.0;
    for j in 0..=small.min(large) {
        acc += b_large.pmf(j);
        large_cdf.push(acc.min(1.0));
    }
    let mut total = 0.0;
    for i in 0..=small {
        let cdf_i = if (i as usize) < large_cdf.len() {
            large_cdf[i as usize]
        } else {
            1.0
        };
        total += b_small.pmf(i) * cdf_i;
    }
    total.clamp(0.0, 1.0)
}

/// Misranking probability of two flows of identical size `s` (Sec. 3):
/// `1 − Σ_{i=1}^{s} b_p(i, s)²`.
pub fn misranking_probability_equal_sizes(s: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if s == 0 {
        return 1.0;
    }
    let b = Binomial::new(s, p).expect("validated probability");
    let mut agree = 0.0;
    for i in 1..=s {
        let q = b.pmf(i);
        agree += q * q;
    }
    (1.0 - agree).clamp(0.0, 1.0)
}

/// The minimum possible misranking probability for a flow of size `s`:
/// reached when it is compared against a flow of a single packet
/// (Sec. 3.1): `(1−p)^{s−1} (1 − p + p·s)`... evaluated from Eq. 1 exactly.
pub fn minimum_misranking_probability(s: u64, p: f64) -> f64 {
    misranking_probability_exact(1, s, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

    fn monte_carlo_pm(s1: u64, s2: u64, p: f64, runs: usize, seed: u64) -> f64 {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut misranked = 0usize;
        for _ in 0..runs {
            let a = (0..s1).filter(|_| rng.bernoulli(p)).count();
            let b = (0..s2).filter(|_| rng.bernoulli(p)).count();
            let swapped = if s1 < s2 { a >= b } else { b >= a };
            if swapped {
                misranked += 1;
            }
        }
        misranked as f64 / runs as f64
    }

    #[test]
    fn matches_monte_carlo() {
        for &(s1, s2, p) in &[(10u64, 20u64, 0.2f64), (50, 60, 0.1), (5, 100, 0.05)] {
            let exact = misranking_probability_exact(s1, s2, p);
            let mc = monte_carlo_pm(s1, s2, p, 200_000, 1234);
            assert!(
                (exact - mc).abs() < 0.01,
                "({s1},{s2},{p}): exact {exact} vs MC {mc}"
            );
        }
    }

    #[test]
    fn is_symmetric() {
        for &(a, b) in &[(3u64, 17u64), (100, 250), (1, 1000)] {
            let p = 0.07;
            assert!(
                (misranking_probability_exact(a, b, p) - misranking_probability_exact(b, a, p))
                    .abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn limits_in_p() {
        assert_eq!(misranking_probability_exact(10, 20, 0.0), 1.0);
        assert_eq!(misranking_probability_exact(10, 20, 1.0), 0.0);
        // Monotone decreasing in p.
        let values: Vec<f64> = [0.01, 0.05, 0.1, 0.3, 0.7]
            .iter()
            .map(|&p| misranking_probability_exact(30, 40, p))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "not monotone: {values:?}");
        }
    }

    #[test]
    fn larger_size_gap_is_easier_to_rank() {
        // Pm(S1, S2) ≥ Pm(S1 − k, S2): aggregating packets onto the smaller
        // flow can only make the ranking harder (Sec. 3.1).
        let p = 0.05;
        let base = misranking_probability_exact(100, 120, p);
        assert!(misranking_probability_exact(80, 120, p) <= base + 1e-12);
        assert!(misranking_probability_exact(40, 120, p) <= base + 1e-12);
        assert!(misranking_probability_exact(1, 120, p) <= base + 1e-12);
    }

    #[test]
    fn equal_size_case() {
        // Two equal flows are almost always "misranked" whatever the rate:
        // the paper's definition requires both sampled sizes to coincide and
        // be non-zero, which is unlikely even at moderate rates.
        let s = 50;
        let p_low = misranking_probability_equal_sizes(s, 0.01);
        let p_high = misranking_probability_equal_sizes(s, 0.5);
        assert!(p_low > 0.85);
        assert!(p_high > 0.5 && p_high < 1.0);
        // Only near-complete sampling makes the tie observable.
        assert!(misranking_probability_equal_sizes(s, 0.9999) < 0.02);
        assert_eq!(misranking_probability_equal_sizes(0, 0.5), 1.0);
        assert_eq!(misranking_probability_equal_sizes(10, 0.0), 1.0);
        // Dispatched through the general entry point as well.
        assert!(
            (misranking_probability_exact(50, 50, 0.5)
                - misranking_probability_equal_sizes(50, 0.5))
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn equal_size_matches_monte_carlo() {
        let s = 20u64;
        let p = 0.15;
        let mut rng = Pcg64::seed_from_u64(77);
        let runs = 200_000;
        let mut bad = 0usize;
        for _ in 0..runs {
            let a = (0..s).filter(|_| rng.bernoulli(p)).count();
            let b = (0..s).filter(|_| rng.bernoulli(p)).count();
            if a != b || a == 0 {
                bad += 1;
            }
        }
        let mc = bad as f64 / runs as f64;
        let exact = misranking_probability_equal_sizes(s, p);
        assert!((exact - mc).abs() < 0.01, "exact {exact} vs MC {mc}");
    }

    #[test]
    fn minimum_misranking_formula() {
        // Sec. 3.1 quotes (1−p)^{S−1}(1 − p + pS) as the minimum misranking
        // probability of a flow of size S (compared against a single-packet
        // flow). Algebraically this is P{Binomial(S, p) ≤ 1} — the event that
        // the large flow is sampled at most once, i.e. it cannot be placed
        // safely above the single-packet flow. Verify the identity, check
        // that it vanishes for large S, and check that our Eq. 1 evaluation
        // (which additionally requires the single-packet flow to "win") is
        // bounded above by it.
        let p: f64 = 0.1;
        for &s in &[5u64, 20, 100] {
            let closed = (1.0 - p).powi(s as i32 - 1) * (1.0 - p + p * s as f64);
            let b = flowrank_stats::dist::Binomial::new(s, p).unwrap();
            let at_most_one = flowrank_stats::dist::DiscreteDistribution::cdf(&b, 1);
            assert!(
                (closed - at_most_one).abs() < 1e-10,
                "identity fails for S={s}"
            );
            let direct = misranking_probability_exact(1, s, p);
            assert!(direct <= closed + 1e-12);
            assert!((minimum_misranking_probability(s, p) - direct).abs() < 1e-15);
        }
        // Tends to zero as S grows.
        let large = (1.0 - p).powi(999) * (1.0 - p + p * 1_000.0);
        assert!(large < 1e-20);
    }

    #[test]
    fn minimum_decreases_with_size() {
        let p = 0.05;
        let v: Vec<f64> = [10u64, 50, 200, 1000]
            .iter()
            .map(|&s| minimum_misranking_probability(s, p))
            .collect();
        for w in v.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn large_flows_same_absolute_gap_is_harder() {
        // Sec. 3.2 / Fig. 2: ranking two flows that differ by k packets gets
        // harder as the flows grow.
        let p = 0.1;
        let small = misranking_probability_exact(20, 30, p);
        let large = misranking_probability_exact(520, 530, p);
        assert!(large > small);
    }

    #[test]
    fn large_flows_same_relative_gap_is_easier() {
        // Sec. 3.2 / Fig. 1: with sizes in a fixed ratio, larger flows are
        // easier to rank.
        let p = 0.05;
        let small = misranking_probability_exact(20, 30, p);
        let large = misranking_probability_exact(200, 300, p);
        assert!(large < small);
    }
}

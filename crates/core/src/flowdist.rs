//! Flow-size distribution abstraction used by the general models.
//!
//! The ranking and detection models of Secs. 5–7 only need four things from
//! the flow-size law: its density, its survival function ("probability that a
//! flow is larger than x", the `P_i` of the paper), its quantile function
//! (to locate the top-`t` boundary) and its lower bound. The paper uses a
//! Pareto law calibrated to the Sprint mean flow sizes; the trait keeps the
//! models generic so the exponential / log-normal comparisons discussed in
//! Sec. 4 can be run with the same code.

use flowrank_stats::dist::{ContinuousDistribution, Exponential, LogNormal, Pareto};
use flowrank_stats::StatsResult;

/// A continuous flow-size distribution, in packets.
pub trait FlowSizeModel {
    /// Probability density at `x` packets.
    fn pdf(&self, x: f64) -> f64;

    /// Survival function `P{S > x}` (the paper's `P_i`).
    fn sf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF).
    fn quantile(&self, q: f64) -> f64;

    /// Smallest possible flow size (in packets).
    fn lower_bound(&self) -> f64;

    /// Mean flow size, if finite.
    fn mean(&self) -> Option<f64>;

    /// Human-readable description for reports.
    fn describe(&self) -> String;
}

/// Pareto flow sizes — the model of Sec. 6, `P{S > x} = (x/a)^{-β}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoFlowModel {
    dist: Pareto,
}

impl ParetoFlowModel {
    /// Pareto flow-size model with the given mean (packets) and shape β > 1.
    pub fn with_mean(mean_packets: f64, shape: f64) -> StatsResult<Self> {
        Ok(ParetoFlowModel {
            dist: Pareto::with_mean(mean_packets, shape)?,
        })
    }

    /// Pareto flow-size model from its scale `a` and shape β.
    pub fn new(scale: f64, shape: f64) -> StatsResult<Self> {
        Ok(ParetoFlowModel {
            dist: Pareto::new(scale, shape)?,
        })
    }

    /// The shape parameter β.
    pub fn shape(&self) -> f64 {
        self.dist.shape()
    }

    /// The scale parameter `a`.
    pub fn scale(&self) -> f64 {
        self.dist.scale()
    }
}

impl FlowSizeModel for ParetoFlowModel {
    fn pdf(&self, x: f64) -> f64 {
        self.dist.pdf(x)
    }

    fn sf(&self, x: f64) -> f64 {
        self.dist.sf(x)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.dist.quantile(q)
    }

    fn lower_bound(&self) -> f64 {
        self.dist.scale()
    }

    fn mean(&self) -> Option<f64> {
        self.dist.mean()
    }

    fn describe(&self) -> String {
        format!(
            "Pareto(a = {:.3}, beta = {:.2})",
            self.dist.scale(),
            self.dist.shape()
        )
    }
}

/// Exponential flow sizes — the light-tailed comparison of Sec. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFlowModel {
    dist: Exponential,
    lower: f64,
}

impl ExponentialFlowModel {
    /// Exponential flow-size model with the given mean, shifted to start at
    /// one packet.
    pub fn with_mean(mean_packets: f64) -> StatsResult<Self> {
        Ok(ExponentialFlowModel {
            dist: Exponential::with_mean((mean_packets - 1.0).max(1e-6))?,
            lower: 1.0,
        })
    }
}

impl FlowSizeModel for ExponentialFlowModel {
    fn pdf(&self, x: f64) -> f64 {
        self.dist.pdf(x - self.lower)
    }

    fn sf(&self, x: f64) -> f64 {
        self.dist.sf(x - self.lower)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.lower + self.dist.quantile(q)
    }

    fn lower_bound(&self) -> f64 {
        self.lower
    }

    fn mean(&self) -> Option<f64> {
        self.dist.mean().map(|m| m + self.lower)
    }

    fn describe(&self) -> String {
        format!(
            "shifted Exponential(mean = {:.2})",
            self.mean().unwrap_or(0.0)
        )
    }
}

/// Log-normal flow sizes — a short-tailed model matching the Abilene-like
/// scenario of Sec. 8.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalFlowModel {
    dist: LogNormal,
}

impl LogNormalFlowModel {
    /// Log-normal flow-size model with the given mean (packets) and squared
    /// coefficient of variation.
    pub fn with_mean_cv2(mean_packets: f64, cv2: f64) -> StatsResult<Self> {
        Ok(LogNormalFlowModel {
            dist: LogNormal::with_mean_cv2(mean_packets, cv2)?,
        })
    }
}

impl FlowSizeModel for LogNormalFlowModel {
    fn pdf(&self, x: f64) -> f64 {
        self.dist.pdf(x)
    }

    fn sf(&self, x: f64) -> f64 {
        self.dist.sf(x)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.dist.quantile(q)
    }

    fn lower_bound(&self) -> f64 {
        // Effectively zero; use a small positive floor so log-scale grids work.
        1e-3
    }

    fn mean(&self) -> Option<f64> {
        self.dist.mean()
    }

    fn describe(&self) -> String {
        format!("LogNormal(mean = {:.2})", self.mean().unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_model_matches_paper_calibration() {
        // 5-tuple flows: 4.8 KB / 500 B = 9.6 packets, β = 1.5.
        let m = ParetoFlowModel::with_mean(9.6, 1.5).unwrap();
        assert!((m.mean().unwrap() - 9.6).abs() < 1e-12);
        assert!((m.shape() - 1.5).abs() < 1e-12);
        assert!((m.lower_bound() - 3.2).abs() < 1e-12);
        // Survival function has the documented form.
        assert!((m.sf(32.0) - (32.0f64 / 3.2).powf(-1.5)).abs() < 1e-12);
        assert!(m.describe().contains("Pareto"));
        assert!(ParetoFlowModel::with_mean(9.6, 0.9).is_err());
        assert!(ParetoFlowModel::new(2.0, 1.3).is_ok());
    }

    #[test]
    fn quantile_and_sf_are_inverse() {
        let m = ParetoFlowModel::with_mean(33.2, 1.5).unwrap();
        for &q in &[0.5, 0.9, 0.999, 0.999_99] {
            let x = m.quantile(q);
            assert!((m.sf(x) - (1.0 - q)).abs() < 1e-9, "q = {q}");
        }
    }

    #[test]
    fn heavier_tail_has_larger_top_quantiles() {
        let heavy = ParetoFlowModel::with_mean(9.6, 1.2).unwrap();
        let light = ParetoFlowModel::with_mean(9.6, 3.0).unwrap();
        assert!(heavy.quantile(0.9999) > light.quantile(0.9999));
    }

    #[test]
    fn exponential_model_basics() {
        let m = ExponentialFlowModel::with_mean(10.0).unwrap();
        assert!((m.mean().unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(m.lower_bound(), 1.0);
        assert_eq!(m.sf(0.5), 1.0);
        assert!(m.sf(100.0) < 1e-4);
        assert!((m.sf(m.quantile(0.9)) - 0.1).abs() < 1e-9);
        assert!(m.describe().contains("Exponential"));
        // Much lighter tail than a Pareto of the same mean.
        let pareto = ParetoFlowModel::with_mean(10.0, 1.5).unwrap();
        assert!(m.quantile(0.99999) < pareto.quantile(0.99999));
    }

    #[test]
    fn lognormal_model_basics() {
        let m = LogNormalFlowModel::with_mean_cv2(12.0, 4.0).unwrap();
        assert!((m.mean().unwrap() - 12.0).abs() < 1e-9);
        assert!(m.pdf(0.0) == 0.0 || m.pdf(0.0) < 1e-30);
        assert!((m.sf(m.quantile(0.75)) - 0.25).abs() < 1e-9);
        assert!(m.describe().contains("LogNormal"));
        assert!(m.lower_bound() > 0.0);
    }
}

//! # flowrank-core
//!
//! Analytical models for **detecting and ranking the largest flows from
//! sampled traffic**, reproducing Barakat, Iannaccone & Diot (INRIA RR-5266 /
//! CoNEXT 2005).
//!
//! The question the models answer: a monitor samples packets independently
//! with probability `p`, classifies the sampled packets into flows and sorts
//! the sampled flows by size — how well does the sampled top-`t` list match
//! the true top-`t` list?
//!
//! * [`pairwise`] — the exact misranking probability of two flows of known
//!   sizes under random packet sampling (Eq. 1 of the paper, Sec. 3), and the
//!   behaviour of its optimum.
//! * [`gaussian`] — the closed-form Gaussian approximation of the misranking
//!   probability (Eq. 2, Sec. 4) and its error against the exact form.
//! * [`optimal`] — the optimal (minimum) sampling rate achieving a target
//!   misranking probability (Sec. 3.2, Figs. 1–2).
//! * [`flowdist`] — the flow-size distribution abstraction used by the
//!   general models (Pareto in the paper, Sec. 6).
//! * [`ranking`] — the general ranking model: expected number of swapped
//!   flow pairs involving a top-`t` flow (Sec. 5, Eq. 3; evaluated in Sec. 6,
//!   Figs. 4–9). Both the continuous (Gaussian + integral) form the paper
//!   uses for its numbers and a discrete summation form for validation.
//! * [`detection`] — the relaxed detection model: swapped pairs across the
//!   top-`t` boundary only (Sec. 7, Figs. 10–11).
//! * [`metrics`] — the *empirical* counterparts of both metrics, computed on
//!   concrete before/after-sampling flow tables (used by the trace-driven
//!   simulations of Sec. 8).
//! * [`scenario`] — the paper's evaluation scenarios (Sprint 5-tuple and /24
//!   prefix parameters) as ready-made configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detection;
pub mod flowdist;
pub mod gaussian;
pub mod metrics;
pub mod optimal;
pub mod pairwise;
pub mod ranking;
pub mod scenario;

pub use detection::DetectionModel;
pub use flowdist::{FlowSizeModel, ParetoFlowModel};
pub use gaussian::misranking_probability_gaussian;
pub use optimal::{optimal_sampling_rate, PairwiseModel};
pub use pairwise::misranking_probability_exact;
pub use ranking::RankingModel;
pub use scenario::Scenario;

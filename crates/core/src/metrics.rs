//! Empirical ranking / detection metrics on concrete flow tables.
//!
//! The trace-driven simulations of Sec. 8 compute, for every measurement bin,
//! the same swapped-pair counts the analytical models predict — but on the
//! actual flow tables built before and after sampling. These functions do
//! that counting. They are generic over the flow key so both flow
//! definitions (5-tuple and /24 prefix) use the same code.

use flowrank_flowtable::{CompactKey, FlowMap};

/// A flow with its true (unsampled) size, as produced by ranking the original
/// flow table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizedFlow<K> {
    /// Flow identity.
    pub key: K,
    /// True size in packets.
    pub packets: u64,
}

/// Result of comparing a sampled ranking against the true ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparisonOutcome {
    /// The paper's ranking metric: swapped pairs whose first element is a
    /// true top-`t` flow and whose second element is any other flow.
    pub ranking_swaps: u64,
    /// The paper's detection metric: swapped pairs whose first element is a
    /// true top-`t` flow and whose second element is outside the top `t`.
    pub detection_swaps: u64,
    /// Number of true top-`t` flows that do not appear in the sampled table
    /// at all (sampled size zero).
    pub missed_top_flows: u64,
    /// Number of pairs considered for the ranking metric.
    pub ranking_pairs: u64,
    /// Number of pairs considered for the detection metric.
    pub detection_pairs: u64,
}

/// A ground-truth ranking prepared once and compared against many sampled
/// tables.
///
/// The streaming monitor classifies each measurement bin exactly once and
/// then scores every sampling lane (run × rate) against the same ranked
/// truth. Sorting the population is the `O(n log n)` part of the metric, so
/// hoisting it out of the per-lane loop is what makes multi-run fan-out
/// cheap: `new` pays the sort, [`GroundTruthRanking::compare_with`] is a pure
/// `O(t·n)` scan per lane.
#[derive(Debug, Clone)]
pub struct GroundTruthRanking<K> {
    ranked: Vec<SizedFlow<K>>,
    top_t: usize,
}

impl<K: Clone + Ord> GroundTruthRanking<K> {
    /// Ranks a flow population by decreasing true size (ties broken by key
    /// order so the ranking is identical across runs and platforms) and fixes
    /// the top-`t` boundary.
    pub fn new(mut flows: Vec<SizedFlow<K>>, top_t: usize) -> Self {
        flows.sort_by(|a, b| b.packets.cmp(&a.packets).then_with(|| a.key.cmp(&b.key)));
        let top_t = top_t.min(flows.len());
        GroundTruthRanking {
            ranked: flows,
            top_t,
        }
    }

    /// Number of flows in the population.
    pub fn flow_count(&self) -> usize {
        self.ranked.len()
    }

    /// The effective top-`t` boundary (clamped to the population size).
    pub fn top_t(&self) -> usize {
        self.top_t
    }

    /// The population, sorted by decreasing true size.
    pub fn flows(&self) -> &[SizedFlow<K>] {
        &self.ranked
    }

    /// Scores one sampled table against this truth, looking sampled sizes up
    /// through `sampled_size_of` (flows the sampler missed must report 0).
    ///
    /// A pair `(a, b)` with true sizes `S_a > S_b` is *swapped* when the
    /// sampled sizes satisfy `s_b ≥ s_a` — the paper's pairwise definition
    /// `P{s_small ≥ s_large}`; a pair in which neither flow was sampled
    /// counts as swapped. Pairs of equal true size are skipped (their order
    /// is arbitrary even without sampling).
    pub fn compare_with<F: Fn(&K) -> u64>(&self, sampled_size_of: F) -> ComparisonOutcome {
        let t = self.top_t;
        let mut ranking_swaps = 0u64;
        let mut detection_swaps = 0u64;
        let mut ranking_pairs = 0u64;
        let mut detection_pairs = 0u64;
        let mut missed_top_flows = 0u64;

        // One lookup per flow, in rank order. The pairwise scan below would
        // otherwise look every non-top flow up once *per top flow* — `t·n`
        // sampled-table probes per lane, which dominated multi-lane
        // monitors before this cache. `sampled_size_of` must be pure; it is
        // now called exactly once per flow.
        let sampled: Vec<u64> = self
            .ranked
            .iter()
            .map(|flow| sampled_size_of(&flow.key))
            .collect();

        for (rank_a, top_flow) in self.ranked.iter().take(t).enumerate() {
            let s_a = sampled[rank_a];
            if s_a == 0 {
                missed_top_flows += 1;
            }
            // Pairs are unordered: every pair is counted once, with the
            // higher-ranked flow as its first element (pairs of two top
            // flows are counted by the smaller rank only) — hence the scan
            // starts below `rank_a`.
            for (offset, other) in self.ranked[rank_a + 1..].iter().enumerate() {
                let rank_b = rank_a + 1 + offset;
                if top_flow.packets == other.packets {
                    continue;
                }
                // top_flow.packets > other.packets by construction of the sort.
                let swapped = sampled[rank_b] >= s_a;
                ranking_pairs += 1;
                if swapped {
                    ranking_swaps += 1;
                }
                if rank_b >= t {
                    detection_pairs += 1;
                    if swapped {
                        detection_swaps += 1;
                    }
                }
            }
        }

        ComparisonOutcome {
            ranking_swaps,
            detection_swaps,
            missed_top_flows,
            ranking_pairs,
            detection_pairs,
        }
    }
}

impl<K: CompactKey + Ord> GroundTruthRanking<K> {
    /// Scores a sampled size map against this truth (convenience over
    /// [`GroundTruthRanking::compare_with`]).
    pub fn compare(&self, sampled_sizes: &FlowMap<K, u64>) -> ComparisonOutcome {
        self.compare_with(|key| sampled_sizes.get(key).copied().unwrap_or(0))
    }
}

/// Compares the true ranking of a flow population against its sampled sizes.
///
/// * `original` — every flow of the bin with its true size, in any order.
/// * `sampled_sizes` — sampled size per flow key; flows absent from the map
///   have sampled size zero.
/// * `top_t` — how many top flows the monitor reports.
///
/// One-shot convenience over [`GroundTruthRanking`]; callers that score many
/// sampled tables against the same truth should build the ranking once
/// instead.
pub fn compare_rankings<K: CompactKey + Ord>(
    original: &[SizedFlow<K>],
    sampled_sizes: &FlowMap<K, u64>,
    top_t: usize,
) -> ComparisonOutcome {
    GroundTruthRanking::new(original.to_vec(), top_t).compare(sampled_sizes)
}

/// Convenience: whether the sampled top-`t` *set* matches the true top-`t`
/// set (order ignored) — the "detection succeeded" criterion.
pub fn top_set_matches<K: CompactKey + Ord>(
    original: &[SizedFlow<K>],
    sampled_sizes: &FlowMap<K, u64>,
    top_t: usize,
) -> bool {
    let mut true_ranked: Vec<&SizedFlow<K>> = original.iter().collect();
    true_ranked.sort_by(|a, b| b.packets.cmp(&a.packets).then(a.key.cmp(&b.key)));
    let mut true_top: Vec<K> = true_ranked.iter().take(top_t).map(|f| f.key).collect();
    true_top.sort();

    let mut sampled_ranked: Vec<(&K, u64)> = original
        .iter()
        .map(|f| (&f.key, sampled_sizes.get(&f.key).copied().unwrap_or(0)))
        .collect();
    sampled_ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut sampled_top: Vec<K> = sampled_ranked
        .iter()
        .take(top_t)
        .map(|(k, _)| **k)
        .collect();
    sampled_top.sort();

    true_top == sampled_top
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(sizes: &[u64]) -> Vec<SizedFlow<u32>> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &packets)| SizedFlow {
                key: i as u32,
                packets,
            })
            .collect()
    }

    fn sampled(pairs: &[(u32, u64)]) -> FlowMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_sampling_has_no_swaps() {
        let original = flows(&[100, 80, 60, 40, 20]);
        let exact = sampled(&[(0, 100), (1, 80), (2, 60), (3, 40), (4, 20)]);
        let outcome = compare_rankings(&original, &exact, 3);
        assert_eq!(outcome.ranking_swaps, 0);
        assert_eq!(outcome.detection_swaps, 0);
        assert_eq!(outcome.missed_top_flows, 0);
        // Pairs: top-3 against everyone below them: 4 + 3 + 2 = 9.
        assert_eq!(outcome.ranking_pairs, 9);
        // Detection pairs: top-3 × the 2 non-top flows = 6.
        assert_eq!(outcome.detection_pairs, 6);
        assert!(top_set_matches(&original, &exact, 3));
    }

    #[test]
    fn single_adjacent_swap_counts_once_for_ranking_only() {
        let original = flows(&[100, 80, 60, 40, 20]);
        // Flows 1 and 2 (both in the top 3) swap after sampling.
        let swapped = sampled(&[(0, 50), (1, 20), (2, 30), (3, 10), (4, 5)]);
        let outcome = compare_rankings(&original, &swapped, 3);
        assert_eq!(outcome.ranking_swaps, 1);
        // The swap is inside the top-3 set, so detection is unaffected.
        assert_eq!(outcome.detection_swaps, 0);
        assert!(top_set_matches(&original, &swapped, 3));
    }

    #[test]
    fn swap_across_the_boundary_counts_for_both_metrics() {
        let original = flows(&[100, 80, 60, 40, 20]);
        // Flow 3 (outside the top 3) out-samples flow 2 (inside).
        let swapped = sampled(&[(0, 50), (1, 40), (2, 5), (3, 30), (4, 1)]);
        let outcome = compare_rankings(&original, &swapped, 3);
        assert!(outcome.ranking_swaps >= 1);
        assert_eq!(outcome.detection_swaps, 1);
        assert!(!top_set_matches(&original, &swapped, 3));
    }

    #[test]
    fn unsampled_top_flow_counts_as_swapped_with_everything() {
        let original = flows(&[100, 80, 60, 40, 20]);
        // Flow 0 disappears entirely: every one of its 4 pairs is swapped
        // (sampled sizes of the others are ≥ 0 = its sampled size).
        let missing = sampled(&[(1, 40), (2, 30), (3, 20), (4, 10)]);
        let outcome = compare_rankings(&original, &missing, 1);
        assert_eq!(outcome.missed_top_flows, 1);
        assert_eq!(outcome.ranking_swaps, 4);
        assert_eq!(outcome.detection_swaps, 4);
    }

    #[test]
    fn both_flows_unsampled_is_a_swap() {
        let original = flows(&[100, 10]);
        let nothing: FlowMap<u32, u64> = FlowMap::new();
        let outcome = compare_rankings(&original, &nothing, 1);
        assert_eq!(outcome.ranking_swaps, 1);
        assert_eq!(outcome.detection_swaps, 1);
        assert_eq!(outcome.missed_top_flows, 1);
    }

    #[test]
    fn equal_true_sizes_are_skipped() {
        let original = flows(&[50, 50, 10]);
        let exact = sampled(&[(0, 5), (1, 9), (2, 1)]);
        let outcome = compare_rankings(&original, &exact, 2);
        // The (0,1) pair is skipped; only (0,2) and (1,2) are counted.
        assert_eq!(outcome.ranking_pairs, 2);
        assert_eq!(outcome.ranking_swaps, 0);
    }

    #[test]
    fn top_t_larger_than_population_is_clamped() {
        let original = flows(&[30, 20, 10]);
        let exact = sampled(&[(0, 3), (1, 2), (2, 1)]);
        let outcome = compare_rankings(&original, &exact, 10);
        assert_eq!(outcome.ranking_swaps, 0);
        assert_eq!(outcome.detection_pairs, 0);
        assert!(top_set_matches(&original, &exact, 10));
    }

    #[test]
    fn ground_truth_ranking_is_reusable_across_lanes() {
        let original = flows(&[100, 80, 60, 40, 20]);
        let truth = GroundTruthRanking::new(original.clone(), 3);
        assert_eq!(truth.flow_count(), 5);
        assert_eq!(truth.top_t(), 3);
        assert_eq!(truth.flows()[0].packets, 100);
        let exact = sampled(&[(0, 100), (1, 80), (2, 60), (3, 40), (4, 20)]);
        let degraded = sampled(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        // The prepared ranking scores any number of sampled tables and agrees
        // with the one-shot entry point on each.
        assert_eq!(
            truth.compare(&exact),
            compare_rankings(&original, &exact, 3)
        );
        assert_eq!(
            truth.compare(&degraded),
            compare_rankings(&original, &degraded, 3)
        );
        // Lookup-based scoring matches the map-based one.
        assert_eq!(
            truth.compare_with(|k| degraded.get(k).copied().unwrap_or(0)),
            truth.compare(&degraded)
        );
    }

    #[test]
    fn empty_population() {
        let original: Vec<SizedFlow<u32>> = Vec::new();
        let outcome = compare_rankings(&original, &FlowMap::new(), 5);
        assert_eq!(outcome.ranking_pairs, 0);
        assert_eq!(outcome.ranking_swaps, 0);
        assert!(top_set_matches(&original, &FlowMap::new(), 5));
    }
}

//! The detection model (Sec. 7): identifying the top-`t` flows without
//! caring about their relative order.
//!
//! The metric only counts swapped pairs that cross the top-`t` boundary: the
//! first element of a pair is one of the true top-`t` flows, the second is a
//! flow *outside* the top `t`. The expected count is `t(N − t) · P̄*mt(p)`
//! with (Sec. 7.1)
//!
//! ```text
//! P̄*mt = (1/P̄*t) Σ_i Σ_{j<i} p_i p_j P*t(j, i, t, N) Pm(j, i)
//! P̄*t  = t(N − t) / (N(N − 1))
//! ```
//!
//! where `P*t(j, i, t, N)` is the joint probability that a flow of size `i`
//! is in the top `t` while a flow of size `j < i` is not. As with the ranking
//! model, the paper evaluates this with the Gaussian pairwise probability and
//! continuous Pareto flow sizes; the double sum becomes a double integral
//! concentrated near the top boundary and near the diagonal. The headline
//! result of Sec. 7.2 is that detection needs roughly an order of magnitude
//! less sampling than ranking.

use flowrank_stats::quadrature::gauss_legendre_composite;

use crate::flowdist::FlowSizeModel;
use crate::gaussian::misranking_probability_gaussian;
use crate::ranking::{poisson_pmf, prob_at_most};

/// Number of Gauss–Legendre panels for the inner (y) integral.
const INNER_PANELS: usize = 6;
/// Number of standard deviations of the sampled-size difference covered by
/// the inner integration window.
const INNER_WIDTH_SIGMAS: f64 = 12.0;
/// Safety factor on the top-`t` boundary when choosing the outer range.
const OUTER_BOUNDARY_FACTOR: f64 = 40.0;
/// Number of geometric panels for the outer (x) tail integration.
const OUTER_PANELS: usize = 48;
/// Relative tolerance at which the outer tail integration stops.
const OUTER_REL_TOL: f64 = 1e-7;

/// The detection model: `N` flows with a given size law, detection of the
/// top-`t` set.
#[derive(Debug, Clone, Copy)]
pub struct DetectionModel<'a, D: FlowSizeModel + ?Sized> {
    dist: &'a D,
    n_flows: f64,
    top_t: u32,
}

impl<'a, D: FlowSizeModel + ?Sized> DetectionModel<'a, D> {
    /// Creates a detection model for `n_flows` flows drawn from `dist`,
    /// evaluating the detection of the top `top_t` flows.
    ///
    /// # Panics
    ///
    /// Panics when `top_t` is zero or the population is smaller than `top_t`.
    pub fn new(dist: &'a D, n_flows: u64, top_t: u32) -> Self {
        assert!(top_t >= 1, "top_t must be at least 1");
        assert!(
            n_flows as f64 > top_t as f64,
            "the population must contain more than top_t flows"
        );
        DetectionModel {
            dist,
            n_flows: n_flows as f64,
            top_t,
        }
    }

    /// Number of (top-`t` flow, non-top flow) pairs, `t(N − t)`.
    pub fn pair_count(&self) -> f64 {
        self.top_t as f64 * (self.n_flows - self.top_t as f64)
    }

    fn outer_lower_bound(&self) -> f64 {
        let boundary_sf = (OUTER_BOUNDARY_FACTOR * self.top_t as f64 / self.n_flows).min(1.0);
        if boundary_sf >= 1.0 {
            self.dist.lower_bound()
        } else {
            self.dist
                .quantile(1.0 - boundary_sf)
                .max(self.dist.lower_bound())
        }
    }

    fn inner_half_width(&self, x: f64, p: f64) -> f64 {
        let sigma = (2.0 * (1.0 / p - 1.0) * 2.0 * x).sqrt();
        (INNER_WIDTH_SIGMAS * sigma).max(2.0)
    }

    /// Joint probability that a flow of size `x` is in the top `t` while a
    /// (smaller) flow of size `y < x` is not — `P*t(y, x, t, N)` of Sec. 7.1,
    /// evaluated in the Poisson limit appropriate for large `N`.
    pub fn joint_boundary_probability(&self, y: f64, x: f64) -> f64 {
        let n = self.n_flows;
        let t = self.top_t;
        let sfx = self.dist.sf(x);
        let sfy = self.dist.sf(y);
        // Number of flows larger than x (other than the two singled out).
        let lambda_above = (n - 2.0) * sfx;
        // Number of flows between y and x.
        let lambda_between = ((n - 2.0) * (sfy - sfx)).max(0.0);
        let mut total = 0.0;
        for k in 0..t {
            let p_k = poisson_pmf(k, lambda_above);
            if p_k < 1e-16 {
                continue;
            }
            // y is outside the top t when the flows above y — the k flows
            // above x, x itself, and the flows between y and x — number at
            // least t, i.e. at least t − k − 1 flows fall between y and x.
            let needed = t as i64 - k as i64 - 1;
            let p_enough_between = if needed <= 0 {
                1.0
            } else {
                1.0 - prob_at_most(needed as u32, n - 2.0, (sfy - sfx).max(0.0))
            };
            total += p_k * p_enough_between;
        }
        let _ = lambda_between; // documented above; folded into prob_at_most
        total.clamp(0.0, 1.0)
    }

    /// Probability `P̄*mt(p)` that a top-`t` flow is swapped with a flow
    /// outside the top `t` after sampling at rate `p`.
    pub fn average_misclassification_probability(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 1.0;
        }
        if p >= 1.0 {
            return 0.0;
        }
        let n = self.n_flows;
        let lower = self.dist.lower_bound();
        let x_start = self.outer_lower_bound();

        let outer = |x: f64| {
            let fx = self.dist.pdf(x);
            if fx <= 0.0 {
                return 0.0;
            }
            // Flows with essentially no chance of being in the top t
            // contribute nothing.
            if prob_at_most(self.top_t, n - 2.0, self.dist.sf(x)) < 1e-14 {
                return 0.0;
            }
            let w = self.inner_half_width(x, p);
            let lo = (x - w).max(lower);
            let inner = gauss_legendre_composite(
                |y| {
                    self.dist.pdf(y)
                        * self.joint_boundary_probability(y, x)
                        * misranking_probability_gaussian(y, x, p)
                },
                lo,
                x,
                INNER_PANELS,
            );
            fx * inner
        };

        let mut total = 0.0;
        let mut lo = x_start;
        let mut width = x_start.abs().max(1.0);
        for _ in 0..OUTER_PANELS {
            let hi = lo + width;
            let piece = gauss_legendre_composite(outer, lo, hi, 2);
            total += piece;
            if piece.abs() <= OUTER_REL_TOL * total.abs().max(f64::MIN_POSITIVE) && total > 0.0 {
                break;
            }
            lo = hi;
            width *= 2.0;
        }
        // P̄*mt = total / P̄*t with P̄*t = t(N−t)/(N(N−1)).
        let p_star_t = self.pair_count() / (n * (n - 1.0));
        (total / p_star_t).clamp(0.0, 1.0)
    }

    /// The paper's detection metric: expected number of swapped pairs across
    /// the top-`t` boundary, `t(N − t) · P̄*mt(p)`.
    pub fn mean_swapped_pairs(&self, p: f64) -> f64 {
        self.pair_count() * self.average_misclassification_probability(p)
    }

    /// Smallest sampling rate (within `[min_rate, 1]`) for which the
    /// detection metric drops below `threshold`.
    pub fn required_sampling_rate(&self, threshold: f64, min_rate: f64) -> f64 {
        let lo = min_rate.clamp(1e-6, 1.0);
        flowrank_stats::roots::monotone_threshold(
            |p| self.mean_swapped_pairs(p),
            lo,
            1.0,
            threshold,
            1e-4,
            60,
        )
        .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowdist::ParetoFlowModel;
    use crate::ranking::RankingModel;

    fn five_tuple_model() -> ParetoFlowModel {
        ParetoFlowModel::with_mean(9.6, 1.5).unwrap()
    }

    #[test]
    fn joint_probability_behaviour() {
        let dist = five_tuple_model();
        let model = DetectionModel::new(&dist, 100_000, 10);
        // x at the top boundary, y well below it: the joint event is likely.
        let x_top = dist.quantile(1.0 - 2.0 / 100_000.0);
        let y_low = dist.quantile(0.5);
        let high = model.joint_boundary_probability(y_low, x_top);
        assert!(high > 0.9, "joint probability {high}");
        // y just below x near the boundary: much less certain.
        let y_close = x_top * 0.98;
        let close = model.joint_boundary_probability(y_close, x_top);
        assert!(close < high);
        // x far below the boundary: essentially impossible to be in the top.
        let x_low = dist.quantile(0.2);
        assert!(model.joint_boundary_probability(dist.quantile(0.1), x_low) < 1e-3);
    }

    #[test]
    fn metric_monotone_in_rate() {
        let dist = five_tuple_model();
        let model = DetectionModel::new(&dist, 700_000, 10);
        let values: Vec<f64> = [0.001, 0.01, 0.1]
            .iter()
            .map(|&p| model.mean_swapped_pairs(p))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] < w[0], "{values:?}");
        }
        assert_eq!(model.average_misclassification_probability(0.0), 1.0);
        assert_eq!(model.average_misclassification_probability(1.0), 0.0);
    }

    #[test]
    fn detection_is_easier_than_ranking() {
        // The headline of Sec. 7: at the same sampling rate the detection
        // metric is far below the ranking metric, and the required rate drops
        // by roughly an order of magnitude.
        let dist = five_tuple_model();
        let n = 700_000;
        let t = 10;
        let p = 0.05;
        let ranking = RankingModel::new(&dist, n, t).mean_swapped_pairs(p);
        let detection = DetectionModel::new(&dist, n, t).mean_swapped_pairs(p);
        assert!(
            detection < ranking,
            "detection {detection} should be below ranking {ranking}"
        );

        let rate_ranking = RankingModel::new(&dist, n, t).required_sampling_rate(1.0, 1e-3);
        let rate_detection = DetectionModel::new(&dist, n, t).required_sampling_rate(1.0, 1e-3);
        assert!(
            rate_detection < rate_ranking / 2.0,
            "detection rate {rate_detection} vs ranking rate {rate_ranking}"
        );
    }

    #[test]
    fn detection_equals_ranking_for_top_one() {
        // For t = 1 the two problems coincide (Sec. 7.1).
        let dist = five_tuple_model();
        let n = 100_000;
        let p = 0.01;
        let ranking = RankingModel::new(&dist, n, 1).mean_swapped_pairs(p);
        let detection = DetectionModel::new(&dist, n, 1).mean_swapped_pairs(p);
        let ratio = detection / ranking;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "t=1: detection {detection} vs ranking {ranking}"
        );
    }

    #[test]
    fn larger_t_is_harder_to_detect() {
        let dist = five_tuple_model();
        let p = 0.01;
        let m2 = DetectionModel::new(&dist, 700_000, 2).mean_swapped_pairs(p);
        let m25 = DetectionModel::new(&dist, 700_000, 25).mean_swapped_pairs(p);
        assert!(m2 < m25);
    }

    #[test]
    #[should_panic(expected = "more than top_t")]
    fn population_must_exceed_top_t() {
        let dist = five_tuple_model();
        let _ = DetectionModel::new(&dist, 10, 10);
    }
}

//! Gaussian approximation of the misranking probability (Sec. 4, Eq. 2).
//!
//! When `pS` is at least of order one, a flow's sampled size is well
//! approximated by a Normal with mean `pS` and variance `p(1−p)S`, so the
//! difference of the two sampled sizes is also Normal and
//!
//! ```text
//! Pm(S1, S2) ≈ ½ · erfc( |S2 − S1| / √(2(1/p − 1)(S1 + S2)) )
//! ```
//!
//! This closed form is what makes the general ranking model tractable (the
//! paper reports the computation dropping from hours to seconds); the price
//! is an error when both flows are small relative to `1/p`, quantified by
//! [`gaussian_absolute_error`] and plotted in Fig. 3.

use flowrank_stats::special::erfc;

use crate::pairwise::misranking_probability_exact;

/// Gaussian (Eq. 2) approximation of the misranking probability of two flows
/// of sizes `s1` and `s2` packets under sampling at rate `p`.
pub fn misranking_probability_gaussian(s1: f64, s2: f64, p: f64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if s1 == s2 { 0.5 } else { 0.0 };
    }
    let total = s1 + s2;
    if total <= 0.0 {
        return 1.0;
    }
    let argument = (s2 - s1).abs() / (2.0 * (1.0 / p - 1.0) * total).sqrt();
    0.5 * erfc(argument)
}

/// Absolute error of the Gaussian approximation against the exact Eq. 1
/// probability, `|Pm_gauss − Pm_exact|` (the quantity plotted in Fig. 3).
pub fn gaussian_absolute_error(s1: u64, s2: u64, p: f64) -> f64 {
    (misranking_probability_gaussian(s1 as f64, s2 as f64, p)
        - misranking_probability_exact(s1, s2, p))
    .abs()
}

/// The "square-root condition" of Sec. 4: given two flows whose sizes grow
/// while their difference grows like `√size · factor`, the misranking
/// probability converges to a constant; it vanishes only when the difference
/// grows strictly faster than the square root of the sizes. This helper
/// evaluates the Gaussian misranking probability along that parameterised
/// family and is used by tests and the ablation bench to demonstrate the
/// condition.
pub fn misranking_along_sqrt_family(base_size: f64, sqrt_factor: f64, p: f64) -> f64 {
    let s1 = base_size;
    let s2 = base_size + sqrt_factor * base_size.sqrt();
    misranking_probability_gaussian(s1, s2, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_when_ps_is_large() {
        // Fig. 3 region: once one flow has pS ≳ 3 the absolute error is small.
        let p = 0.01;
        for &(s1, s2) in &[(400u64, 500u64), (1_000, 1_200), (350, 900)] {
            let err = gaussian_absolute_error(s1, s2, p);
            assert!(err < 0.10, "error {err} too large for ({s1},{s2})");
        }
        // Deeper into the Fig. 3 "safe" region the error keeps shrinking.
        assert!(gaussian_absolute_error(2_000, 2_500, p) < 0.03);
        // Higher rate, moderate flows.
        assert!(gaussian_absolute_error(100, 150, 0.1) < 0.05);
    }

    #[test]
    fn error_is_large_when_both_flows_tiny() {
        // Both flows ≪ 1/p: the Normal approximation cannot hold.
        let err = gaussian_absolute_error(3, 5, 0.01);
        assert!(err > 0.2, "expected a large error, got {err}");
    }

    #[test]
    fn degenerate_rates_and_sizes() {
        assert_eq!(misranking_probability_gaussian(10.0, 20.0, 0.0), 1.0);
        assert_eq!(misranking_probability_gaussian(10.0, 20.0, 1.0), 0.0);
        assert_eq!(misranking_probability_gaussian(10.0, 10.0, 1.0), 0.5);
        assert_eq!(misranking_probability_gaussian(0.0, 0.0, 0.5), 1.0);
        // Equal sizes at an intermediate rate: erfc(0)/2 = 1/2.
        assert!((misranking_probability_gaussian(500.0, 500.0, 0.1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetry_and_monotonicity() {
        let p = 0.05;
        assert!(
            (misranking_probability_gaussian(100.0, 300.0, p)
                - misranking_probability_gaussian(300.0, 100.0, p))
            .abs()
                < 1e-15
        );
        // Decreasing in p.
        let values: Vec<f64> = [0.001, 0.01, 0.1, 0.5]
            .iter()
            .map(|&p| misranking_probability_gaussian(800.0, 1_000.0, p))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] < w[0]);
        }
        // Decreasing in the size gap.
        assert!(
            misranking_probability_gaussian(900.0, 1_000.0, p)
                > misranking_probability_gaussian(500.0, 1_000.0, p)
        );
    }

    #[test]
    fn same_absolute_gap_harder_for_larger_flows() {
        // S1 = S2 − k: Pm increases with the common size (Sec. 4).
        let p = 0.1;
        let small = misranking_probability_gaussian(90.0, 100.0, p);
        let large = misranking_probability_gaussian(990.0, 1_000.0, p);
        assert!(large > small);
    }

    #[test]
    fn same_relative_gap_easier_for_larger_flows() {
        // S1 = αS2: Pm decreases with the common scale (Sec. 4).
        let p = 0.1;
        let small = misranking_probability_gaussian(80.0, 100.0, p);
        let large = misranking_probability_gaussian(800.0, 1_000.0, p);
        assert!(large < small);
    }

    #[test]
    fn sqrt_condition_boundary() {
        // Along the √-family the probability is scale-invariant (constant in
        // the base size) — the threshold behaviour described in Sec. 4.
        let p = 0.05;
        let a = misranking_along_sqrt_family(1_000.0, 3.0, p);
        let b = misranking_along_sqrt_family(100_000.0, 3.0, p);
        let rel = (a - b).abs() / a;
        assert!(
            rel < 0.05,
            "√-family should be nearly scale-free: {a} vs {b}"
        );
        // Faster-than-√ growth: probability drops with scale.
        let faster_small =
            misranking_probability_gaussian(1_000.0, 1_000.0 + 1_000.0f64.powf(0.75), p);
        let faster_large =
            misranking_probability_gaussian(100_000.0, 100_000.0 + 100_000.0f64.powf(0.75), p);
        assert!(faster_large < faster_small);
    }
}

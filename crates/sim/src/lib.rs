//! # flowrank-sim
//!
//! Trace-driven sampling simulation engine, reproducing the binned
//! experiments of Sec. 8 of the paper on top of the streaming
//! [`flowrank_monitor::Monitor`].
//!
//! The methodology (Sec. 8.1): the packet-level trace is cut into measurement
//! bins; within each bin the packets are sampled, classified into flows under
//! a chosen flow definition, and the sampled ranking is compared with the
//! unsampled ranking of the same bin through the swapped-pair metrics. Each
//! experiment is repeated over several independent sampling runs (30 in the
//! paper) and reported as a per-bin mean with its standard deviation — the
//! error bars of Figs. 12–16.
//!
//! Experiments are expressed through the push-based monitor: each bin is
//! classified into ground truth **once** and all `runs × rates` sampling
//! lanes are scored against that single ranking, rather than re-running the
//! whole classify–rank pipeline per run as the original batch engine did.
//!
//! * [`binning`] — cutting a packet trace into measurement bins (flows active
//!   across a bin boundary are truncated, exactly as the paper's binning
//!   method does).
//! * [`conformance`] — the differential harness that drives one
//!   configuration through every execution path (`push`, `push_batch` whole
//!   and chunked, sharded `threads(n)`, legacy [`run_bin`]), asserts
//!   bit-identical reports and condenses the stream into a stable golden
//!   digest.
//! * [`convergence`] — the closed-loop harness: drives a
//!   `flowrank-control` controller over a scenario workload, computes
//!   per-bin regret against the offline-optimal rate from `core::optimal`,
//!   and digests the decision trace for golden pinning.
//! * [`engine`] — the legacy single-run batch entry points ([`run_bin`],
//!   [`engine::run_bin_random_sampling`]), kept as thin wrappers that share
//!   the monitor's ranking primitives and produce bit-identical results.
//! * [`experiment`] — multi-run, multi-bin experiments fanned out on the
//!   monitor, parallelised across bins with std threads.
//! * [`faults`] — deterministic fault injection ([`FaultySource`],
//!   [`FaultySink`], seeded [`FaultPlan`] schedules) behind the chaos
//!   conformance suite for `Monitor::try_drive`.
//! * [`report`] — CSV-style rendering of experiment results.
//! * [`scenarios`] — ready-made Sprint / Abilene experiment configurations
//!   matching Figs. 12–16.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod conformance;
pub mod convergence;
pub mod engine;
pub mod experiment;
pub mod faults;
pub mod report;
pub mod scenarios;

pub use binning::{split_batch_into_bin_ranges, split_into_bins};
pub use conformance::{
    digest_reports, run_conformance, run_streamed_conformance, ConformanceConfig,
};
pub use convergence::{run_convergence, ConvergenceConfig, ConvergencePoint, ConvergenceResult};
pub use engine::{run_bin, BinResult};
pub use experiment::{ExperimentConfig, ExperimentResult, TraceExperiment};
pub use faults::{FaultPlan, FaultySink, FaultySource, InjectedFaults, SinkFault, SourceFault};
pub use scenarios::{
    abilene_experiment, sprint_experiment, sprint_experiment_with_sampler, workload_builder,
    workload_controlled_monitor, workload_experiment, workload_monitor, workload_rate_curve,
};

// The monitor is the front door experiments are built on; re-export the
// names needed to configure one from simulation code.
pub use flowrank_monitor::{ControllerSpec, Monitor, MonitorBuilder, SamplerSpec, TopKSpec};

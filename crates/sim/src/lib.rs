//! # flowrank-sim
//!
//! Trace-driven sampling simulation engine, reproducing the binned
//! experiments of Sec. 8 of the paper.
//!
//! The methodology (Sec. 8.1): the packet-level trace is cut into measurement
//! bins; within each bin the packets are sampled, classified into flows under
//! a chosen flow definition, and the sampled ranking is compared with the
//! unsampled ranking of the same bin through the swapped-pair metrics. Each
//! experiment is repeated over several independent sampling runs (30 in the
//! paper) and reported as a per-bin mean with its standard deviation — the
//! error bars of Figs. 12–16.
//!
//! * [`binning`] — cutting a packet trace into measurement bins (flows active
//!   across a bin boundary are truncated, exactly as the paper's binning
//!   method does).
//! * [`engine`] — one sampling run over one bin: sample → classify → rank →
//!   score.
//! * [`experiment`] — multi-run, multi-bin experiments with mean ± std-dev
//!   aggregation, parallelised across runs with std threads.
//! * [`report`] — CSV-style rendering of experiment results.
//! * [`scenarios`] — ready-made Sprint / Abilene experiment configurations
//!   matching Figs. 12–16.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod engine;
pub mod experiment;
pub mod report;
pub mod scenarios;

pub use binning::split_into_bins;
pub use engine::{run_bin, BinResult};
pub use experiment::{ExperimentConfig, ExperimentResult, TraceExperiment};
pub use scenarios::{abilene_experiment, sprint_experiment};

//! Multi-run, multi-bin trace-driven experiments.
//!
//! Reproduces the methodology of Sec. 8.2: for each sampling rate, the same
//! packet trace is sampled in 30 independent runs; for every measurement bin
//! the ranking (or detection) metric is averaged over the runs and reported
//! together with its standard deviation. Runs are independent, so they are
//! parallelised across std threads.

use std::thread;

use flowrank_net::{FlowDefinition, PacketRecord, Timestamp};
use flowrank_stats::rng::derive_seeds;
use flowrank_stats::summary::RunningStats;

use crate::binning::split_into_bins;
use crate::engine::run_bin_random_sampling;

/// Configuration of a trace-driven experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Flow definition used for classification.
    pub flow_definition: FlowDefinition,
    /// Packet sampling rates to evaluate.
    pub sampling_rates: Vec<f64>,
    /// Measurement-bin length.
    pub bin_length: Timestamp,
    /// Number of top flows to rank/detect.
    pub top_t: usize,
    /// Number of independent sampling runs per rate (30 in the paper).
    pub runs: usize,
    /// Master seed; per-run seeds are derived deterministically from it.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            flow_definition: FlowDefinition::FiveTuple,
            sampling_rates: vec![0.001, 0.01, 0.1, 0.5],
            bin_length: Timestamp::from_secs_f64(60.0),
            top_t: 10,
            runs: 30,
            seed: 0xF10A_4A9C,
        }
    }
}

/// Per-bin averaged metrics for one sampling rate.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSeries {
    /// The sampling rate this series corresponds to.
    pub rate: f64,
    /// Mean ranking metric per bin (swapped pairs involving a top-t flow).
    pub ranking_mean: Vec<f64>,
    /// Standard deviation of the ranking metric per bin.
    pub ranking_std: Vec<f64>,
    /// Mean detection metric per bin (swapped pairs across the top-t boundary).
    pub detection_mean: Vec<f64>,
    /// Standard deviation of the detection metric per bin.
    pub detection_std: Vec<f64>,
}

impl RateSeries {
    /// Mean of the per-bin ranking means (a single summary number).
    pub fn overall_ranking_mean(&self) -> f64 {
        if self.ranking_mean.is_empty() {
            return 0.0;
        }
        self.ranking_mean.iter().sum::<f64>() / self.ranking_mean.len() as f64
    }

    /// Mean of the per-bin detection means.
    pub fn overall_detection_mean(&self) -> f64 {
        if self.detection_mean.is_empty() {
            return 0.0;
        }
        self.detection_mean.iter().sum::<f64>() / self.detection_mean.len() as f64
    }
}

/// Result of a trace-driven experiment: one series per sampling rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Number of measurement bins in the trace.
    pub bin_count: usize,
    /// One series per configured sampling rate.
    pub series: Vec<RateSeries>,
}

/// A trace-driven experiment over a fixed packet trace.
#[derive(Debug)]
pub struct TraceExperiment {
    bins: Vec<Vec<PacketRecord>>,
    config: ExperimentConfig,
}

impl TraceExperiment {
    /// Prepares an experiment: splits the packet trace into measurement bins.
    pub fn new(packets: &[PacketRecord], config: ExperimentConfig) -> Self {
        TraceExperiment {
            bins: split_into_bins(packets, config.bin_length),
            config,
        }
    }

    /// Number of measurement bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Runs the full experiment: every sampling rate, every bin, `runs`
    /// independent sampling runs, parallelised across runs.
    pub fn run(&self) -> ExperimentResult {
        let series = self
            .config
            .sampling_rates
            .iter()
            .map(|&rate| self.run_rate(rate))
            .collect();
        ExperimentResult {
            bin_count: self.bins.len(),
            series,
        }
    }

    fn run_rate(&self, rate: f64) -> RateSeries {
        let seeds = derive_seeds(self.config.seed ^ rate.to_bits(), self.config.runs);
        let bin_count = self.bins.len();

        // Each run produces (ranking, detection) per bin; runs execute on a
        // bounded pool of std threads.
        let worker_count = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(self.config.runs.max(1));
        let chunks: Vec<Vec<u64>> = seeds
            .chunks(seeds.len().div_ceil(worker_count).max(1))
            .map(|c| c.to_vec())
            .collect();

        let per_run_results: Vec<Vec<(f64, f64)>> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        for &seed in chunk {
                            let mut per_bin = Vec::with_capacity(bin_count);
                            for bin in &self.bins {
                                let result = run_bin_random_sampling(
                                    bin,
                                    self.config.flow_definition,
                                    rate,
                                    self.config.top_t,
                                    seed,
                                );
                                per_bin.push((result.ranking_metric(), result.detection_metric()));
                            }
                            local.push(per_bin);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        // Aggregate per bin across runs.
        let mut ranking_stats = vec![RunningStats::new(); bin_count];
        let mut detection_stats = vec![RunningStats::new(); bin_count];
        for run in &per_run_results {
            for (bin_index, &(ranking, detection)) in run.iter().enumerate() {
                ranking_stats[bin_index].push(ranking);
                detection_stats[bin_index].push(detection);
            }
        }
        RateSeries {
            rate,
            ranking_mean: ranking_stats.iter().map(|s| s.mean().unwrap_or(0.0)).collect(),
            ranking_std: ranking_stats
                .iter()
                .map(|s| s.std_dev().unwrap_or(0.0))
                .collect(),
            detection_mean: detection_stats
                .iter()
                .map(|s| s.mean().unwrap_or(0.0))
                .collect(),
            detection_std: detection_stats
                .iter()
                .map(|s| s.std_dev().unwrap_or(0.0))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

    fn small_trace() -> Vec<PacketRecord> {
        let flows = SprintModel::small(120.0, 40.0).generate_flows(11);
        synthesize_packets(&flows, &SynthesisConfig::default(), 11)
    }

    fn config(rates: Vec<f64>, runs: usize) -> ExperimentConfig {
        ExperimentConfig {
            flow_definition: FlowDefinition::FiveTuple,
            sampling_rates: rates,
            bin_length: Timestamp::from_secs_f64(60.0),
            top_t: 10,
            runs,
            seed: 7,
        }
    }

    #[test]
    fn experiment_structure_matches_configuration() {
        let packets = small_trace();
        let experiment = TraceExperiment::new(&packets, config(vec![0.1, 0.5], 4));
        let result = experiment.run();
        assert_eq!(result.series.len(), 2);
        assert_eq!(result.bin_count, experiment.bin_count());
        assert!(result.bin_count >= 2);
        for series in &result.series {
            assert_eq!(series.ranking_mean.len(), result.bin_count);
            assert_eq!(series.ranking_std.len(), result.bin_count);
            assert_eq!(series.detection_mean.len(), result.bin_count);
        }
    }

    #[test]
    fn higher_rate_has_lower_error_and_detection_below_ranking() {
        let packets = small_trace();
        let experiment = TraceExperiment::new(&packets, config(vec![0.01, 0.5], 6));
        let result = experiment.run();
        let low = &result.series[0];
        let high = &result.series[1];
        assert!(
            high.overall_ranking_mean() < low.overall_ranking_mean(),
            "50% sampling ({}) must beat 1% ({})",
            high.overall_ranking_mean(),
            low.overall_ranking_mean()
        );
        // Detection errors are a subset of ranking errors.
        assert!(low.overall_detection_mean() <= low.overall_ranking_mean() + 1e-12);
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let packets = small_trace();
        let a = TraceExperiment::new(&packets, config(vec![0.1], 5)).run();
        let b = TraceExperiment::new(&packets, config(vec![0.1], 5)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn default_config_matches_paper_methodology() {
        let c = ExperimentConfig::default();
        assert_eq!(c.runs, 30);
        assert_eq!(c.top_t, 10);
        assert_eq!(c.bin_length, Timestamp::from_secs_f64(60.0));
        assert_eq!(c.sampling_rates.len(), 4);
    }
}

//! Multi-run, multi-bin trace-driven experiments.
//!
//! Reproduces the methodology of Sec. 8.2: for each sampling rate, the same
//! packet trace is sampled in 30 independent runs; for every measurement bin
//! the ranking (or detection) metric is averaged over the runs and reported
//! together with its standard deviation.
//!
//! Since the streaming redesign, each bin is processed by one fanned-out
//! [`flowrank_monitor::Monitor`]: the bin's ground truth is classified and ranked **once** and
//! every `runs × rates` lane is scored against it, instead of reclassifying
//! the bin from scratch for every run at every rate as the old per-run
//! engine did. Bins are independent measurements, so they are parallelised
//! across std threads.

use std::thread;

use flowrank_monitor::{BinReport, Collect, MonitorBuilder, RecordSource, SamplerSpec};
use flowrank_net::{FlowDefinition, PacketRecord, Timestamp};
use flowrank_stats::summary::RunningStats;

use crate::binning::split_into_bins;

/// Configuration of a trace-driven experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Flow definition used for classification.
    pub flow_definition: FlowDefinition,
    /// Sampling discipline template; it is fanned out across
    /// [`ExperimentConfig::sampling_rates`]. The paper uses random sampling.
    pub sampler: SamplerSpec,
    /// Packet sampling rates to evaluate.
    pub sampling_rates: Vec<f64>,
    /// Measurement-bin length.
    pub bin_length: Timestamp,
    /// Number of top flows to rank/detect.
    pub top_t: usize,
    /// Number of independent sampling runs per rate (30 in the paper).
    pub runs: usize,
    /// Master seed; per-run seeds are derived deterministically from it.
    pub seed: u64,
    /// Worker threads (0 = one per available CPU). Seeds depend only on
    /// (master seed, rate, run), so results are identical for every value.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            flow_definition: FlowDefinition::FiveTuple,
            sampler: SamplerSpec::Random { rate: 0.01 },
            sampling_rates: vec![0.001, 0.01, 0.1, 0.5],
            bin_length: Timestamp::from_secs_f64(60.0),
            top_t: 10,
            runs: 30,
            seed: 0xF10A_4A9C,
            threads: 0,
        }
    }
}

/// Per-bin averaged metrics for one sampling rate.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSeries {
    /// The sampling rate this series corresponds to.
    pub rate: f64,
    /// Mean ranking metric per bin (swapped pairs involving a top-t flow).
    pub ranking_mean: Vec<f64>,
    /// Standard deviation of the ranking metric per bin.
    pub ranking_std: Vec<f64>,
    /// Mean detection metric per bin (swapped pairs across the top-t boundary).
    pub detection_mean: Vec<f64>,
    /// Standard deviation of the detection metric per bin.
    pub detection_std: Vec<f64>,
}

impl RateSeries {
    /// Mean of the per-bin ranking means (a single summary number).
    pub fn overall_ranking_mean(&self) -> f64 {
        if self.ranking_mean.is_empty() {
            return 0.0;
        }
        self.ranking_mean.iter().sum::<f64>() / self.ranking_mean.len() as f64
    }

    /// Mean of the per-bin detection means.
    pub fn overall_detection_mean(&self) -> f64 {
        if self.detection_mean.is_empty() {
            return 0.0;
        }
        self.detection_mean.iter().sum::<f64>() / self.detection_mean.len() as f64
    }
}

/// Result of a trace-driven experiment: one series per sampling rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Number of measurement bins in the trace.
    pub bin_count: usize,
    /// One series per configured sampling rate.
    pub series: Vec<RateSeries>,
}

/// A trace-driven experiment over a fixed packet trace.
#[derive(Debug)]
pub struct TraceExperiment {
    bins: Vec<Vec<PacketRecord>>,
    config: ExperimentConfig,
}

impl TraceExperiment {
    /// Prepares an experiment: splits the packet trace into measurement bins.
    pub fn new(packets: &[PacketRecord], config: ExperimentConfig) -> Self {
        TraceExperiment {
            bins: split_into_bins(packets, config.bin_length),
            config,
        }
    }

    /// Number of measurement bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Overrides the worker-thread count (0 = one per available CPU).
    /// Results are bit-identical for every value — only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// The monitor configuration a work item is processed with: the sampler
    /// template fanned out across `rates`, with the whole bin as a single
    /// unbounded monitor interval (the experiment has already cut the trace
    /// at bin boundaries).
    fn monitor_builder(&self, rates: &[f64]) -> MonitorBuilder {
        MonitorBuilder::new()
            .flow_definition(self.config.flow_definition)
            .sampler(self.config.sampler)
            .rates(rates)
            .runs(self.config.runs)
            .top_t(self.config.top_t)
            .seed(self.config.seed)
            .bin_length(Timestamp::ZERO)
    }

    /// Runs the full experiment: every sampling rate, every bin, `runs`
    /// independent sampling runs. Ground truth is classified once per bin
    /// and shared by all of that bin's lanes; work runs in parallel on std
    /// threads.
    ///
    /// Work is partitioned adaptively: with at least as many bins as cores,
    /// each item is one bin carrying the full rate grid (one ground-truth
    /// classification per bin); with fewer bins — e.g. a single-bin
    /// experiment with many runs — the rate grid is split across items so
    /// short traces still use every core, at the cost of one classification
    /// per (bin, rate) instead of per bin. Lane seeds depend only on
    /// (master seed, rate, run), so both partitions produce identical
    /// numbers.
    pub fn run(&self) -> ExperimentResult {
        let bin_count = self.bins.len();
        let rates = &self.config.sampling_rates;

        let worker_count = if self.config.threads > 0 {
            self.config.threads
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        };
        let split_rates = bin_count < worker_count && rates.len() > 1;
        let mut items: Vec<(usize, Vec<f64>)> = Vec::new();
        for bin_index in 0..bin_count {
            if split_rates {
                for &rate in rates {
                    items.push((bin_index, vec![rate]));
                }
            } else {
                items.push((bin_index, rates.clone()));
            }
        }

        let chunk_len = items.len().div_ceil(worker_count.max(1)).max(1);
        let item_reports: Vec<(usize, Option<BinReport>)> = thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|(bin_index, item_rates)| {
                                let bin = &self.bins[*bin_index];
                                if bin.is_empty() {
                                    return (*bin_index, None);
                                }
                                // One drive per work item: the bin's records
                                // flow through a chunked source into a
                                // collecting sink — the same pipeline every
                                // other consumer uses, with identical
                                // reports by chunking invariance.
                                let mut monitor = self.monitor_builder(item_rates).build();
                                let mut sink = Collect::new();
                                monitor.drive(&mut RecordSource::new(bin), &mut sink);
                                (*bin_index, sink.reports.into_iter().next())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        let series = rates
            .iter()
            .map(|&rate| aggregate_rate(rate, bin_count, &item_reports, self.config.runs))
            .collect();
        ExperimentResult { bin_count, series }
    }
}

/// Folds the per-item lane reports of one rate into mean ± std-dev series.
fn aggregate_rate(
    rate: f64,
    bin_count: usize,
    item_reports: &[(usize, Option<BinReport>)],
    runs: usize,
) -> RateSeries {
    let mut ranking_stats = vec![RunningStats::new(); bin_count];
    let mut detection_stats = vec![RunningStats::new(); bin_count];
    for (bin_index, report) in item_reports {
        match report {
            Some(report) => {
                for lane in report.lanes_at_rate(rate) {
                    ranking_stats[*bin_index].push(lane.ranking_metric());
                    detection_stats[*bin_index].push(lane.detection_metric());
                }
            }
            None => {
                // An empty bin has zero error in every run, like the legacy
                // engine that ran (and measured nothing) on empty bins. Count
                // it once per rate: split items repeat the bin index.
                if ranking_stats[*bin_index].count() == 0 {
                    for _ in 0..runs {
                        ranking_stats[*bin_index].push(0.0);
                        detection_stats[*bin_index].push(0.0);
                    }
                }
            }
        }
    }
    RateSeries {
        rate,
        ranking_mean: ranking_stats
            .iter()
            .map(|s| s.mean().unwrap_or(0.0))
            .collect(),
        ranking_std: ranking_stats
            .iter()
            .map(|s| s.std_dev().unwrap_or(0.0))
            .collect(),
        detection_mean: detection_stats
            .iter()
            .map(|s| s.mean().unwrap_or(0.0))
            .collect(),
        detection_std: detection_stats
            .iter()
            .map(|s| s.std_dev().unwrap_or(0.0))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_bin_random_sampling;
    use flowrank_stats::rng::derive_seeds;
    use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

    fn small_trace() -> Vec<PacketRecord> {
        let flows = SprintModel::small(120.0, 40.0).generate_flows(11);
        synthesize_packets(&flows, &SynthesisConfig::default(), 11)
    }

    fn config(rates: Vec<f64>, runs: usize) -> ExperimentConfig {
        ExperimentConfig {
            flow_definition: FlowDefinition::FiveTuple,
            sampler: SamplerSpec::Random { rate: 0.01 },
            sampling_rates: rates,
            bin_length: Timestamp::from_secs_f64(60.0),
            top_t: 10,
            runs,
            seed: 7,
            threads: 0,
        }
    }

    #[test]
    fn experiment_structure_matches_configuration() {
        let packets = small_trace();
        let experiment = TraceExperiment::new(&packets, config(vec![0.1, 0.5], 4));
        let result = experiment.run();
        assert_eq!(result.series.len(), 2);
        assert_eq!(result.bin_count, experiment.bin_count());
        assert!(result.bin_count >= 2);
        for series in &result.series {
            assert_eq!(series.ranking_mean.len(), result.bin_count);
            assert_eq!(series.ranking_std.len(), result.bin_count);
            assert_eq!(series.detection_mean.len(), result.bin_count);
        }
    }

    #[test]
    fn higher_rate_has_lower_error_and_detection_below_ranking() {
        let packets = small_trace();
        let experiment = TraceExperiment::new(&packets, config(vec![0.01, 0.5], 6));
        let result = experiment.run();
        let low = &result.series[0];
        let high = &result.series[1];
        assert!(
            high.overall_ranking_mean() < low.overall_ranking_mean(),
            "50% sampling ({}) must beat 1% ({})",
            high.overall_ranking_mean(),
            low.overall_ranking_mean()
        );
        // Detection errors are a subset of ranking errors.
        assert!(low.overall_detection_mean() <= low.overall_ranking_mean() + 1e-12);
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let packets = small_trace();
        let a = TraceExperiment::new(&packets, config(vec![0.1], 5)).run();
        let b = TraceExperiment::new(&packets, config(vec![0.1], 5)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn shared_truth_fan_out_matches_per_run_reclassification() {
        // The streaming fan-out must reproduce the legacy engine's numbers
        // exactly: same per-(rate, run) seed derivation, same per-bin RNG
        // restart, same metric — only the redundant ground-truth
        // reclassifications are gone.
        let packets = small_trace();
        let rates = vec![0.05, 0.3];
        let runs = 3;
        let cfg = config(rates.clone(), runs);
        let result = TraceExperiment::new(&packets, cfg.clone()).run();

        let bins = split_into_bins(&packets, cfg.bin_length);
        for (rate_index, &rate) in rates.iter().enumerate() {
            let seeds = derive_seeds(cfg.seed ^ rate.to_bits(), runs);
            for (bin_index, bin) in bins.iter().enumerate() {
                let mut stats = RunningStats::new();
                for &seed in &seeds {
                    let legacy =
                        run_bin_random_sampling(bin, cfg.flow_definition, rate, cfg.top_t, seed);
                    stats.push(legacy.ranking_metric());
                }
                let expected = stats.mean().unwrap_or(0.0);
                let got = result.series[rate_index].ranking_mean[bin_index];
                assert_eq!(
                    got, expected,
                    "rate {rate}, bin {bin_index}: streaming {got} vs legacy {expected}"
                );
            }
        }
    }

    #[test]
    fn default_config_matches_paper_methodology() {
        let c = ExperimentConfig::default();
        assert_eq!(c.runs, 30);
        assert_eq!(c.top_t, 10);
        assert_eq!(c.bin_length, Timestamp::from_secs_f64(60.0));
        assert_eq!(c.sampling_rates.len(), 4);
        assert_eq!(c.sampler, SamplerSpec::Random { rate: 0.01 });
    }

    #[test]
    fn non_random_sampler_template_fans_out() {
        let packets = small_trace();
        let mut cfg = config(vec![0.1, 0.5], 2);
        cfg.sampler = SamplerSpec::Stratified { rate: 0.1 };
        let result = TraceExperiment::new(&packets, cfg).run();
        assert_eq!(result.series.len(), 2);
        assert!(
            result.series[1].overall_ranking_mean()
                <= result.series[0].overall_ranking_mean() + 1e-9
        );
    }
}

//! One sampling run over one measurement bin — legacy batch entry points.
//!
//! These functions predate the streaming [`flowrank_monitor::Monitor`] and
//! are kept as thin compatibility wrappers: they classify the bin in a single
//! pass and score it through the same [`GroundTruthRanking`] primitive the
//! monitor's lanes use, so batch and streaming results are bit-identical for
//! the same sampler, seed and flow definition. New code should drive a
//! `Monitor` directly — it classifies the ground truth once per bin no matter
//! how many runs and rates ride on it, while `run_bin` pays the full
//! classification on every call.

use flowrank_core::metrics::{ComparisonOutcome, GroundTruthRanking, SizedFlow};
use flowrank_net::{AnyFlowKey, FlowDefinition, FlowTable, PacketRecord};
use flowrank_sampling::{PacketSampler, RandomSampler};
use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

/// Outcome of one sampling run over one bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinResult {
    /// Number of flows in the bin before sampling.
    pub original_flows: usize,
    /// Number of flows that survived sampling.
    pub sampled_flows: usize,
    /// Swapped-pair counts for the ranking and detection metrics.
    pub outcome: ComparisonOutcome,
}

impl BinResult {
    /// The ranking metric value (average number of swapped pairs) for this
    /// single run — used directly, the averaging over runs happens above.
    pub fn ranking_metric(&self) -> f64 {
        self.outcome.ranking_swaps as f64
    }

    /// The detection metric value for this single run.
    pub fn detection_metric(&self) -> f64 {
        self.outcome.detection_swaps as f64
    }
}

/// Runs one sampling run over one bin of packets.
///
/// * `flow_definition` — 5-tuple or /24 prefix classification.
/// * `sampler` — any packet sampler; the paper uses [`RandomSampler`].
/// * `top_t` — number of top flows the monitor reports.
///
/// Compatibility wrapper over the streaming pipeline's primitives; a
/// `Monitor` with a single lane produces the identical [`ComparisonOutcome`]
/// for the same seed.
pub fn run_bin<S: PacketSampler + ?Sized>(
    packets: &[PacketRecord],
    flow_definition: FlowDefinition,
    sampler: &mut S,
    top_t: usize,
    rng: &mut dyn Rng,
) -> BinResult {
    sampler.reset();
    // One batch call processes one bin, so the per-bin reuse the streaming
    // monitor gets from `clear()` does not apply here; pre-size the tables
    // instead so classification never rehashes mid-bin. Real bins hold a
    // few flows per dozen packets; the sampled table sees a fraction of
    // them.
    let mut original: FlowTable<AnyFlowKey> = FlowTable::with_capacity(packets.len() / 8);
    let mut sampled: FlowTable<AnyFlowKey> = FlowTable::with_capacity(packets.len() / 32);
    for packet in packets {
        let key = flow_definition.key_of(packet);
        original.observe_keyed(key, packet);
        if sampler.keep(packet, rng) {
            sampled.observe_keyed(key, packet);
        }
    }

    let truth = GroundTruthRanking::new(
        original
            .iter_sizes()
            .map(|(key, packets)| SizedFlow { key, packets })
            .collect(),
        top_t,
    );
    let outcome = truth.compare_with(|key| sampled.size_of(key));
    BinResult {
        original_flows: original.flow_count(),
        sampled_flows: sampled.flow_count(),
        outcome,
    }
}

/// Convenience wrapper: one random-sampling run at rate `p` with a fresh RNG
/// derived from `seed`.
pub fn run_bin_random_sampling(
    packets: &[PacketRecord],
    flow_definition: FlowDefinition,
    rate: f64,
    top_t: usize,
    seed: u64,
) -> BinResult {
    let mut sampler = RandomSampler::new(rate);
    let mut rng = Pcg64::seed_from_u64(seed);
    run_bin(packets, flow_definition, &mut sampler, top_t, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_net::Timestamp;
    use std::net::Ipv4Addr;

    /// A bin with `flows` flows where flow `i` has `10 * (flows - i)` packets.
    fn skewed_bin(flows: u8) -> Vec<PacketRecord> {
        let mut packets = Vec::new();
        for i in 0..flows {
            let count = 10 * (flows - i) as usize;
            for j in 0..count {
                packets.push(PacketRecord::tcp(
                    Timestamp::from_secs_f64(j as f64 * 0.01),
                    Ipv4Addr::new(10, 0, 0, i),
                    1000 + i as u16,
                    Ipv4Addr::new(100, 64, i, 1),
                    80,
                    500,
                    (j * 500) as u32,
                ));
            }
        }
        packets
    }

    #[test]
    fn full_sampling_has_zero_error() {
        let packets = skewed_bin(20);
        let result = run_bin_random_sampling(&packets, FlowDefinition::FiveTuple, 1.0, 10, 1);
        assert_eq!(result.original_flows, 20);
        assert_eq!(result.sampled_flows, 20);
        assert_eq!(result.outcome.ranking_swaps, 0);
        assert_eq!(result.outcome.detection_swaps, 0);
        assert_eq!(result.ranking_metric(), 0.0);
    }

    #[test]
    fn tiny_sampling_rate_produces_errors() {
        let packets = skewed_bin(30);
        let result = run_bin_random_sampling(&packets, FlowDefinition::FiveTuple, 0.005, 10, 2);
        assert!(result.sampled_flows < result.original_flows);
        assert!(
            result.outcome.ranking_swaps > 0,
            "0.5% sampling of small flows must produce ranking errors"
        );
        assert!(result.detection_metric() >= 0.0);
    }

    #[test]
    fn higher_rates_give_fewer_errors_on_average() {
        let packets = skewed_bin(40);
        let average = |rate: f64| -> f64 {
            (0..10)
                .map(|seed| {
                    run_bin_random_sampling(&packets, FlowDefinition::FiveTuple, rate, 10, seed)
                        .ranking_metric()
                })
                .sum::<f64>()
                / 10.0
        };
        let low = average(0.01);
        let high = average(0.5);
        assert!(
            high < low,
            "high-rate error {high} must be below low-rate {low}"
        );
    }

    #[test]
    fn prefix_definition_aggregates_flows() {
        let packets = skewed_bin(20);
        let five = run_bin_random_sampling(&packets, FlowDefinition::FiveTuple, 1.0, 5, 3);
        let prefix = run_bin_random_sampling(&packets, FlowDefinition::PREFIX24, 1.0, 5, 3);
        // Each test flow uses its own /24, except they are constructed with
        // distinct third octets, so counts coincide here; what matters is the
        // code path works and produces a valid result for both definitions.
        assert_eq!(five.original_flows, 20);
        assert!(prefix.original_flows <= 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let packets = skewed_bin(25);
        let a = run_bin_random_sampling(&packets, FlowDefinition::FiveTuple, 0.1, 10, 7);
        let b = run_bin_random_sampling(&packets, FlowDefinition::FiveTuple, 0.1, 10, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn boxed_sampler_runs_through_the_same_entry_point() {
        // The trait is object safe: a runtime-selected sampler drives the
        // legacy wrapper unchanged.
        let packets = skewed_bin(15);
        let mut boxed: Box<dyn PacketSampler> = Box::new(RandomSampler::new(1.0));
        let mut rng = Pcg64::seed_from_u64(1);
        let result = run_bin(
            &packets,
            FlowDefinition::FiveTuple,
            &mut *boxed,
            5,
            &mut rng,
        );
        assert_eq!(result.outcome.ranking_swaps, 0);
    }

    #[test]
    fn empty_bin() {
        let result = run_bin_random_sampling(&[], FlowDefinition::FiveTuple, 0.1, 10, 1);
        assert_eq!(result.original_flows, 0);
        assert_eq!(result.outcome.ranking_swaps, 0);
    }
}

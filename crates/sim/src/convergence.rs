//! Closed-loop convergence harness: controllers vs the offline optimum.
//!
//! The paper's model gives, for any bin whose true flow sizes are known,
//! the minimal sampling rate meeting a misranking target — an *offline*
//! optimum no online controller can see ahead of time. This harness drives
//! a controlled monitor over a non-stationary scenario workload, computes
//! that offline-optimal rate for every bin from the same packets, and
//! reports the per-bin **regret** `|applied − optimal|` plus a stable
//! FNV-1a digest of the full decision trace. The `controller_convergence`
//! golden test pins both: `ModelDriven` and `AimdSlo` must come within ε
//! of the offline optimum within N bins on the flash-crowd and rank-churn
//! scenarios, and any change to any controller's decisions shows up as a
//! digest mismatch.

use std::collections::HashMap;

use flowrank_control::{optimal_rate_for_sizes, ControllerSpec};
use flowrank_monitor::{Collect, Monitor, MonitorBuilder, SamplerSpec};
use flowrank_net::{AnyFlowKey, FlowDefinition, Timestamp};
use flowrank_trace::Workload;

/// One fully specified convergence run: a scenario workload, a controller,
/// and the offline model the controller is judged against.
#[derive(Debug, Clone)]
pub struct ConvergenceConfig {
    /// Scenario the monitor is driven over (streamed; never materialised).
    pub workload: Workload,
    /// Controller under test.
    pub controller: ControllerSpec,
    /// Sampler template of the controlled lane.
    pub sampler: SamplerSpec,
    /// Flow definition for ground truth and sampled classification.
    pub flow_definition: FlowDefinition,
    /// Measurement-bin length in seconds.
    pub bin_seconds: f64,
    /// Top flows ranked per bin.
    pub top_t: usize,
    /// Seed of the workload's packet synthesis.
    pub trace_seed: u64,
    /// Master seed of the monitor (the controlled lane's seed derives
    /// from it).
    pub lane_seed: u64,
    /// Misranking target defining the offline-optimal rate.
    pub target_misranking: f64,
    /// Rate floor shared by the offline optimum and the comparison.
    pub min_rate: f64,
}

/// One bin of a convergence run: what the controller did vs what the
/// offline model says it should have done.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergencePoint {
    /// Bin index.
    pub bin_index: u64,
    /// Rate the controlled lane ran during the bin.
    pub applied_rate: f64,
    /// Rate the controller decided for the next bin.
    pub decided_rate: f64,
    /// Offline-optimal rate for the bin's true top-t sizes.
    pub optimal_rate: f64,
    /// `|applied_rate − optimal_rate|`.
    pub regret: f64,
    /// Swapped-pair fraction the controlled lane realized in the bin.
    pub swapped_fraction: f64,
}

/// The trace of a whole convergence run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceResult {
    /// Controller discipline name.
    pub controller: &'static str,
    /// Per-bin trail, in bin order.
    pub points: Vec<ConvergencePoint>,
    /// FNV-1a digest of the full decision trace (bin index, applied,
    /// decided and optimal rate bits per bin) — the golden-pinned value.
    pub digest: u64,
}

impl ConvergenceResult {
    /// Smallest bin index from which *every* later bin (that one included)
    /// stays within `epsilon` of the offline optimum, or `None` when the
    /// run never settles.
    pub fn bins_to_converge(&self, epsilon: f64) -> Option<u64> {
        let mut converged_from = None;
        for point in &self.points {
            if point.regret <= epsilon {
                converged_from.get_or_insert(point.bin_index);
            } else {
                converged_from = None;
            }
        }
        converged_from
    }

    /// Mean per-bin regret over the whole run.
    pub fn mean_regret(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.regret).sum::<f64>() / self.points.len() as f64
    }
}

/// FNV-1a over the decision trace; deliberately the same fold the
/// conformance `DigestSink` uses for reports, so golden files stay
/// comparable in spirit (one 16-hex-digit digest per cell).
struct TraceDigest(u64);

impl TraceDigest {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new() -> Self {
        TraceDigest(Self::OFFSET)
    }

    fn fold(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Offline-optimal rate per bin: classify the workload's packets bin by
/// bin under the config's flow definition, sort each bin's true sizes
/// descending, and invert the paper's model on the top `t + 1` — exactly
/// the computation `ModelDriven` performs online, but on the *current*
/// bin's sizes instead of the previous bin's.
fn offline_optimal_rates(config: &ConvergenceConfig) -> Vec<f64> {
    let packets = config.workload.synthesize(config.trace_seed);
    let bin_length = Timestamp::from_secs_f64(config.bin_seconds);
    let mut bins: Vec<HashMap<AnyFlowKey, u64>> = Vec::new();
    for packet in &packets {
        let bin = packet.timestamp.bin_index(bin_length) as usize;
        if bin >= bins.len() {
            bins.resize_with(bin + 1, HashMap::new);
        }
        *bins[bin]
            .entry(config.flow_definition.key_of(packet))
            .or_insert(0) += 1;
    }
    bins.into_iter()
        .map(|flows| {
            let mut sizes: Vec<u64> = flows.into_values().collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            sizes.truncate(config.top_t + 1);
            optimal_rate_for_sizes(&sizes, config.target_misranking, config.min_rate)
        })
        .collect()
}

/// Runs one convergence cell: drives a monitor carrying only the
/// controlled lane over the streamed workload, joins its decision trail
/// with the offline-optimal rates, and digests the result.
pub fn run_convergence(config: &ConvergenceConfig) -> ConvergenceResult {
    let mut monitor: Monitor = MonitorBuilder::new()
        .flow_definition(config.flow_definition)
        .sampler(config.sampler)
        // An empty rate grid leaves no static lanes: the monitor carries
        // exactly one lane — the controlled one — so the harness pays for
        // nothing it does not measure.
        .rates(&[])
        .controller(config.controller)
        .bin_length(Timestamp::from_secs_f64(config.bin_seconds))
        .top_t(config.top_t)
        .seed(config.lane_seed)
        .build();
    let mut sink = Collect::new();
    monitor.drive(&mut config.workload.stream(config.trace_seed), &mut sink);

    let optimal = offline_optimal_rates(config);
    let mut digest = TraceDigest::new();
    let points: Vec<ConvergencePoint> = sink
        .reports
        .iter()
        .map(|report| {
            let trail = report
                .controller
                .as_ref()
                .expect("controlled monitor reports a trail on every bin");
            let optimal_rate = optimal
                .get(report.bin_index as usize)
                .copied()
                .unwrap_or(config.min_rate);
            digest.fold(report.bin_index);
            digest.fold(trail.applied_rate.to_bits());
            digest.fold(trail.decided_rate.to_bits());
            digest.fold(optimal_rate.to_bits());
            ConvergencePoint {
                bin_index: report.bin_index,
                applied_rate: trail.applied_rate,
                decided_rate: trail.decided_rate,
                optimal_rate,
                regret: (trail.applied_rate - optimal_rate).abs(),
                swapped_fraction: trail.swapped_fraction,
            }
        })
        .collect();
    ConvergenceResult {
        controller: config.controller.name(),
        points,
        digest: digest.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(controller: ControllerSpec) -> ConvergenceConfig {
        ConvergenceConfig {
            workload: Workload::flash_crowd(),
            controller,
            sampler: SamplerSpec::Random { rate: 0.1 },
            flow_definition: FlowDefinition::FiveTuple,
            bin_seconds: 60.0,
            top_t: 8,
            trace_seed: 0x5EED_2026,
            lane_seed: 0xACE5_0001,
            target_misranking: 0.05,
            min_rate: 0.001,
        }
    }

    #[test]
    fn convergence_run_is_deterministic() {
        let cfg = config(ControllerSpec::model_driven());
        let a = run_convergence(&cfg);
        let b = run_convergence(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.controller, "model-driven");
        assert!(!a.points.is_empty());
    }

    #[test]
    fn offline_optimum_spans_every_bin() {
        let cfg = config(ControllerSpec::aimd_slo());
        let result = run_convergence(&cfg);
        for point in &result.points {
            assert!(point.optimal_rate >= cfg.min_rate);
            assert!(point.optimal_rate <= 1.0);
            assert!(point.regret >= 0.0);
            assert!(point.regret.is_finite());
        }
    }

    #[test]
    fn bins_to_converge_requires_staying_converged() {
        let mut result = run_convergence(&config(ControllerSpec::model_driven()));
        // Synthetic trace: regret dips under ε at bin 1, escapes at bin 2,
        // settles from bin 3 — convergence must be reported at 3, not 1.
        result.points = (0..5)
            .map(|bin_index| ConvergencePoint {
                bin_index,
                applied_rate: 0.1,
                decided_rate: 0.1,
                optimal_rate: 0.1,
                regret: match bin_index {
                    0 => 1.0,
                    1 => 0.0,
                    2 => 1.0,
                    _ => 0.0,
                },
                swapped_fraction: 0.0,
            })
            .collect();
        assert_eq!(result.bins_to_converge(0.01), Some(3));
        result.points[4].regret = 1.0;
        assert_eq!(result.bins_to_converge(0.01), None);
    }
}

//! Differential conformance across every execution path of the pipeline.
//!
//! The workspace keeps four ways of running the same measurement over the
//! same trace — per-packet [`Monitor::push`], batched
//! [`Monitor::push_batch`] (whole or chunked arbitrarily), the pipelined
//! worker runtime behind `threads(n)` (driven both through buffered
//! `run_batch` and through `Monitor::drive` over irregularly chunked
//! sources, on both sides of the inline/dispatch threshold), and the legacy
//! [`crate::run_bin`] wrapper —
//! and promises they are **bit-identical**, not merely statistically alike.
//! This module is the single driver that checks the promise for one
//! configuration cell and condenses the resulting report stream into a
//! stable digest, so a committed golden value per cell turns any silent
//! behaviour change into a loud test failure.
//!
//! [`run_conformance`] builds identically configured single-lane monitors,
//! drives each through a different ingestion path — including the
//! source/sink pipeline (`Monitor::drive` over a whole-batch source and
//! over the re-chunking adapter, with the streaming [`DigestSink`]
//! accumulating alongside) — asserts that every [`BinReport`] agrees byte
//! for byte, replays each bin through the legacy engine for the same seed,
//! and returns the [`digest_reports`] hash of the reference stream. The
//! digest folds every observable field — bin indices, packet/flow counts,
//! lane outcomes, top-k entries — through FNV-1a, using only integer
//! arithmetic and explicit `f64::to_bits`, so it is stable across
//! platforms, optimisation levels and thread counts.
//! [`run_streamed_conformance`] extends the matrix to the streamed-workload
//! path: windowed synthesis driven straight into the monitor, pinned
//! bit-identical to `run_batch` on the materialised trace for arbitrary
//! chunkings down to single packets.

use flowrank_monitor::{
    BatchSource, BinReport, Chunked, Collect, DigestSink, Monitor, ReportSink, SamplerSpec, Tee,
    TopKSpec,
};
use flowrank_net::{FlowDefinition, PacketBatch, PacketRecord, Timestamp};
use flowrank_stats::rng::{Pcg64, SeedableRng};
use flowrank_trace::Workload;

use crate::binning::split_into_bins;
use crate::engine::run_bin;

/// Irregular batch cuts used by the chunked leg: single packets, odd sizes,
/// a power of two and "the rest", so cuts land inside bins, on boundaries
/// and across idle gaps.
const CHUNK_PIECES: [usize; 6] = [1, 7, 501, 1, 4096, usize::MAX];

/// One cell of the conformance matrix: a fully specified single-lane
/// monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConformanceConfig {
    /// Flow definition for ground truth and sampled classification.
    pub flow_definition: FlowDefinition,
    /// Sampling discipline of the lane.
    pub sampler: SamplerSpec,
    /// Optional top-k backend fed with the lane's sampled packets.
    pub topk: Option<TopKSpec>,
    /// Measurement-bin length.
    pub bin_length: Timestamp,
    /// Number of top flows ranked per bin.
    pub top_t: usize,
    /// Lane seed (single lane, so this is the master seed verbatim).
    pub seed: u64,
    /// Worker threads of the sharded leg.
    pub threads: usize,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            flow_definition: FlowDefinition::FiveTuple,
            sampler: SamplerSpec::Random { rate: 0.1 },
            topk: None,
            bin_length: Timestamp::from_secs_f64(60.0),
            top_t: 10,
            seed: 0xC0F0_2026,
            threads: 2,
        }
    }
}

impl ConformanceConfig {
    fn monitor(&self, threads: usize) -> Monitor {
        self.monitor_tuned(threads, flowrank_monitor::DEFAULT_PARALLEL_SEGMENT_MIN)
    }

    /// A monitor with an explicit fan-out threshold, so the threaded legs
    /// can force either side of the inline/dispatch split regardless of the
    /// source's chunk size.
    fn monitor_tuned(&self, threads: usize, parallel_segment_min: usize) -> Monitor {
        let mut builder = Monitor::builder()
            .flow_definition(self.flow_definition)
            .sampler(self.sampler)
            .bin_length(self.bin_length)
            .top_t(self.top_t)
            .seed(self.seed)
            .threads(threads)
            .parallel_segment_min(parallel_segment_min);
        if let Some(topk) = self.topk {
            builder = builder.topk(topk);
        }
        builder.build()
    }
}

/// Runs `packets` through every execution path under `config`, asserts all
/// paths produce bit-identical [`BinReport`] streams (and that each bin
/// matches the legacy [`run_bin`] engine), and returns the reference
/// stream's [`digest_reports`] value.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first divergence between any
/// two paths — that is the test failure mode the harness exists for.
pub fn run_conformance(label: &str, packets: &[PacketRecord], config: &ConformanceConfig) -> u64 {
    // Reference: packet-by-packet push.
    let mut pushed = config.monitor(1);
    let mut reference = Vec::new();
    for packet in packets {
        reference.extend(pushed.push(packet));
    }
    reference.extend(pushed.finish());

    // One batch covering the whole trace.
    let batch = PacketBatch::from_records(packets);
    let whole = config.monitor(1).run_batch(&batch);
    assert_eq!(
        whole, reference,
        "{label}: whole-trace push_batch diverged from per-packet push"
    );

    // Irregular batch cuts, including single-packet batches.
    let mut chunked_monitor = config.monitor(1);
    let mut chunked = Vec::new();
    let mut start = 0usize;
    for piece in CHUNK_PIECES {
        let end = packets.len().min(start.saturating_add(piece));
        chunked
            .extend(chunked_monitor.push_batch(&PacketBatch::from_records(&packets[start..end])));
        start = end;
        if start == packets.len() {
            break;
        }
    }
    chunked.extend(chunked_monitor.push_batch(&PacketBatch::from_records(&packets[start..])));
    chunked.extend(chunked_monitor.finish());
    assert_eq!(
        chunked, reference,
        "{label}: chunked push_batch diverged from per-packet push"
    );

    // The sharded leg: whole-bin segments fan out across worker threads.
    let sharded = config.monitor(config.threads.max(2)).run_batch(&batch);
    assert_eq!(
        sharded,
        reference,
        "{label}: sharded ({} threads) run_batch diverged from per-packet push",
        config.threads.max(2)
    );

    // The drive leg: the same batch through the source/sink pipeline, with
    // the streaming digest accumulated alongside a collecting sink, and once
    // more through the re-chunking adapter — drive must be a pure chunking
    // of push_batch, and the streaming digest a pure function of the report
    // stream.
    let mut driven = Tee(DigestSink::new(), Collect::new());
    config
        .monitor(1)
        .drive(&mut BatchSource::new(&batch), &mut driven);
    let Tee(drive_digest, drive_reports) = driven;
    assert_eq!(
        drive_reports.reports, reference,
        "{label}: drive over the whole batch diverged from per-packet push"
    );
    let mut reference_digest = DigestSink::new();
    for report in &reference {
        reference_digest.accept(report);
    }
    assert_eq!(
        drive_digest.digest(),
        reference_digest.digest(),
        "{label}: drive-path streaming digest diverged from the collect path"
    );
    let mut rechunked = DigestSink::new();
    config.monitor(1).drive(
        &mut Chunked::new(BatchSource::new(&batch), 509),
        &mut rechunked,
    );
    assert_eq!(
        rechunked.digest(),
        reference_digest.digest(),
        "{label}: re-chunked drive digest diverged from the collect path"
    );

    // Pipelined-runtime drive legs: the persistent worker pool behind
    // `threads(n > 1)`, driven through `Monitor::drive` over irregularly
    // chunked sources, must reproduce the reference digest bit for bit on
    // *both* sides of the fan-out threshold. A threshold of 1 forces every
    // 463-packet chunk through the worker queues (dispatch path, 2
    // threads); the default threshold keeps 997-packet chunks on the
    // calling thread while bin seals still run on the pool (inline path, 4
    // threads).
    let mut pooled = DigestSink::new();
    config.monitor_tuned(2, 1).drive(
        &mut Chunked::new(BatchSource::new(&batch), 463),
        &mut pooled,
    );
    assert_eq!(
        pooled.digest(),
        reference_digest.digest(),
        "{label}: threads(2) pipelined drive (dispatch path) diverged from the collect path"
    );
    let mut pooled_inline = DigestSink::new();
    config.monitor(4).drive(
        &mut Chunked::new(BatchSource::new(&batch), 997),
        &mut pooled_inline,
    );
    assert_eq!(
        pooled_inline.digest(),
        reference_digest.digest(),
        "{label}: threads(4) pipelined drive (inline path) diverged from the collect path"
    );

    // Fault-aware legs: a fault-free `try_drive` (strict default policy)
    // must be bit-identical to `drive` — and hence to every other path —
    // with a clean DriveStats, serially and on the worker pool. This pins
    // the recovery machinery's zero-fault transparency against every
    // committed golden.
    let mut fallible = DigestSink::new();
    let stats = config
        .monitor(1)
        .try_drive(&mut BatchSource::new(&batch), &mut fallible)
        .unwrap_or_else(|error| panic!("{label}: fault-free try_drive aborted: {error}"));
    assert_eq!(
        fallible.digest(),
        reference_digest.digest(),
        "{label}: fault-free try_drive diverged from the collect path"
    );
    assert_eq!(
        stats.packets,
        batch.len() as u64,
        "{label}: try_drive packet accounting diverged from the trace"
    );
    assert_eq!(
        stats.recoveries(),
        0,
        "{label}: a fault-free try_drive must record zero recoveries"
    );
    let mut fallible_pooled = DigestSink::new();
    config
        .monitor(config.threads.max(2))
        .try_drive(
            &mut Chunked::new(BatchSource::new(&batch), 463),
            &mut fallible_pooled,
        )
        .unwrap_or_else(|error| panic!("{label}: pooled fault-free try_drive aborted: {error}"));
    assert_eq!(
        fallible_pooled.digest(),
        reference_digest.digest(),
        "{label}: pooled fault-free try_drive diverged from the collect path"
    );

    // Legacy leg: every bin replayed through the batch-era engine with the
    // same sampler spec and seed (the monitor restarts each lane's sampler
    // and RNG from its seed at every bin boundary, which is exactly the
    // legacy engine's fresh-per-bin contract).
    let bins = split_into_bins(packets, config.bin_length);
    assert_eq!(
        reference.len(),
        bins.len(),
        "{label}: one report per wall-clock bin"
    );
    for (index, bin) in bins.iter().enumerate() {
        let mut sampler = config.sampler.build(config.seed);
        let mut rng = Pcg64::seed_from_u64(config.seed);
        let legacy = run_bin(
            bin,
            config.flow_definition,
            &mut *sampler,
            config.top_t,
            &mut rng,
        );
        let lane = &reference[index].lanes[0];
        assert_eq!(
            lane.outcome, legacy.outcome,
            "{label}: bin {index} outcome diverged from legacy run_bin"
        );
        assert_eq!(
            lane.sampled_flows, legacy.sampled_flows,
            "{label}: bin {index} sampled flow count diverged from legacy run_bin"
        );
        assert_eq!(
            reference[index].flows, legacy.original_flows,
            "{label}: bin {index} ground-truth flow count diverged from legacy run_bin"
        );
    }

    digest_reports(&reference)
}

/// Computes the stable 64-bit digest of a collected [`BinReport`] stream
/// that the golden files pin.
///
/// Every field that [`run_conformance`] pins across execution paths is
/// folded in — bin index and start, packet and flow counts, and per lane
/// the rate (as IEEE bits), run index, sampler name, sampled sizes, the
/// full [`flowrank_monitor::ComparisonOutcome`] and, when present, the
/// top-k backend name, memory occupancy and entry list (packed keys and
/// estimates). Two report streams digest equal iff they are equal on all
/// of those fields, up to 64-bit collision.
///
/// The per-report fold lives in [`flowrank_monitor::DigestSink`], whose
/// streaming [`DigestSink::digest`] produces different *values* (the stream
/// length is folded at the end instead of as a prefix) with the same
/// discriminating power; this function is the length-prefixed offline form
/// the committed goldens were recorded with.
pub fn digest_reports(reports: &[BinReport]) -> u64 {
    DigestSink::digest_reports(reports)
}

/// Chunk sizes of the streamed-workload legs: single packets, a prime that
/// never aligns with window or bin boundaries, and a big power of two.
const STREAM_CHUNKS: [usize; 3] = [1, 463, 8192];

/// Drives one scenario workload through the streamed source path and pins
/// it against the materialised trace: `Monitor::drive` over
/// [`Workload::stream`] — re-chunked to every size in a small grid,
/// including one-packet chunks, with a streaming [`DigestSink`] — must
/// produce bit-identical reports (hence digests) to [`Monitor::run_batch`]
/// on the fully materialised [`Workload::synthesize`] trace, even though
/// the streamed synthesis never holds more than one window of packets.
///
/// Returns the reference stream's offline [`digest_reports`] value (the
/// same value [`run_conformance`] returns for the materialised trace), so
/// callers can additionally pin it against a golden.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first divergence.
pub fn run_streamed_conformance(
    label: &str,
    workload: &Workload,
    trace_seed: u64,
    config: &ConformanceConfig,
) -> u64 {
    // Collect path: the whole trace materialised, one run_batch call.
    let batch = PacketBatch::from_records(&workload.synthesize(trace_seed));
    let reference = config.monitor(1).run_batch(&batch);
    let mut reference_digest = DigestSink::new();
    for report in &reference {
        reference_digest.accept(report);
    }

    // Drive path: windowed synthesis straight into the monitor.
    let mut driven = Tee(DigestSink::new(), Collect::new());
    let summary = config
        .monitor(1)
        .drive(&mut workload.stream(trace_seed), &mut driven);
    assert_eq!(
        summary.packets,
        batch.len() as u64,
        "{label}: streamed synthesis packet count diverged from the materialised trace"
    );
    let Tee(stream_digest, stream_reports) = driven;
    assert_eq!(
        stream_reports.reports, reference,
        "{label}: streamed workload drive diverged from run_batch on the materialised trace"
    );
    assert_eq!(
        stream_digest.digest(),
        reference_digest.digest(),
        "{label}: streamed drive digest diverged from the collect-path digest"
    );

    // Arbitrary re-chunkings of the stream, down to one packet per chunk.
    for chunk in STREAM_CHUNKS {
        let mut digest = DigestSink::new();
        config.monitor(1).drive(
            &mut Chunked::new(workload.stream(trace_seed), chunk),
            &mut digest,
        );
        assert_eq!(
            digest.digest(),
            reference_digest.digest(),
            "{label}: {chunk}-packet chunking diverged from the collect-path digest"
        );
    }

    digest_reports(&reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_conformance_passes_with_ties_in_the_trace() {
        // rank-churn is the scenario whose zero-duration multi-packet mice
        // produce equal-timestamp packets — the case where the streamed
        // synthesis order may legitimately permute same-flow packets
        // relative to the materialised sort. Reports must still agree.
        let digest = run_streamed_conformance(
            "rank-churn/random",
            &Workload::rank_churn(),
            0xAB,
            &ConformanceConfig::default(),
        );
        let packets = Workload::rank_churn().synthesize(0xAB);
        assert_eq!(
            digest,
            run_conformance("rank-churn/random", &packets, &ConformanceConfig::default()),
            "streamed and materialised harnesses pin the same reference digest"
        );
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let packets = Workload::rank_churn().synthesize(1);
        let config = ConformanceConfig::default();
        let mut monitor = config.monitor(1);
        let reports = monitor.run_trace(&packets);
        assert!(reports.len() >= 2);
        let digest = digest_reports(&reports);
        assert_eq!(
            digest,
            digest_reports(&reports),
            "digest is a pure function"
        );
        let mut reversed = reports.clone();
        reversed.reverse();
        assert_ne!(digest, digest_reports(&reversed));
        let mut tweaked = reports.clone();
        tweaked[0].packets += 1;
        assert_ne!(digest, digest_reports(&tweaked));
        assert_ne!(digest, digest_reports(&reports[1..]));
    }

    #[test]
    fn conformance_passes_on_a_real_scenario() {
        let packets = Workload::ddos_flood().synthesize(2);
        let config = ConformanceConfig {
            sampler: SamplerSpec::Stratified { rate: 0.2 },
            topk: Some(TopKSpec::SpaceSaving { capacity: 16 }),
            ..ConformanceConfig::default()
        };
        let digest = run_conformance("ddos-flood/stratified", &packets, &config);
        // Same cell, same digest; different seed, different digest.
        assert_eq!(
            digest,
            run_conformance("ddos-flood/stratified", &packets, &config)
        );
        let reseeded = ConformanceConfig {
            seed: config.seed ^ 1,
            ..config
        };
        assert_ne!(
            digest,
            run_conformance("ddos-flood/stratified", &packets, &reseeded)
        );
    }

    #[test]
    fn empty_trace_digest_is_stable() {
        let digest = run_conformance("empty", &[], &ConformanceConfig::default());
        assert_eq!(digest, digest_reports(&[]));
    }
}

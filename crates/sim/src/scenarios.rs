//! Ready-made trace-driven scenarios matching the paper's Figs. 12–16.
//!
//! Each helper generates the synthetic trace (Sprint-like or Abilene-like),
//! expands it to packets and wraps it in a configured [`TraceExperiment`].
//! A `scale` argument shrinks the flow arrival rate so the experiments stay
//! affordable in CI and benches; EXPERIMENTS.md records the scale used for
//! the reported numbers.

use flowrank_monitor::{Monitor, MonitorBuilder, RateCurve, RatePoint, SamplerSpec};
use flowrank_net::{FlowDefinition, Timestamp};
use flowrank_trace::{synthesize_packets, AbileneModel, SprintModel, SynthesisConfig, Workload};

use crate::experiment::{ExperimentConfig, TraceExperiment};

/// Sampling rates used by Figs. 12–15 (0.1%, 1%, 10%, 50%).
pub const SPRINT_RATES: [f64; 4] = [0.001, 0.01, 0.1, 0.5];
/// Sampling rates used by Fig. 16 (0.1%, 1%, 10%, 80%).
pub const ABILENE_RATES: [f64; 4] = [0.001, 0.01, 0.1, 0.8];

/// Builds the Sprint-like trace experiment of Figs. 12–15.
///
/// * `flow_definition` — 5-tuple (Figs. 12/14) or /24 prefix (Figs. 13/15).
/// * `bin_seconds` — 60 or 300 in the paper.
/// * `scale` — flow-arrival-rate scale factor (1.0 = full published rate).
/// * `runs` — sampling runs per rate (30 in the paper).
pub fn sprint_experiment(
    flow_definition: FlowDefinition,
    bin_seconds: f64,
    scale: f64,
    runs: usize,
    seed: u64,
) -> TraceExperiment {
    sprint_experiment_with_sampler(
        flow_definition,
        bin_seconds,
        scale,
        runs,
        seed,
        SamplerSpec::Random { rate: 0.01 },
    )
}

/// [`sprint_experiment`] with a runtime-selected sampling discipline; the
/// template is fanned out across the figure's rate grid.
pub fn sprint_experiment_with_sampler(
    flow_definition: FlowDefinition,
    bin_seconds: f64,
    scale: f64,
    runs: usize,
    seed: u64,
    sampler: SamplerSpec,
) -> TraceExperiment {
    let model = SprintModel::paper(scale);
    let flows = model.generate_flows(seed);
    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), seed ^ 0xA5A5);
    let config = ExperimentConfig {
        flow_definition,
        sampler,
        sampling_rates: SPRINT_RATES.to_vec(),
        bin_length: Timestamp::from_secs_f64(bin_seconds),
        top_t: 10,
        runs,
        seed,
        threads: 0,
    };
    TraceExperiment::new(&packets, config)
}

/// Builds a trace-driven experiment over one scenario of the
/// [`Workload`] catalog — the same binned, multi-run methodology as the
/// Sprint/Abilene figures, applied to any traffic shape the catalog can
/// produce.
///
/// * `workload` — the scenario (scale it first with [`Workload::scaled`] to
///   grow or shrink the population).
/// * `flow_definition` — 5-tuple or /24 prefix classification.
/// * `bin_seconds` — measurement-bin length.
/// * `runs` — independent sampling runs per rate.
/// * `sampler` — sampling-discipline template, fanned out across
///   [`SPRINT_RATES`].
pub fn workload_experiment(
    workload: &Workload,
    flow_definition: FlowDefinition,
    bin_seconds: f64,
    runs: usize,
    seed: u64,
    sampler: SamplerSpec,
) -> TraceExperiment {
    let packets = workload.synthesize(seed);
    let config = ExperimentConfig {
        flow_definition,
        sampler,
        sampling_rates: SPRINT_RATES.to_vec(),
        bin_length: Timestamp::from_secs_f64(bin_seconds),
        top_t: 10,
        runs,
        seed,
        threads: 0,
    };
    TraceExperiment::new(&packets, config)
}

/// Builds the fanned-out streaming monitor behind the scenario experiments:
/// the `sampler` template at every [`SPRINT_RATES`] rate × `runs` lanes,
/// with the same per-(rate, run) seed derivation as [`TraceExperiment`].
pub fn workload_monitor(
    flow_definition: FlowDefinition,
    bin_seconds: f64,
    runs: usize,
    seed: u64,
    sampler: SamplerSpec,
    threads: usize,
) -> Monitor {
    workload_builder(flow_definition, bin_seconds, runs, seed, sampler, threads).build()
}

/// The [`MonitorBuilder`] behind [`workload_monitor`], unbuilt — the
/// template a multi-tenant fleet clones per tenant (each tenant then gets
/// its own derived seed and a serial engine) and the single-monitor path
/// builds directly.
pub fn workload_builder(
    flow_definition: FlowDefinition,
    bin_seconds: f64,
    runs: usize,
    seed: u64,
    sampler: SamplerSpec,
    threads: usize,
) -> MonitorBuilder {
    MonitorBuilder::new()
        .flow_definition(flow_definition)
        .sampler(sampler)
        .rates(&SPRINT_RATES)
        .runs(runs)
        .top_t(10)
        .seed(seed)
        .bin_length(Timestamp::from_secs_f64(bin_seconds))
        .threads(threads)
}

/// [`workload_monitor`] with a closed-loop rate controller attached: the
/// same fanned-out grid plus one controlled lane (its own `rate_id` after
/// the grid) retuned at every bin close — the configuration behind
/// `reproduce --controller`.
pub fn workload_controlled_monitor(
    flow_definition: FlowDefinition,
    bin_seconds: f64,
    runs: usize,
    seed: u64,
    sampler: SamplerSpec,
    threads: usize,
    controller: flowrank_monitor::ControllerSpec,
) -> Monitor {
    workload_builder(flow_definition, bin_seconds, runs, seed, sampler, threads)
        .controller(controller)
        .build()
}

/// The streamed form of [`workload_experiment`]: drives the scenario's
/// windowed synthesis ([`Workload::stream`]) through one fanned-out monitor
/// into an online [`RateCurve`] — no materialised trace, no retained bins,
/// peak memory independent of scenario length. The per-rate means equal the
/// batch experiment's [`crate::experiment::RateSeries::overall_ranking_mean`]
/// up to floating-point summation order (same observations, different
/// accumulation).
pub fn workload_rate_curve(
    workload: &Workload,
    flow_definition: FlowDefinition,
    bin_seconds: f64,
    runs: usize,
    seed: u64,
    sampler: SamplerSpec,
    threads: usize,
) -> Vec<RatePoint> {
    let mut monitor = workload_monitor(flow_definition, bin_seconds, runs, seed, sampler, threads);
    let mut curve = RateCurve::new();
    monitor.drive(&mut workload.stream(seed), &mut curve);
    curve.points()
}

/// Builds the Abilene-like trace experiment of Fig. 16 (1-minute bins,
/// 5-tuple flows, top 10).
pub fn abilene_experiment(scale: f64, runs: usize, seed: u64) -> TraceExperiment {
    let model = AbileneModel::paper(scale);
    let flows = model.generate_flows(seed);
    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), seed ^ 0x5A5A);
    let config = ExperimentConfig {
        flow_definition: FlowDefinition::FiveTuple,
        sampler: SamplerSpec::Random { rate: 0.01 },
        sampling_rates: ABILENE_RATES.to_vec(),
        bin_length: Timestamp::from_secs_f64(60.0),
        top_t: 10,
        runs,
        seed,
        threads: 0,
    };
    TraceExperiment::new(&packets, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprint_experiment_structure() {
        // A strongly reduced scale keeps this test fast while exercising the
        // full pipeline: generation → synthesis → binning → sampling → metric.
        let experiment = sprint_experiment(FlowDefinition::FiveTuple, 60.0, 0.002, 3, 42);
        assert!(
            experiment.bin_count() >= 25,
            "30-minute trace in 1-minute bins"
        );
        let result = experiment.run();
        assert_eq!(result.series.len(), SPRINT_RATES.len());
        // The qualitative ordering of the paper: higher sampling rates give
        // lower ranking error.
        let overall: Vec<f64> = result
            .series
            .iter()
            .map(|s| s.overall_ranking_mean())
            .collect();
        assert!(overall[3] < overall[0], "50% must beat 0.1%: {overall:?}");
    }

    #[test]
    fn workload_experiment_runs_every_catalog_scenario() {
        for workload in Workload::catalog() {
            let experiment = workload_experiment(
                &workload.scaled(0.25),
                FlowDefinition::FiveTuple,
                60.0,
                2,
                5,
                SamplerSpec::Random { rate: 0.01 },
            );
            let result = experiment.run();
            assert_eq!(
                result.series.len(),
                SPRINT_RATES.len(),
                "{}",
                workload.name()
            );
            assert!(result.bin_count >= 2, "{}", workload.name());
        }
    }

    #[test]
    fn streamed_rate_curve_matches_the_batch_experiment() {
        let workload = Workload::ddos_flood().scaled(0.25);
        let runs = 3;
        let seed = 5;
        let result = workload_experiment(
            &workload,
            FlowDefinition::FiveTuple,
            60.0,
            runs,
            seed,
            SamplerSpec::Random { rate: 0.01 },
        )
        .run();
        let points = workload_rate_curve(
            &workload,
            FlowDefinition::FiveTuple,
            60.0,
            runs,
            seed,
            SamplerSpec::Random { rate: 0.01 },
            1,
        );
        assert_eq!(points.len(), SPRINT_RATES.len());
        for (point, series) in points.iter().zip(&result.series) {
            assert_eq!(point.rate, series.rate);
            assert_eq!(point.bins as usize, result.bin_count);
            assert_eq!(point.observations, (result.bin_count * runs) as u64);
            // Same observations, different accumulation order: the overall
            // means agree to floating-point noise.
            let batch_mean = series.overall_ranking_mean();
            assert!(
                (point.ranking_mean - batch_mean).abs() <= 1e-9 * batch_mean.abs().max(1.0),
                "rate {}: streamed {} vs batch {}",
                point.rate,
                point.ranking_mean,
                batch_mean
            );
        }
    }

    #[test]
    fn abilene_experiment_structure() {
        let experiment = abilene_experiment(0.002, 2, 7);
        let result = experiment.run();
        assert_eq!(result.series.len(), ABILENE_RATES.len());
        assert!(result.bin_count >= 25);
    }
}

//! Measurement bins.
//!
//! Network operators report traffic in fixed measurement intervals ("bins" in
//! the paper, 1 or 5 minutes): packets are collected for one interval,
//! classified, ranked and reported; then the memory is cleared and the next
//! interval starts. Flows that stay active across a boundary are truncated —
//! only the packets inside the bin count towards that bin's ranking — which
//! the paper points out penalises large, long-lived flows.

use std::ops::Range;

use flowrank_net::{PacketBatch, PacketRecord, Timestamp};

/// Splits a time-sorted packet trace into consecutive bins of length
/// `bin_length`.
///
/// Returns one vector of packets per bin, covering the span from time zero to
/// the timestamp of the last packet. Empty bins in the middle of the trace
/// are preserved (as empty vectors) so bin indices correspond to wall-clock
/// intervals.
pub fn split_into_bins(packets: &[PacketRecord], bin_length: Timestamp) -> Vec<Vec<PacketRecord>> {
    if packets.is_empty() || bin_length == Timestamp::ZERO {
        return if packets.is_empty() {
            Vec::new()
        } else {
            vec![packets.to_vec()]
        };
    }
    let last_bin = packets
        .iter()
        .map(|p| p.timestamp.bin_index(bin_length))
        .max()
        .unwrap_or(0);
    let mut bins: Vec<Vec<PacketRecord>> = vec![Vec::new(); (last_bin + 1) as usize];
    for packet in packets {
        let index = packet.timestamp.bin_index(bin_length) as usize;
        bins[index].push(*packet);
    }
    bins
}

/// Splits a time-sorted [`PacketBatch`] into consecutive bin *ranges* of
/// length `bin_length` — the zero-copy counterpart of [`split_into_bins`]:
/// instead of copying packets into per-bin vectors, each bin is a
/// `Range<usize>` into the batch's columns (empty ranges for idle bins, so
/// indices still correspond to wall-clock intervals). A zero `bin_length`
/// yields a single range covering the whole batch.
pub fn split_batch_into_bin_ranges(
    batch: &PacketBatch,
    bin_length: Timestamp,
) -> Vec<Range<usize>> {
    if batch.is_empty() {
        return Vec::new();
    }
    if bin_length == Timestamp::ZERO {
        return std::iter::once(0..batch.len()).collect();
    }
    let mut ranges: Vec<Range<usize>> = Vec::new();
    let mut start = 0;
    while start < batch.len() {
        let bin = batch.timestamp(start).bin_index(bin_length);
        while (ranges.len() as u64) < bin {
            let at = start;
            ranges.push(at..at); // idle bin: empty range at the boundary
        }
        let mut end = start + 1;
        while end < batch.len() && batch.timestamp(end).bin_index(bin_length) == bin {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn packet_at(t: f64) -> PacketRecord {
        PacketRecord::udp(
            Timestamp::from_secs_f64(t),
            Ipv4Addr::new(10, 0, 0, 1),
            1,
            Ipv4Addr::new(10, 0, 0, 2),
            2,
            500,
        )
    }

    #[test]
    fn packets_fall_into_their_bins() {
        let packets: Vec<PacketRecord> = [0.5, 59.9, 60.0, 61.0, 185.0]
            .iter()
            .map(|&t| packet_at(t))
            .collect();
        let bins = split_into_bins(&packets, Timestamp::from_secs_f64(60.0));
        assert_eq!(bins.len(), 4); // bins 0..=3 (packet at 185 s is in bin 3)
        assert_eq!(bins[0].len(), 2);
        assert_eq!(bins[1].len(), 2);
        assert_eq!(bins[2].len(), 0); // empty middle bin preserved
        assert_eq!(bins[3].len(), 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(split_into_bins(&[], Timestamp::from_secs_f64(60.0)).is_empty());
        let packets = vec![packet_at(1.0), packet_at(2.0)];
        let single = split_into_bins(&packets, Timestamp::ZERO);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].len(), 2);
    }

    #[test]
    fn batch_bin_ranges_match_packet_bins() {
        let packets: Vec<PacketRecord> = [0.5, 59.9, 60.0, 61.0, 185.0]
            .iter()
            .map(|&t| packet_at(t))
            .collect();
        let bin_length = Timestamp::from_secs_f64(60.0);
        let bins = split_into_bins(&packets, bin_length);
        let batch = PacketBatch::from_records(&packets);
        let ranges = split_batch_into_bin_ranges(&batch, bin_length);
        assert_eq!(ranges.len(), bins.len());
        for (range, bin) in ranges.iter().zip(&bins) {
            let from_batch: Vec<PacketRecord> = range.clone().map(|i| batch.record(i)).collect();
            assert_eq!(&from_batch, bin);
        }
        // Degenerate inputs mirror split_into_bins.
        assert!(split_batch_into_bin_ranges(&PacketBatch::new(), bin_length).is_empty());
        assert_eq!(
            split_batch_into_bin_ranges(&batch, Timestamp::ZERO),
            vec![0..batch.len()]
        );
    }

    #[test]
    fn total_packet_count_is_preserved() {
        let packets: Vec<PacketRecord> = (0..500).map(|i| packet_at(i as f64 * 0.7)).collect();
        let bins = split_into_bins(&packets, Timestamp::from_secs_f64(30.0));
        let total: usize = bins.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
    }
}

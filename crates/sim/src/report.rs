//! CSV-style rendering of experiment results.
//!
//! The figure-reproduction binary writes its data series in a simple
//! comma-separated format (`bin_start_seconds, mean, std_dev` per line, one
//! block per sampling rate) that can be plotted directly with gnuplot or
//! matplotlib to recreate the figures of Sec. 8.

use std::fmt::Write as _;

use crate::experiment::{ExperimentResult, RateSeries};

/// Renders one rate series as CSV rows (`bin_start_seconds,mean,std`).
pub fn series_to_csv(series: &RateSeries, bin_seconds: f64, detection: bool) -> String {
    let mut out = String::new();
    let (means, stds) = if detection {
        (&series.detection_mean, &series.detection_std)
    } else {
        (&series.ranking_mean, &series.ranking_std)
    };
    let _ = writeln!(out, "# sampling rate = {}", series.rate);
    let _ = writeln!(out, "bin_start_s,mean_swapped_pairs,std_dev");
    for (i, (mean, std)) in means.iter().zip(stds.iter()).enumerate() {
        let _ = writeln!(out, "{},{:.6},{:.6}", i as f64 * bin_seconds, mean, std);
    }
    out
}

/// Renders an entire experiment result: one CSV block per sampling rate.
pub fn result_to_csv(result: &ExperimentResult, bin_seconds: f64, detection: bool) -> String {
    result
        .series
        .iter()
        .map(|s| series_to_csv(s, bin_seconds, detection))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders a compact one-line-per-rate summary table (overall means).
pub fn result_summary_table(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>24} {:>24}",
        "rate", "mean ranking swaps", "mean detection swaps"
    );
    for series in &result.series {
        let _ = writeln!(
            out,
            "{:>11.4}% {:>24.3} {:>24.3}",
            series.rate * 100.0,
            series.overall_ranking_mean(),
            series.overall_detection_mean()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RateSeries;

    fn sample_result() -> ExperimentResult {
        ExperimentResult {
            bin_count: 2,
            series: vec![
                RateSeries {
                    rate: 0.01,
                    ranking_mean: vec![10.0, 12.0],
                    ranking_std: vec![1.0, 2.0],
                    detection_mean: vec![3.0, 4.0],
                    detection_std: vec![0.5, 0.25],
                },
                RateSeries {
                    rate: 0.5,
                    ranking_mean: vec![0.1, 0.2],
                    ranking_std: vec![0.05, 0.04],
                    detection_mean: vec![0.0, 0.1],
                    detection_std: vec![0.0, 0.02],
                },
            ],
        }
    }

    #[test]
    fn csv_contains_all_bins_and_rates() {
        let csv = result_to_csv(&sample_result(), 60.0, false);
        assert!(csv.contains("# sampling rate = 0.01"));
        assert!(csv.contains("# sampling rate = 0.5"));
        assert!(csv.contains("0,10.000000,1.000000"));
        assert!(csv.contains("60,12.000000,2.000000"));
        // Detection view switches the columns.
        let det = result_to_csv(&sample_result(), 60.0, true);
        assert!(det.contains("0,3.000000,0.500000"));
    }

    #[test]
    fn summary_table_lists_each_rate_once() {
        let table = result_summary_table(&sample_result());
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("1.0000%"));
        assert!(table.contains("50.0000%"));
    }
}

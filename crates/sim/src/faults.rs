//! Deterministic fault injection for the drive pipeline.
//!
//! The chaos conformance suite needs to exercise every recovery path of
//! [`Monitor::try_drive`](flowrank_monitor::Monitor::try_drive) —
//! malformed records, mid-stream EOF, fatal reads, source stalls,
//! out-of-order timestamps, transient/permanent/slow sinks — **without**
//! any real I/O and **reproducibly**: the same seed must inject the same
//! faults at the same points on every run and at every thread count.
//!
//! * [`FaultPlan`] is the schedule: a map from `try_next_chunk` call
//!   ordinal to the [`SourceFault`] injected on that call, built either
//!   explicitly ([`FaultPlan::at`]) or from a seed
//!   ([`FaultPlan::seeded`]).
//! * [`FaultySource`] wraps any [`PacketSource`] and replays the plan.
//!   Injected faults are *inserted between* the inner source's chunks —
//!   apart from [`SourceFault::OutOfOrder`] (which rewrites a real chunk)
//!   and the terminal faults, the wrapped source still delivers every
//!   packet, so a policy that absorbs the faults reproduces the fault-free
//!   report stream bit for bit.
//! * [`FaultySink`] wraps any [`ReportSink`] and fails chosen reports
//!   ([`SinkFault`]), keyed by *successful* report ordinal so retries of a
//!   failed report hit the same fault slot.
//!
//! Both wrappers count what they actually injected, so tests can assert
//! the monitor's [`DriveStats`](flowrank_monitor::DriveStats) against the
//! ground truth of the schedule.

use std::collections::BTreeMap;
use std::io;

use flowrank_monitor::{BinReport, PacketSource, ReportSink, SinkError, SourceError};
use flowrank_net::{NetError, PacketBatch, Timestamp};
use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

/// One injected source-side fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFault {
    /// A truncated/garbage record: one recoverable
    /// [`SourceError::Malformed`] poll. The bad record is injected, not
    /// taken from the stream — no real packet is lost, so skip-and-count
    /// recovery reproduces the fault-free reports exactly.
    MalformedRecord,
    /// The capture ends mid-stream: from this call on the source reports
    /// clean end-of-stream, dropping whatever the inner source still had.
    MidStreamEof,
    /// An unrecoverable read failure ([`SourceError::Fatal`], e.g. the
    /// record boundary is lost): this poll and every later one fails.
    FatalRead,
    /// One idle poll (`Ok(Some(empty batch))`): "no data right now, not
    /// end-of-stream" — the stall-detector food group.
    Stall,
    /// The next real chunk's first packet is rewritten to one nanosecond
    /// before the newest timestamp delivered so far — a single cross-call
    /// timestamp regression. Skipped silently when no timestamp has been
    /// delivered yet or the newest is zero.
    OutOfOrder,
}

/// A deterministic schedule of source faults, keyed by the ordinal of the
/// `try_next_chunk` call they fire on (0-based, counting every poll —
/// including the polls the faults themselves occupy).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, SourceFault>,
}

impl FaultPlan {
    /// An empty plan: the wrapped source behaves exactly like the inner
    /// one.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds `fault` at poll ordinal `call` (replacing any fault already
    /// scheduled there).
    pub fn at(mut self, call: u64, fault: SourceFault) -> Self {
        self.faults.insert(call, fault);
        self
    }

    /// Builds a plan from a seed: each of the first `calls` poll ordinals
    /// independently receives a fault with probability `rate`, drawn
    /// uniformly from `classes`. The schedule is a pure function of the
    /// arguments — the reproducibility anchor of the chaos suite.
    pub fn seeded(seed: u64, calls: u64, rate: f64, classes: &[SourceFault]) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut faults = BTreeMap::new();
        for call in 0..calls {
            let draw = rng.next_f64();
            let class = rng.next_u64();
            if !classes.is_empty() && draw < rate {
                faults.insert(call, classes[(class % classes.len() as u64) as usize]);
            }
        }
        FaultPlan { faults }
    }

    /// Number of scheduled faults of class `fault`.
    pub fn count_of(&self, fault: SourceFault) -> u64 {
        self.faults.values().filter(|f| **f == fault).count() as u64
    }
}

/// Tally of the faults a [`FaultySource`] actually injected (a terminal
/// fault suppresses everything scheduled after it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Recoverable malformed-record polls injected.
    pub malformed: u64,
    /// Idle (stall) polls injected.
    pub stalls: u64,
    /// Chunks whose first timestamp was rewritten backwards.
    pub out_of_order: u64,
    /// Whether a mid-stream EOF was injected.
    pub truncated: bool,
    /// Whether a fatal read failure was injected.
    pub fatal: bool,
}

/// A [`PacketSource`] wrapper replaying a [`FaultPlan`] over an inner
/// source.
///
/// The fallible contract mirrors the real pcap sources: malformed polls
/// are recoverable (the source can be polled again), stall polls deliver
/// an empty batch, fatal reads and mid-stream EOF latch. The infallible
/// [`PacketSource::next_chunk`] view absorbs stalls and malformed polls
/// itself and treats both terminal faults as end-of-stream, so the wrapper
/// can also feed the infallible `drive` path.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    plan: FaultPlan,
    /// Next poll ordinal.
    calls: u64,
    /// Newest timestamp delivered so far (for `OutOfOrder` rewrites).
    last_ts_nanos: Option<u64>,
    /// Owned copy of the chunk being delivered: every real chunk is copied
    /// here so `OutOfOrder` can rewrite it and the borrow never outlives a
    /// poll.
    out: PacketBatch,
    /// Reusable empty batch backing stall polls.
    idle: PacketBatch,
    injected: InjectedFaults,
    /// Latched terminal state: the source stays ended/failed forever.
    terminated: Option<Terminal>,
}

#[derive(Debug, Clone, Copy)]
enum Terminal {
    Eof,
    Fatal,
}

impl<S: PacketSource> FaultySource<S> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySource {
            inner,
            plan,
            calls: 0,
            last_ts_nanos: None,
            out: PacketBatch::new(),
            idle: PacketBatch::new(),
            injected: InjectedFaults::default(),
            terminated: None,
        }
    }

    /// What has actually been injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// Pulls the next real chunk from the inner source into `self.out`,
    /// rewriting the first timestamp when `regress` is set. Returns whether
    /// a chunk was produced.
    fn pump(&mut self, regress: bool) -> bool {
        let Some(chunk) = self.inner.next_chunk() else {
            return false;
        };
        self.out.clear();
        self.out.extend_from_batch(chunk, 0..chunk.len());
        if regress && !self.out.is_empty() {
            match self.last_ts_nanos {
                Some(last) if last > 0 => {
                    let mut first = self.out.record(0);
                    first.timestamp = Timestamp::from_nanos(last - 1);
                    let mut rewritten = PacketBatch::with_capacity(self.out.len());
                    rewritten.push_record(&first);
                    rewritten.extend_from_batch(&self.out, 1..self.out.len());
                    self.out = rewritten;
                    self.injected.out_of_order += 1;
                }
                _ => {}
            }
        }
        if let Some(&last) = self.out.ts_nanos().last() {
            self.last_ts_nanos = Some(self.last_ts_nanos.map_or(last, |seen| seen.max(last)));
        }
        true
    }
}

impl<S: PacketSource> PacketSource for FaultySource<S> {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        // The infallible view: absorb recoverable faults, end on terminal
        // ones — mirroring how the real pcap sources latch their errors.
        loop {
            match self.try_next_chunk() {
                Ok(Some(chunk)) if chunk.is_empty() => continue,
                Ok(Some(_)) => return Some(&self.out),
                Ok(None) => return None,
                Err(error) if error.is_recoverable() => continue,
                Err(_) => return None,
            }
        }
    }

    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        match self.terminated {
            Some(Terminal::Eof) => return Ok(None),
            Some(Terminal::Fatal) => {
                return Err(SourceError::Fatal(NetError::Io(io::Error::other(
                    "injected fatal read failure",
                ))))
            }
            None => {}
        }
        let call = self.calls;
        self.calls += 1;
        match self.plan.faults.get(&call).copied() {
            Some(SourceFault::MalformedRecord) => {
                self.injected.malformed += 1;
                Err(SourceError::Malformed(NetError::MalformedPacket {
                    reason: "injected truncated record",
                }))
            }
            Some(SourceFault::Stall) => {
                self.injected.stalls += 1;
                self.idle.clear();
                Ok(Some(&self.idle))
            }
            Some(SourceFault::MidStreamEof) => {
                self.injected.truncated = true;
                self.terminated = Some(Terminal::Eof);
                Ok(None)
            }
            Some(SourceFault::FatalRead) => {
                self.injected.fatal = true;
                self.terminated = Some(Terminal::Fatal);
                Err(SourceError::Fatal(NetError::Io(io::Error::other(
                    "injected fatal read failure",
                ))))
            }
            Some(SourceFault::OutOfOrder) => {
                if self.pump(true) {
                    Ok(Some(&self.out))
                } else {
                    Ok(None)
                }
            }
            None => {
                if self.pump(false) {
                    Ok(Some(&self.out))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// One injected sink-side fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFault {
    /// The report fails `failures` times with a transient
    /// [`SinkError`] before succeeding — food for the bounded
    /// retry-with-backoff path. (Injected as `TimedOut`: `Interrupted`
    /// would be absorbed by `std`'s own `write_all` retry loop before any
    /// sink policy sees it.)
    Transient {
        /// Emit attempts that fail before the report goes through.
        failures: u32,
    },
    /// The sink fails permanently: this report and every later one errors.
    Permanent,
    /// The report is delivered after a delay — stall-detector coverage:
    /// a slow *sink* must not look like a starved *source*.
    Slow {
        /// Delivery delay in milliseconds.
        millis: u64,
    },
}

/// A [`ReportSink`] wrapper that fails chosen reports.
///
/// Faults are keyed by the ordinal of the report among *successful*
/// deliveries, so a retried report keeps hitting its own fault slot until
/// the slot's failures are spent — exactly the shape a transient I/O error
/// has in the wild.
#[derive(Debug)]
pub struct FaultySink<K> {
    inner: K,
    faults: BTreeMap<u64, SinkFault>,
    /// Ordinal of the next successful delivery.
    delivered: u64,
    /// Transient failures already charged against the current ordinal.
    spent: u32,
    /// Latched permanent failure.
    broken: bool,
    /// Transient failures injected so far.
    pub injected_transient: u64,
}

impl<K: ReportSink> FaultySink<K> {
    /// Wraps `inner` with no faults scheduled.
    pub fn new(inner: K) -> Self {
        FaultySink {
            inner,
            faults: BTreeMap::new(),
            delivered: 0,
            spent: 0,
            broken: false,
            injected_transient: 0,
        }
    }

    /// Schedules `fault` on the report with successful-delivery ordinal
    /// `report` (0-based).
    pub fn fail_at(mut self, report: u64, fault: SinkFault) -> Self {
        self.faults.insert(report, fault);
        self
    }

    /// The wrapped sink, for reading back what it received.
    pub fn into_inner(self) -> K {
        self.inner
    }

    /// Reports successfully delivered to the inner sink.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl<K: ReportSink> ReportSink for FaultySink<K> {
    fn accept(&mut self, report: &BinReport) {
        // Infallible view for harness plumbing: transient faults are
        // spent silently, terminal ones swallow the report.
        let _ = self.emit(report);
    }

    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        if self.broken {
            return Err(SinkError::permanent(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected permanent sink failure",
            )));
        }
        match self.faults.get(&self.delivered).copied() {
            Some(SinkFault::Transient { failures }) if self.spent < failures => {
                self.spent += 1;
                self.injected_transient += 1;
                return Err(SinkError::transient(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "injected transient sink failure",
                )));
            }
            Some(SinkFault::Permanent) => {
                self.broken = true;
                return Err(SinkError::permanent(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected permanent sink failure",
                )));
            }
            Some(SinkFault::Slow { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            _ => {}
        }
        self.inner.emit(report)?;
        self.delivered += 1;
        self.spent = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_monitor::{BatchSource, Collect};
    use flowrank_net::PacketRecord;
    use std::net::Ipv4Addr;

    fn batch(ts: &[f64]) -> PacketBatch {
        let records: Vec<PacketRecord> = ts
            .iter()
            .map(|&t| {
                PacketRecord::udp(
                    Timestamp::from_secs_f64(t),
                    Ipv4Addr::new(10, 0, 0, 1),
                    53,
                    Ipv4Addr::new(100, 64, 0, 9),
                    53,
                    100,
                )
            })
            .collect();
        PacketBatch::from_records(&records)
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_their_arguments() {
        let classes = [SourceFault::MalformedRecord, SourceFault::Stall];
        let a = FaultPlan::seeded(7, 1000, 0.1, &classes);
        let b = FaultPlan::seeded(7, 1000, 0.1, &classes);
        assert_eq!(a.faults, b.faults);
        let injected: u64 = classes.iter().map(|c| a.count_of(*c)).sum();
        assert!(injected > 0, "a 10% rate over 1000 calls injects something");
        assert_ne!(
            a.faults,
            FaultPlan::seeded(8, 1000, 0.1, &classes).faults,
            "different seeds give different schedules"
        );
    }

    #[test]
    fn faulty_source_inserts_faults_without_losing_packets() {
        let data = batch(&[1.0, 2.0, 3.0]);
        let plan = FaultPlan::none()
            .at(0, SourceFault::Stall)
            .at(1, SourceFault::MalformedRecord);
        let mut source = FaultySource::new(BatchSource::new(&data), plan);
        assert!(matches!(source.try_next_chunk(), Ok(Some(b)) if b.is_empty()));
        assert!(matches!(
            source.try_next_chunk(),
            Err(SourceError::Malformed(_))
        ));
        let delivered = source.try_next_chunk().unwrap().unwrap();
        assert_eq!(delivered.len(), 3, "the real chunk survives the faults");
        assert!(matches!(source.try_next_chunk(), Ok(None)));
        assert_eq!(source.injected().stalls, 1);
        assert_eq!(source.injected().malformed, 1);
    }

    #[test]
    fn out_of_order_rewrites_one_timestamp_backwards() {
        let first = batch(&[1.0, 2.0]);
        let second = batch(&[3.0, 4.0]);
        struct TwoChunks {
            chunks: Vec<PacketBatch>,
            next: usize,
        }
        impl PacketSource for TwoChunks {
            fn next_chunk(&mut self) -> Option<&PacketBatch> {
                let i = self.next;
                self.next += 1;
                self.chunks.get(i)
            }
        }
        let inner = TwoChunks {
            chunks: vec![first, second],
            next: 0,
        };
        let mut source = FaultySource::new(inner, FaultPlan::none().at(1, SourceFault::OutOfOrder));
        let a = source.try_next_chunk().unwrap().unwrap();
        assert_eq!(a.ts_nanos().to_vec(), batch(&[1.0, 2.0]).ts_nanos());
        let b = source.try_next_chunk().unwrap().unwrap();
        let expected_regressed = Timestamp::from_secs_f64(2.0).as_nanos() - 1;
        assert_eq!(b.ts_nanos()[0], expected_regressed);
        assert_eq!(b.ts_nanos()[1], Timestamp::from_secs_f64(4.0).as_nanos());
        assert_eq!(source.injected().out_of_order, 1);
    }

    #[test]
    fn terminal_faults_latch() {
        let data = batch(&[1.0]);
        let mut eof = FaultySource::new(
            BatchSource::new(&data),
            FaultPlan::none().at(0, SourceFault::MidStreamEof),
        );
        assert!(matches!(eof.try_next_chunk(), Ok(None)));
        assert!(matches!(eof.try_next_chunk(), Ok(None)));
        assert!(eof.injected().truncated);

        let mut fatal = FaultySource::new(
            BatchSource::new(&data),
            FaultPlan::none().at(0, SourceFault::FatalRead),
        );
        assert!(matches!(fatal.try_next_chunk(), Err(SourceError::Fatal(_))));
        assert!(matches!(fatal.try_next_chunk(), Err(SourceError::Fatal(_))));
        assert!(fatal.injected().fatal);
    }

    #[test]
    fn faulty_sink_retries_spend_the_same_slot() {
        let mut sink =
            FaultySink::new(Collect::new()).fail_at(1, SinkFault::Transient { failures: 2 });
        let report = BinReport::default();
        assert!(sink.emit(&report).is_ok());
        // Report 1: two transient failures, then success on the third try.
        assert!(sink.emit(&report).unwrap_err().is_transient());
        assert!(sink.emit(&report).unwrap_err().is_transient());
        assert!(sink.emit(&report).is_ok());
        assert_eq!(sink.delivered(), 2);
        assert_eq!(sink.injected_transient, 2);
        assert_eq!(sink.into_inner().reports.len(), 2);
    }

    #[test]
    fn permanent_sink_failure_latches() {
        let mut sink = FaultySink::new(Collect::new()).fail_at(0, SinkFault::Permanent);
        let report = BinReport::default();
        assert!(!sink.emit(&report).unwrap_err().is_transient());
        assert!(!sink.emit(&report).unwrap_err().is_transient());
        assert_eq!(sink.delivered(), 0);
    }
}

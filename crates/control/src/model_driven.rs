//! Certainty-equivalent control: invert the paper's optimal-rate model on
//! the sizes observed in the bin that just closed.

use flowrank_core::{optimal_sampling_rate, PairwiseModel};

use crate::controller::RateController;
use crate::observation::{BinObservation, RateDecision};

/// Smallest rate the underlying root finder is asked to consider; the
/// controller's own `min_rate` bound is applied on top.
const SOLVER_FLOOR: f64 = 1e-6;

/// The binding sampling rate for a descending list of true flow sizes:
/// the maximum over adjacent *distinct* pairs of the paper's
/// [`optimal_sampling_rate`] (Gaussian model) at `target` misranking
/// probability. The closest adjacent pair dominates — it is the hardest
/// to keep in order — so meeting it meets every other pair too.
///
/// Ties (equal adjacent sizes) are skipped: the model treats an exact tie
/// as a coin flip at any rate, so it carries no rate signal. Returns
/// `min_rate` when fewer than two distinct sizes are given.
pub fn optimal_rate_for_sizes(sizes: &[u64], target: f64, min_rate: f64) -> f64 {
    let mut rate = min_rate;
    for pair in sizes.windows(2) {
        let (s1, s2) = (pair[0], pair[1]);
        if s1 <= s2 || s2 == 0 {
            continue;
        }
        let pair_rate =
            optimal_sampling_rate(s1, s2, target, PairwiseModel::Gaussian, SOLVER_FLOOR);
        if pair_rate > rate {
            rate = pair_rate;
        }
    }
    rate.clamp(min_rate, 1.0)
}

/// Controller that re-solves the paper's optimal-rate problem every bin,
/// using the bin's observed top-t true sizes as the forecast for the next
/// bin (certainty-equivalent control). Holds its current rate on bins with
/// no ranking signal rather than chasing noise.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDriven {
    target_misranking: f64,
    min_rate: f64,
    max_rate: f64,
    initial_rate: f64,
    rate: f64,
}

impl ModelDriven {
    /// Builds the controller; `initial_rate` is emitted until the first
    /// bin with ranking signal arrives.
    pub fn new(target_misranking: f64, min_rate: f64, max_rate: f64, initial_rate: f64) -> Self {
        let rate = initial_rate.clamp(min_rate, max_rate);
        Self {
            target_misranking,
            min_rate,
            max_rate,
            initial_rate,
            rate,
        }
    }
}

impl RateController for ModelDriven {
    fn name(&self) -> &'static str {
        "model-driven"
    }

    fn observe(&mut self, observation: &BinObservation) -> RateDecision {
        if observation.has_signal() && observation.top_sizes.len() >= 2 {
            self.rate = optimal_rate_for_sizes(
                &observation.top_sizes,
                self.target_misranking,
                self.min_rate,
            )
            .clamp(self.min_rate, self.max_rate);
        }
        RateDecision { rate: self.rate }
    }

    fn reset(&mut self) {
        self.rate = self.initial_rate.clamp(self.min_rate, self.max_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation_with_sizes(sizes: &[u64]) -> BinObservation {
        BinObservation {
            ranking_pairs: sizes.len().saturating_sub(1) as u64,
            top_sizes: sizes.to_vec(),
            ..BinObservation::default()
        }
    }

    #[test]
    fn close_sizes_demand_higher_rate_than_distant_sizes() {
        let close = optimal_rate_for_sizes(&[100, 95], 0.05, 0.001);
        let distant = optimal_rate_for_sizes(&[100, 10], 0.05, 0.001);
        assert!(
            close > distant,
            "close pair should need more sampling: {close} vs {distant}"
        );
    }

    #[test]
    fn binding_pair_dominates() {
        // Adding an easy (distant) pair must not lower the required rate.
        let hard_only = optimal_rate_for_sizes(&[100, 90], 0.05, 0.001);
        let with_easy = optimal_rate_for_sizes(&[1000, 100, 90], 0.05, 0.001);
        assert!((hard_only - with_easy).abs() < 1e-9);
    }

    #[test]
    fn ties_and_degenerate_lists_fall_back_to_min_rate() {
        assert_eq!(optimal_rate_for_sizes(&[50, 50, 50], 0.05, 0.01), 0.01);
        assert_eq!(optimal_rate_for_sizes(&[50], 0.05, 0.01), 0.01);
        assert_eq!(optimal_rate_for_sizes(&[], 0.05, 0.01), 0.01);
    }

    #[test]
    fn holds_rate_on_bins_without_signal() {
        let mut controller = ModelDriven::new(0.05, 0.001, 1.0, 0.1);
        let tuned = controller
            .observe(&observation_with_sizes(&[400, 300, 200, 100]))
            .rate;
        assert_ne!(tuned, 0.1, "signal bin should retune");
        let idle = BinObservation::default();
        assert_eq!(controller.observe(&idle).rate, tuned, "idle bin holds");
    }

    #[test]
    fn reset_returns_to_initial_rate() {
        let mut controller = ModelDriven::new(0.05, 0.001, 1.0, 0.1);
        controller.observe(&observation_with_sizes(&[100, 98, 96]));
        controller.reset();
        assert_eq!(controller.observe(&BinObservation::default()).rate, 0.1);
    }
}

//! Per-bin feedback fed to controllers, and the decision they emit.

/// Everything a controller gets to see about one closed measurement bin.
///
/// Observations are derived by the monitor from the bin's `BinReport` and
/// the ground-truth ranking it already computes per bin, so attaching a
/// controller adds no extra pass over the packet stream. All fields are
/// plain values — an observation stream fully determines a controller's
/// decision stream (see the crate-level determinism contract).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinObservation {
    /// Index of the bin that just closed (0-based).
    pub bin_index: u64,
    /// Sampling rate the controlled lane ran during this bin.
    pub applied_rate: f64,
    /// Total packets the monitor saw in the bin (pre-sampling).
    pub packets: u64,
    /// Distinct true flows in the bin.
    pub flows: u64,
    /// Packets the controlled lane actually kept in the bin.
    pub kept_packets: u64,
    /// Adjacent top-t pairs the controlled lane ranked in the wrong order.
    pub ranking_swaps: u64,
    /// Adjacent top-t pairs compared (0 when the bin had < 2 ranked flows).
    pub ranking_pairs: u64,
    /// True top-t flows the controlled lane missed entirely.
    pub missed_top_flows: u64,
    /// Fraction of the true top-t set that changed since the previous bin
    /// (0.0 on the first bin and for perfectly stable rankings).
    pub top_churn: f64,
    /// True sizes (packet counts) of the bin's top flows, sorted
    /// descending — typically the top `t + 1` so adjacent top-t pairs are
    /// all available to a model inverter.
    pub top_sizes: Vec<u64>,
}

impl BinObservation {
    /// Fraction of adjacent top-t pairs the lane misranked, in `[0, 1]`.
    ///
    /// Returns `0.0` when no pairs were compared (empty or near-empty bin)
    /// so controllers never divide by zero on idle traffic.
    pub fn swapped_fraction(&self) -> f64 {
        if self.ranking_pairs == 0 {
            0.0
        } else {
            self.ranking_swaps as f64 / self.ranking_pairs as f64
        }
    }

    /// Whether the bin carried enough traffic to be a usable feedback
    /// signal: at least one ranked pair was compared.
    pub fn has_signal(&self) -> bool {
        self.ranking_pairs > 0
    }
}

/// A controller's output: the sampling rate the controlled lane should run
/// during the next bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateDecision {
    /// Target sampling rate in `(0, 1]`.
    pub rate: f64,
}

impl RateDecision {
    /// Decision clamped into `[min_rate, max_rate]`.
    pub fn clamped(self, min_rate: f64, max_rate: f64) -> Self {
        Self {
            rate: self.rate.clamp(min_rate, max_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swapped_fraction_is_zero_without_pairs() {
        let observation = BinObservation::default();
        assert_eq!(observation.swapped_fraction(), 0.0);
        assert!(!observation.has_signal());
    }

    #[test]
    fn swapped_fraction_divides_swaps_by_pairs() {
        let observation = BinObservation {
            ranking_swaps: 3,
            ranking_pairs: 9,
            ..BinObservation::default()
        };
        assert!((observation.swapped_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(observation.has_signal());
    }

    #[test]
    fn decision_clamps_into_bounds() {
        let decision = RateDecision { rate: 2.0 };
        assert_eq!(decision.clamped(0.001, 1.0).rate, 1.0);
        let decision = RateDecision { rate: 1e-9 };
        assert_eq!(decision.clamped(0.001, 1.0).rate, 0.001);
    }
}

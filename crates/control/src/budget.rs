//! Monitor-level generalisation of `AdaptiveRateSampler`'s budget update.

use crate::controller::RateController;
use crate::observation::{BinObservation, RateDecision};

/// Clamp on the per-bin multiplicative step, matching the sampler-local
/// `AdaptiveRateSampler` so the two tiers of budget control share dynamics.
const STEP_CLAMP: (f64, f64) = (0.25, 4.0);

/// Steers the controlled lane toward a kept-packets-per-bin budget with a
/// clamped multiplicative update: `rate *= clamp(budget / kept, ¼, 4)`.
///
/// This is `AdaptiveRateSampler`'s interval update lifted from a single
/// sampler's packet counter to the monitor's report stream — the
/// cross-lane, cross-bin view the sampler itself can never see. Empty
/// bins count as `kept = 1`, so idle periods raise the rate at the
/// maximum ×4 step per bin (the sampler-local discipline behaves the same
/// way per interval).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetTracking {
    budget_per_bin: u64,
    min_rate: f64,
    max_rate: f64,
    initial_rate: f64,
    rate: f64,
}

impl BudgetTracking {
    /// Builds the controller; a zero budget is bumped to 1 so the update
    /// factor stays finite.
    pub fn new(budget_per_bin: u64, min_rate: f64, max_rate: f64, initial_rate: f64) -> Self {
        let rate = initial_rate.clamp(min_rate, max_rate);
        Self {
            budget_per_bin: budget_per_bin.max(1),
            min_rate,
            max_rate,
            initial_rate,
            rate,
        }
    }
}

impl RateController for BudgetTracking {
    fn name(&self) -> &'static str {
        "budget-tracking"
    }

    fn observe(&mut self, observation: &BinObservation) -> RateDecision {
        let kept = observation.kept_packets.max(1) as f64;
        let factor = (self.budget_per_bin as f64 / kept).clamp(STEP_CLAMP.0, STEP_CLAMP.1);
        self.rate = (self.rate * factor).clamp(self.min_rate, self.max_rate);
        RateDecision { rate: self.rate }
    }

    fn reset(&mut self) {
        self.rate = self.initial_rate.clamp(self.min_rate, self.max_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation(kept: u64) -> BinObservation {
        BinObservation {
            kept_packets: kept,
            ..BinObservation::default()
        }
    }

    #[test]
    fn over_budget_cuts_under_budget_raises() {
        let mut budget = BudgetTracking::new(500, 0.001, 1.0, 0.1);
        // Kept exactly double the budget: rate halves.
        assert!((budget.observe(&observation(1000)).rate - 0.05).abs() < 1e-12);
        // Kept exactly half the budget: rate doubles back.
        assert!((budget.observe(&observation(250)).rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn step_is_clamped_to_sampler_local_bounds() {
        let mut budget = BudgetTracking::new(500, 0.001, 1.0, 0.1);
        // Enormous overshoot still cuts at most ×0.25 per bin.
        assert!((budget.observe(&observation(1_000_000)).rate - 0.025).abs() < 1e-12);
        // Empty bin raises at most ×4 per bin.
        assert!((budget.observe(&observation(0)).rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn converges_onto_a_stationary_load() {
        // Stationary traffic where kept ≈ rate × 100_000 packets: the fixed
        // point is rate = budget / 100_000 = 0.005.
        let mut budget = BudgetTracking::new(500, 0.001, 1.0, 0.1);
        let mut rate = 0.1;
        for _ in 0..30 {
            let kept = (rate * 100_000.0) as u64;
            rate = budget.observe(&observation(kept)).rate;
        }
        assert!((rate - 0.005).abs() < 5e-4, "fixed point missed: {rate}");
    }

    #[test]
    fn reset_restores_initial_rate() {
        let mut budget = BudgetTracking::new(500, 0.001, 1.0, 0.1);
        budget.observe(&observation(1_000_000));
        budget.reset();
        assert_eq!(budget.observe(&observation(500)).rate, 0.1);
    }
}

//! # flowrank-control
//!
//! Closed-loop sampling-rate control: the paper's optimal-rate model
//! (`core::optimal`) turned into an **online per-bin controller**.
//!
//! The paper computes the sampling rate that keeps the misranking
//! probability of a flow pair below a target — but only *offline*, from
//! known flow sizes. Its named future-work direction is "adaptive schemes
//! that set the sampling rate based on the characteristics of the observed
//! traffic". This crate is that feedback loop at the monitor level:
//!
//! ```text
//!   packets ──▶ Monitor ──▶ BinReport ──▶ BinObservation ──▶ RateController
//!                  ▲                                              │
//!                  └────────── lane rate retuned ◀── RateDecision ┘
//! ```
//!
//! A [`RateController`] observes one [`BinObservation`] per closed
//! measurement bin — realized ranking accuracy, top-k churn, kept-packet
//! volume and the bin's true top flow sizes — and emits a [`RateDecision`]:
//! the sampling rate the controlled lane should run during the *next* bin.
//! Three controllers ship:
//!
//! * [`ModelDriven`] — inverts the paper's
//!   [`optimal_sampling_rate`](flowrank_core::optimal_sampling_rate) on the
//!   bin's observed top-t flow sizes to hit a target misranking
//!   probability (certainty-equivalent control: last bin's sizes predict
//!   the next bin's).
//! * [`AimdSlo`] — additive-increase / multiplicative-decrease on a
//!   swapped-pair-fraction SLO, with a hysteresis band and rate bounds.
//! * [`BudgetTracking`] — the multiplicative budget update of
//!   `flowrank-sampling`'s `AdaptiveRateSampler`, generalised from a
//!   sampler-local packet counter to the monitor-level report stream.
//!
//! # Determinism contract
//!
//! Controller state is a **pure function of the observation stream**: no
//! clocks, no RNG, no iteration over unordered containers. Feeding the same
//! sequence of [`BinObservation`]s to a freshly built controller always
//! produces the same sequence of [`RateDecision`]s, bit for bit, on every
//! platform. The monitor preserves this end to end: observations are
//! derived from the bin's `BinReport` and ground-truth ranking (both
//! already bit-identical across `push` / `push_batch` / chunked / sharded
//! execution paths under pinned seeds), and the controlled lane's sampler
//! is rebuilt from its fixed per-lane seed at every retune — so a whole
//! controlled measurement, decisions included, is reproducible from
//! `(trace seed, monitor seed, ControllerSpec)` alone. The
//! `controller_convergence` golden digests in `flowrank-tests` pin exactly
//! this: the full decision trace of every controller over the
//! non-stationary scenario workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aimd;
pub mod budget;
pub mod controller;
pub mod model_driven;
pub mod observation;

pub use aimd::AimdSlo;
pub use budget::BudgetTracking;
pub use controller::{ControllerSpec, RateController};
pub use model_driven::{optimal_rate_for_sizes, ModelDriven};
pub use observation::{BinObservation, RateDecision};

//! Additive-increase / multiplicative-decrease on an accuracy SLO.

use crate::controller::RateController;
use crate::observation::{BinObservation, RateDecision};

/// TCP-style AIMD over the swapped-pair fraction: violate the SLO and the
/// rate climbs additively (fast recovery of accuracy); sit comfortably
/// under it and the rate decays multiplicatively (reclaim measurement
/// budget). A hysteresis band between the two keeps the controller from
/// oscillating when the error hovers near the target.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdSlo {
    target_fraction: f64,
    hysteresis: f64,
    increase: f64,
    decrease: f64,
    min_rate: f64,
    max_rate: f64,
    initial_rate: f64,
    rate: f64,
}

impl AimdSlo {
    /// Builds the controller. `hysteresis` in `[0, 1]` scales the target
    /// down to form the decrease threshold: the rate only decays once the
    /// swapped fraction falls below `target_fraction * hysteresis`.
    pub fn new(
        target_fraction: f64,
        hysteresis: f64,
        increase: f64,
        decrease: f64,
        min_rate: f64,
        max_rate: f64,
        initial_rate: f64,
    ) -> Self {
        let rate = initial_rate.clamp(min_rate, max_rate);
        Self {
            target_fraction,
            hysteresis,
            increase,
            decrease,
            min_rate,
            max_rate,
            initial_rate,
            rate,
        }
    }
}

impl RateController for AimdSlo {
    fn name(&self) -> &'static str {
        "aimd-slo"
    }

    fn observe(&mut self, observation: &BinObservation) -> RateDecision {
        if observation.has_signal() {
            let error = observation.swapped_fraction();
            if error > self.target_fraction {
                self.rate += self.increase;
            } else if error < self.target_fraction * self.hysteresis {
                self.rate *= self.decrease;
            }
            self.rate = self.rate.clamp(self.min_rate, self.max_rate);
        }
        RateDecision { rate: self.rate }
    }

    fn reset(&mut self) {
        self.rate = self.initial_rate.clamp(self.min_rate, self.max_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation(swaps: u64, pairs: u64) -> BinObservation {
        BinObservation {
            ranking_swaps: swaps,
            ranking_pairs: pairs,
            ..BinObservation::default()
        }
    }

    fn controller() -> AimdSlo {
        AimdSlo::new(0.10, 0.5, 0.02, 0.85, 0.001, 1.0, 0.1)
    }

    #[test]
    fn violation_increases_additively() {
        let mut aimd = controller();
        // 3/9 swapped > 0.10 target.
        assert!((aimd.observe(&observation(3, 9)).rate - 0.12).abs() < 1e-12);
        assert!((aimd.observe(&observation(3, 9)).rate - 0.14).abs() < 1e-12);
    }

    #[test]
    fn comfort_decreases_multiplicatively() {
        let mut aimd = controller();
        // 0/9 swapped < 0.05 decrease threshold.
        assert!((aimd.observe(&observation(0, 9)).rate - 0.085).abs() < 1e-12);
    }

    #[test]
    fn hysteresis_band_holds_the_rate() {
        let mut aimd = controller();
        // 0.5/9 impossible; use 1/12 ≈ 0.083: under target, above 0.05.
        assert_eq!(aimd.observe(&observation(1, 12)).rate, 0.1);
    }

    #[test]
    fn idle_bins_hold_and_bounds_clamp() {
        let mut aimd = controller();
        assert_eq!(aimd.observe(&observation(0, 0)).rate, 0.1);
        for _ in 0..200 {
            aimd.observe(&observation(9, 9));
        }
        assert_eq!(aimd.observe(&observation(9, 9)).rate, 1.0);
        for _ in 0..200 {
            aimd.observe(&observation(0, 9));
        }
        assert_eq!(aimd.observe(&observation(0, 9)).rate, 0.001);
    }

    #[test]
    fn reset_restores_initial_rate() {
        let mut aimd = controller();
        aimd.observe(&observation(9, 9));
        aimd.reset();
        assert_eq!(aimd.observe(&observation(0, 0)).rate, 0.1);
    }
}

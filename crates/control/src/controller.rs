//! The controller trait and the buildable spec catalog.

use crate::aimd::AimdSlo;
use crate::budget::BudgetTracking;
use crate::model_driven::ModelDriven;
use crate::observation::{BinObservation, RateDecision};

/// An online sampling-rate controller.
///
/// The monitor calls [`observe`](RateController::observe) exactly once per
/// closed bin, in bin order, and applies the returned decision to the
/// controlled lane before the next bin's packets arrive. Implementations
/// must be pure functions of the observation stream — no clocks, no RNG —
/// so the whole control loop stays reproducible under pinned seeds.
pub trait RateController: Send + std::fmt::Debug {
    /// Stable short name, e.g. `"model-driven"`.
    fn name(&self) -> &'static str;

    /// Consume one bin's feedback and decide the next bin's rate.
    fn observe(&mut self, observation: &BinObservation) -> RateDecision;

    /// Forget all accumulated state, as if freshly built.
    fn reset(&mut self);
}

/// Buildable description of a controller, mirroring `SamplerSpec` /
/// `TopKSpec` in `flowrank-monitor`: plain `Copy` data, so a controlled
/// measurement is fully described by `(workload, seeds, ControllerSpec)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControllerSpec {
    /// Invert the paper's optimal-rate model on observed top-t sizes.
    ModelDriven {
        /// Per-pair misranking probability to stay below.
        target_misranking: f64,
        /// Lower rate bound.
        min_rate: f64,
        /// Upper rate bound.
        max_rate: f64,
        /// Rate for bin 0, before any feedback exists.
        initial_rate: f64,
    },
    /// Additive-increase / multiplicative-decrease on an accuracy SLO.
    AimdSlo {
        /// Swapped-pair fraction the lane must stay below.
        target_fraction: f64,
        /// Hysteresis: only decrease once error falls below
        /// `target_fraction * hysteresis`.
        hysteresis: f64,
        /// Additive rate step on SLO violation.
        increase: f64,
        /// Multiplicative factor (< 1) applied when comfortably under SLO.
        decrease: f64,
        /// Lower rate bound.
        min_rate: f64,
        /// Upper rate bound.
        max_rate: f64,
        /// Rate for bin 0, before any feedback exists.
        initial_rate: f64,
    },
    /// Track a kept-packets-per-bin budget multiplicatively.
    BudgetTracking {
        /// Kept-packet budget per bin the controller steers toward.
        budget_per_bin: u64,
        /// Lower rate bound.
        min_rate: f64,
        /// Upper rate bound.
        max_rate: f64,
        /// Rate for bin 0, before any feedback exists.
        initial_rate: f64,
    },
}

impl ControllerSpec {
    /// Model-driven controller at catalog defaults: 5% per-pair misranking
    /// target, rates in `[0.001, 1.0]`, starting at 10%.
    pub fn model_driven() -> Self {
        Self::ModelDriven {
            target_misranking: 0.05,
            min_rate: 0.001,
            max_rate: 1.0,
            initial_rate: 0.1,
        }
    }

    /// AIMD controller at catalog defaults: 10% swapped-pair SLO with a
    /// 0.5 hysteresis band, +0.02 increase, ×0.85 decrease.
    pub fn aimd_slo() -> Self {
        Self::AimdSlo {
            target_fraction: 0.10,
            hysteresis: 0.5,
            increase: 0.02,
            decrease: 0.85,
            min_rate: 0.001,
            max_rate: 1.0,
            initial_rate: 0.1,
        }
    }

    /// Budget-tracking controller at catalog defaults: 500 kept packets
    /// per bin, rates in `[0.001, 1.0]`, starting at 10%.
    pub fn budget_tracking() -> Self {
        Self::BudgetTracking {
            budget_per_bin: 500,
            min_rate: 0.001,
            max_rate: 1.0,
            initial_rate: 0.1,
        }
    }

    /// Every catalog controller at its default parameters.
    pub fn catalog() -> Vec<Self> {
        vec![
            Self::model_driven(),
            Self::aimd_slo(),
            Self::budget_tracking(),
        ]
    }

    /// Catalog controller by its stable name, `None` if unknown.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "model-driven" => Some(Self::model_driven()),
            "aimd-slo" => Some(Self::aimd_slo()),
            "budget-tracking" => Some(Self::budget_tracking()),
            _ => None,
        }
    }

    /// Stable short name of the controller discipline.
    pub fn name(&self) -> &'static str {
        match self {
            Self::ModelDriven { .. } => "model-driven",
            Self::AimdSlo { .. } => "aimd-slo",
            Self::BudgetTracking { .. } => "budget-tracking",
        }
    }

    /// One-line human description for catalog listings.
    pub fn description(&self) -> &'static str {
        match self {
            Self::ModelDriven { .. } => {
                "inverts the paper's optimal-rate model on observed top-t sizes"
            }
            Self::AimdSlo { .. } => {
                "additive-increase/multiplicative-decrease on a swapped-pair SLO"
            }
            Self::BudgetTracking { .. } => {
                "multiplicative kept-packet budget tracking at monitor level"
            }
        }
    }

    /// Rate the controlled lane runs during bin 0, before any feedback.
    pub fn initial_rate(&self) -> f64 {
        match *self {
            Self::ModelDriven { initial_rate, .. }
            | Self::AimdSlo { initial_rate, .. }
            | Self::BudgetTracking { initial_rate, .. } => initial_rate,
        }
    }

    /// Build the controller this spec describes.
    pub fn build(&self) -> Box<dyn RateController + Send> {
        match *self {
            Self::ModelDriven {
                target_misranking,
                min_rate,
                max_rate,
                initial_rate,
            } => Box::new(ModelDriven::new(
                target_misranking,
                min_rate,
                max_rate,
                initial_rate,
            )),
            Self::AimdSlo {
                target_fraction,
                hysteresis,
                increase,
                decrease,
                min_rate,
                max_rate,
                initial_rate,
            } => Box::new(AimdSlo::new(
                target_fraction,
                hysteresis,
                increase,
                decrease,
                min_rate,
                max_rate,
                initial_rate,
            )),
            Self::BudgetTracking {
                budget_per_bin,
                min_rate,
                max_rate,
                initial_rate,
            } => Box::new(BudgetTracking::new(
                budget_per_bin,
                min_rate,
                max_rate,
                initial_rate,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_round_trips_by_name() {
        for spec in ControllerSpec::catalog() {
            assert_eq!(ControllerSpec::by_name(spec.name()), Some(spec));
            assert_eq!(spec.build().name(), spec.name());
            assert!(!spec.description().is_empty());
        }
        assert_eq!(ControllerSpec::by_name("nonsense"), None);
    }

    #[test]
    fn initial_rate_matches_spec_field() {
        assert_eq!(ControllerSpec::model_driven().initial_rate(), 0.1);
        assert_eq!(ControllerSpec::aimd_slo().initial_rate(), 0.1);
        assert_eq!(ControllerSpec::budget_tracking().initial_rate(), 0.1);
    }

    #[test]
    fn built_controllers_are_deterministic_replicas() {
        // Same observation stream into two fresh builds of the same spec
        // must produce identical decision streams (the crate's contract).
        for spec in ControllerSpec::catalog() {
            let mut a = spec.build();
            let mut b = spec.build();
            for bin_index in 0..20u64 {
                let observation = BinObservation {
                    bin_index,
                    applied_rate: 0.1,
                    packets: 1000 + bin_index * 37,
                    flows: 50,
                    kept_packets: 90 + bin_index * 11,
                    ranking_swaps: bin_index % 4,
                    ranking_pairs: 9,
                    missed_top_flows: 0,
                    top_churn: 0.2,
                    top_sizes: vec![400, 300, 200, 120, 80, 40, 20, 10, 6, 4, 3],
                };
                assert_eq!(a.observe(&observation), b.observe(&observation));
            }
        }
    }
}

//! Figures 4–9: the general ranking metric versus sampling rate, sweeping the
//! number of top flows (Figs. 4–5), the Pareto shape (Figs. 6–7) and the
//! total number of flows (Figs. 8–9), for both flow definitions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flowrank_bench::{BETA_VALUES, N_FACTORS, TOP_T_VALUES};
use flowrank_core::Scenario;

const BENCH_RATES: [f64; 3] = [0.001, 0.01, 0.1];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_to_09_ranking");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("fig04_top_t_sweep_5tuple", |b| {
        let scenario = Scenario::sprint_five_tuple(1.5);
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &TOP_T_VALUES {
                for &p in &BENCH_RATES {
                    acc += scenario.ranking_model(t).mean_swapped_pairs(p);
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("fig05_top_t_sweep_prefix24", |b| {
        let scenario = Scenario::sprint_prefix24(1.5);
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &TOP_T_VALUES {
                for &p in &BENCH_RATES {
                    acc += scenario.ranking_model(t).mean_swapped_pairs(p);
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("fig06_07_beta_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &beta in &BETA_VALUES {
                for &p in &BENCH_RATES {
                    acc += Scenario::sprint_five_tuple(beta)
                        .ranking_model(10)
                        .mean_swapped_pairs(p);
                    acc += Scenario::sprint_prefix24(beta)
                        .ranking_model(10)
                        .mean_swapped_pairs(p);
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("fig08_09_nflows_sweep", |b| {
        let five = Scenario::sprint_five_tuple(1.5);
        let prefix = Scenario::sprint_prefix24(1.5);
        b.iter(|| {
            let mut acc = 0.0;
            for &factor in &N_FACTORS {
                for &p in &BENCH_RATES {
                    acc += five
                        .with_flow_count_factor(factor)
                        .ranking_model(10)
                        .mean_swapped_pairs(p);
                    acc += prefix
                        .with_flow_count_factor(factor)
                        .ranking_model(10)
                        .mean_swapped_pairs(p);
                }
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

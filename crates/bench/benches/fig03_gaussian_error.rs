//! Figure 3: absolute error of the Gaussian approximation at p = 1% over a
//! log grid of flow-size pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flowrank_bench::size_grid_log;
use flowrank_core::gaussian::gaussian_absolute_error;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_gaussian_error");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("error_surface_13x13", |b| {
        let sizes = size_grid_log(13);
        b.iter(|| {
            let mut acc = 0.0;
            for &s1 in &sizes {
                for &s2 in &sizes {
                    acc += gaussian_absolute_error(s1, s2, 0.01);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

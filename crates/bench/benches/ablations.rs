//! Ablation benches for the design choices called out in DESIGN.md:
//! exact vs Gaussian pairwise model, random vs periodic sampling, top-k flow
//! memories fed with sampled traffic, the TCP sequence-number estimator, and
//! the adaptive-rate sampler.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flowrank_core::{misranking_probability_exact, misranking_probability_gaussian};
use flowrank_net::{FiveTuple, FlowKey, FlowTable, Timestamp};
use flowrank_sampling::seqno::SeqnoSizeEstimator;
use flowrank_sampling::{
    sample_and_classify, AdaptiveRateSampler, PacketSampler, PeriodicSampler, RandomSampler,
};
use flowrank_stats::rng::{Pcg64, SeedableRng};
use flowrank_topk::{ExactTopK, SampleAndHold, SortedListMemory, SpaceSaving, TopKTracker};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

fn trace() -> Vec<flowrank_net::PacketRecord> {
    let flows = SprintModel::small(60.0, 80.0).generate_flows(9);
    synthesize_packets(&flows, &SynthesisConfig::default(), 9)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    group.bench_function("ablation_exact_vs_gaussian_pairwise", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in (100u64..1000).step_by(100) {
                acc += misranking_probability_exact(s, s + 50, 0.05);
                acc += misranking_probability_gaussian(s as f64, s as f64 + 50.0, 0.05);
            }
            black_box(acc)
        })
    });

    let packets = trace();

    group.bench_function("ablation_random_vs_periodic", |b| {
        b.iter(|| {
            let mut rng = Pcg64::seed_from_u64(1);
            let mut random = RandomSampler::new(0.01);
            let mut periodic = PeriodicSampler::with_rate(0.01).with_random_phase();
            let a: FlowTable<FiveTuple> = sample_and_classify(&packets, &mut random, &mut rng);
            let b_ = sample_and_classify::<FiveTuple, _>(&packets, &mut periodic, &mut rng);
            black_box((a.flow_count(), b_.flow_count()))
        })
    });

    group.bench_function("ablation_topk_under_sampling", |b| {
        b.iter(|| {
            let mut rng = Pcg64::seed_from_u64(2);
            let mut sampler = RandomSampler::new(0.1);
            let mut exact = ExactTopK::new();
            let mut sorted = SortedListMemory::new(256);
            let mut sah = SampleAndHold::new(0.01, 256);
            let mut space = SpaceSaving::new(256);
            for packet in &packets {
                if sampler.keep(packet, &mut rng) {
                    let key = FiveTuple::from_packet(packet);
                    exact.observe(&key, &mut rng);
                    sorted.observe(&key, &mut rng);
                    sah.observe(&key, &mut rng);
                    space.observe(&key, &mut rng);
                }
            }
            black_box((
                exact.top(10).len(),
                sorted.top(10).len(),
                sah.top(10).len(),
                space.top(10).len(),
            ))
        })
    });

    group.bench_function("ablation_seqno_estimator", |b| {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut sampler = RandomSampler::new(0.02);
        let sampled: FlowTable<FiveTuple> = sample_and_classify(&packets, &mut sampler, &mut rng);
        let estimator = SeqnoSizeEstimator::new(0.02, 500.0);
        b.iter(|| {
            let total: f64 = sampled
                .iter()
                .map(|(_, s)| estimator.estimate(s).packets)
                .sum();
            black_box(total)
        })
    });

    group.bench_function("ablation_adaptive_rate", |b| {
        b.iter(|| {
            let mut rng = Pcg64::seed_from_u64(4);
            let mut sampler = AdaptiveRateSampler::new(0.1, 500, Timestamp::from_secs_f64(10.0));
            let kept = packets.iter().filter(|p| sampler.keep(p, &mut rng)).count();
            black_box(kept)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figures 12–16: trace-driven sampling simulations (Sprint-like ranking and
//! detection, Abilene-like ranking), at a reduced trace scale so the bench
//! finishes quickly; the `reproduce` binary runs the larger versions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flowrank_net::FlowDefinition;
use flowrank_sim::{abilene_experiment, sprint_experiment};

const SCALE: f64 = 0.002;
const RUNS: usize = 2;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_to_16_trace_driven");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    group.bench_function("fig12_14_sprint_5tuple", |b| {
        b.iter(|| {
            let result = sprint_experiment(FlowDefinition::FiveTuple, 60.0, SCALE, RUNS, 1).run();
            black_box(result.series.len())
        })
    });

    group.bench_function("fig13_15_sprint_prefix24", |b| {
        b.iter(|| {
            let result = sprint_experiment(FlowDefinition::PREFIX24, 60.0, SCALE, RUNS, 2).run();
            black_box(result.series.len())
        })
    });

    group.bench_function("fig16_abilene", |b| {
        b.iter(|| {
            let result = abilene_experiment(SCALE, RUNS, 3).run();
            black_box(result.series.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

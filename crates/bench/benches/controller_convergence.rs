//! Closed-loop control overhead: one convergence run per controller over
//! the flash-crowd scenario, so `BENCH_trajectory.ndjson` tracks the cost
//! of the whole loop — streamed synthesis, a controlled lane, per-bin
//! observation assembly, the controller step, and the offline-optimal
//! comparison from `core::optimal` — per controller discipline.
//!
//! Each line processes the identical packet stream under the identical
//! monitor shape (one controlled lane, no static grid), so differences are
//! attributable to the controller alone; `model-driven` additionally pays
//! the solver inversion every bin.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use flowrank_monitor::{ControllerSpec, SamplerSpec};
use flowrank_net::FlowDefinition;
use flowrank_sim::{run_convergence, ConvergenceConfig};
use flowrank_trace::Workload;

/// Seeds shared with the conformance and convergence goldens.
const TRACE_SEED: u64 = 0x5EED_2026;
const LANE_SEED: u64 = 0xACE5_0001;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_convergence");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let workload = Workload::flash_crowd();
    let packet_count = workload.synthesize(TRACE_SEED).len() as u64;
    group.throughput(Throughput::Elements(packet_count));

    for controller in ControllerSpec::catalog() {
        let config = ConvergenceConfig {
            workload,
            controller,
            sampler: SamplerSpec::Random { rate: 0.1 },
            flow_definition: FlowDefinition::FiveTuple,
            bin_seconds: 60.0,
            top_t: 8,
            trace_seed: TRACE_SEED,
            lane_seed: LANE_SEED,
            target_misranking: 0.05,
            min_rate: 0.001,
        };
        group.bench_function(controller.name(), |b| {
            b.iter(|| {
                let result = run_convergence(black_box(&config));
                black_box(result.digest)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

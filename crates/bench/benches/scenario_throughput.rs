//! Per-scenario throughput: the same monitor grid pushed over every
//! workload of the scenario catalog, so `BENCH_trajectory.ndjson` tracks
//! how pipeline performance varies with traffic *shape* — elephant-dominated
//! heavy tails, floods of single-packet flows, key-space sweeps — not just
//! the one Sprint-like mix the `throughput` bench uses.
//!
//! Every scenario runs the identical configuration (two rates × five runs,
//! 60-second bins, space-saving backend), so differences between bench
//! lines are attributable to the traffic alone: flow-table occupancy, keys
//! per packet, sampler skip lengths and top-k eviction pressure.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use flowrank_monitor::{Monitor, SamplerSpec, TopKSpec};
use flowrank_net::Timestamp;
use flowrank_trace::Workload;

/// One seed for every scenario: the bench compares shapes, not seeds.
const TRACE_SEED: u64 = 2_026;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for workload in Workload::catalog() {
        let batch = workload.synthesize_batch(TRACE_SEED);
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_function(workload.name(), |b| {
            b.iter(|| {
                let mut monitor = Monitor::builder()
                    .sampler(SamplerSpec::Random { rate: 0.01 })
                    .rates(&[0.01, 0.1])
                    .runs(5)
                    .topk(TopKSpec::SpaceSaving { capacity: 64 })
                    .bin_length(Timestamp::from_secs_f64(60.0))
                    .top_t(10)
                    .seed(TRACE_SEED)
                    .build();
                let reports = monitor.run_batch(&batch);
                black_box(
                    reports
                        .iter()
                        .flat_map(|r| r.lanes.iter())
                        .map(|lane| lane.outcome.ranking_swaps)
                        .sum::<u64>(),
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

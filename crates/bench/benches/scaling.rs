//! Multi-core scaling leg: the monitor's headline runs × rates grid at a
//! worker-pool width chosen on the command line, e.g.
//!
//! ```text
//! cargo bench -p flowrank-bench --bench scaling -- --threads 4
//! ```
//!
//! `scripts/bench_snapshot.sh` sweeps `--threads {1, 2, 4}` and every
//! result line carries a `threads` field, so `BENCH_throughput.json` and
//! `BENCH_trajectory.ndjson` record the scaling curve — threads(1) runs the
//! serial engine (the zero-overhead baseline), threads(n > 1) the pipelined
//! worker runtime — rather than a single-core point. The workloads mirror
//! `throughput.rs`'s `push_batch_multi_run` and `drive_end_to_end` benches
//! (same flows, same grid, same seeds) so serial numbers are directly
//! comparable across the two files; monitor construction (pool spawn +
//! teardown) is inside the timed routine, matching the convention there.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use flowrank_monitor::{Monitor, RateCurve, SamplerSpec};
use flowrank_net::{FlowDefinition, PacketBatch, Timestamp};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig, SynthesisStream};

/// The experiment grid, identical to `throughput.rs`'s fan-out benches.
const FAN_OUT_RATES: [f64; 4] = [0.001, 0.01, 0.1, 0.5];
const FAN_OUT_RUNS: usize = 30;
const FAN_OUT_SEED: u64 = 2026;

fn monitor(threads: usize) -> Monitor {
    Monitor::builder()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&FAN_OUT_RATES)
        .runs(FAN_OUT_RUNS)
        .top_t(10)
        .seed(FAN_OUT_SEED)
        .bin_length(Timestamp::ZERO)
        .threads(threads)
        .build()
}

fn bench(c: &mut Criterion) {
    let threads = c.threads();
    let flows = SprintModel::small(30.0, 100.0).generate_flows(21);
    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 21);
    let batch = PacketBatch::from_records(&packets);

    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(packets.len() as u64))
        .thread_count(threads);

    // Whole-trace batch replay: bin-sized segments fan out to the worker
    // pool, so this is the dispatch path end to end (ingest → SPSC queues →
    // shard workers → sequencer).
    group.bench_function("push_batch_multi_run", |b| {
        b.iter(|| {
            let mut monitor = monitor(threads);
            let reports = monitor.run_batch(&batch);
            let total_swaps: u64 = reports
                .iter()
                .flat_map(|r| r.lanes.iter())
                .map(|lane| lane.outcome.ranking_swaps)
                .sum();
            black_box(total_swaps)
        })
    });

    // The bounded-memory pipeline: windowed synthesis overlaps with worker
    // classification, the online curve aggregates each bin as it seals.
    group.bench_function("drive_end_to_end", |b| {
        b.iter(|| {
            let mut monitor = monitor(threads);
            let mut source = SynthesisStream::new(&flows, &SynthesisConfig::default(), 21);
            let mut curve = RateCurve::new();
            let summary = monitor.drive(&mut source, &mut curve);
            black_box((summary.packets, curve.points().len()))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

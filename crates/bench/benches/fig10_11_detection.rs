//! Figures 10–11: the detection metric versus sampling rate for both flow
//! definitions, sweeping the number of top flows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flowrank_bench::TOP_T_VALUES;
use flowrank_core::Scenario;

const BENCH_RATES: [f64; 3] = [0.001, 0.01, 0.1];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_11_detection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("fig10_detection_5tuple", |b| {
        let scenario = Scenario::sprint_five_tuple(1.5);
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &TOP_T_VALUES {
                for &p in &BENCH_RATES {
                    acc += scenario.detection_model(t).mean_swapped_pairs(p);
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("fig11_detection_prefix24", |b| {
        let scenario = Scenario::sprint_prefix24(1.5);
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &TOP_T_VALUES {
                for &p in &BENCH_RATES {
                    acc += scenario.detection_model(t).mean_swapped_pairs(p);
                }
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Multi-tenant fleet scaling leg: the whole fleet scenario driven through
//! one `flowrank-fleet` slab at a tenant count chosen on the command line,
//! e.g.
//!
//! ```text
//! cargo bench -p flowrank-bench --bench fleet_scaling -- --tenants 1000
//! ```
//!
//! `scripts/bench_snapshot.sh` sweeps `--tenants {1, 100, 1000}`. The fleet
//! scenario holds the *aggregate* load at catalog scale however many
//! tenants share it, so the sweep prices the per-tenant overhead of the
//! slab itself — demux, tenant-affine routing, ordered delivery — rather
//! than multiplying traffic: the headline claim (hosting a monitor in a
//! fleet costs a fraction of running it standalone) falls straight out of
//! the `melem_per_s` column staying flat as `tenants` grows. Each bench
//! name carries its tenant count (`fleet_drive_100_tenants`); after the
//! timed legs the bench appends one extra `BENCH_JSON` line with the
//! process's peak RSS (`VmHWM`, Linux), so the memory side of the
//! per-tenant budget contract rides the same trajectory file. The
//! `fleet_drive_budget_*` twin runs every tenant under a 1024-flow budget —
//! its RSS is the bounded configuration the serving story relies on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use flowrank_fleet::{FleetBuilder, FleetSink};
use flowrank_monitor::{BinReport, MonitorBuilder, SamplerSpec};
use flowrank_net::{FlowDefinition, TenantId, Timestamp};
use flowrank_trace::FleetScenario;

const SEED: u64 = 2026;
/// Per-tenant flow-table budget of the bounded leg.
const BUDGET_FLOWS: usize = 1024;

/// Reports are not the product here; the fleet's own counters are.
struct Discard;

impl FleetSink for Discard {
    fn accept(&mut self, _tenant: TenantId, _report: &BinReport) {}
}

/// Parses `--tenants N` / `--tenants=N` from the bench binary's argv
/// (default 100). Mirrors the shim's own `--threads` parsing: a label flag
/// must never fail the run.
fn parse_tenants() -> u32 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--tenants" {
            args.next()
        } else {
            arg.strip_prefix("--tenants=").map(str::to_string)
        };
        if let Some(n) = value.and_then(|v| v.parse::<u32>().ok()) {
            return n.max(1);
        }
    }
    100
}

/// The per-tenant monitor template: a light grid (two rates × two runs) so
/// the sweep prices the slab, not the lane fan-out.
fn template() -> MonitorBuilder {
    MonitorBuilder::new()
        .flow_definition(FlowDefinition::FiveTuple)
        .sampler(SamplerSpec::Random { rate: 0.01 })
        .rates(&[0.01, 0.1])
        .runs(2)
        .top_t(10)
        .bin_length(Timestamp::from_secs_f64(60.0))
}

fn fleet(scenario: &FleetScenario, budget: Option<usize>) -> flowrank_fleet::Fleet {
    let mut builder = FleetBuilder::new(scenario.tenants)
        .monitor(template())
        .seed(SEED)
        .threads(std::thread::available_parallelism().map_or(1, |n| n.get()));
    if let Some(flows) = budget {
        builder = builder.flow_budget(flows);
    }
    builder.build()
}

fn drive_once(scenario: &FleetScenario, budget: Option<usize>) -> u64 {
    let mut slab = fleet(scenario, budget);
    let mut stream = scenario.stream(SEED);
    let summary = slab.drive(&mut stream, &mut Discard);
    summary.packets
}

fn bench(c: &mut Criterion) {
    let tenants = parse_tenants();
    let scenario = FleetScenario::new(tenants);
    // One untimed drive pins the per-iteration element count (the merged
    // stream's packet total is a pure function of scenario + seed).
    let packets = drive_once(&scenario, None);

    let mut group = c.benchmark_group("fleet_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(packets));

    group.bench_function(&format!("fleet_drive_{tenants}_tenants"), |b| {
        b.iter(|| black_box(drive_once(&scenario, None)))
    });
    group.bench_function(&format!("fleet_drive_budget_{tenants}_tenants"), |b| {
        b.iter(|| black_box(drive_once(&scenario, Some(BUDGET_FLOWS))))
    });

    group.finish();
    record_peak_rss(tenants);
}

/// Appends the process's peak resident set (`VmHWM`) as one extra
/// `BENCH_JSON` line, schema-compatible with the shim's output plus a
/// `peak_rss_kib` field — the memory axis of the tenant sweep.
fn record_peak_rss(tenants: u32) {
    use std::io::Write;
    let (Ok(path), Some(kib)) = (std::env::var("BENCH_JSON"), peak_rss_kib()) else {
        return;
    };
    let line = format!(
        "{{\"group\":\"fleet_scaling\",\"name\":\"fleet_peak_rss_{tenants}_tenants\",\"threads\":1,\"mean_ns\":0.0,\"std_ns\":0.0,\"samples\":1,\"melem_per_s\":null,\"peak_rss_kib\":{kib}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = written {
        eprintln!("BENCH_JSON append to {path} failed: {error}");
    }
}

/// Peak resident set size in KiB from `/proc/self/status` (Linux); `None`
/// where procfs is absent, which simply skips the RSS line.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

criterion_group!(benches, bench);
criterion_main!(benches);

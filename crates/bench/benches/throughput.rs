//! Component throughput benches: packet classification, sampling, pcap
//! encode/decode and the heavy-hitter trackers, on a Sprint-like packet
//! stream. These are the "is the substrate fast enough" numbers rather than
//! figure reproductions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use flowrank_net::pcap::{pcap_bytes_to_records, records_to_pcap_bytes};
use flowrank_net::{FiveTuple, FlowTable};
use flowrank_sampling::{PacketSampler, RandomSampler};
use flowrank_stats::rng::{Pcg64, SeedableRng};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig};

fn bench(c: &mut Criterion) {
    let flows = SprintModel::small(30.0, 100.0).generate_flows(21);
    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 21);

    let mut group = c.benchmark_group("throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(packets.len() as u64));

    group.bench_function("classify_5tuple", |b| {
        b.iter(|| {
            let mut table: FlowTable<FiveTuple> = FlowTable::with_capacity(4096);
            for p in &packets {
                table.observe(p);
            }
            black_box(table.flow_count())
        })
    });

    group.bench_function("random_sampling_1pct", |b| {
        b.iter(|| {
            let mut rng = Pcg64::seed_from_u64(5);
            let mut sampler = RandomSampler::new(0.01);
            let kept = packets.iter().filter(|p| sampler.keep(p, &mut rng)).count();
            black_box(kept)
        })
    });

    group.bench_function("pcap_encode", |b| {
        b.iter(|| black_box(records_to_pcap_bytes(&packets).unwrap().len()))
    });

    let pcap = records_to_pcap_bytes(&packets).unwrap();
    group.bench_function("pcap_decode", |b| {
        b.iter(|| black_box(pcap_bytes_to_records(&pcap).unwrap().len()))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

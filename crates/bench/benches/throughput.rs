//! Component throughput benches: packet classification, sampling, pcap
//! encode/decode and the heavy-hitter trackers, on a Sprint-like packet
//! stream — plus the headline comparison of this redesign: the legacy
//! per-run ground-truth reclassification path against the streaming
//! monitor's shared-ground-truth fan-out for the same runs × rates grid.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use flowrank_monitor::{DrivePolicy, Monitor, RateCurve, SamplerSpec};
use flowrank_net::pcap::{
    pcap_bytes_to_batch, pcap_bytes_to_records, records_to_pcap_bytes, records_to_pcap_bytes_into,
};
use flowrank_net::{FiveTuple, FlowDefinition, FlowKey, FlowTable, PacketBatch};
use flowrank_sampling::{PacketSampler, RandomSampler};
use flowrank_sim::engine::run_bin_random_sampling;
use flowrank_sim::{FaultPlan, FaultySource, SourceFault};
use flowrank_stats::rng::{derive_seeds, Pcg64, SeedableRng};
use flowrank_trace::{synthesize_packets, SprintModel, SynthesisConfig, SynthesisStream};

/// The experiment grid of the fan-out comparison (a scaled-down Sec. 8 run).
const FAN_OUT_RATES: [f64; 4] = [0.001, 0.01, 0.1, 0.5];
const FAN_OUT_RUNS: usize = 30;
const FAN_OUT_SEED: u64 = 2026;

fn bench(c: &mut Criterion) {
    let flows = SprintModel::small(30.0, 100.0).generate_flows(21);
    let packets = synthesize_packets(&flows, &SynthesisConfig::default(), 21);

    let mut group = c.benchmark_group("throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(packets.len() as u64));

    group.bench_function("classify_5tuple", |b| {
        b.iter(|| {
            let mut table: FlowTable<FiveTuple> = FlowTable::with_capacity(4096);
            for p in &packets {
                table.observe(p);
            }
            black_box(table.flow_count())
        })
    });

    // What the flow table used to be: a SipHash-hashed std::HashMap keyed
    // by the structural FiveTuple. Kept as a reference point for the
    // compact-key/FxHash speedup.
    group.bench_function("classify_5tuple_siphash_reference", |b| {
        b.iter(|| {
            let mut table: std::collections::HashMap<FiveTuple, u64> =
                std::collections::HashMap::with_capacity(4096);
            for p in &packets {
                *table.entry(FiveTuple::from_packet(p)).or_insert(0) += 1;
            }
            black_box(table.len())
        })
    });

    // Per-packet entry point: one virtual `keep` per packet (the sampler
    // itself runs its skip countdown, so RNG draws scale with kept packets).
    group.bench_function("random_sampling_1pct", |b| {
        b.iter(|| {
            let mut rng = Pcg64::seed_from_u64(5);
            let mut sampler = RandomSampler::new(0.01);
            let kept = packets.iter().filter(|p| sampler.keep(p, &mut rng)).count();
            black_box(kept)
        })
    });

    // Skip-based batch entry point: the sampler indexes straight to the
    // packets it keeps, so cost is O(p·n) instead of O(n).
    let sampling_batch = PacketBatch::from_records(&packets);
    group.bench_function("random_sampling_1pct_skip", |b| {
        let mut kept = Vec::new();
        b.iter(|| {
            let mut rng = Pcg64::seed_from_u64(5);
            let mut sampler = RandomSampler::new(0.01);
            kept.clear();
            sampler.keep_batch(
                &sampling_batch,
                0..sampling_batch.len(),
                &mut rng,
                &mut kept,
            );
            black_box(kept.len())
        })
    });

    // One bin, 30 runs × 4 rates, the old way: `run_bin` reclassifies the
    // ground truth and re-sorts the ranking on every single run.
    group.bench_function("multi_run_legacy_reclassify", |b| {
        b.iter(|| {
            let mut total_swaps = 0u64;
            for &rate in &FAN_OUT_RATES {
                let seeds = derive_seeds(FAN_OUT_SEED ^ rate.to_bits(), FAN_OUT_RUNS);
                for &seed in &seeds {
                    let result = run_bin_random_sampling(
                        &packets,
                        FlowDefinition::FiveTuple,
                        rate,
                        10,
                        seed,
                    );
                    total_swaps += result.outcome.ranking_swaps;
                }
            }
            black_box(total_swaps)
        })
    });

    // The same grid through the streaming monitor: ground truth classified
    // and ranked once, 120 lanes scored against it. Produces identical
    // numbers (see flowrank-sim's equivalence test).
    group.bench_function("multi_run_shared_ground_truth", |b| {
        b.iter(|| {
            let mut monitor = Monitor::builder()
                .flow_definition(FlowDefinition::FiveTuple)
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&FAN_OUT_RATES)
                .runs(FAN_OUT_RUNS)
                .top_t(10)
                .seed(FAN_OUT_SEED)
                .bin_length(flowrank_net::Timestamp::ZERO)
                .build();
            let reports = monitor.run_trace(&packets);
            let total_swaps: u64 = reports
                .iter()
                .flat_map(|r| r.lanes.iter())
                .map(|lane| lane.outcome.ranking_swaps)
                .sum();
            black_box(total_swaps)
        })
    });

    // The same grid with whole-bin worker threads (one shard per CPU):
    // identical reports, wall-clock scaled by the available cores.
    group.bench_function("multi_run_shared_ground_truth_threads", |b| {
        b.iter(|| {
            let mut monitor = Monitor::builder()
                .flow_definition(FlowDefinition::FiveTuple)
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&FAN_OUT_RATES)
                .runs(FAN_OUT_RUNS)
                .top_t(10)
                .seed(FAN_OUT_SEED)
                .bin_length(flowrank_net::Timestamp::ZERO)
                .threads(0)
                .build();
            let reports = monitor.run_trace(&packets);
            let total_swaps: u64 = reports
                .iter()
                .flat_map(|r| r.lanes.iter())
                .map(|lane| lane.outcome.ranking_swaps)
                .sum();
            black_box(total_swaps)
        })
    });

    // The whole grid through one push_batch call on a prebuilt SoA batch —
    // what a zero-copy replay loop pays once decode has produced a batch.
    group.bench_function("push_batch_multi_run", |b| {
        let batch = PacketBatch::from_records(&packets);
        b.iter(|| {
            let mut monitor = Monitor::builder()
                .flow_definition(FlowDefinition::FiveTuple)
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&FAN_OUT_RATES)
                .runs(FAN_OUT_RUNS)
                .top_t(10)
                .seed(FAN_OUT_SEED)
                .bin_length(flowrank_net::Timestamp::ZERO)
                .build();
            let reports = monitor.run_batch(&batch);
            let total_swaps: u64 = reports
                .iter()
                .flat_map(|r| r.lanes.iter())
                .map(|lane| lane.outcome.ranking_swaps)
                .sum();
            black_box(total_swaps)
        })
    });

    // The same grid end to end through the source/sink pipeline: the trace
    // is synthesised window by window (never materialised) and the reports
    // aggregate online into the per-rate curve — the bounded-memory
    // configuration `Monitor::drive` exists for. Comparable head to head
    // with push_batch_multi_run: same flows, same grid, same lane seeds;
    // the delta is streamed synthesis + windowed pushes + the sink.
    group.bench_function("drive_end_to_end", |b| {
        b.iter(|| {
            let mut monitor = Monitor::builder()
                .flow_definition(FlowDefinition::FiveTuple)
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&FAN_OUT_RATES)
                .runs(FAN_OUT_RUNS)
                .top_t(10)
                .seed(FAN_OUT_SEED)
                .bin_length(flowrank_net::Timestamp::ZERO)
                .build();
            let mut source = SynthesisStream::new(&flows, &SynthesisConfig::default(), 21);
            let mut curve = RateCurve::new();
            let summary = monitor.drive(&mut source, &mut curve);
            black_box((summary.packets, curve.points().len()))
        })
    });

    // The same streamed grid through the fallible loop with a 1% injected
    // fault rate (malformed records and single idle polls absorbed by the
    // resilient policy): prices the recovery path's bookkeeping on the hot
    // loop head to head with drive_end_to_end. Zero sink backoff so the
    // bench measures the loop, not sleeps.
    group.bench_function("drive_faulty_source", |b| {
        b.iter(|| {
            let mut monitor = Monitor::builder()
                .flow_definition(FlowDefinition::FiveTuple)
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&FAN_OUT_RATES)
                .runs(FAN_OUT_RUNS)
                .top_t(10)
                .seed(FAN_OUT_SEED)
                .bin_length(flowrank_net::Timestamp::ZERO)
                .drive_policy(
                    DrivePolicy::resilient()
                        .sink_backoff(Duration::ZERO)
                        .sink_backoff_cap(Duration::ZERO),
                )
                .build();
            let plan = FaultPlan::seeded(
                0xFA17,
                4096,
                0.01,
                &[SourceFault::MalformedRecord, SourceFault::Stall],
            );
            let mut source = FaultySource::new(
                SynthesisStream::new(&flows, &SynthesisConfig::default(), 21),
                plan,
            );
            let mut curve = RateCurve::new();
            let stats = monitor.try_drive(&mut source, &mut curve).unwrap();
            black_box((stats.packets, stats.recoveries(), curve.points().len()))
        })
    });

    // The encode buffer is reused across iterations: the bench measures
    // encoding, not the allocator (the old fresh-Vec loop put a capture-sized
    // allocation in every sample and dominated the std-dev).
    group.bench_function("pcap_encode", |b| {
        let mut buffer = Vec::new();
        b.iter(|| black_box(records_to_pcap_bytes_into(&packets, &mut buffer).unwrap()))
    });

    let pcap = records_to_pcap_bytes(&packets).unwrap();
    group.bench_function("pcap_decode", |b| {
        b.iter(|| black_box(pcap_bytes_to_records(&pcap).unwrap().len()))
    });

    // Zero-copy decode into a reusable SoA batch: no per-packet frame
    // buffers, no PacketRecord materialisation.
    group.bench_function("decode_to_batch", |b| {
        let mut batch = PacketBatch::with_capacity(packets.len());
        b.iter(|| {
            batch.clear();
            black_box(pcap_bytes_to_batch(&pcap, &mut batch).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figures 1–2: optimal sampling rate surface for a target misranking
//! probability of 0.1% over a grid of flow-size pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use flowrank_bench::size_grid_log;
use flowrank_core::{optimal_sampling_rate, PairwiseModel};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_02_optimal_rate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("fig01_log_grid_gaussian", |b| {
        let sizes = size_grid_log(7);
        b.iter(|| {
            let mut acc = 0.0;
            for &s1 in &sizes {
                for &s2 in &sizes {
                    acc += optimal_sampling_rate(s1, s2, 1e-3, PairwiseModel::Gaussian, 1e-4);
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("fig02_linear_grid_exact", |b| {
        let sizes: Vec<u64> = (1..=5).map(|i| i * 200).collect();
        b.iter(|| {
            let mut acc = 0.0;
            for &s1 in &sizes {
                for &s2 in &sizes {
                    acc += optimal_sampling_rate(s1, s2, 1e-3, PairwiseModel::Exact, 1e-3);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Regenerates the data series behind every figure of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flowrank-bench --bin reproduce             # all figures, quick settings
//! cargo run --release -p flowrank-bench --bin reproduce -- --fig 4  # a single figure
//! cargo run --release -p flowrank-bench --bin reproduce -- --scale 1.0 --runs 30
//! cargo run --release -p flowrank-bench --bin reproduce -- --fig 12 --sampler stratified
//! cargo run --release -p flowrank-bench --bin reproduce -- --fig 12 --threads 8
//! cargo run --release -p flowrank-bench --bin reproduce -- --scenario ddos-flood
//! cargo run --release -p flowrank-bench --bin reproduce -- --scenario flash-crowd --controller model-driven
//! cargo run --release -p flowrank-bench --bin reproduce -- --input capture.pcap --runs 5
//! cargo run --release -p flowrank-bench --bin reproduce -- --fleet --tenants 100
//! cargo run --release -p flowrank-bench --bin reproduce -- --list
//! ```
//!
//! Output is CSV on stdout, one block per figure and line, directly
//! plottable. The `--scale` flag controls the flow-arrival-rate scale of the
//! trace-driven figures (12–16); the analytical figures (1–11) always use the
//! paper's full parameters. `--sampler` selects the sampling discipline of
//! the trace-driven Sprint figures at run time (`random`, `periodic`,
//! `stratified`, `flow`, `smart`, `adaptive` — the monitor fans any of them
//! out across the figure's rate grid). `--threads` caps the worker threads
//! of the trace-driven experiments (0 = one per CPU; the numbers are
//! bit-identical for every value). `--scenario <name>` runs the binned
//! multi-run experiment over one scenario of the workload catalog
//! (`heavy-tail`, `flash-crowd`, `ddos-flood`, `port-scan`, `rank-churn`,
//! `mixed`) instead of the figures; `--scale` then multiplies the
//! scenario's arrival rates (default 1.0 — catalog scale). The scenario
//! path is fully streamed: the workload synthesises window by window
//! through a packet source and `Monitor::drive` feeds the chosen report
//! sink, so peak memory is independent of trace length. `--output` selects
//! that sink: `summary` (default — the per-rate accuracy curve accumulated
//! online), `csv` (one row per bin × lane, streamed as bins close) or
//! `ndjson` (one JSON object per bin); with `csv`/`ndjson` the report
//! stream is the only thing on stdout — the banner and the closing rate
//! curve go to stderr so pipes parse cleanly. `--controller <name>` attaches
//! a closed-loop rate controller to the scenario path (`model-driven`,
//! `aimd-slo`, `budget-tracking`): one extra lane rides after the static
//! grid, retuned at every bin close, and its per-bin decision trail is
//! printed in `summary` mode and embedded in the `csv`/`ndjson` streams.
//! `--list` (or `--scenario help`) prints every scenario, sampler, top-k
//! backend and controller with a one-line description. `--input <path>`
//! streams a pcap capture from disk through the same monitor pipeline
//! (`--runs`, `--sampler`, `--threads` and `--output` apply); I/O and decode
//! failures — a missing file, bad magic, a record truncated mid-capture —
//! print a one-line diagnostic to stderr and exit with code 1 rather than
//! panicking. `--fleet --tenants <n>` runs the multi-tenant fleet scenario
//! instead: one `flowrank-fleet` slab hosts `n` monitors (catalog mixes,
//! diurnal envelopes, aggregate load held at catalog scale), the merged
//! tagged stream is demultiplexed in one pass, and the summary prints one
//! CSV row per tenant (packets, bins, evictions) plus fleet totals;
//! `--threads` sets the fleet's tenant-affine workers, `--budget <flows>`
//! caps every tenant's flow table. EXPERIMENTS.md records the settings used
//! for the committed results.

use flowrank_bench::{rate_grid, size_grid_log, BETA_VALUES, N_FACTORS, TOP_T_VALUES};
use flowrank_core::{
    gaussian::gaussian_absolute_error, optimal_sampling_rate, PairwiseModel, Scenario,
};
use flowrank_fleet::{FleetBuilder, FleetSink};
use flowrank_monitor::{
    BinReport, CsvSink, NdjsonSink, PcapBytesSource, RateCurve, ReportSink, Tee,
};
use flowrank_net::{FlowDefinition, TenantId, Timestamp};
use flowrank_sim::report::result_to_csv;
use flowrank_sim::{
    abilene_experiment, sprint_experiment_with_sampler, workload_builder,
    workload_controlled_monitor, workload_monitor, ControllerSpec, SamplerSpec,
};
use flowrank_trace::{FleetScenario, Workload};

/// Report sink selected with `--output` for the streamed scenario path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Output {
    /// Per-rate accuracy curve, accumulated online (the default).
    Summary,
    /// One CSV row per bin × lane, streamed as bins close.
    Csv,
    /// One JSON object per bin, streamed as bins close.
    Ndjson,
}

impl Output {
    fn by_name(name: &str) -> Option<Output> {
        match name {
            "summary" => Some(Output::Summary),
            "csv" => Some(Output::Csv),
            "ndjson" => Some(Output::Ndjson),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Options {
    figure: Option<u32>,
    scenario: Option<String>,
    /// Path of a pcap capture to stream instead of a synthetic trace.
    input: Option<String>,
    /// `None` until `--scale` is given: figures default to 0.02 (the quick
    /// setting), scenarios to 1.0 (catalog scale).
    scale: Option<f64>,
    runs: usize,
    sampler: SamplerSpec,
    threads: usize,
    output: Output,
    controller: Option<ControllerSpec>,
    /// `--fleet`: run the multi-tenant fleet scenario through one
    /// `flowrank-fleet` slab instead of the figures.
    fleet: bool,
    /// Tenants hosted by `--fleet` (the fleet aggregate stays at catalog
    /// scale however many there are).
    tenants: u32,
    /// Per-tenant flow-table budget in fleet mode (0 = unbounded).
    budget: usize,
}

impl Options {
    fn figure_scale(&self) -> f64 {
        self.scale.unwrap_or(0.02)
    }

    fn scenario_scale(&self) -> f64 {
        self.scale.unwrap_or(1.0)
    }
}

fn sampler_by_name(name: &str) -> Option<SamplerSpec> {
    // The rate of the template is irrelevant: the experiment retargets it to
    // every rate on the figure's grid.
    match name {
        "random" => Some(SamplerSpec::Random { rate: 0.01 }),
        "periodic" => Some(SamplerSpec::Periodic {
            rate: 0.01,
            random_phase: true,
        }),
        "stratified" => Some(SamplerSpec::Stratified { rate: 0.01 }),
        "flow" => Some(SamplerSpec::Flow { rate: 0.01 }),
        "smart" => Some(SamplerSpec::Smart { threshold: 100.0 }),
        "adaptive" => Some(SamplerSpec::Adaptive {
            initial_rate: 0.01,
            budget_per_interval: 10_000,
            interval: Timestamp::from_secs_f64(1.0),
        }),
        _ => None,
    }
}

/// One-line description per catalog scenario (`Workload` carries shape
/// parameters, not prose, so the prose lives with the CLI that lists it).
fn scenario_blurb(name: &str) -> &'static str {
    match name {
        "heavy-tail" => "Zipf-like heavy-tailed flow sizes on a stationary link",
        "flash-crowd" => "stationary base load with a mid-trace arrival spike onto hot prefixes",
        "ddos-flood" => "a flood of spoofed single-packet sources aimed at one victim",
        "port-scan" => "a horizontal scanner sweeping ports beneath background traffic",
        "rank-churn" => "the heavy-hitter set rotates completely every bin",
        "mixed" => "all catalog behaviours layered onto one link",
        _ => "catalog scenario",
    }
}

/// Prints everything the CLI can be asked to run, one line per name, then
/// exits. Reached through `--list`, `--scenario help`, or any unknown
/// `--scenario`/`--sampler`/`--controller` name.
fn print_catalog() {
    println!("scenarios (--scenario <name>):");
    for workload in Workload::catalog() {
        println!(
            "  {:<16} {}",
            workload.name(),
            scenario_blurb(workload.name())
        );
    }
    println!("samplers (--sampler <name>):");
    for (name, blurb) in [
        ("random", "independent Bernoulli coin flip per packet"),
        ("periodic", "every k-th packet, with a random phase"),
        ("stratified", "one uniform draw per k-packet stratum"),
        (
            "flow",
            "hash-based flow sampling: every packet of a kept flow",
        ),
        ("smart", "size-biased sampling that favours large flows"),
        (
            "adaptive",
            "multiplicative rate adaptation to a per-interval sample budget",
        ),
    ] {
        println!("  {name:<16} {blurb}");
    }
    println!("top-k backends (exercised by the conformance matrix):");
    for (name, blurb) in [
        ("exact", "full hash map, exact per-flow counts"),
        (
            "sorted-list",
            "bounded sorted list with least-flow eviction",
        ),
        ("space-saving", "Space-Saving bounded counter summary"),
        (
            "sample-and-hold",
            "probabilistic entry, exact counting once held",
        ),
        (
            "multistage-filter",
            "parallel hash stages gating a bounded memory",
        ),
    ] {
        println!("  {name:<16} {blurb}");
    }
    println!("controllers (--controller <name>):");
    for spec in ControllerSpec::catalog() {
        println!("  {:<16} {}", spec.name(), spec.description());
    }
    println!("fleet (--fleet --tenants <n>):");
    println!(
        "  fleet            every tenant gets a catalog scenario (round-robin) under a diurnal envelope; one slab, one decode pass"
    );
}

fn parse_args() -> Options {
    let mut options = Options {
        figure: None,
        scenario: None,
        input: None,
        scale: None,
        runs: 10,
        sampler: SamplerSpec::Random { rate: 0.01 },
        threads: 0,
        output: Output::Summary,
        controller: None,
        fleet: false,
        tenants: 8,
        budget: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                options.figure = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--list" => {
                print_catalog();
                std::process::exit(0);
            }
            "--scenario" => {
                options.scenario = args.get(i + 1).cloned();
                match options.scenario.as_deref() {
                    Some("help") => {
                        print_catalog();
                        std::process::exit(0);
                    }
                    Some(name) if Workload::by_name(name).is_none() => {
                        eprintln!("unknown scenario {name:?}; the catalog:");
                        print_catalog();
                        std::process::exit(2);
                    }
                    Some(_) => {}
                    None => {
                        eprintln!("--scenario requires a name; the catalog:");
                        print_catalog();
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--input" => {
                match args.get(i + 1) {
                    Some(path) => options.input = Some(path.clone()),
                    None => {
                        eprintln!("--input requires a pcap file path");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--scale" => {
                options.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .or(options.scale);
                i += 2;
            }
            "--runs" => {
                options.runs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(options.runs);
                i += 2;
            }
            "--sampler" => {
                match args.get(i + 1).map(|v| (v, sampler_by_name(v))) {
                    Some((_, Some(sampler))) => options.sampler = sampler,
                    Some((name, None)) => {
                        eprintln!("unknown sampler {name:?}; the catalog:");
                        print_catalog();
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--sampler requires a name; the catalog:");
                        print_catalog();
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--controller" => {
                match args.get(i + 1).map(|v| (v, ControllerSpec::by_name(v))) {
                    Some((_, Some(spec))) => options.controller = Some(spec),
                    Some((name, None)) => {
                        eprintln!("unknown controller {name:?}; the catalog:");
                        print_catalog();
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--controller requires a name; the catalog:");
                        print_catalog();
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--threads" => {
                options.threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(options.threads);
                i += 2;
            }
            "--fleet" => {
                options.fleet = true;
                i += 1;
            }
            "--tenants" => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(tenants) if tenants > 0 => options.tenants = tenants,
                    _ => {
                        eprintln!("--tenants requires a positive tenant count");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--budget" => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(budget) => options.budget = budget,
                    None => {
                        eprintln!("--budget requires a per-tenant flow count");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--output" => {
                match args.get(i + 1).and_then(|v| Output::by_name(v)) {
                    Some(output) => options.output = output,
                    None => {
                        eprintln!("--output requires one of: summary, csv, ndjson");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    options
}

fn wanted(options: &Options, figure: u32) -> bool {
    options.figure.is_none_or(|f| f == figure)
}

fn fig_optimal_rate(figure: u32, log_grid: bool) {
    println!("# Figure {figure}: optimal sampling rate, Pm,d = 0.1%");
    println!("s1_packets,s2_packets,optimal_rate_percent");
    let sizes: Vec<u64> = if log_grid {
        size_grid_log(13)
    } else {
        (1..=10).map(|i| i * 100).collect()
    };
    for &s1 in &sizes {
        for &s2 in &sizes {
            let rate = optimal_sampling_rate(s1, s2, 1e-3, PairwiseModel::Gaussian, 1e-4);
            println!("{s1},{s2},{:.4}", rate * 100.0);
        }
    }
    println!();
}

fn fig3_gaussian_error() {
    println!("# Figure 3: Gaussian approximation absolute error, p = 1%");
    println!("s1_packets,s2_packets,absolute_error");
    for &s1 in &size_grid_log(13) {
        for &s2 in &size_grid_log(13) {
            println!("{s1},{s2},{:.6}", gaussian_absolute_error(s1, s2, 0.01));
        }
    }
    println!();
}

fn fig_ranking_top_t(figure: u32, scenario: &Scenario) {
    println!(
        "# Figure {figure}: ranking metric vs sampling rate, {}",
        scenario.label
    );
    println!("top_t,rate_percent,mean_swapped_pairs");
    for &t in &TOP_T_VALUES {
        let model = scenario.ranking_model(t);
        for &p in &rate_grid() {
            println!("{t},{:.3},{:.6e}", p * 100.0, model.mean_swapped_pairs(p));
        }
    }
    println!();
}

fn fig_ranking_beta(figure: u32, prefix: bool) {
    let label = if prefix { "/24 prefix" } else { "5-tuple" };
    println!("# Figure {figure}: ranking metric vs sampling rate, varying beta, {label}, t = 10");
    println!("beta,rate_percent,mean_swapped_pairs");
    for &beta in &BETA_VALUES {
        let scenario = if prefix {
            Scenario::sprint_prefix24(beta)
        } else {
            Scenario::sprint_five_tuple(beta)
        };
        let model = scenario.ranking_model(10);
        for &p in &rate_grid() {
            println!(
                "{beta},{:.3},{:.6e}",
                p * 100.0,
                model.mean_swapped_pairs(p)
            );
        }
    }
    println!();
}

fn fig_ranking_nflows(figure: u32, prefix: bool) {
    let label = if prefix { "/24 prefix" } else { "5-tuple" };
    println!("# Figure {figure}: ranking metric vs sampling rate, varying N, {label}, t = 10, beta = 1.5");
    println!("n_flows,rate_percent,mean_swapped_pairs");
    let base = if prefix {
        Scenario::sprint_prefix24(1.5)
    } else {
        Scenario::sprint_five_tuple(1.5)
    };
    for &factor in &N_FACTORS {
        let scenario = base.with_flow_count_factor(factor);
        let model = scenario.ranking_model(10);
        for &p in &rate_grid() {
            println!(
                "{},{:.3},{:.6e}",
                scenario.n_flows,
                p * 100.0,
                model.mean_swapped_pairs(p)
            );
        }
    }
    println!();
}

fn fig_detection(figure: u32, scenario: &Scenario) {
    println!(
        "# Figure {figure}: detection metric vs sampling rate, {}",
        scenario.label
    );
    println!("top_t,rate_percent,mean_swapped_pairs");
    for &t in &TOP_T_VALUES {
        let model = scenario.detection_model(t);
        for &p in &rate_grid() {
            println!("{t},{:.3},{:.6e}", p * 100.0, model.mean_swapped_pairs(p));
        }
    }
    println!();
}

fn fig_trace(figure: u32, definition: FlowDefinition, detection: bool, options: &Options) {
    let kind = if detection { "detection" } else { "ranking" };
    for &bin_seconds in &[60.0, 300.0] {
        println!(
            "# Figure {figure}: trace-driven {kind} vs time, {definition}, top 10, {bin_seconds}-second bins, scale {}, {} runs, {} sampling",
            options.figure_scale(), options.runs, options.sampler.name()
        );
        let experiment = sprint_experiment_with_sampler(
            definition,
            bin_seconds,
            options.figure_scale(),
            options.runs,
            2026,
            options.sampler,
        )
        .with_threads(options.threads);
        let result = experiment.run();
        println!("{}", result_to_csv(&result, bin_seconds, detection));
    }
}

fn fig16_abilene(options: &Options) {
    println!(
        "# Figure 16: trace-driven ranking vs time, Abilene-like trace, top 10, 60-second bins, scale {}, {} runs",
        options.figure_scale(), options.runs
    );
    let result = abilene_experiment(options.figure_scale(), options.runs, 16)
        .with_threads(options.threads)
        .run();
    println!("{}", result_to_csv(&result, 60.0, false));
}

/// Streams the controlled lane's per-bin decision trail to stdout in
/// `summary` mode: one CSV row per bin as it closes (the `csv`/`ndjson`
/// sinks already embed the same trail in their own streams).
struct TrailPrinter;

impl ReportSink for TrailPrinter {
    fn accept(&mut self, report: &BinReport) {
        if let Some(trail) = &report.controller {
            println!(
                "{},{:.6},{:.6},{:.6},{:.6}",
                report.bin_index,
                trail.applied_rate,
                trail.decided_rate,
                trail.swapped_fraction,
                trail.top_churn
            );
        }
    }
}

/// Prints a one-line diagnostic to stderr and exits with code 1 — the CLI
/// contract for I/O and decode failures (no panic, no backtrace).
fn fail(message: std::fmt::Arguments) -> ! {
    eprintln!("reproduce: {message}");
    std::process::exit(1);
}

/// Streams a pcap capture from disk through the monitor pipeline — the
/// fallible `try_drive` path, so a missing file, bad magic, or a record
/// truncated mid-capture surfaces through [`fail`] instead of a panic.
fn run_input(path: &str, options: &Options) {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(error) => fail(format_args!("cannot read {path}: {error}")),
    };
    let chrome: fn(std::fmt::Arguments) = match options.output {
        Output::Summary => |args| println!("{args}"),
        Output::Csv | Output::Ndjson => |args| eprintln!("{args}"),
    };
    let definition = FlowDefinition::FiveTuple;
    chrome(format_args!(
        "# Input {path}: trace-driven ranking vs time, {definition}, top 10, 60-second bins, {} runs, {} sampling, {:?} output",
        options.runs,
        options.sampler.name(),
        options.output,
    ));
    let mut monitor = workload_monitor(
        definition,
        60.0,
        options.runs,
        2026,
        options.sampler,
        options.threads,
    );
    let mut source = match PcapBytesSource::new(&bytes) {
        Ok(source) => source,
        Err(error) => fail(format_args!("{path}: {error}")),
    };
    let mut curve = RateCurve::new();
    let stdout = std::io::stdout();
    let driven = match options.output {
        Output::Summary => monitor.try_drive(&mut source, &mut curve),
        Output::Csv => {
            let mut writer = CsvSink::new(stdout.lock());
            let driven = monitor.try_drive(&mut source, &mut Tee(&mut writer, &mut curve));
            if let Err(error) = writer.finish() {
                fail(format_args!("writing CSV to stdout: {error}"));
            }
            driven
        }
        Output::Ndjson => {
            let mut writer = NdjsonSink::new(stdout.lock());
            let driven = monitor.try_drive(&mut source, &mut Tee(&mut writer, &mut curve));
            if let Err(error) = writer.finish() {
                fail(format_args!("writing ndjson to stdout: {error}"));
            }
            driven
        }
    };
    let stats = match driven {
        Ok(stats) => stats,
        Err(error) => fail(format_args!("{path}: {error}")),
    };
    chrome(format_args!(
        "# {} packets in {} chunks -> {} bins",
        stats.packets, stats.chunks, stats.reports
    ));
    chrome(format_args!(
        "rate,bins,lane_observations,ranking_mean,ranking_std,detection_mean,detection_std"
    ));
    for point in curve.points() {
        chrome(format_args!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6}",
            point.rate,
            point.bins,
            point.observations,
            point.ranking_mean,
            point.ranking_std,
            point.detection_mean,
            point.detection_std
        ));
    }
}

/// Fleet mode discards per-bin reports: the per-tenant summary comes from
/// the fleet's own statistics, not from retained bins.
struct DiscardReports;

impl FleetSink for DiscardReports {
    fn accept(&mut self, _tenant: TenantId, _report: &BinReport) {}
}

/// Runs the multi-tenant fleet scenario through one `flowrank-fleet` slab:
/// `--tenants` monitors (each the single-scenario template with its own
/// derived seed), the merged tagged stream demultiplexed in one pass, and a
/// per-tenant summary row as each tenant's totals — the CLI face of the
/// fleet subsystem.
fn run_fleet(options: &Options) {
    let seed = 2026;
    let mut scenario = FleetScenario::new(options.tenants);
    scenario.aggregate_scale = options.scenario_scale();
    let workers = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.threads
    };
    // The template's own seed and threads are irrelevant: the fleet derives
    // a per-tenant seed and forces every tenant monitor serial.
    let template = workload_builder(
        FlowDefinition::FiveTuple,
        60.0,
        options.runs,
        seed,
        options.sampler,
        1,
    );
    let mut builder = FleetBuilder::new(options.tenants)
        .monitor(template)
        .seed(seed)
        .threads(workers);
    if options.budget > 0 {
        builder = builder.flow_budget(options.budget);
    }
    let mut fleet = builder.build();
    let mut stream = scenario.stream(seed);
    let summary = fleet.drive(&mut stream, &mut DiscardReports);
    println!(
        "# Scenario {}: {} tenants, aggregate scale {}, diurnal depth {} over {} phase groups, {} runs, {} sampling, {} workers, budget {}",
        scenario.name(),
        scenario.tenants,
        scenario.aggregate_scale,
        scenario.diurnal_depth,
        scenario.phase_groups,
        options.runs,
        options.sampler.name(),
        workers,
        if options.budget > 0 {
            format!("{} flows/tenant", options.budget)
        } else {
            "unbounded".to_string()
        },
    );
    println!("tenant,scenario,envelope,packets,bins,evictions");
    for stats in fleet.tenant_stats() {
        println!(
            "{},{},{:.4},{},{},{}",
            stats.tenant.0,
            scenario.tenant_workload(stats.tenant).name(),
            scenario.tenant_envelope(stats.tenant),
            stats.packets,
            stats.reports,
            stats.evictions,
        );
    }
    println!(
        "# fleet total: {} packets in {} windows -> {} bins, {} evictions",
        summary.packets, summary.windows, summary.reports, summary.evictions
    );
}

/// Runs the streamed multi-run experiment over one catalog scenario, for
/// both flow definitions: the workload synthesises window by window through
/// a packet source, `Monitor::drive` pushes it through the full rate grid,
/// and the `--output` sink renders bins as they close — nothing (trace or
/// report stream) is ever materialised.
fn run_scenario(name: &str, options: &Options) {
    let Some(workload) = Workload::by_name(name) else {
        let names: Vec<&str> = Workload::catalog().iter().map(|w| w.name()).collect();
        eprintln!("unknown scenario {name:?}; available: {}", names.join(", "));
        std::process::exit(2);
    };
    let scaled = workload.scaled(options.scenario_scale());
    let seed = 2026;
    // With a machine-readable sink on stdout, everything that is not the
    // stream itself (the banner, the drive summary, the rate curve) goes to
    // stderr so `--output ndjson | jq` and `--output csv > file.csv` parse
    // cleanly end to end.
    let chrome: fn(std::fmt::Arguments) = match options.output {
        Output::Summary => |args| println!("{args}"),
        Output::Csv | Output::Ndjson => |args| eprintln!("{args}"),
    };
    for definition in [FlowDefinition::FiveTuple, FlowDefinition::PREFIX24] {
        chrome(format_args!(
            "# Scenario {}: trace-driven ranking vs time, {definition}, top 10, 60-second bins, scale {}, {} runs, {} sampling, {:?} output",
            scaled.name(),
            options.scenario_scale(),
            options.runs,
            options.sampler.name(),
            options.output,
        ));
        let mut monitor = match options.controller {
            Some(controller) => workload_controlled_monitor(
                definition,
                60.0,
                options.runs,
                seed,
                options.sampler,
                options.threads,
                controller,
            ),
            None => workload_monitor(
                definition,
                60.0,
                options.runs,
                seed,
                options.sampler,
                options.threads,
            ),
        };
        let mut source = scaled.stream(seed);
        let mut curve = RateCurve::new();
        let stdout = std::io::stdout();
        let summary = match options.output {
            Output::Summary if options.controller.is_some() => {
                println!(
                    "# controlled lane ({}) decision trail",
                    monitor.controller_name().unwrap_or("none")
                );
                println!("bin,applied_rate,decided_rate,swapped_fraction,top_churn");
                monitor.drive(&mut source, &mut Tee(&mut TrailPrinter, &mut curve))
            }
            Output::Summary => monitor.drive(&mut source, &mut curve),
            Output::Csv => {
                let mut writer = CsvSink::new(stdout.lock());
                let summary = monitor.drive(&mut source, &mut Tee(&mut writer, &mut curve));
                if let Err(error) = writer.finish() {
                    fail(format_args!("writing CSV to stdout: {error}"));
                }
                summary
            }
            Output::Ndjson => {
                let mut writer = NdjsonSink::new(stdout.lock());
                let summary = monitor.drive(&mut source, &mut Tee(&mut writer, &mut curve));
                if let Err(error) = writer.finish() {
                    fail(format_args!("writing ndjson to stdout: {error}"));
                }
                summary
            }
        };
        chrome(format_args!(
            "# {} packets in {} windows -> {} bins",
            summary.packets, summary.chunks, summary.reports
        ));
        chrome(format_args!(
            "rate,bins,lane_observations,ranking_mean,ranking_std,detection_mean,detection_std"
        ));
        for point in curve.points() {
            chrome(format_args!(
                "{},{},{},{:.6},{:.6},{:.6},{:.6}",
                point.rate,
                point.bins,
                point.observations,
                point.ranking_mean,
                point.ranking_std,
                point.detection_mean,
                point.detection_std
            ));
        }
        chrome(format_args!(""));
    }
}

fn main() {
    let options = parse_args();
    if options.fleet {
        if options.scenario.is_some() || options.input.is_some() || options.controller.is_some() {
            eprintln!(
                "--fleet runs the fleet scenario; it does not combine with --scenario, --input or --controller"
            );
            std::process::exit(2);
        }
        run_fleet(&options);
        return;
    }
    if let Some(path) = &options.input {
        run_input(path, &options);
        return;
    }
    if let Some(name) = &options.scenario {
        run_scenario(name, &options);
        return;
    }
    if options.controller.is_some() {
        eprintln!("--controller applies to the streamed scenario path; pick one with --scenario");
        print_catalog();
        std::process::exit(2);
    }
    let five_tuple = Scenario::sprint_five_tuple(1.5);
    let prefix = Scenario::sprint_prefix24(1.5);

    if wanted(&options, 1) {
        fig_optimal_rate(1, true);
    }
    if wanted(&options, 2) {
        fig_optimal_rate(2, false);
    }
    if wanted(&options, 3) {
        fig3_gaussian_error();
    }
    if wanted(&options, 4) {
        fig_ranking_top_t(4, &five_tuple);
    }
    if wanted(&options, 5) {
        fig_ranking_top_t(5, &prefix);
    }
    if wanted(&options, 6) {
        fig_ranking_beta(6, false);
    }
    if wanted(&options, 7) {
        fig_ranking_beta(7, true);
    }
    if wanted(&options, 8) {
        fig_ranking_nflows(8, false);
    }
    if wanted(&options, 9) {
        fig_ranking_nflows(9, true);
    }
    if wanted(&options, 10) {
        fig_detection(10, &five_tuple);
    }
    if wanted(&options, 11) {
        fig_detection(11, &prefix);
    }
    if wanted(&options, 12) {
        fig_trace(12, FlowDefinition::FiveTuple, false, &options);
    }
    if wanted(&options, 13) {
        fig_trace(13, FlowDefinition::PREFIX24, false, &options);
    }
    if wanted(&options, 14) {
        fig_trace(14, FlowDefinition::FiveTuple, true, &options);
    }
    if wanted(&options, 15) {
        fig_trace(15, FlowDefinition::PREFIX24, true, &options);
    }
    if wanted(&options, 16) {
        fig16_abilene(&options);
    }
}

//! Support library for the flowrank benchmark and figure-reproduction
//! harness.
//!
//! The criterion benches under `benches/` measure how long each figure's
//! computation takes; the `reproduce` binary (in `src/bin/reproduce.rs`)
//! regenerates the actual data series behind every figure of the paper and
//! prints them as CSV. This module holds the parameter grids shared by both
//! so the benchmarks and the reproduction stay in sync.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sampling-rate grid (fractions) used on the x-axis of Figs. 4–11.
///
/// The paper sweeps 0.1%–50% on a log axis; ten points are enough to see the
/// crossings of the metric with the acceptability line.
pub fn rate_grid() -> Vec<f64> {
    vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5]
}

/// `t` values of Figs. 4, 5, 10 and 11.
pub const TOP_T_VALUES: [u32; 5] = [1, 2, 5, 10, 25];

/// Pareto shapes of Figs. 6–7.
pub const BETA_VALUES: [f64; 5] = [1.2, 1.5, 2.0, 2.5, 3.0];

/// Flow-count factors of Figs. 8–9 (relative to the baseline N).
pub const N_FACTORS: [f64; 6] = [0.2, 0.5, 1.0, 2.5, 4.0, 5.0];

/// Flow-size grid (packets) of Figs. 1–3, log-spaced from 1 to 1000.
pub fn size_grid_log(points: usize) -> Vec<u64> {
    let points = points.max(2);
    (0..points)
        .map(|i| {
            let exponent = 3.0 * i as f64 / (points - 1) as f64; // 10^0 .. 10^3
            10f64.powf(exponent).round().max(1.0) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_well_formed() {
        let rates = rate_grid();
        assert!(rates.first().unwrap() <= &0.001);
        assert!(rates.last().unwrap() >= &0.5);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));

        let sizes = size_grid_log(13);
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&1000));
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(size_grid_log(1).len(), 2);
        assert_eq!(TOP_T_VALUES.len(), 5);
        assert_eq!(BETA_VALUES.len(), 5);
        assert_eq!(N_FACTORS.len(), 6);
    }
}

//! End-to-end CLI contract of the `reproduce` binary's `--input` path: a
//! valid capture streams to exit code 0, while I/O and decode failures —
//! a missing file, garbage where the global header should be, a record
//! truncated mid-capture — exit with code 1 and a one-line diagnostic on
//! stderr instead of a panic with a backtrace.

use flowrank_net::pcap::records_to_pcap_bytes;
use flowrank_net::{PacketRecord, Timestamp};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_reproduce");

fn capture_bytes(n: usize) -> Vec<u8> {
    let records: Vec<PacketRecord> = (0..n)
        .map(|i| {
            PacketRecord::tcp(
                Timestamp::from_secs_f64(i as f64 * 0.05),
                Ipv4Addr::new(10, 0, 0, (i % 200) as u8),
                1024 + (i % 100) as u16,
                Ipv4Addr::new(192, 168, 0, 1),
                80,
                500,
                i as u32 * 500,
            )
        })
        .collect();
    records_to_pcap_bytes(&records).unwrap()
}

/// Writes `bytes` to a per-process temp file so parallel test runs never
/// collide; callers remove it after the child exits.
fn temp_file(name: &str, bytes: &[u8]) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("flowrank-reproduce-{}-{name}", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

#[test]
fn valid_capture_streams_to_exit_zero() {
    let path = temp_file("ok.pcap", &capture_bytes(400));
    let output = Command::new(BIN)
        .args(["--input", path.to_str().unwrap(), "--runs", "1"])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("rate,bins,lane_observations"),
        "rate curve missing from:\n{stdout}"
    );
}

#[test]
fn missing_input_path_exits_one_with_a_diagnostic() {
    let output = Command::new(BIN)
        .args(["--input", "/nonexistent/flowrank-no-such-file.pcap"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("reproduce: cannot read"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn garbage_global_header_exits_one_with_a_diagnostic() {
    let path = temp_file("garbage.pcap", &[0u8; 64]);
    let output = Command::new(BIN)
        .args(["--input", path.to_str().unwrap()])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("reproduce:"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn truncated_capture_exits_one_with_a_diagnostic() {
    let bytes = capture_bytes(50);
    // Cut mid-payload inside the final record.
    let path = temp_file("cut.pcap", &bytes[..bytes.len() - 37]);
    let output = Command::new(BIN)
        .args(["--input", path.to_str().unwrap(), "--runs", "1"])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("drive aborted"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

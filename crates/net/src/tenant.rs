//! Tenant identities and tenant-tagged packet batches.
//!
//! The fleet layer (`flowrank-fleet`) hosts thousands of independent
//! monitored links — *tenants* — in one process. The wire between a fleet
//! source and the fleet itself is the [`TaggedBatch`]: a normal SoA
//! [`PacketBatch`] plus one parallel column of compact [`TenantId`]s, so a
//! single decode/key-derivation pass can tag packets for the whole fleet
//! and the demultiplexer downstream only ever copies columns.
//!
//! The types live here (not in the fleet crate) so the trace synthesiser
//! can *produce* tagged batches and the fleet can *consume* them without
//! either depending on the other.

use std::fmt;
use std::ops::Range;

use crate::batch::PacketBatch;
use crate::packet::PacketRecord;

/// Compact identity of one tenant (one monitored link) in a fleet.
///
/// Tenant ids are dense small integers — slot indices into the fleet's
/// tenant slab — not opaque handles: `TenantId(7)` is the 8th tenant. The
/// ordering derived here (`Ord` on the index) is the deterministic emission
/// order of fleet reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant's slab index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// A [`PacketBatch`] with one extra index-aligned column: the tenant each
/// packet belongs to.
///
/// Like the batch itself, a tagged batch is append-only and recycles its
/// allocations across [`TaggedBatch::clear`] calls. Packets from different
/// tenants may interleave freely; [`TaggedBatch::runs`] exposes the maximal
/// consecutive same-tenant runs so a demultiplexer can move packets with
/// ranged column copies ([`PacketBatch::extend_from_batch`]) instead of
/// per-packet pushes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaggedBatch {
    batch: PacketBatch,
    tenants: Vec<TenantId>,
}

impl TaggedBatch {
    /// Creates an empty tagged batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tagged batch with room for `n` packets.
    pub fn with_capacity(n: usize) -> Self {
        TaggedBatch {
            batch: PacketBatch::with_capacity(n),
            tenants: Vec::with_capacity(n),
        }
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Removes every packet while keeping all column allocations warm.
    pub fn clear(&mut self) {
        self.batch.clear();
        self.tenants.clear();
    }

    /// Appends one packet from raw column values, tagged with `tenant`.
    /// `key` must be the packet's packed 5-tuple
    /// ([`flowrank_flowtable::CompactKey::pack`]).
    #[inline]
    pub fn push_columns(
        &mut self,
        tenant: TenantId,
        ts_nanos: u64,
        key: u128,
        length: u16,
        tcp_seq: Option<u32>,
    ) {
        self.batch.push_columns(ts_nanos, key, length, tcp_seq);
        self.tenants.push(tenant);
    }

    /// Appends one packet record, tagged with `tenant`.
    #[inline]
    pub fn push_record(&mut self, tenant: TenantId, packet: &PacketRecord) {
        self.batch.push_record(packet);
        self.tenants.push(tenant);
    }

    /// Appends `other[range]` (an untagged batch slice), tagging every
    /// copied packet with `tenant`. Columns move as plain slices.
    pub fn extend_from_batch(
        &mut self,
        tenant: TenantId,
        other: &PacketBatch,
        range: Range<usize>,
    ) {
        self.tenants
            .resize(self.tenants.len() + range.len(), tenant);
        self.batch.extend_from_batch(other, range);
    }

    /// The tenant of packet `i`.
    #[inline]
    pub fn tenant(&self, i: usize) -> TenantId {
        self.tenants[i]
    }

    /// The tenant column.
    pub fn tenants(&self) -> &[TenantId] {
        &self.tenants
    }

    /// The underlying packet columns.
    pub fn batch(&self) -> &PacketBatch {
        &self.batch
    }

    /// Iterates over the maximal consecutive same-tenant runs as
    /// `(tenant, range)` pairs covering the batch in order.
    ///
    /// This is the demultiplexer's unit of work: each run is copied into
    /// the owning tenant's scratch batch with one ranged column copy, so
    /// demux cost is proportional to the number of tenant *switches*, not
    /// packets, when sources emit per-tenant bursts.
    pub fn runs(&self) -> TenantRuns<'_> {
        TenantRuns {
            tenants: &self.tenants,
            next: 0,
        }
    }
}

/// Iterator over consecutive same-tenant runs of a [`TaggedBatch`]
/// (see [`TaggedBatch::runs`]).
#[derive(Debug)]
pub struct TenantRuns<'a> {
    tenants: &'a [TenantId],
    next: usize,
}

impl Iterator for TenantRuns<'_> {
    type Item = (TenantId, Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        let start = self.next;
        let tenant = *self.tenants.get(start)?;
        let mut end = start + 1;
        while self.tenants.get(end) == Some(&tenant) {
            end += 1;
        }
        self.next = end;
        Some((tenant, start..end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Timestamp;
    use std::net::Ipv4Addr;

    fn packet(host: u8, t: f64) -> PacketRecord {
        PacketRecord::udp(
            Timestamp::from_secs_f64(t),
            Ipv4Addr::new(10, 0, 0, host),
            4000,
            Ipv4Addr::new(192, 168, 0, 1),
            53,
            120,
        )
    }

    #[test]
    fn tags_ride_along_with_columns() {
        let mut tagged = TaggedBatch::with_capacity(4);
        tagged.push_record(TenantId(3), &packet(1, 0.0));
        tagged.push_record(TenantId(3), &packet(2, 0.1));
        tagged.push_record(TenantId(0), &packet(3, 0.2));
        assert_eq!(tagged.len(), 3);
        assert!(!tagged.is_empty());
        assert_eq!(tagged.tenant(0), TenantId(3));
        assert_eq!(tagged.tenant(2), TenantId(0));
        assert_eq!(tagged.batch().len(), 3);
        assert_eq!(tagged.batch().record(1), packet(2, 0.1));
        assert_eq!(tagged.tenants(), &[TenantId(3), TenantId(3), TenantId(0)]);
    }

    #[test]
    fn runs_cover_the_batch_in_order() {
        let mut tagged = TaggedBatch::new();
        for (tenant, t) in [(1u32, 0.0), (1, 0.1), (2, 0.2), (1, 0.3), (1, 0.4)] {
            tagged.push_record(TenantId(tenant), &packet(tenant as u8, t));
        }
        let runs: Vec<_> = tagged.runs().collect();
        assert_eq!(
            runs,
            vec![
                (TenantId(1), 0..2),
                (TenantId(2), 2..3),
                (TenantId(1), 3..5),
            ]
        );
        assert!(TaggedBatch::new().runs().next().is_none());
    }

    #[test]
    fn extend_from_batch_tags_the_copied_range() {
        let records: Vec<PacketRecord> = (0..4).map(|i| packet(i as u8, i as f64)).collect();
        let batch = PacketBatch::from_records(&records);
        let mut tagged = TaggedBatch::new();
        tagged.extend_from_batch(TenantId(7), &batch, 1..3);
        assert_eq!(tagged.len(), 2);
        assert_eq!(tagged.tenants(), &[TenantId(7), TenantId(7)]);
        assert_eq!(tagged.batch().record(0), records[1]);
        tagged.clear();
        assert!(tagged.is_empty());
    }

    #[test]
    fn tenant_id_formats_and_orders() {
        assert_eq!(TenantId(12).to_string(), "tenant12");
        assert_eq!(TenantId(12).index(), 12);
        assert!(TenantId(1) < TenantId(2));
    }
}

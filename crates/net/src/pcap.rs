//! Classic libpcap capture-file reader and writer, implemented from scratch.
//!
//! The paper's monitors (NetFlow-style line cards, passive taps) produce
//! packet captures; to keep the reproduction self-contained we implement the
//! classic libpcap file format (the 24-byte global header followed by
//! 16-byte per-packet record headers) rather than depending on an external
//! crate. Only the microsecond-resolution, Ethernet link-type variant is
//! supported — exactly what the synthetic trace exporter produces.

use std::io::{Read, Write};

use crate::batch::PacketBatch;
use crate::error::{NetError, NetResult};
use crate::headers::{
    decode_frame, encode_frame, parse_frame_fields, parse_frame_fields_fast, FastFrameColumns,
};
use crate::packet::{PacketRecord, Timestamp};

/// Standard libpcap magic (microsecond timestamps, native byte order).
pub const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// libpcap magic written by machines of the opposite endianness.
pub const PCAP_MAGIC_SWAPPED: u32 = 0xD4C3_B2A1;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Snapshot length written into generated captures (no truncation).
pub const DEFAULT_SNAPLEN: u32 = 65_535;

/// Writer that streams packets into a classic pcap capture.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global pcap header.
    pub fn new(mut out: W) -> NetResult<Self> {
        out.write_all(&PCAP_MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&DEFAULT_SNAPLEN.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter {
            out,
            packets_written: 0,
        })
    }

    /// Writes one raw frame with the given timestamp.
    pub fn write_frame(&mut self, timestamp: Timestamp, frame: &[u8]) -> NetResult<()> {
        let micros = timestamp.as_micros();
        let ts_sec = (micros / 1_000_000) as u32;
        let ts_usec = (micros % 1_000_000) as u32;
        let len = frame.len() as u32;
        self.out.write_all(&ts_sec.to_le_bytes())?;
        self.out.write_all(&ts_usec.to_le_bytes())?;
        self.out.write_all(&len.to_le_bytes())?; // incl_len (no truncation)
        self.out.write_all(&len.to_le_bytes())?; // orig_len
        self.out.write_all(frame)?;
        self.packets_written += 1;
        Ok(())
    }

    /// Encodes a [`PacketRecord`] as an Ethernet/IPv4 frame and writes it.
    pub fn write_record(&mut self, record: &PacketRecord) -> NetResult<()> {
        let frame = encode_frame(record)?;
        self.write_frame(record.timestamp, &frame)
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> NetResult<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reader that iterates over the packets of a classic pcap capture.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    link_type: u32,
}

impl<R: Read> PcapReader<R> {
    /// Opens a capture: reads and validates the global header.
    pub fn new(mut input: R) -> NetResult<Self> {
        let mut header = [0u8; 24];
        input.read_exact(&mut header)?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let swapped = match magic {
            PCAP_MAGIC => false,
            PCAP_MAGIC_SWAPPED => true,
            other => return Err(NetError::BadPcapMagic { found: other }),
        };
        let read_u32 = |bytes: [u8; 4]| {
            if swapped {
                u32::from_be_bytes(bytes)
            } else {
                u32::from_le_bytes(bytes)
            }
        };
        let link_type = read_u32([header[20], header[21], header[22], header[23]]);
        if link_type != LINKTYPE_ETHERNET {
            return Err(NetError::UnsupportedLinkType { link_type });
        }
        Ok(PcapReader {
            input,
            swapped,
            link_type,
        })
    }

    /// Link-layer type declared in the capture header.
    pub fn link_type(&self) -> u32 {
        self.link_type
    }

    fn read_u32(&mut self) -> NetResult<Option<u32>> {
        let mut buf = [0u8; 4];
        match self.input.read_exact(&mut buf) {
            Ok(()) => Ok(Some(if self.swapped {
                u32::from_be_bytes(buf)
            } else {
                u32::from_le_bytes(buf)
            })),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Reads the next raw frame, or `None` at end of file.
    pub fn next_frame(&mut self) -> NetResult<Option<(Timestamp, Vec<u8>)>> {
        let ts_sec = match self.read_u32()? {
            Some(v) => v,
            None => return Ok(None),
        };
        let ts_usec = self.read_u32()?.ok_or(NetError::MalformedPacket {
            reason: "truncated pcap record header",
        })?;
        let incl_len = self.read_u32()?.ok_or(NetError::MalformedPacket {
            reason: "truncated pcap record header",
        })?;
        let _orig_len = self.read_u32()?.ok_or(NetError::MalformedPacket {
            reason: "truncated pcap record header",
        })?;
        if incl_len > 10 * 1024 * 1024 {
            return Err(NetError::MalformedPacket {
                reason: "pcap record longer than 10 MiB",
            });
        }
        let mut frame = vec![0u8; incl_len as usize];
        self.input.read_exact(&mut frame)?;
        let micros = ts_sec as u64 * 1_000_000 + ts_usec as u64;
        Ok(Some((Timestamp::from_micros(micros), frame)))
    }

    /// Reads the next packet and decodes it into a [`PacketRecord`].
    ///
    /// Frames that cannot be decoded (non-IPv4, truncated) are skipped, which
    /// mirrors how a flow monitor ignores traffic it cannot classify.
    pub fn next_record(&mut self) -> NetResult<Option<PacketRecord>> {
        loop {
            match self.next_frame()? {
                None => return Ok(None),
                Some((ts, frame)) => match decode_frame(ts, &frame) {
                    Ok(record) => return Ok(Some(record)),
                    Err(_) => continue,
                },
            }
        }
    }

    /// Reads all remaining packets into a vector.
    pub fn read_all_records(&mut self) -> NetResult<Vec<PacketRecord>> {
        let mut out = Vec::new();
        while let Some(record) = self.next_record()? {
            out.push(record);
        }
        Ok(out)
    }
}

/// Writes a slice of packet records to a pcap byte buffer (in memory).
pub fn records_to_pcap_bytes(records: &[PacketRecord]) -> NetResult<Vec<u8>> {
    let mut bytes = Vec::new();
    records_to_pcap_bytes_into(records, &mut bytes)?;
    Ok(bytes)
}

/// Writes a slice of packet records into a caller-owned byte buffer.
///
/// The buffer is cleared first and its allocation is reused, so repeated
/// encodes (benchmark loops, per-bin exports) stop paying a fresh
/// capture-sized allocation each time. Returns the number of packets
/// written.
pub fn records_to_pcap_bytes_into(records: &[PacketRecord], bytes: &mut Vec<u8>) -> NetResult<u64> {
    bytes.clear();
    let mut writer = PcapWriter::new(bytes)?;
    for record in records {
        writer.write_record(record)?;
    }
    let written = writer.packets_written();
    writer.finish()?;
    Ok(written)
}

/// Parses every packet record out of a pcap byte buffer.
pub fn pcap_bytes_to_records(bytes: &[u8]) -> NetResult<Vec<PacketRecord>> {
    let mut reader = PcapReader::new(bytes)?;
    reader.read_all_records()
}

/// Decodes a pcap byte buffer straight into a [`PacketBatch`] — the
/// zero-copy ingestion path.
///
/// Unlike the [`PcapReader`] record loop, which allocates a frame buffer and
/// materialises a [`PacketRecord`] per packet, this decoder walks the byte
/// slice in place: record headers and protocol headers are read directly out
/// of `bytes` and appended to the batch's columns. Decoded packets are
/// **appended** to `batch` (call [`PacketBatch::clear`] first to reuse one
/// batch across captures); the return value is the number of packets
/// appended. Frames that cannot be decoded (non-IPv4, truncated protocol
/// headers) are skipped exactly like [`PcapReader::next_record`] skips them;
/// a capture truncated mid-record is an error, matching the reader.
pub fn pcap_bytes_to_batch(bytes: &[u8], batch: &mut PacketBatch) -> NetResult<u64> {
    let mut cursor = PcapBatchCursor::new(bytes)?;
    cursor.decode_some(batch, usize::MAX)
}

/// Resumable zero-copy batch decoder over an in-memory capture — the
/// streaming form of [`pcap_bytes_to_batch`].
///
/// The cursor validates the global header up front and then decodes the
/// capture in caller-sized steps: each [`PcapBatchCursor::decode_some`] call
/// appends up to `max_packets` more packets to a batch and remembers where
/// it stopped, so a pipeline can replay an arbitrarily large capture through
/// a small reusable batch instead of materialising every packet at once.
/// Decoding is byte-identical to the one-shot function for every step size.
#[derive(Debug)]
pub struct PcapBatchCursor<'a> {
    bytes: &'a [u8],
    offset: usize,
    swapped: bool,
}

impl<'a> PcapBatchCursor<'a> {
    /// Opens a capture: validates the global header (magic, link type).
    pub fn new(bytes: &'a [u8]) -> NetResult<Self> {
        if bytes.len() < 24 {
            return Err(NetError::MalformedPacket {
                reason: "pcap shorter than its global header",
            });
        }
        let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let swapped = match magic {
            PCAP_MAGIC => false,
            PCAP_MAGIC_SWAPPED => true,
            other => return Err(NetError::BadPcapMagic { found: other }),
        };
        let link_type = if swapped {
            u32::from_be_bytes([bytes[20], bytes[21], bytes[22], bytes[23]])
        } else {
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]])
        };
        if link_type != LINKTYPE_ETHERNET {
            return Err(NetError::UnsupportedLinkType { link_type });
        }
        Ok(PcapBatchCursor {
            bytes,
            offset: 24,
            swapped,
        })
    }

    /// Whether the cursor has consumed the whole capture.
    pub fn is_done(&self) -> bool {
        // Parity with `PcapReader`: fewer trailing bytes than one timestamp
        // field count as clean EOF.
        self.bytes.len() - self.offset < 4
    }

    /// Byte offset of the first unconsumed record — the resume point.
    ///
    /// [`PcapBatchCursor::decode_some`] commits this on success and, on a
    /// decode error, leaves it at the start of the record that failed
    /// (packets decoded earlier in the same call stay committed), so a
    /// caller holding a corrected copy of the capture can pick up exactly
    /// where the bad record began via [`PcapBatchCursor::resume`] without
    /// reprocessing any packet already delivered.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Re-opens a capture at a previously observed
    /// [`PcapBatchCursor::offset`] — the resume-after-error constructor.
    ///
    /// The global header of `bytes` is validated as in
    /// [`PcapBatchCursor::new`]; decoding then continues from `offset`,
    /// which must be a record boundary of this capture (typically: the
    /// offset saved from a cursor over an earlier, truncated copy of the
    /// same capture). The boundary is **verified** by walking the record
    /// headers from the start of the capture: an offset outside the buffer
    /// or inside a record errors with a clear [`NetError::InvalidField`]
    /// instead of silently decoding garbage from mid-record bytes. The walk
    /// reads only the 16-byte record headers (no frame decoding), so it is
    /// cheap relative to the decode it precedes; callers resuming on a hot
    /// path with offsets they already trust (their own cursor's committed
    /// [`PcapBatchCursor::offset`] over a prefix of the same capture) can
    /// use [`PcapBatchCursor::resume_trusted`] to skip it.
    pub fn resume(bytes: &'a [u8], offset: usize) -> NetResult<Self> {
        let cursor = Self::resume_trusted(bytes, offset)?;
        // Walk record boundaries from the first record to prove `offset`
        // lands on one. `incl_len` is read with the capture's byte order but
        // otherwise unvalidated here — a record claiming to run past the
        // buffer simply makes the walk overshoot `offset`, which is the same
        // "not a boundary" answer.
        let mut pos = 24usize;
        while pos < offset {
            if offset - pos < 16 || bytes.len() - pos < 16 {
                return Err(NetError::InvalidField {
                    field: "resume offset",
                    reason: "offset inside a pcap record header",
                });
            }
            let raw = [
                bytes[pos + 8],
                bytes[pos + 9],
                bytes[pos + 10],
                bytes[pos + 11],
            ];
            let incl_len = if cursor.swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            } as usize;
            let next = match pos.checked_add(16 + incl_len) {
                Some(next) => next,
                None => {
                    return Err(NetError::InvalidField {
                        field: "resume offset",
                        reason: "offset inside a pcap record payload",
                    })
                }
            };
            if next > offset {
                return Err(NetError::InvalidField {
                    field: "resume offset",
                    reason: "offset inside a pcap record payload",
                });
            }
            pos = next;
        }
        Ok(cursor)
    }

    /// [`PcapBatchCursor::resume`] without the record-boundary walk: the
    /// global header and the offset's bounds are still validated, but the
    /// caller asserts that `offset` is a record boundary (an offset
    /// previously returned by [`PcapBatchCursor::offset`] over a prefix of
    /// this same capture). The file-tailing source resumes once per poll, so
    /// it uses this O(1) form; resuming at a non-boundary offset decodes
    /// garbage exactly like the pre-validation `resume` did.
    pub fn resume_trusted(bytes: &'a [u8], offset: usize) -> NetResult<Self> {
        let mut cursor = Self::new(bytes)?;
        if offset < 24 || offset > bytes.len() {
            return Err(NetError::InvalidField {
                field: "resume offset",
                reason: "offset outside the capture",
            });
        }
        cursor.offset = offset;
        Ok(cursor)
    }

    /// Decodes up to `max_packets` more packets, **appending** them to
    /// `batch` (clear it first to reuse one batch across steps). Returns the
    /// number of packets appended; `0` means the capture is exhausted.
    /// Undecodable frames are skipped exactly like the one-shot decoder and
    /// do not count towards `max_packets`.
    pub fn decode_some(&mut self, batch: &mut PacketBatch, max_packets: usize) -> NetResult<u64> {
        // Monomorphise the hot loop on the byte order so the common
        // native-order case carries no per-field branch.
        if self.swapped {
            decode_batch_loop::<true>(self.bytes, &mut self.offset, batch, max_packets)
        } else {
            decode_batch_loop::<false>(self.bytes, &mut self.offset, batch, max_packets)
        }
    }
}

/// The record-walking loop of [`PcapBatchCursor`], specialised per byte
/// order. Resumes at `*offset` and leaves it on the first unconsumed record.
fn decode_batch_loop<const SWAPPED: bool>(
    bytes: &[u8],
    resume_at: &mut usize,
    batch: &mut PacketBatch,
    max_packets: usize,
) -> NetResult<u64> {
    #[inline(always)]
    fn read_u32<const SWAPPED: bool>(chunk: &[u8]) -> u32 {
        let raw = [chunk[0], chunk[1], chunk[2], chunk[3]];
        if SWAPPED {
            u32::from_be_bytes(raw)
        } else {
            u32::from_le_bytes(raw)
        }
    }

    let mut offset = *resume_at;
    let mut appended = 0u64;
    while offset < bytes.len() && (appended as usize) < max_packets {
        // On a malformed record the offset is committed at the *start* of
        // that record before erroring: packets decoded earlier in this call
        // stay delivered in `batch`, and a corrected copy of the capture can
        // resume from `offset()` without reprocessing them.
        let record_start = offset;
        // Parity with `PcapReader`: fewer trailing bytes than one timestamp
        // field read as clean EOF; a partially present record header is an
        // error.
        if bytes.len() - offset < 4 {
            break;
        }
        if bytes.len() - offset < 16 {
            *resume_at = record_start;
            return Err(NetError::MalformedPacket {
                reason: "truncated pcap record header",
            });
        }
        let header = &bytes[offset..offset + 16];
        let ts_sec = read_u32::<SWAPPED>(&header[0..4]);
        let ts_usec = read_u32::<SWAPPED>(&header[4..8]);
        let incl_len = read_u32::<SWAPPED>(&header[8..12]) as usize;
        offset += 16;
        if incl_len > 10 * 1024 * 1024 {
            *resume_at = record_start;
            return Err(NetError::MalformedPacket {
                reason: "pcap record longer than 10 MiB",
            });
        }
        if bytes.len() - offset < incl_len {
            *resume_at = record_start;
            return Err(NetError::MalformedPacket {
                reason: "truncated pcap record payload",
            });
        }
        let frame = &bytes[offset..offset + incl_len];
        offset += incl_len;
        // The next record's position depends on `incl_len` just loaded, so
        // the walk is a serial chain of cache misses the hardware prefetcher
        // cannot always run ahead of. Records in one capture tend to share a
        // size (snaplen-capped, or uniform synthetic traffic), so touch the
        // *predicted* record after next — two strides ahead — to overlap its
        // miss with two records' worth of parsing. A misprediction costs one
        // wasted line fetch; `black_box` keeps the dead loads live.
        let predicted = offset + incl_len + 16;
        std::hint::black_box(bytes.get(predicted).copied());
        std::hint::black_box(bytes.get(predicted + 63).copied());
        // Common case first (IPv4/IHL-5/TCP-or-UDP): one bounds check, and
        // the 5-tuple packs straight from the wire bytes. Everything else
        // goes through the general parser.
        let columns = match parse_frame_fields_fast(frame) {
            Some(columns) => columns,
            None => match parse_frame_fields(frame) {
                Ok(fields) => FastFrameColumns {
                    packed_key: fields.packed_five_tuple(),
                    length: fields.length,
                    tcp_seq: fields.tcp_seq,
                },
                Err(_) => continue,
            },
        };
        let micros = ts_sec as u64 * 1_000_000 + ts_usec as u64;
        batch.push_columns(
            micros * 1_000,
            columns.packed_key,
            columns.length,
            columns.tcp_seq,
        );
        appended += 1;
    }
    *resume_at = offset;
    Ok(appended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowkey::Protocol;
    use std::net::Ipv4Addr;

    fn sample_records(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                PacketRecord::tcp(
                    Timestamp::from_secs_f64(i as f64 * 0.001),
                    Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8),
                    1024 + (i % 1000) as u16,
                    Ipv4Addr::new(192, 168, 1, (i % 200) as u8),
                    80,
                    500,
                    i as u32 * 500,
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = sample_records(50);
        let bytes = records_to_pcap_bytes(&records).unwrap();
        let decoded = pcap_bytes_to_records(&bytes).unwrap();
        assert_eq!(decoded.len(), records.len());
        for (a, b) in records.iter().zip(decoded.iter()) {
            // Timestamps are stored with microsecond resolution in pcap.
            assert_eq!(a.timestamp.as_micros(), b.timestamp.as_micros());
            assert_eq!(a.src_ip, b.src_ip);
            assert_eq!(a.dst_ip, b.dst_ip);
            assert_eq!(a.src_port, b.src_port);
            assert_eq!(a.dst_port, b.dst_port);
            assert_eq!(a.length, b.length);
            assert_eq!(a.tcp_seq, b.tcp_seq);
            assert_eq!(a.protocol, Protocol::Tcp);
        }
    }

    #[test]
    fn global_header_fields() {
        let bytes = records_to_pcap_bytes(&sample_records(1)).unwrap();
        assert_eq!(
            u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            PCAP_MAGIC
        );
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            LINKTYPE_ETHERNET
        );
        let reader = PcapReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.link_type(), LINKTYPE_ETHERNET);
    }

    #[test]
    fn empty_capture_yields_no_packets() {
        let writer = PcapWriter::new(Vec::new()).unwrap();
        assert_eq!(writer.packets_written(), 0);
        let bytes = writer.finish().unwrap();
        let records = pcap_bytes_to_records(&bytes).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn rejects_bad_magic_and_link_type() {
        let err = PcapReader::new(&[0u8; 24][..]).unwrap_err();
        assert!(matches!(err, NetError::BadPcapMagic { .. }));

        // Valid magic but link type 101 (raw IP).
        let mut header = Vec::new();
        header.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        header.extend_from_slice(&2u16.to_le_bytes());
        header.extend_from_slice(&4u16.to_le_bytes());
        header.extend_from_slice(&0i32.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&DEFAULT_SNAPLEN.to_le_bytes());
        header.extend_from_slice(&101u32.to_le_bytes());
        let err = PcapReader::new(&header[..]).unwrap_err();
        assert!(matches!(
            err,
            NetError::UnsupportedLinkType { link_type: 101 }
        ));
    }

    #[test]
    fn truncated_file_reports_eof_cleanly() {
        let bytes = records_to_pcap_bytes(&sample_records(3)).unwrap();
        // Cut in the middle of the second record's payload.
        let cut = &bytes[..24 + (16 + 514) + 16 + 100];
        let mut reader = PcapReader::new(cut).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().is_err());
    }

    #[test]
    fn non_ipv4_frames_are_skipped_by_record_reader() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        // A bogus ARP-like frame.
        let mut arp = vec![0u8; 42];
        arp[12] = 0x08;
        arp[13] = 0x06;
        writer.write_frame(Timestamp::ZERO, &arp).unwrap();
        // Followed by a real IPv4 packet.
        writer.write_record(&sample_records(1)[0]).unwrap();
        let bytes = writer.finish().unwrap();
        let records = pcap_bytes_to_records(&bytes).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut bytes = records_to_pcap_bytes(&[]).unwrap();
        // Append a record header claiming a 100 MiB packet.
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(100u32 * 1024 * 1024).to_le_bytes());
        bytes.extend_from_slice(&(100u32 * 1024 * 1024).to_le_bytes());
        let mut reader = PcapReader::new(&bytes[..]).unwrap();
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn batch_decode_matches_record_decode() {
        let records = sample_records(200);
        let bytes = records_to_pcap_bytes(&records).unwrap();
        let decoded = pcap_bytes_to_records(&bytes).unwrap();
        let mut batch = PacketBatch::new();
        let appended = pcap_bytes_to_batch(&bytes, &mut batch).unwrap();
        assert_eq!(appended, decoded.len() as u64);
        assert_eq!(batch.to_records(), decoded);
        // Appending a second capture reuses the batch without clearing.
        pcap_bytes_to_batch(&bytes, &mut batch).unwrap();
        assert_eq!(batch.len(), 2 * decoded.len());
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn batch_decode_skips_undecodable_frames_like_the_reader() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        let mut arp = vec![0u8; 42];
        arp[12] = 0x08;
        arp[13] = 0x06;
        writer.write_frame(Timestamp::ZERO, &arp).unwrap();
        writer.write_record(&sample_records(1)[0]).unwrap();
        let bytes = writer.finish().unwrap();
        let mut batch = PacketBatch::new();
        assert_eq!(pcap_bytes_to_batch(&bytes, &mut batch).unwrap(), 1);
        assert_eq!(batch.to_records(), pcap_bytes_to_records(&bytes).unwrap());
    }

    #[test]
    fn batch_decode_rejects_truncation_and_bad_headers() {
        let mut batch = PacketBatch::new();
        assert!(pcap_bytes_to_batch(&[0u8; 10], &mut batch).is_err());
        assert!(matches!(
            pcap_bytes_to_batch(&[0u8; 24], &mut batch).unwrap_err(),
            NetError::BadPcapMagic { .. }
        ));
        let bytes = records_to_pcap_bytes(&sample_records(3)).unwrap();
        // Cut in the middle of the second record's payload.
        let cut = &bytes[..24 + (16 + 514) + 16 + 100];
        assert!(pcap_bytes_to_batch(cut, &mut batch).is_err());
        // Cut in the middle of a record header.
        let cut = &bytes[..24 + (16 + 514) + 8];
        assert!(pcap_bytes_to_batch(cut, &mut batch).is_err());
    }

    #[test]
    fn batch_decode_treats_sub_field_trailing_bytes_as_eof_like_the_reader() {
        // The reader's first timestamp read returns clean EOF when fewer
        // than 4 bytes remain; the batch decoder must agree on both sides
        // of that boundary.
        let bytes = records_to_pcap_bytes(&sample_records(2)).unwrap();
        for garbage in 1..=3usize {
            let mut padded = bytes.clone();
            padded.extend(std::iter::repeat_n(0xAAu8, garbage));
            assert_eq!(
                pcap_bytes_to_records(&padded).unwrap().len(),
                2,
                "{garbage} trailing bytes: reader EOF"
            );
            let mut batch = PacketBatch::new();
            assert_eq!(
                pcap_bytes_to_batch(&padded, &mut batch).unwrap(),
                2,
                "{garbage} trailing bytes: batch EOF"
            );
        }
        // 4..15 trailing bytes are a truncated record header for both.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 7]);
        let mut reader = PcapReader::new(&padded[..]).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().is_err());
        let mut batch = PacketBatch::new();
        assert!(pcap_bytes_to_batch(&padded, &mut batch).is_err());
    }

    #[test]
    fn cursor_decodes_in_steps_identically_to_one_shot() {
        let records = sample_records(200);
        let bytes = records_to_pcap_bytes(&records).unwrap();
        let mut whole = PacketBatch::new();
        pcap_bytes_to_batch(&bytes, &mut whole).unwrap();

        for step in [1usize, 7, 64, 1000] {
            let mut cursor = PcapBatchCursor::new(&bytes).unwrap();
            let mut stepped = PacketBatch::new();
            let mut total = 0u64;
            loop {
                let n = cursor.decode_some(&mut stepped, step).unwrap();
                if n == 0 {
                    break;
                }
                assert!(n as usize <= step, "step {step}");
                total += n;
            }
            assert!(cursor.is_done(), "step {step}");
            assert_eq!(total, whole.len() as u64, "step {step}");
            assert_eq!(stepped, whole, "step {step}");
        }
    }

    #[test]
    fn cursor_commits_progress_and_resumes_after_a_truncated_record() {
        let records = sample_records(10);
        let bytes = records_to_pcap_bytes(&records).unwrap();
        let mut whole = PacketBatch::new();
        pcap_bytes_to_batch(&bytes, &mut whole).unwrap();

        // Cut mid-payload inside the 8th record (each record is a 16-byte
        // header plus a 514-byte frame).
        let bad_record_start = 24 + 7 * (16 + 514);
        let cut = &bytes[..bad_record_start + 16 + 100];

        let mut cursor = PcapBatchCursor::new(cut).unwrap();
        let mut batch = PacketBatch::new();
        let err = cursor.decode_some(&mut batch, usize::MAX).unwrap_err();
        assert!(matches!(
            err,
            NetError::MalformedPacket {
                reason: "truncated pcap record payload"
            }
        ));
        // The seven good records before the cut stay committed, and the
        // cursor points at the record that failed — not at the start of
        // the call.
        assert_eq!(batch.len(), 7);
        assert_eq!(cursor.offset(), bad_record_start);

        // A corrected copy of the capture resumes from the saved offset
        // without reprocessing the packets already delivered.
        let mut resumed = PcapBatchCursor::resume(&bytes, cursor.offset()).unwrap();
        let appended = resumed.decode_some(&mut batch, usize::MAX).unwrap();
        assert_eq!(appended, 3);
        assert!(resumed.is_done());
        assert_eq!(batch, whole);
    }

    #[test]
    fn cursor_resume_validates_header_and_offset() {
        let bytes = records_to_pcap_bytes(&sample_records(2)).unwrap();
        assert!(matches!(
            PcapBatchCursor::resume(&[0u8; 24], 24).unwrap_err(),
            NetError::BadPcapMagic { .. }
        ));
        assert!(matches!(
            PcapBatchCursor::resume(&bytes, 10).unwrap_err(),
            NetError::InvalidField {
                reason: "offset outside the capture",
                ..
            }
        ));
        assert!(matches!(
            PcapBatchCursor::resume(&bytes, bytes.len() + 1).unwrap_err(),
            NetError::InvalidField {
                reason: "offset outside the capture",
                ..
            }
        ));
        // Mid-record offsets are rejected by the boundary walk: inside the
        // first record's header, and inside its payload.
        assert!(matches!(
            PcapBatchCursor::resume(&bytes, 24 + 7).unwrap_err(),
            NetError::InvalidField {
                reason: "offset inside a pcap record header",
                ..
            }
        ));
        assert!(matches!(
            PcapBatchCursor::resume(&bytes, 24 + 16 + 3).unwrap_err(),
            NetError::InvalidField {
                reason: "offset inside a pcap record payload",
                ..
            }
        ));
        // The trusted fast path keeps the bounds checks but skips the walk.
        assert!(PcapBatchCursor::resume_trusted(&bytes, 24 + 7).is_ok());
        assert!(PcapBatchCursor::resume_trusted(&bytes, bytes.len() + 1).is_err());
        // Resuming exactly at EOF is a clean empty decode.
        let mut cursor = PcapBatchCursor::resume(&bytes, bytes.len()).unwrap();
        assert!(cursor.is_done());
        let mut batch = PacketBatch::new();
        assert_eq!(cursor.decode_some(&mut batch, usize::MAX).unwrap(), 0);
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let records = sample_records(5);
        let mut buffer = Vec::new();
        assert_eq!(
            records_to_pcap_bytes_into(&records, &mut buffer).unwrap(),
            5
        );
        let first = buffer.clone();
        let capacity = buffer.capacity();
        assert_eq!(
            records_to_pcap_bytes_into(&records, &mut buffer).unwrap(),
            5
        );
        assert_eq!(buffer, first, "re-encode is byte-identical");
        assert_eq!(buffer.capacity(), capacity, "allocation reused");
        assert_eq!(buffer, records_to_pcap_bytes(&records).unwrap());
    }

    #[test]
    fn timestamps_preserved_to_microsecond() {
        let mut records = sample_records(1);
        records[0].timestamp = Timestamp::from_micros(1_234_567_890);
        let bytes = records_to_pcap_bytes(&records).unwrap();
        let decoded = pcap_bytes_to_records(&bytes).unwrap();
        assert_eq!(decoded[0].timestamp.as_micros(), 1_234_567_890);
    }
}

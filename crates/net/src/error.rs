//! Error types for the packet/flow substrate.

use std::fmt;
use std::io;

/// Convenience alias for results returned by `flowrank-net`.
pub type NetResult<T> = Result<T, NetError>;

/// Errors produced by the packet/flow substrate.
#[derive(Debug)]
pub enum NetError {
    /// Underlying I/O failure while reading or writing a capture file.
    Io(io::Error),
    /// The capture file does not start with a recognised libpcap magic number.
    BadPcapMagic {
        /// The magic value that was found.
        found: u32,
    },
    /// The capture file declares an unsupported link type.
    UnsupportedLinkType {
        /// The link-layer type declared in the pcap header.
        link_type: u32,
    },
    /// A packet record is truncated or structurally invalid.
    MalformedPacket {
        /// Description of what was wrong.
        reason: &'static str,
    },
    /// A header field was given a value that cannot be encoded.
    InvalidField {
        /// Field name.
        field: &'static str,
        /// Reason the value is not encodable.
        reason: &'static str,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::BadPcapMagic { found } => {
                write!(f, "not a libpcap capture file (magic {found:#010x})")
            }
            NetError::UnsupportedLinkType { link_type } => {
                write!(
                    f,
                    "unsupported pcap link type {link_type} (only Ethernet is supported)"
                )
            }
            NetError::MalformedPacket { reason } => write!(f, "malformed packet: {reason}"),
            NetError::InvalidField { field, reason } => {
                write!(f, "invalid value for {field}: {reason}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::BadPcapMagic { found: 0xdeadbeef }
            .to_string()
            .contains("0xdeadbeef"));
        assert!(NetError::UnsupportedLinkType { link_type: 101 }
            .to_string()
            .contains("101"));
        assert!(NetError::MalformedPacket {
            reason: "short IPv4 header"
        }
        .to_string()
        .contains("short IPv4 header"));
        assert!(NetError::InvalidField {
            field: "payload",
            reason: "too large"
        }
        .to_string()
        .contains("payload"));
        let io_err = NetError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(io_err.to_string().contains("eof"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error as _;
        let err = NetError::from(io::Error::other("boom"));
        assert!(err.source().is_some());
        assert!(NetError::MalformedPacket { reason: "x" }.source().is_none());
    }
}

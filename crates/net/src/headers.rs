//! Protocol header encoding and parsing: Ethernet II, IPv4, TCP and UDP.
//!
//! The synthetic traces are pure in-memory [`PacketRecord`]s; this module
//! materialises them as real frames (and parses frames back into records) so
//! that traces can be exported to pcap files readable by standard tools, and
//! so that captures produced elsewhere can be fed into the ranking pipeline.
//! Only the fields relevant to flow classification are modelled — options,
//! fragmentation and IPv6 are out of scope for the reproduction.

use std::net::Ipv4Addr;

use crate::error::{NetError, NetResult};
use crate::flowkey::Protocol;
use crate::packet::{PacketRecord, Timestamp};

/// Length of an Ethernet II header in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;
/// Length of a minimal IPv4 header in bytes (no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of a minimal TCP header in bytes (no options).
pub const TCP_HEADER_LEN: usize = 20;
/// Length of a UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// Computes the Internet checksum (RFC 1071) over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encodes a [`PacketRecord`] as an Ethernet II / IPv4 / TCP-or-UDP frame.
///
/// The payload is zero-filled so that the on-wire IPv4 total length matches
/// `record.length` (clamped to at least the header sizes). Source and
/// destination MAC addresses are synthetic constants — the monitor model of
/// the paper never inspects layer 2.
pub fn encode_frame(record: &PacketRecord) -> NetResult<Vec<u8>> {
    let transport_len = match record.protocol {
        Protocol::Tcp => TCP_HEADER_LEN,
        Protocol::Udp => UDP_HEADER_LEN,
        _ => 0,
    };
    let ip_total_len = (record.length as usize).max(IPV4_HEADER_LEN + transport_len);
    if ip_total_len > u16::MAX as usize {
        return Err(NetError::InvalidField {
            field: "length",
            reason: "IPv4 total length exceeds 65535",
        });
    }
    let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + ip_total_len);

    // Ethernet II header: synthetic locally administered MACs.
    frame.extend_from_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x01]); // dst MAC
    frame.extend_from_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x02]); // src MAC
    frame.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());

    // IPv4 header.
    let mut ip = [0u8; IPV4_HEADER_LEN];
    ip[0] = 0x45; // version 4, IHL 5
    ip[1] = 0x00; // DSCP/ECN
    ip[2..4].copy_from_slice(&(ip_total_len as u16).to_be_bytes());
    ip[4..6].copy_from_slice(&0u16.to_be_bytes()); // identification
    ip[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // don't fragment
    ip[8] = 64; // TTL
    ip[9] = record.protocol.number();
    // checksum at [10..12] filled below
    ip[12..16].copy_from_slice(&record.src_ip.octets());
    ip[16..20].copy_from_slice(&record.dst_ip.octets());
    let csum = internet_checksum(&ip);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());
    frame.extend_from_slice(&ip);

    // Transport header.
    match record.protocol {
        Protocol::Tcp => {
            let mut tcp = [0u8; TCP_HEADER_LEN];
            tcp[0..2].copy_from_slice(&record.src_port.to_be_bytes());
            tcp[2..4].copy_from_slice(&record.dst_port.to_be_bytes());
            tcp[4..8].copy_from_slice(&record.tcp_seq.unwrap_or(0).to_be_bytes());
            tcp[12] = 0x50; // data offset 5
            tcp[13] = 0x10; // ACK flag
            tcp[14..16].copy_from_slice(&0xFFFFu16.to_be_bytes()); // window
            frame.extend_from_slice(&tcp);
        }
        Protocol::Udp => {
            let udp_len = (ip_total_len - IPV4_HEADER_LEN) as u16;
            let mut udp = [0u8; UDP_HEADER_LEN];
            udp[0..2].copy_from_slice(&record.src_port.to_be_bytes());
            udp[2..4].copy_from_slice(&record.dst_port.to_be_bytes());
            udp[4..6].copy_from_slice(&udp_len.to_be_bytes());
            frame.extend_from_slice(&udp);
        }
        _ => {}
    }

    // Zero payload padding up to the declared IPv4 total length.
    let current_ip_len = frame.len() - ETHERNET_HEADER_LEN;
    frame.resize(frame.len() + (ip_total_len - current_ip_len), 0);
    Ok(frame)
}

/// The classification-relevant fields of one parsed frame, before they are
/// materialised as a [`PacketRecord`] or appended to a packet batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FrameFields {
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: Protocol,
    pub length: u16,
    pub tcp_seq: Option<u32>,
}

impl FrameFields {
    /// Attaches a timestamp, producing the classic packet record.
    #[inline]
    pub fn into_record(self, timestamp: Timestamp) -> PacketRecord {
        PacketRecord {
            timestamp,
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            protocol: self.protocol,
            length: self.length,
            tcp_seq: self.tcp_seq,
        }
    }

    /// The packed 5-tuple of the frame (see [`crate::flowkey::FiveTuple`]).
    #[inline]
    pub fn packed_five_tuple(self) -> u128 {
        use flowrank_flowtable::CompactKey;
        crate::flowkey::FiveTuple {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            protocol: self.protocol,
        }
        .pack()
    }
}

/// Parses the header fields of an Ethernet II / IPv4 frame in place.
///
/// This is the single home of the frame-parsing rules: the record decoder
/// ([`decode_frame`]) and the zero-copy batch decoder
/// ([`crate::pcap::pcap_bytes_to_batch`]) both ride on it, so the two paths
/// cannot drift apart.
#[inline]
pub(crate) fn parse_frame_fields(frame: &[u8]) -> NetResult<FrameFields> {
    if frame.len() < ETHERNET_HEADER_LEN + IPV4_HEADER_LEN {
        return Err(NetError::MalformedPacket {
            reason: "frame shorter than Ethernet + IPv4 headers",
        });
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(NetError::MalformedPacket {
            reason: "not an IPv4 frame",
        });
    }
    let ip = &frame[ETHERNET_HEADER_LEN..];
    if ip[0] >> 4 != 4 {
        return Err(NetError::MalformedPacket {
            reason: "IP version is not 4",
        });
    }
    let ihl = ((ip[0] & 0x0F) as usize) * 4;
    if ihl < IPV4_HEADER_LEN || ip.len() < ihl {
        return Err(NetError::MalformedPacket {
            reason: "invalid IPv4 header length",
        });
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]);
    let protocol = Protocol::from_number(ip[9]);
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);

    let transport = &ip[ihl..];
    let (src_port, dst_port, tcp_seq) = match protocol {
        Protocol::Tcp => {
            if transport.len() < TCP_HEADER_LEN {
                return Err(NetError::MalformedPacket {
                    reason: "truncated TCP header",
                });
            }
            (
                u16::from_be_bytes([transport[0], transport[1]]),
                u16::from_be_bytes([transport[2], transport[3]]),
                Some(u32::from_be_bytes([
                    transport[4],
                    transport[5],
                    transport[6],
                    transport[7],
                ])),
            )
        }
        Protocol::Udp => {
            if transport.len() < UDP_HEADER_LEN {
                return Err(NetError::MalformedPacket {
                    reason: "truncated UDP header",
                });
            }
            (
                u16::from_be_bytes([transport[0], transport[1]]),
                u16::from_be_bytes([transport[2], transport[3]]),
                None,
            )
        }
        _ => (0, 0, None),
    };

    Ok(FrameFields {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        protocol,
        length: total_len,
        tcp_seq,
    })
}

/// The columns of one fast-parsed frame: the packed 5-tuple plus the two
/// non-key columns, exactly what [`crate::batch::PacketBatch::push_columns`]
/// consumes — no `Ipv4Addr`/`FiveTuple` round trip on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FastFrameColumns {
    pub packed_key: u128,
    pub length: u16,
    pub tcp_seq: Option<u32>,
}

/// Common-case specialisation of [`parse_frame_fields`]: an Ethernet II /
/// IPv4 frame with no IP options (IHL = 5) carrying TCP or UDP, long enough
/// that all parsed fields sit in the first 54 bytes. One bounds check covers
/// every field read and the 5-tuple is packed straight from the wire bytes,
/// so the batch decoder's hot loop stays branch-lean; anything else (IP
/// options, ICMP, minimal UDP frames) returns `None` and falls back to the
/// general parser. Must agree with [`parse_frame_fields`] wherever it
/// returns `Some` — pinned by a unit test over assorted frames.
#[inline(always)]
pub(crate) fn parse_frame_fields_fast(frame: &[u8]) -> Option<FastFrameColumns> {
    let head: &[u8; 54] = frame.get(..54)?.try_into().ok()?;
    // EtherType IPv4, version 4, IHL 5.
    if head[12] != 0x08 || head[13] != 0x00 || head[14] != 0x45 {
        return None;
    }
    let protocol = head[23];
    let tcp_seq = match protocol {
        6 => Some(u32::from_be_bytes([head[38], head[39], head[40], head[41]])),
        17 => None,
        _ => return None,
    };
    // Same layout as `FiveTuple::pack`:
    // src(32) · dst(32) · sport(16) · dport(16) · proto(8).
    let src = u32::from_be_bytes([head[26], head[27], head[28], head[29]]);
    let dst = u32::from_be_bytes([head[30], head[31], head[32], head[33]]);
    let src_port = u16::from_be_bytes([head[34], head[35]]);
    let dst_port = u16::from_be_bytes([head[36], head[37]]);
    Some(FastFrameColumns {
        packed_key: (u128::from(src) << 72)
            | (u128::from(dst) << 40)
            | (u128::from(src_port) << 24)
            | (u128::from(dst_port) << 8)
            | u128::from(protocol),
        length: u16::from_be_bytes([head[16], head[17]]),
        tcp_seq,
    })
}

/// Parses an Ethernet II / IPv4 frame back into a [`PacketRecord`].
///
/// `timestamp` is supplied by the caller (pcap record header). Frames that
/// are not IPv4, or that are too short to carry the expected headers, yield a
/// [`NetError::MalformedPacket`].
pub fn decode_frame(timestamp: Timestamp, frame: &[u8]) -> NetResult<PacketRecord> {
    Ok(parse_frame_fields(frame)?.into_record(timestamp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_record() -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_secs_f64(1.25),
            Ipv4Addr::new(10, 0, 0, 1),
            40123,
            Ipv4Addr::new(192, 168, 2, 3),
            443,
            500,
            0xDEADBEEF,
        )
    }

    #[test]
    fn checksum_known_vector() {
        // Classic RFC 1071 example header.
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&header), 0xb861);
        // Verification: checksum over a header containing its checksum is 0.
        let mut with = header;
        with[10..12].copy_from_slice(&0xb861u16.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn checksum_odd_length() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn tcp_round_trip() {
        let record = tcp_record();
        let frame = encode_frame(&record).unwrap();
        assert_eq!(frame.len(), ETHERNET_HEADER_LEN + 500);
        let decoded = decode_frame(record.timestamp, &frame).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn udp_round_trip() {
        let record = PacketRecord::udp(
            Timestamp::from_secs_f64(0.5),
            Ipv4Addr::new(172, 16, 5, 9),
            5353,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
            120,
        );
        let frame = encode_frame(&record).unwrap();
        let decoded = decode_frame(record.timestamp, &frame).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn icmp_like_protocol_round_trip() {
        let mut record = tcp_record();
        record.protocol = Protocol::Icmp;
        record.tcp_seq = None;
        record.src_port = 0;
        record.dst_port = 0;
        record.length = 84;
        let frame = encode_frame(&record).unwrap();
        let decoded = decode_frame(record.timestamp, &frame).unwrap();
        assert_eq!(decoded.protocol, Protocol::Icmp);
        assert_eq!(decoded.length, 84);
        assert_eq!(decoded.src_port, 0);
    }

    #[test]
    fn length_smaller_than_headers_is_clamped() {
        let mut record = tcp_record();
        record.length = 10; // smaller than IPv4+TCP headers
        let frame = encode_frame(&record).unwrap();
        let decoded = decode_frame(record.timestamp, &frame).unwrap();
        assert_eq!(decoded.length as usize, IPV4_HEADER_LEN + TCP_HEADER_LEN);
    }

    #[test]
    fn ipv4_header_checksum_validates() {
        let frame = encode_frame(&tcp_record()).unwrap();
        let ip = &frame[ETHERNET_HEADER_LEN..ETHERNET_HEADER_LEN + IPV4_HEADER_LEN];
        assert_eq!(internet_checksum(ip), 0, "IPv4 header checksum must verify");
    }

    #[test]
    fn decode_rejects_short_and_non_ip_frames() {
        assert!(decode_frame(Timestamp::ZERO, &[0u8; 10]).is_err());
        let mut frame = encode_frame(&tcp_record()).unwrap();
        frame[12] = 0x86; // EtherType → IPv6
        frame[13] = 0xDD;
        assert!(decode_frame(Timestamp::ZERO, &frame).is_err());
    }

    #[test]
    fn fast_parse_agrees_with_the_general_parser() {
        // Wherever the fast path answers, it must answer exactly like
        // parse_frame_fields; wherever it bows out, the general parser
        // decides alone. Exercised over TCP/UDP/ICMP records of assorted
        // lengths plus corrupted variants.
        let mut records = Vec::new();
        for length in [10u16, 40, 42, 54, 60, 500, 1500] {
            let mut tcp = tcp_record();
            tcp.length = length;
            records.push(tcp);
            let udp = PacketRecord::udp(
                Timestamp::from_secs_f64(0.5),
                Ipv4Addr::new(172, 16, 5, 9),
                5353,
                Ipv4Addr::new(8, 8, 8, 8),
                53,
                length,
            );
            records.push(udp);
            let mut icmp = tcp_record();
            icmp.protocol = Protocol::Icmp;
            icmp.tcp_seq = None;
            icmp.src_port = 0;
            icmp.dst_port = 0;
            icmp.length = length;
            records.push(icmp);
        }
        let agrees = |fast: FastFrameColumns, general: FrameFields| {
            fast.packed_key == general.packed_five_tuple()
                && fast.length == general.length
                && fast.tcp_seq == general.tcp_seq
        };
        for record in &records {
            let frame = encode_frame(record).unwrap();
            let general = parse_frame_fields(&frame).unwrap();
            if let Some(fast) = parse_frame_fields_fast(&frame) {
                assert!(agrees(fast, general), "{record:?}");
            }
            // Corruptions must never make the fast path answer differently
            // from the general one.
            for (byte, value) in [(12usize, 0x86u8), (14, 0x46), (14, 0x65), (23, 89)] {
                let mut bad = frame.clone();
                if bad.len() > byte {
                    bad[byte] = value;
                    match (parse_frame_fields_fast(&bad), parse_frame_fields(&bad)) {
                        (Some(fast), Ok(general)) => assert!(agrees(fast, general)),
                        (Some(_), Err(_)) => panic!("fast path accepted a bad frame"),
                        (None, _) => {}
                    }
                }
            }
        }
        // Common case actually takes the fast path.
        let frame = encode_frame(&tcp_record()).unwrap();
        assert!(parse_frame_fields_fast(&frame).is_some());
    }

    #[test]
    fn decode_rejects_bad_version_and_truncated_transport() {
        let good = encode_frame(&tcp_record()).unwrap();
        // Corrupt the IP version nibble.
        let mut bad_version = good.clone();
        bad_version[ETHERNET_HEADER_LEN] = 0x65;
        assert!(decode_frame(Timestamp::ZERO, &bad_version).is_err());
        // Truncate in the middle of the TCP header.
        let truncated = &good[..ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + 4];
        assert!(decode_frame(Timestamp::ZERO, truncated).is_err());
    }
}

//! # flowrank-net
//!
//! Packet and flow substrate for the `flowrank` workspace.
//!
//! The paper's monitor model is simple: a passive tap observes packets on a
//! link, optionally samples them, classifies them into flows (either by the
//! usual 5-tuple or by /24 destination prefix) and ranks the flows by their
//! size in packets. This crate provides exactly those building blocks,
//! without any I/O beyond a from-scratch libpcap file reader/writer:
//!
//! * [`packet`] — the in-memory packet record all other crates operate on.
//! * [`batch`] — the SoA [`PacketBatch`]: column vectors of timestamps,
//!   packed keys, lengths and sequence numbers, the batched unit of work the
//!   zero-copy pcap decoder, batch classification and skip-based sampling
//!   all share.
//! * [`flowkey`] — flow identities: [`flowkey::FiveTuple`],
//!   [`flowkey::DstPrefix`], and the runtime-selectable
//!   [`flowkey::FlowDefinition`] (Sec. 6 compares both definitions).
//! * [`classify`] — the flow table that aggregates packets into flows and
//!   produces ranked lists.
//! * [`headers`] — Ethernet II / IPv4 / TCP / UDP encoding and parsing with
//!   checksums, used to materialise synthetic packets as real frames.
//! * [`pcap`] — classic libpcap capture-file reader and writer so synthetic
//!   traces can be exported to, and ingested from, standard tooling.
//! * [`tenant`] — compact [`TenantId`]s and the tenant-tagged
//!   [`TaggedBatch`], the unit of work flowing between fleet sources and
//!   the multi-tenant fleet layer.
//!
//! The crate is sans-IO in the smoltcp spirit: every component is driven
//! packet-by-packet by its caller and owns no sockets, timers or files
//! (except the explicit pcap reader/writer, which operates on any
//! `std::io::Read`/`Write`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod classify;
pub mod error;
pub mod flowkey;
pub mod headers;
pub mod packet;
pub mod pcap;
pub mod tenant;

pub use batch::PacketBatch;
pub use classify::{FlowStats, FlowTable, RankedFlow, ShardedFlowTable};
pub use error::{NetError, NetResult};
pub use flowkey::{AnyFlowKey, DstPrefix, FiveTuple, FlowDefinition, FlowKey, Protocol};
pub use packet::{PacketRecord, Timestamp};
pub use tenant::{TaggedBatch, TenantId};

// The compact-key substrate the flow tables are built on, re-exported so
// downstream crates can name the traits without a direct dependency.
// `shard_of` is the single routing rule every sharded consumer — the
// in-crate [`ShardedFlowTable`] and the monitor's pipelined worker
// runtime — must agree on, so it is re-exported from the same place.
pub use flowrank_flowtable::{shard_of, CompactKey, FlowMap};

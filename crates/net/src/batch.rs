//! The SoA packet batch — the pipeline's batched unit of work.
//!
//! [`PacketBatch`] stores a contiguous run of packets as *columns* (structure
//! of arrays) instead of a `Vec<PacketRecord>` of structs: one vector of
//! nanosecond timestamps, one of packed 5-tuple keys, one of lengths and one
//! of TCP sequence numbers. The columnar layout is what the batched hot
//! paths are built on:
//!
//! * the zero-copy pcap decoder ([`crate::pcap::pcap_bytes_to_batch`])
//!   parses header fields in place and appends columns directly, never
//!   materialising per-packet `PacketRecord`s or frame buffers;
//! * batch classification ([`crate::classify::FlowTable::observe_batch`])
//!   walks the key column as plain integers;
//! * skip-based samplers index straight into the batch, touching only the
//!   packets they keep.
//!
//! The representation is **lossless**: [`PacketBatch::record`] reconstructs
//! a `PacketRecord` equal to the one pushed (protocol numbers are
//! canonicalised exactly as [`crate::flowkey::Protocol`] equality already
//! does), which is what lets the streaming monitor treat `push(&packet)` as
//! a one-element batch with bit-identical results.
//!
//! Like the flow tables, a batch recycles its allocations across
//! [`PacketBatch::clear`] calls, so one reusable batch can carry an entire
//! trace replay without per-bin allocation.

use std::net::Ipv4Addr;

use flowrank_flowtable::CompactKey;

use crate::flowkey::{AnyFlowKey, DstPrefix, FiveTuple, FlowDefinition, FlowKey};
use crate::packet::{PacketRecord, Timestamp};

/// Sentinel for "no TCP sequence number" in the sequence column (a real
/// sequence number occupies only the low 32 bits).
const NO_TCP_SEQ: u64 = u64::MAX;

/// A structure-of-arrays batch of packets.
///
/// Columns are index-aligned: element `i` of every column describes the same
/// packet. Packets are append-only; [`PacketBatch::clear`] resets the batch
/// while keeping the column allocations warm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketBatch {
    ts_nanos: Vec<u64>,
    keys: Vec<u128>,
    lengths: Vec<u16>,
    tcp_seqs: Vec<u64>,
}

impl PacketBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `n` packets in every column.
    pub fn with_capacity(n: usize) -> Self {
        PacketBatch {
            ts_nanos: Vec::with_capacity(n),
            keys: Vec::with_capacity(n),
            lengths: Vec::with_capacity(n),
            tcp_seqs: Vec::with_capacity(n),
        }
    }

    /// Builds a batch from a slice of packet records.
    pub fn from_records(records: &[PacketRecord]) -> Self {
        let mut batch = Self::with_capacity(records.len());
        batch.extend_from_records(records);
        batch
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.ts_nanos.len()
    }

    /// Whether the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.ts_nanos.is_empty()
    }

    /// Removes every packet while keeping the column allocations, so a
    /// reusable batch never re-allocates across decode/replay iterations.
    pub fn clear(&mut self) {
        self.ts_nanos.clear();
        self.keys.clear();
        self.lengths.clear();
        self.tcp_seqs.clear();
    }

    /// Reserves room for `additional` more packets in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.ts_nanos.reserve(additional);
        self.keys.reserve(additional);
        self.lengths.reserve(additional);
        self.tcp_seqs.reserve(additional);
    }

    /// Appends one packet from its raw column values. `key` must be the
    /// packed [`FiveTuple`] of the packet ([`CompactKey::pack`]).
    #[inline]
    pub fn push_columns(&mut self, ts_nanos: u64, key: u128, length: u16, tcp_seq: Option<u32>) {
        self.ts_nanos.push(ts_nanos);
        self.keys.push(key);
        self.lengths.push(length);
        self.tcp_seqs.push(tcp_seq.map_or(NO_TCP_SEQ, u64::from));
    }

    /// Appends one packet record.
    #[inline]
    pub fn push_record(&mut self, packet: &PacketRecord) {
        self.push_columns(
            packet.timestamp.as_nanos(),
            FiveTuple::from_packet(packet).pack(),
            packet.length,
            packet.tcp_seq,
        );
    }

    /// Appends a slice of packet records.
    pub fn extend_from_records(&mut self, records: &[PacketRecord]) {
        self.reserve(records.len());
        for packet in records {
            self.push_record(packet);
        }
    }

    /// Appends `other[range]` to this batch, column for column — the
    /// re-chunking primitive behind the streaming pipeline's `Chunked`
    /// source adapter. No per-packet reconstruction happens: each column is
    /// copied as a plain slice.
    pub fn extend_from_batch(&mut self, other: &PacketBatch, range: std::ops::Range<usize>) {
        self.ts_nanos
            .extend_from_slice(&other.ts_nanos[range.clone()]);
        self.keys.extend_from_slice(&other.keys[range.clone()]);
        self.lengths
            .extend_from_slice(&other.lengths[range.clone()]);
        self.tcp_seqs.extend_from_slice(&other.tcp_seqs[range]);
    }

    /// Timestamp of packet `i`.
    #[inline]
    pub fn timestamp(&self, i: usize) -> Timestamp {
        Timestamp::from_nanos(self.ts_nanos[i])
    }

    /// The raw nanosecond-timestamp column.
    pub fn ts_nanos(&self) -> &[u64] {
        &self.ts_nanos
    }

    /// The packed 5-tuple key of packet `i` (see [`FiveTuple::pack`]).
    #[inline]
    pub fn packed_key(&self, i: usize) -> u128 {
        self.keys[i]
    }

    /// The packed 5-tuple key column.
    pub fn packed_keys(&self) -> &[u128] {
        &self.keys
    }

    /// IP length of packet `i` in bytes.
    #[inline]
    pub fn length(&self, i: usize) -> u16 {
        self.lengths[i]
    }

    /// TCP sequence number of packet `i`, when it carried one.
    #[inline]
    pub fn tcp_seq(&self, i: usize) -> Option<u32> {
        let raw = self.tcp_seqs[i];
        if raw == NO_TCP_SEQ {
            None
        } else {
            Some(raw as u32)
        }
    }

    /// The 5-tuple of packet `i`, unpacked from the key column.
    #[inline]
    pub fn five_tuple(&self, i: usize) -> FiveTuple {
        FiveTuple::unpack(self.keys[i])
    }

    /// Destination address of packet `i`, read straight out of the packed
    /// key (bits 40–71) without unpacking the full 5-tuple.
    #[inline]
    pub fn dst_ip(&self, i: usize) -> Ipv4Addr {
        Ipv4Addr::from((self.keys[i] >> 40) as u32)
    }

    /// The flow key of packet `i` under `definition` — the batched
    /// counterpart of [`FlowDefinition::key_of`].
    #[inline]
    pub fn flow_key(&self, i: usize, definition: FlowDefinition) -> AnyFlowKey {
        match definition {
            FlowDefinition::FiveTuple => AnyFlowKey::FiveTuple(self.five_tuple(i)),
            FlowDefinition::DstPrefix(len) => {
                AnyFlowKey::DstPrefix(DstPrefix::of(self.dst_ip(i), len))
            }
        }
    }

    /// Reconstructs packet `i` as a [`PacketRecord`].
    ///
    /// The reconstruction is lossless up to protocol-number
    /// canonicalisation: a hand-built `Protocol::Other(6)` comes back as
    /// `Protocol::Tcp`, which compares, hashes and packs identically (see
    /// [`crate::flowkey::Protocol`]).
    #[inline]
    pub fn record(&self, i: usize) -> PacketRecord {
        let five = self.five_tuple(i);
        PacketRecord {
            timestamp: self.timestamp(i),
            src_ip: five.src_ip,
            dst_ip: five.dst_ip,
            src_port: five.src_port,
            dst_port: five.dst_port,
            protocol: five.protocol,
            length: self.lengths[i],
            tcp_seq: self.tcp_seq(i),
        }
    }

    /// Iterates over the batch as reconstructed [`PacketRecord`]s.
    pub fn iter_records(&self) -> impl Iterator<Item = PacketRecord> + '_ {
        (0..self.len()).map(|i| self.record(i))
    }

    /// Materialises the whole batch as a vector of packet records.
    pub fn to_records(&self) -> Vec<PacketRecord> {
        self.iter_records().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowkey::Protocol;

    fn sample_packets() -> Vec<PacketRecord> {
        vec![
            PacketRecord::tcp(
                Timestamp::from_nanos(1_234_567),
                Ipv4Addr::new(10, 1, 2, 3),
                40_000,
                Ipv4Addr::new(192, 168, 55, 77),
                443,
                500,
                0xDEAD_BEEF,
            ),
            PacketRecord::udp(
                Timestamp::from_secs_f64(1.5),
                Ipv4Addr::new(172, 16, 0, 9),
                53,
                Ipv4Addr::new(8, 8, 8, 8),
                53,
                120,
            ),
            PacketRecord {
                timestamp: Timestamp::from_secs_f64(2.0),
                src_ip: Ipv4Addr::new(1, 2, 3, 4),
                dst_ip: Ipv4Addr::new(4, 3, 2, 1),
                src_port: 0,
                dst_port: 0,
                protocol: Protocol::Icmp,
                length: 84,
                tcp_seq: None,
            },
        ]
    }

    #[test]
    fn round_trips_records_losslessly() {
        let packets = sample_packets();
        let batch = PacketBatch::from_records(&packets);
        assert_eq!(batch.len(), packets.len());
        assert!(!batch.is_empty());
        for (i, packet) in packets.iter().enumerate() {
            assert_eq!(batch.record(i), *packet, "packet {i}");
            assert_eq!(batch.timestamp(i), packet.timestamp);
            assert_eq!(batch.length(i), packet.length);
            assert_eq!(batch.tcp_seq(i), packet.tcp_seq);
            assert_eq!(batch.five_tuple(i), FiveTuple::from_packet(packet));
            assert_eq!(batch.dst_ip(i), packet.dst_ip);
        }
        assert_eq!(batch.to_records(), packets);
    }

    #[test]
    fn flow_keys_match_the_record_path() {
        let packets = sample_packets();
        let batch = PacketBatch::from_records(&packets);
        for definition in [FlowDefinition::FiveTuple, FlowDefinition::PREFIX24] {
            for (i, packet) in packets.iter().enumerate() {
                assert_eq!(
                    batch.flow_key(i, definition),
                    definition.key_of(packet),
                    "{definition}, packet {i}"
                );
            }
        }
    }

    #[test]
    fn protocol_other_is_canonicalised_consistently() {
        let mut packet = sample_packets()[0];
        packet.protocol = Protocol::Other(6); // same IANA number as TCP
        let batch = PacketBatch::from_records(std::slice::from_ref(&packet));
        let rebuilt = batch.record(0);
        assert_eq!(rebuilt, packet, "Protocol equality is by number");
        assert!(matches!(rebuilt.protocol, Protocol::Tcp));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut batch = PacketBatch::with_capacity(8);
        batch.extend_from_records(&sample_packets());
        let capacity = batch.ts_nanos.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.ts_nanos.capacity(), capacity);
        batch.push_record(&sample_packets()[0]);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn extend_from_batch_copies_the_requested_range() {
        let packets = sample_packets();
        let whole = PacketBatch::from_records(&packets);
        let mut chunk = PacketBatch::new();
        chunk.extend_from_batch(&whole, 1..3);
        assert_eq!(chunk.to_records(), &packets[1..3]);
        chunk.extend_from_batch(&whole, 0..1);
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.record(2), packets[0]);
        chunk.extend_from_batch(&whole, 2..2);
        assert_eq!(chunk.len(), 3, "empty range appends nothing");
    }

    #[test]
    fn tcp_seq_sentinel_never_collides_with_real_sequences() {
        let mut packet = sample_packets()[0];
        packet.tcp_seq = Some(u32::MAX);
        let batch = PacketBatch::from_records(std::slice::from_ref(&packet));
        assert_eq!(batch.tcp_seq(0), Some(u32::MAX));
    }
}

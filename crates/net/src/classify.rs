//! Flow classification and ranking.
//!
//! [`FlowTable`] is the monitor's flow cache: it is driven packet-by-packet,
//! aggregates per-flow counters, and produces ranked top-`t` lists. Both the
//! unsampled ("ground truth") and sampled streams of the trace-driven
//! experiments are classified with the same table, after which the two
//! rankings are compared by the metrics in `flowrank-core`.
//!
//! The table is a [`FlowMap`] keyed by the packed
//! [`flowrank_flowtable::CompactKey`] form of the flow identity, so the
//! per-packet lookup is an integer hash and
//! compare rather than a structural SipHash pass, and `clear()` recycles
//! the allocation across measurement bins. [`ShardedFlowTable`] partitions
//! the same accumulator by key hash so one bin can be classified in
//! parallel and still drain into a single deterministic ranking.

use flowrank_flowtable::{shard_of, FlowMap};

use crate::batch::PacketBatch;
use crate::flowkey::FlowKey;
use crate::packet::{PacketRecord, Timestamp};
use std::ops::Range;

/// Per-flow counters maintained by the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Number of packets observed.
    pub packets: u64,
    /// Number of bytes observed.
    pub bytes: u64,
    /// Timestamp of the first observed packet.
    pub first_seen: Timestamp,
    /// Timestamp of the last observed packet.
    pub last_seen: Timestamp,
    /// Smallest TCP sequence number seen (when the flow carries TCP).
    pub min_tcp_seq: Option<u32>,
    /// Largest TCP sequence number seen (when the flow carries TCP).
    pub max_tcp_seq: Option<u32>,
}

impl FlowStats {
    #[inline]
    fn new(timestamp: Timestamp, length: u16, tcp_seq: Option<u32>) -> Self {
        FlowStats {
            packets: 1,
            bytes: length as u64,
            first_seen: timestamp,
            last_seen: timestamp,
            min_tcp_seq: tcp_seq,
            max_tcp_seq: tcp_seq,
        }
    }

    #[inline]
    fn update(&mut self, timestamp: Timestamp, length: u16, tcp_seq: Option<u32>) {
        self.packets += 1;
        self.bytes += length as u64;
        if timestamp < self.first_seen {
            self.first_seen = timestamp;
        }
        if timestamp > self.last_seen {
            self.last_seen = timestamp;
        }
        if let Some(seq) = tcp_seq {
            self.min_tcp_seq = Some(self.min_tcp_seq.map_or(seq, |m| m.min(seq)));
            self.max_tcp_seq = Some(self.max_tcp_seq.map_or(seq, |m| m.max(seq)));
        }
    }

    /// Flow duration (last minus first packet timestamp).
    pub fn duration(&self) -> Timestamp {
        self.last_seen.saturating_sub(self.first_seen)
    }

    /// Span of observed TCP sequence numbers, in bytes, if the flow carried
    /// at least two distinct sequence numbers.
    ///
    /// This is the raw ingredient of the sequence-number size estimator
    /// (paper Sec. 9, second future direction).
    pub fn tcp_seq_span(&self) -> Option<u64> {
        match (self.min_tcp_seq, self.max_tcp_seq) {
            (Some(lo), Some(hi)) if hi > lo => Some((hi - lo) as u64),
            _ => None,
        }
    }
}

/// A flow together with its rank-relevant size, as returned by the ranking
/// accessors of [`FlowTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedFlow<K> {
    /// Flow identity.
    pub key: K,
    /// Size in packets (the paper ranks flows by packet count).
    pub packets: u64,
    /// Size in bytes.
    pub bytes: u64,
}

/// A flow cache keyed by an arbitrary [`FlowKey`].
#[derive(Debug, Clone)]
pub struct FlowTable<K: FlowKey> {
    flows: FlowMap<K, FlowStats>,
    total_packets: u64,
    total_bytes: u64,
}

impl<K: FlowKey> Default for FlowTable<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: FlowKey> FlowTable<K> {
    /// Creates an empty flow table.
    pub fn new() -> Self {
        FlowTable {
            flows: FlowMap::new(),
            total_packets: 0,
            total_bytes: 0,
        }
    }

    /// Creates an empty flow table pre-sized for `n` flows: the first `n`
    /// distinct flows never trigger a table growth.
    pub fn with_capacity(n: usize) -> Self {
        FlowTable {
            flows: FlowMap::with_capacity(n),
            total_packets: 0,
            total_bytes: 0,
        }
    }

    /// Flows the table can hold before growing.
    pub fn capacity(&self) -> usize {
        self.flows.capacity()
    }

    /// Observes one packet: classifies it and updates its flow's counters.
    /// Returns the flow's updated packet count.
    #[inline]
    pub fn observe(&mut self, packet: &PacketRecord) -> u64 {
        self.observe_keyed(K::from_packet(packet), packet)
    }

    /// Observes a packet whose key has already been computed (avoids
    /// re-deriving the key when the caller classifies under several
    /// definitions at once). Returns the flow's updated packet count — the
    /// streaming monitor uses this to maintain top-k structures without a
    /// second lookup.
    #[inline]
    pub fn observe_keyed(&mut self, key: K, packet: &PacketRecord) -> u64 {
        self.observe_keyed_parts(key, packet.timestamp, packet.length, packet.tcp_seq)
    }

    /// Observes one packet from its rank-relevant columns — the entry point
    /// the batched pipeline uses, so a [`PacketBatch`] never has to
    /// materialise a [`PacketRecord`] to be classified. Produces exactly the
    /// same counters as [`FlowTable::observe_keyed`] on the equivalent
    /// record.
    #[inline]
    pub fn observe_keyed_parts(
        &mut self,
        key: K,
        timestamp: Timestamp,
        length: u16,
        tcp_seq: Option<u32>,
    ) -> u64 {
        self.total_packets += 1;
        self.total_bytes += length as u64;
        self.flows
            .upsert(
                key,
                || FlowStats::new(timestamp, length, tcp_seq),
                |s| s.update(timestamp, length, tcp_seq),
            )
            .packets
    }

    /// Classifies a contiguous range of a [`PacketBatch`] in one pass.
    ///
    /// `keys` holds the flow key of every packet in `range`, in order
    /// (`keys[i - range.start]` belongs to batch index `i`) — the caller
    /// derives keys once per batch and every consumer shares them. The
    /// resulting counters are element-for-element identical to observing the
    /// same packets one at a time.
    pub fn observe_batch(&mut self, keys: &[K], batch: &PacketBatch, range: Range<usize>) {
        assert_eq!(keys.len(), range.len(), "one key per packet in range");
        for (key, i) in keys.iter().zip(range) {
            self.observe_keyed_parts(*key, batch.timestamp(i), batch.length(i), batch.tcp_seq(i));
        }
    }

    /// Number of distinct flows seen.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total number of packets observed.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Total number of bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Returns the counters of a specific flow, if present.
    pub fn get(&self, key: &K) -> Option<&FlowStats> {
        self.flows.get(key)
    }

    /// Size in packets of a specific flow, 0 when the flow was never seen.
    ///
    /// This is the lookup shape the swapped-pair metrics need: a flow the
    /// sampler missed entirely has sampled size zero, not "absent".
    pub fn size_of(&self, key: &K) -> u64 {
        self.flows.get(key).map_or(0, |s| s.packets)
    }

    /// Iterates over `(key, packets)` pairs — the minimal view the ranking
    /// metrics consume, without exposing the full [`FlowStats`]. Order is
    /// the table's deterministic drain order (first observation of each
    /// flow).
    pub fn iter_sizes(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.flows.iter().map(|(k, s)| (k, s.packets))
    }

    /// Iterates over all flows and their counters, in deterministic drain
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &FlowStats)> + '_ {
        self.flows.iter()
    }

    /// Returns all flows ranked by decreasing packet count.
    ///
    /// Ties are broken by byte count; remaining ties keep the table's
    /// deterministic drain order (first observation), so the full ranking
    /// is a pure function of the observed packet sequence.
    pub fn ranked_by_packets(&self) -> Vec<RankedFlow<K>> {
        let mut flows: Vec<RankedFlow<K>> = self
            .flows
            .iter()
            .map(|(k, s)| RankedFlow {
                key: k,
                packets: s.packets,
                bytes: s.bytes,
            })
            .collect();
        flows.sort_by(|a, b| b.packets.cmp(&a.packets).then(b.bytes.cmp(&a.bytes)));
        flows
    }

    /// Returns the top `t` flows by packet count.
    pub fn top_by_packets(&self, t: usize) -> Vec<RankedFlow<K>> {
        let mut ranked = self.ranked_by_packets();
        ranked.truncate(t);
        ranked
    }

    /// Returns the sizes (in packets) of all flows, unordered.
    pub fn packet_counts(&self) -> Vec<u64> {
        self.flows.values().map(|s| s.packets).collect()
    }

    /// Removes all flows and resets the totals (start of a new measurement
    /// bin in the paper's "binning" methodology). The allocation is kept,
    /// so the next bin classifies into warm memory.
    pub fn clear(&mut self) {
        self.flows.clear();
        self.total_packets = 0;
        self.total_bytes = 0;
    }

    /// Evicts the coldest flows until at most `budget` entries remain,
    /// returning how many were removed.
    ///
    /// This is the space-saving-style memory cap behind per-tenant budgets:
    /// the table sheds *state*, not *history* — `total_packets` /
    /// `total_bytes` keep counting everything ever observed, only the
    /// per-flow entries go away (an evicted flow that returns starts a new
    /// entry, exactly like space-saving restarting a counter). Victim order
    /// is a pure function of table contents: ascending packet count, then
    /// ascending byte count, then ascending packed key — so every replay of
    /// the same packet sequence evicts the same flows and the resulting
    /// rankings are golden-pinnable.
    pub fn evict_to_budget(&mut self, budget: usize) -> u64 {
        if self.flows.len() <= budget {
            return 0;
        }
        let excess = self.flows.len() - budget;
        let mut victims: Vec<(u64, u64, <K as flowrank_flowtable::CompactKey>::Packed, K)> = self
            .flows
            .iter()
            .map(|(k, s)| (s.packets, s.bytes, k.pack(), k))
            .collect();
        victims.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        victims.truncate(excess);
        for (_, _, _, key) in &victims {
            self.flows.remove(key);
        }
        excess as u64
    }
}

/// A flow table partitioned by key hash into N disjoint shards.
///
/// Every key deterministically owns exactly one shard
/// ([`flowrank_flowtable::shard_of`] on its packed form), so per-key
/// counters never need cross-shard merging: the sharded table observes a
/// packet stream to exactly the same per-flow counts as a sequential
/// [`FlowTable`], whether it is driven packet-by-packet
/// ([`ShardedFlowTable::observe_keyed`]) or classifies a whole buffered bin
/// with one worker thread per shard
/// ([`ShardedFlowTable::observe_bin_parallel`]). Draining iterates the
/// shards in index order (each in its own deterministic drain order), which
/// is deterministic but *different* from a single table's global insertion
/// order — consumers that rank flows re-sort with total tie-breaks, so
/// rankings and comparison outcomes stay bit-identical across shard counts
/// (pinned by `streaming_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct ShardedFlowTable<K: FlowKey> {
    shards: Vec<FlowTable<K>>,
}

impl<K: FlowKey> ShardedFlowTable<K> {
    /// Creates a table with `shards` partitions (at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedFlowTable {
            shards: (0..shards.max(1)).map(|_| FlowTable::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes `key` to its owning shard.
    #[inline]
    fn shard_index(&self, key: &K) -> usize {
        shard_of(key.pack(), self.shards.len())
    }

    /// Observes a packet with a precomputed key into its owning shard.
    /// Returns the flow's updated packet count.
    pub fn observe_keyed(&mut self, key: K, packet: &PacketRecord) -> u64 {
        let shard = self.shard_index(&key);
        self.shards[shard].observe_keyed(key, packet)
    }

    /// Observes one packet from its columns into its owning shard (the
    /// batched counterpart of [`ShardedFlowTable::observe_keyed`]).
    #[inline]
    pub fn observe_keyed_parts(
        &mut self,
        key: K,
        timestamp: Timestamp,
        length: u16,
        tcp_seq: Option<u32>,
    ) -> u64 {
        let shard = self.shard_index(&key);
        self.shards[shard].observe_keyed_parts(key, timestamp, length, tcp_seq)
    }

    /// Classifies a contiguous range of a [`PacketBatch`] with one worker
    /// per shard — the batch counterpart of
    /// [`ShardedFlowTable::observe_bin_parallel`]. `keys` covers `range` in
    /// order (`keys[i - range.start]` belongs to batch index `i`). Counters
    /// are element-for-element identical to feeding every `(key, packet)`
    /// pair through [`ShardedFlowTable::observe_keyed_parts`] sequentially.
    ///
    /// # Panics
    ///
    /// Panics when `keys` and `range` have different lengths.
    pub fn observe_batch_parallel(&mut self, keys: &[K], batch: &PacketBatch, range: Range<usize>) {
        assert_eq!(keys.len(), range.len(), "one key per packet in range");
        let shard_count = self.shards.len();
        if shard_count == 1 {
            self.shards[0].observe_batch(keys, batch, range);
            return;
        }
        // Route once up front: every worker still scans the whole range,
        // but it compares a small integer per packet instead of re-hashing
        // every key in every shard (which would make total hashing work
        // grow with the shard count).
        let routes: Vec<u16> = keys
            .iter()
            .map(|key| shard_of(key.pack(), shard_count) as u16)
            .collect();
        let routes = &routes;
        let start = range.start;
        std::thread::scope(|scope| {
            for (index, shard) in self.shards.iter_mut().enumerate() {
                scope.spawn(move || {
                    let index = index as u16;
                    for (slot, route) in routes.iter().enumerate() {
                        if *route == index {
                            let i = start + slot;
                            shard.observe_keyed_parts(
                                keys[slot],
                                batch.timestamp(i),
                                batch.length(i),
                                batch.tcp_seq(i),
                            );
                        }
                    }
                });
            }
        });
    }

    /// Classifies a whole bin of packet records in parallel — a
    /// compatibility shim over [`ShardedFlowTable::observe_batch_parallel`]
    /// that columnarises the records first. The result is
    /// element-for-element identical to feeding every `(key, packet)` pair
    /// through [`ShardedFlowTable::observe_keyed`] sequentially; callers on
    /// the hot path should build the [`PacketBatch`] themselves and reuse
    /// it.
    ///
    /// # Panics
    ///
    /// Panics when `keys` and `packets` have different lengths.
    pub fn observe_bin_parallel(&mut self, keys: &[K], packets: &[PacketRecord]) {
        assert_eq!(keys.len(), packets.len(), "one key per packet");
        let batch = PacketBatch::from_records(packets);
        self.observe_batch_parallel(keys, &batch, 0..batch.len());
    }

    /// Number of distinct flows across all shards.
    pub fn flow_count(&self) -> usize {
        self.shards.iter().map(FlowTable::flow_count).sum()
    }

    /// Total packets observed across all shards.
    pub fn total_packets(&self) -> u64 {
        self.shards.iter().map(FlowTable::total_packets).sum()
    }

    /// Total bytes observed across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(FlowTable::total_bytes).sum()
    }

    /// The counters of a specific flow, looked up in its owning shard.
    pub fn get(&self, key: &K) -> Option<&FlowStats> {
        self.shards[self.shard_index(key)].get(key)
    }

    /// Size in packets of a specific flow, 0 when never seen.
    pub fn size_of(&self, key: &K) -> u64 {
        self.shards[self.shard_index(key)].size_of(key)
    }

    /// Iterates over `(key, packets)` pairs, shards in index order.
    pub fn iter_sizes(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.shards.iter().flat_map(FlowTable::iter_sizes)
    }

    /// Clears every shard, keeping their allocations for the next bin.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowkey::{DstPrefix, FiveTuple};
    use std::net::Ipv4Addr;

    fn packet(src_last: u8, dst_last: u8, dport: u16, len: u16, t: f64) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_secs_f64(t),
            Ipv4Addr::new(10, 0, 0, src_last),
            1000 + src_last as u16,
            Ipv4Addr::new(192, 168, 1, dst_last),
            dport,
            len,
            (t * 1000.0) as u32,
        )
    }

    #[test]
    fn empty_table() {
        let table: FlowTable<FiveTuple> = FlowTable::new();
        assert_eq!(table.flow_count(), 0);
        assert_eq!(table.total_packets(), 0);
        assert!(table.ranked_by_packets().is_empty());
        assert!(table.top_by_packets(5).is_empty());
    }

    #[test]
    fn aggregates_packets_into_flows() {
        let mut table: FlowTable<FiveTuple> = FlowTable::with_capacity(4);
        for i in 0..5 {
            table.observe(&packet(1, 1, 80, 500, i as f64));
        }
        for i in 0..3 {
            table.observe(&packet(2, 1, 80, 1500, i as f64));
        }
        assert_eq!(table.flow_count(), 2);
        assert_eq!(table.total_packets(), 8);
        assert_eq!(table.total_bytes(), 5 * 500 + 3 * 1500);

        let key = FiveTuple::from_packet(&packet(1, 1, 80, 500, 0.0));
        let stats = table.get(&key).unwrap();
        assert_eq!(stats.packets, 5);
        assert_eq!(stats.bytes, 2500);
        assert_eq!(stats.first_seen, Timestamp::from_secs_f64(0.0));
        assert_eq!(stats.last_seen, Timestamp::from_secs_f64(4.0));
        assert_eq!(stats.duration(), Timestamp::from_secs_f64(4.0));
    }

    #[test]
    fn ranking_orders_by_packet_count() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for (host, count) in [(1u8, 10usize), (2, 3), (3, 7), (4, 1)] {
            for i in 0..count {
                table.observe(&packet(host, host, 80, 500, i as f64));
            }
        }
        let ranked = table.ranked_by_packets();
        let counts: Vec<u64> = ranked.iter().map(|f| f.packets).collect();
        assert_eq!(counts, vec![10, 7, 3, 1]);
        let top2 = table.top_by_packets(2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].packets, 10);
        assert_eq!(top2[1].packets, 7);
        // Asking for more than available returns everything.
        assert_eq!(table.top_by_packets(100).len(), 4);
    }

    #[test]
    fn prefix_table_aggregates_subnets() {
        let mut table: FlowTable<DstPrefix> = FlowTable::new();
        // Two different 5-tuples to the same /24 destination.
        table.observe(&packet(1, 10, 80, 500, 0.0));
        table.observe(&packet(2, 20, 443, 500, 1.0));
        // One packet to a different /24.
        let mut other = packet(3, 1, 80, 500, 2.0);
        other.dst_ip = Ipv4Addr::new(172, 16, 0, 1);
        table.observe(&other);
        assert_eq!(table.flow_count(), 2);
        let ranked = table.ranked_by_packets();
        assert_eq!(ranked[0].packets, 2);
        assert_eq!(ranked[1].packets, 1);
    }

    #[test]
    fn tcp_seq_span_tracking() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        let mut p1 = packet(1, 1, 80, 500, 0.0);
        p1.tcp_seq = Some(1_000);
        let mut p2 = p1;
        p2.tcp_seq = Some(51_000);
        p2.timestamp = Timestamp::from_secs_f64(3.0);
        table.observe(&p1);
        table.observe(&p2);
        let key = FiveTuple::from_packet(&p1);
        let stats = table.get(&key).unwrap();
        assert_eq!(stats.tcp_seq_span(), Some(50_000));
        // A single sequence number yields no span.
        let mut single: FlowTable<FiveTuple> = FlowTable::new();
        single.observe(&p1);
        assert_eq!(single.get(&key).unwrap().tcp_seq_span(), None);
    }

    #[test]
    fn streaming_hooks_report_sizes() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        assert_eq!(table.observe(&packet(1, 1, 80, 500, 0.0)), 1);
        assert_eq!(table.observe(&packet(1, 1, 80, 500, 1.0)), 2);
        assert_eq!(table.observe(&packet(2, 1, 80, 500, 0.0)), 1);
        let key = FiveTuple::from_packet(&packet(1, 1, 80, 500, 0.0));
        let missing = FiveTuple::from_packet(&packet(9, 9, 80, 500, 0.0));
        assert_eq!(table.size_of(&key), 2);
        assert_eq!(table.size_of(&missing), 0);
        let mut sizes: Vec<u64> = table.iter_sizes().map(|(_, n)| n).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        table.observe(&packet(1, 1, 80, 500, 0.0));
        assert_eq!(table.flow_count(), 1);
        table.clear();
        assert_eq!(table.flow_count(), 0);
        assert_eq!(table.total_packets(), 0);
        assert_eq!(table.total_bytes(), 0);
    }

    #[test]
    fn packet_counts_unordered_contents() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for (host, count) in [(1u8, 4usize), (2, 2)] {
            for i in 0..count {
                table.observe(&packet(host, host, 80, 500, i as f64));
            }
        }
        let mut counts = table.packet_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 4]);
    }

    #[test]
    fn sharded_table_matches_sequential_counts() {
        let mut packets = Vec::new();
        for i in 0..40u8 {
            for j in 0..(1 + i as usize % 7) {
                packets.push(packet(i % 8, i % 5, 80, 500, j as f64));
            }
        }
        let keys: Vec<FiveTuple> = packets.iter().map(FiveTuple::from_packet).collect();

        let mut sequential: FlowTable<FiveTuple> = FlowTable::new();
        for (key, p) in keys.iter().zip(&packets) {
            sequential.observe_keyed(*key, p);
        }

        for shards in [1, 2, 4, 7] {
            let mut sharded: ShardedFlowTable<FiveTuple> = ShardedFlowTable::new(shards);
            sharded.observe_bin_parallel(&keys, &packets);
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.flow_count(), sequential.flow_count());
            assert_eq!(sharded.total_packets(), sequential.total_packets());
            assert_eq!(sharded.total_bytes(), sequential.total_bytes());
            for (key, stats) in sequential.iter() {
                assert_eq!(sharded.get(&key), Some(stats), "{shards} shards");
                assert_eq!(sharded.size_of(&key), stats.packets);
            }
            let mut sizes: Vec<(FiveTuple, u64)> = sharded.iter_sizes().collect();
            sizes.sort();
            let mut expected: Vec<(FiveTuple, u64)> = sequential.iter_sizes().collect();
            expected.sort();
            assert_eq!(sizes, expected);
        }
    }

    #[test]
    fn sharded_table_streams_and_clears() {
        let mut sharded: ShardedFlowTable<FiveTuple> = ShardedFlowTable::new(3);
        let p = packet(1, 1, 80, 500, 0.0);
        assert_eq!(sharded.observe_keyed(FiveTuple::from_packet(&p), &p), 1);
        assert_eq!(sharded.observe_keyed(FiveTuple::from_packet(&p), &p), 2);
        let missing = FiveTuple::from_packet(&packet(9, 9, 9, 9, 0.0));
        assert_eq!(sharded.size_of(&missing), 0);
        assert!(sharded.get(&missing).is_none());
        sharded.clear();
        assert_eq!(sharded.flow_count(), 0);
        assert_eq!(sharded.total_packets(), 0);
        // Zero shards clamps to one.
        assert_eq!(ShardedFlowTable::<FiveTuple>::new(0).shard_count(), 1);
    }

    #[test]
    fn batch_observation_matches_per_packet_observation() {
        let mut packets = Vec::new();
        for i in 0..30u8 {
            for j in 0..(1 + i as usize % 5) {
                packets.push(packet(i % 6, i % 4, 80, 500 + i as u16, j as f64));
            }
        }
        let batch = PacketBatch::from_records(&packets);
        let keys: Vec<FiveTuple> = packets.iter().map(FiveTuple::from_packet).collect();

        let mut sequential: FlowTable<FiveTuple> = FlowTable::new();
        for (key, p) in keys.iter().zip(&packets) {
            sequential.observe_keyed(*key, p);
        }

        // Whole-batch and split-range classification agree with per-packet.
        let mut whole: FlowTable<FiveTuple> = FlowTable::new();
        whole.observe_batch(&keys, &batch, 0..batch.len());
        let mut split: FlowTable<FiveTuple> = FlowTable::new();
        let mid = batch.len() / 3;
        split.observe_batch(&keys[..mid], &batch, 0..mid);
        split.observe_batch(&keys[mid..], &batch, mid..batch.len());
        for table in [&whole, &split] {
            assert_eq!(table.flow_count(), sequential.flow_count());
            assert_eq!(table.total_packets(), sequential.total_packets());
            assert_eq!(table.total_bytes(), sequential.total_bytes());
            for (key, stats) in sequential.iter() {
                assert_eq!(table.get(&key), Some(stats));
            }
        }

        // And the sharded parallel batch path agrees too, per shard count.
        for shards in [1, 2, 5] {
            let mut sharded: ShardedFlowTable<FiveTuple> = ShardedFlowTable::new(shards);
            sharded.observe_batch_parallel(&keys, &batch, 0..batch.len());
            assert_eq!(sharded.total_packets(), sequential.total_packets());
            for (key, stats) in sequential.iter() {
                assert_eq!(sharded.get(&key), Some(stats), "{shards} shards");
            }
        }
    }

    #[test]
    fn eviction_removes_coldest_flows_and_keeps_totals() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for (host, count) in [(1u8, 10usize), (2, 3), (3, 7), (4, 3), (5, 1)] {
            for i in 0..count {
                table.observe(&packet(host, host, 80, 500, i as f64));
            }
        }
        let total = table.total_packets();
        // Nothing to do when under budget.
        assert_eq!(table.evict_to_budget(5), 0);
        assert_eq!(table.evict_to_budget(2), 3);
        assert_eq!(table.flow_count(), 2);
        // History is kept: totals still count the evicted flows' packets.
        assert_eq!(table.total_packets(), total);
        let sizes: Vec<u64> = table
            .ranked_by_packets()
            .iter()
            .map(|f| f.packets)
            .collect();
        assert_eq!(sizes, vec![10, 7], "hottest flows survive");
        // The 3-vs-3 tie between hosts 2 and 4 broke on packed key, and both
        // were below the survivors anyway; re-running is idempotent.
        assert_eq!(table.evict_to_budget(2), 0);
        // An evicted flow that returns restarts from zero.
        table.observe(&packet(5, 5, 80, 500, 99.0));
        let key = FiveTuple::from_packet(&packet(5, 5, 80, 500, 0.0));
        assert_eq!(table.get(&key).unwrap().packets, 1);
    }

    #[test]
    fn out_of_order_timestamps_tracked() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        table.observe(&packet(1, 1, 80, 500, 5.0));
        table.observe(&packet(1, 1, 80, 500, 2.0));
        let key = FiveTuple::from_packet(&packet(1, 1, 80, 500, 0.0));
        let stats = table.get(&key).unwrap();
        assert_eq!(stats.first_seen, Timestamp::from_secs_f64(2.0));
        assert_eq!(stats.last_seen, Timestamp::from_secs_f64(5.0));
    }
}

//! Flow classification and ranking.
//!
//! [`FlowTable`] is the monitor's flow cache: it is driven packet-by-packet,
//! aggregates per-flow counters, and produces ranked top-`t` lists. Both the
//! unsampled ("ground truth") and sampled streams of the trace-driven
//! experiments are classified with the same table, after which the two
//! rankings are compared by the metrics in `flowrank-core`.

use std::collections::HashMap;

use crate::flowkey::FlowKey;
use crate::packet::{PacketRecord, Timestamp};

/// Per-flow counters maintained by the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Number of packets observed.
    pub packets: u64,
    /// Number of bytes observed.
    pub bytes: u64,
    /// Timestamp of the first observed packet.
    pub first_seen: Timestamp,
    /// Timestamp of the last observed packet.
    pub last_seen: Timestamp,
    /// Smallest TCP sequence number seen (when the flow carries TCP).
    pub min_tcp_seq: Option<u32>,
    /// Largest TCP sequence number seen (when the flow carries TCP).
    pub max_tcp_seq: Option<u32>,
}

impl FlowStats {
    fn new(packet: &PacketRecord) -> Self {
        FlowStats {
            packets: 1,
            bytes: packet.length as u64,
            first_seen: packet.timestamp,
            last_seen: packet.timestamp,
            min_tcp_seq: packet.tcp_seq,
            max_tcp_seq: packet.tcp_seq,
        }
    }

    fn update(&mut self, packet: &PacketRecord) {
        self.packets += 1;
        self.bytes += packet.length as u64;
        if packet.timestamp < self.first_seen {
            self.first_seen = packet.timestamp;
        }
        if packet.timestamp > self.last_seen {
            self.last_seen = packet.timestamp;
        }
        if let Some(seq) = packet.tcp_seq {
            self.min_tcp_seq = Some(self.min_tcp_seq.map_or(seq, |m| m.min(seq)));
            self.max_tcp_seq = Some(self.max_tcp_seq.map_or(seq, |m| m.max(seq)));
        }
    }

    /// Flow duration (last minus first packet timestamp).
    pub fn duration(&self) -> Timestamp {
        self.last_seen.saturating_sub(self.first_seen)
    }

    /// Span of observed TCP sequence numbers, in bytes, if the flow carried
    /// at least two distinct sequence numbers.
    ///
    /// This is the raw ingredient of the sequence-number size estimator
    /// (paper Sec. 9, second future direction).
    pub fn tcp_seq_span(&self) -> Option<u64> {
        match (self.min_tcp_seq, self.max_tcp_seq) {
            (Some(lo), Some(hi)) if hi > lo => Some((hi - lo) as u64),
            _ => None,
        }
    }
}

/// A flow together with its rank-relevant size, as returned by the ranking
/// accessors of [`FlowTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedFlow<K> {
    /// Flow identity.
    pub key: K,
    /// Size in packets (the paper ranks flows by packet count).
    pub packets: u64,
    /// Size in bytes.
    pub bytes: u64,
}

/// A flow cache keyed by an arbitrary [`FlowKey`].
#[derive(Debug, Clone)]
pub struct FlowTable<K: FlowKey> {
    flows: HashMap<K, FlowStats>,
    total_packets: u64,
    total_bytes: u64,
}

impl<K: FlowKey> Default for FlowTable<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: FlowKey> FlowTable<K> {
    /// Creates an empty flow table.
    pub fn new() -> Self {
        FlowTable {
            flows: HashMap::new(),
            total_packets: 0,
            total_bytes: 0,
        }
    }

    /// Creates an empty flow table with capacity for `n` flows.
    pub fn with_capacity(n: usize) -> Self {
        FlowTable {
            flows: HashMap::with_capacity(n),
            total_packets: 0,
            total_bytes: 0,
        }
    }

    /// Observes one packet: classifies it and updates its flow's counters.
    /// Returns the flow's updated packet count.
    pub fn observe(&mut self, packet: &PacketRecord) -> u64 {
        self.observe_keyed(K::from_packet(packet), packet)
    }

    /// Observes a packet whose key has already been computed (avoids
    /// re-deriving the key when the caller classifies under several
    /// definitions at once). Returns the flow's updated packet count — the
    /// streaming monitor uses this to maintain top-k structures without a
    /// second lookup.
    pub fn observe_keyed(&mut self, key: K, packet: &PacketRecord) -> u64 {
        self.total_packets += 1;
        self.total_bytes += packet.length as u64;
        let stats = self
            .flows
            .entry(key)
            .and_modify(|s| s.update(packet))
            .or_insert_with(|| FlowStats::new(packet));
        stats.packets
    }

    /// Number of distinct flows seen.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total number of packets observed.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// Total number of bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Returns the counters of a specific flow, if present.
    pub fn get(&self, key: &K) -> Option<&FlowStats> {
        self.flows.get(key)
    }

    /// Size in packets of a specific flow, 0 when the flow was never seen.
    ///
    /// This is the lookup shape the swapped-pair metrics need: a flow the
    /// sampler missed entirely has sampled size zero, not "absent".
    pub fn size_of(&self, key: &K) -> u64 {
        self.flows.get(key).map_or(0, |s| s.packets)
    }

    /// Iterates over `(key, packets)` pairs — the minimal view the ranking
    /// metrics consume, without exposing the full [`FlowStats`].
    pub fn iter_sizes(&self) -> impl Iterator<Item = (&K, u64)> {
        self.flows.iter().map(|(k, s)| (k, s.packets))
    }

    /// Iterates over all flows and their counters.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &FlowStats)> {
        self.flows.iter()
    }

    /// Returns all flows ranked by decreasing packet count.
    ///
    /// Ties are broken deterministically by byte count and then by key order
    /// where available through hashing — callers that need a fully stable
    /// order across runs should sort on their own key ordering; the
    /// simulator uses packet count then bytes, which is stable for the
    /// synthetic traces because keys with identical (packets, bytes) pairs
    /// are interchangeable for the swapped-pair metric.
    pub fn ranked_by_packets(&self) -> Vec<RankedFlow<K>> {
        let mut flows: Vec<RankedFlow<K>> = self
            .flows
            .iter()
            .map(|(k, s)| RankedFlow {
                key: k.clone(),
                packets: s.packets,
                bytes: s.bytes,
            })
            .collect();
        flows.sort_by(|a, b| b.packets.cmp(&a.packets).then(b.bytes.cmp(&a.bytes)));
        flows
    }

    /// Returns the top `t` flows by packet count.
    pub fn top_by_packets(&self, t: usize) -> Vec<RankedFlow<K>> {
        let mut ranked = self.ranked_by_packets();
        ranked.truncate(t);
        ranked
    }

    /// Returns the sizes (in packets) of all flows, unordered.
    pub fn packet_counts(&self) -> Vec<u64> {
        self.flows.values().map(|s| s.packets).collect()
    }

    /// Removes all flows and resets the totals (start of a new measurement
    /// bin in the paper's "binning" methodology).
    pub fn clear(&mut self) {
        self.flows.clear();
        self.total_packets = 0;
        self.total_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowkey::{DstPrefix, FiveTuple};
    use std::net::Ipv4Addr;

    fn packet(src_last: u8, dst_last: u8, dport: u16, len: u16, t: f64) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_secs_f64(t),
            Ipv4Addr::new(10, 0, 0, src_last),
            1000 + src_last as u16,
            Ipv4Addr::new(192, 168, 1, dst_last),
            dport,
            len,
            (t * 1000.0) as u32,
        )
    }

    #[test]
    fn empty_table() {
        let table: FlowTable<FiveTuple> = FlowTable::new();
        assert_eq!(table.flow_count(), 0);
        assert_eq!(table.total_packets(), 0);
        assert!(table.ranked_by_packets().is_empty());
        assert!(table.top_by_packets(5).is_empty());
    }

    #[test]
    fn aggregates_packets_into_flows() {
        let mut table: FlowTable<FiveTuple> = FlowTable::with_capacity(4);
        for i in 0..5 {
            table.observe(&packet(1, 1, 80, 500, i as f64));
        }
        for i in 0..3 {
            table.observe(&packet(2, 1, 80, 1500, i as f64));
        }
        assert_eq!(table.flow_count(), 2);
        assert_eq!(table.total_packets(), 8);
        assert_eq!(table.total_bytes(), 5 * 500 + 3 * 1500);

        let key = FiveTuple::from_packet(&packet(1, 1, 80, 500, 0.0));
        let stats = table.get(&key).unwrap();
        assert_eq!(stats.packets, 5);
        assert_eq!(stats.bytes, 2500);
        assert_eq!(stats.first_seen, Timestamp::from_secs_f64(0.0));
        assert_eq!(stats.last_seen, Timestamp::from_secs_f64(4.0));
        assert_eq!(stats.duration(), Timestamp::from_secs_f64(4.0));
    }

    #[test]
    fn ranking_orders_by_packet_count() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for (host, count) in [(1u8, 10usize), (2, 3), (3, 7), (4, 1)] {
            for i in 0..count {
                table.observe(&packet(host, host, 80, 500, i as f64));
            }
        }
        let ranked = table.ranked_by_packets();
        let counts: Vec<u64> = ranked.iter().map(|f| f.packets).collect();
        assert_eq!(counts, vec![10, 7, 3, 1]);
        let top2 = table.top_by_packets(2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].packets, 10);
        assert_eq!(top2[1].packets, 7);
        // Asking for more than available returns everything.
        assert_eq!(table.top_by_packets(100).len(), 4);
    }

    #[test]
    fn prefix_table_aggregates_subnets() {
        let mut table: FlowTable<DstPrefix> = FlowTable::new();
        // Two different 5-tuples to the same /24 destination.
        table.observe(&packet(1, 10, 80, 500, 0.0));
        table.observe(&packet(2, 20, 443, 500, 1.0));
        // One packet to a different /24.
        let mut other = packet(3, 1, 80, 500, 2.0);
        other.dst_ip = Ipv4Addr::new(172, 16, 0, 1);
        table.observe(&other);
        assert_eq!(table.flow_count(), 2);
        let ranked = table.ranked_by_packets();
        assert_eq!(ranked[0].packets, 2);
        assert_eq!(ranked[1].packets, 1);
    }

    #[test]
    fn tcp_seq_span_tracking() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        let mut p1 = packet(1, 1, 80, 500, 0.0);
        p1.tcp_seq = Some(1_000);
        let mut p2 = p1;
        p2.tcp_seq = Some(51_000);
        p2.timestamp = Timestamp::from_secs_f64(3.0);
        table.observe(&p1);
        table.observe(&p2);
        let key = FiveTuple::from_packet(&p1);
        let stats = table.get(&key).unwrap();
        assert_eq!(stats.tcp_seq_span(), Some(50_000));
        // A single sequence number yields no span.
        let mut single: FlowTable<FiveTuple> = FlowTable::new();
        single.observe(&p1);
        assert_eq!(single.get(&key).unwrap().tcp_seq_span(), None);
    }

    #[test]
    fn streaming_hooks_report_sizes() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        assert_eq!(table.observe(&packet(1, 1, 80, 500, 0.0)), 1);
        assert_eq!(table.observe(&packet(1, 1, 80, 500, 1.0)), 2);
        assert_eq!(table.observe(&packet(2, 1, 80, 500, 0.0)), 1);
        let key = FiveTuple::from_packet(&packet(1, 1, 80, 500, 0.0));
        let missing = FiveTuple::from_packet(&packet(9, 9, 80, 500, 0.0));
        assert_eq!(table.size_of(&key), 2);
        assert_eq!(table.size_of(&missing), 0);
        let mut sizes: Vec<u64> = table.iter_sizes().map(|(_, n)| n).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        table.observe(&packet(1, 1, 80, 500, 0.0));
        assert_eq!(table.flow_count(), 1);
        table.clear();
        assert_eq!(table.flow_count(), 0);
        assert_eq!(table.total_packets(), 0);
        assert_eq!(table.total_bytes(), 0);
    }

    #[test]
    fn packet_counts_unordered_contents() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for (host, count) in [(1u8, 4usize), (2, 2)] {
            for i in 0..count {
                table.observe(&packet(host, host, 80, 500, i as f64));
            }
        }
        let mut counts = table.packet_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 4]);
    }

    #[test]
    fn out_of_order_timestamps_tracked() {
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        table.observe(&packet(1, 1, 80, 500, 5.0));
        table.observe(&packet(1, 1, 80, 500, 2.0));
        let key = FiveTuple::from_packet(&packet(1, 1, 80, 500, 0.0));
        let stats = table.get(&key).unwrap();
        assert_eq!(stats.first_seen, Timestamp::from_secs_f64(2.0));
        assert_eq!(stats.last_seen, Timestamp::from_secs_f64(5.0));
    }
}

//! Flow identities.
//!
//! The paper evaluates two flow definitions (Sec. 6): the usual transport
//! 5-tuple and the /24 destination-address prefix, which aggregates many
//! 5-tuple flows into larger prefix flows (mean 4.8 KB vs 16.6 KB on the
//! Sprint link). Both are provided here behind the [`FlowKey`] trait, along
//! with [`FlowDefinition`] for selecting the definition at run time — the
//! trace-driven simulator classifies the same packet stream under both.

use std::fmt;
use std::hash::Hash;
use std::net::Ipv4Addr;

use flowrank_flowtable::CompactKey;

use crate::packet::PacketRecord;

/// Transport-layer protocol carried in the IPv4 protocol field.
///
/// Equality, ordering and hashing all compare the IANA protocol number, so
/// a hand-built `Protocol::Other(6)` is the same protocol as
/// [`Protocol::Tcp`] — which keeps the [`CompactKey`] packing (that stores
/// only the number) a faithful bijection of key equality.
#[derive(Debug, Clone, Copy)]
pub enum Protocol {
    /// Transmission Control Protocol (6).
    Tcp,
    /// User Datagram Protocol (17).
    Udp,
    /// Internet Control Message Protocol (1).
    Icmp,
    /// Any other protocol, identified by its IANA number.
    Other(u8),
}

impl PartialEq for Protocol {
    fn eq(&self, other: &Self) -> bool {
        self.number() == other.number()
    }
}

impl Eq for Protocol {}

impl Hash for Protocol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.number().hash(state);
    }
}

impl PartialOrd for Protocol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Protocol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.number().cmp(&other.number())
    }
}

impl Protocol {
    /// IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Icmp => 1,
            Protocol::Other(n) => n,
        }
    }

    /// Builds a [`Protocol`] from its IANA number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            1 => Protocol::Icmp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// A flow identity that can be derived from a packet.
///
/// Implementations are small `Copy` values and — through the
/// [`CompactKey`] supertrait — pack losslessly into a single machine
/// integer, so the flow tables hash and compare keys as plain integers
/// instead of running a structural hasher over the fields. `Hash` is still
/// required for interoperability with standard collections off the hot
/// path.
pub trait FlowKey: Copy + Eq + Hash + fmt::Debug + CompactKey {
    /// Extracts the flow key of a packet.
    fn from_packet(packet: &PacketRecord) -> Self;

    /// Short human-readable name of the flow definition (for reports).
    fn definition_name() -> &'static str;
}

/// The classical 5-tuple flow definition: protocol, source and destination
/// address, source and destination port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FlowKey for FiveTuple {
    fn from_packet(packet: &PacketRecord) -> Self {
        FiveTuple {
            src_ip: packet.src_ip,
            dst_ip: packet.dst_ip,
            src_port: packet.src_port,
            dst_port: packet.dst_port,
            protocol: packet.protocol,
        }
    }

    fn definition_name() -> &'static str {
        "5-tuple"
    }
}

/// A 5-tuple packs into 104 of a `u128`'s bits:
/// `src(32) · dst(32) · sport(16) · dport(16) · proto(8)`.
impl CompactKey for FiveTuple {
    type Packed = u128;

    #[inline]
    fn pack(self) -> u128 {
        (u128::from(u32::from(self.src_ip)) << 72)
            | (u128::from(u32::from(self.dst_ip)) << 40)
            | (u128::from(self.src_port) << 24)
            | (u128::from(self.dst_port) << 8)
            | u128::from(self.protocol.number())
    }

    #[inline]
    fn unpack(packed: u128) -> Self {
        FiveTuple {
            src_ip: Ipv4Addr::from((packed >> 72) as u32),
            dst_ip: Ipv4Addr::from((packed >> 40) as u32),
            src_port: (packed >> 24) as u16,
            dst_port: (packed >> 8) as u16,
            protocol: Protocol::from_number(packed as u8),
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

/// Destination-prefix flow definition: packets are aggregated by the first
/// `prefix_len` bits of the destination address (the paper uses /24).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DstPrefix {
    /// Network address with the host bits cleared.
    pub network: Ipv4Addr,
    /// Prefix length in bits (0–32).
    pub prefix_len: u8,
}

impl DstPrefix {
    /// Aggregates an address into its `prefix_len`-bit prefix.
    pub fn of(addr: Ipv4Addr, prefix_len: u8) -> Self {
        let len = prefix_len.min(32);
        let raw = u32::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        DstPrefix {
            network: Ipv4Addr::from(masked),
            prefix_len: len,
        }
    }
}

/// A prefix packs with the classic marker-bit trick: the `prefix_len`
/// significant network bits, preceded by a set marker bit, so prefixes of
/// every length share one injective integer encoding
/// (`packed = (1 << len) | (network >> (32 − len))`). The paper's /24
/// definition therefore occupies only the low 25 bits — a `u32`-class key —
/// while the `u64` representation keeps /25–/32 lossless too.
///
/// The encoding assumes the [`DstPrefix::of`] invariants (host bits
/// cleared, length ≤ 32); hand-built values violating them would alias in
/// the packed domain.
impl CompactKey for DstPrefix {
    type Packed = u64;

    #[inline]
    fn pack(self) -> u64 {
        let len = u32::from(self.prefix_len.min(32));
        let bits = if len == 0 {
            0
        } else {
            u64::from(u32::from(self.network) >> (32 - len))
        };
        (1u64 << len) | bits
    }

    #[inline]
    fn unpack(packed: u64) -> Self {
        let len = 63 - packed.leading_zeros();
        let bits = packed & !(1u64 << len);
        let network = if len == 0 {
            0
        } else {
            (bits as u32) << (32 - len)
        };
        DstPrefix {
            network: Ipv4Addr::from(network),
            prefix_len: len as u8,
        }
    }
}

impl FlowKey for DstPrefix {
    fn from_packet(packet: &PacketRecord) -> Self {
        // The paper's prefix definition is /24 on the destination address.
        DstPrefix::of(packet.dst_ip, 24)
    }

    fn definition_name() -> &'static str {
        "/24 dst prefix"
    }
}

impl fmt::Display for DstPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.prefix_len)
    }
}

/// Runtime-selectable flow definition.
///
/// The analytical scenarios and the simulator both need to switch between
/// flow definitions without changing types; [`FlowDefinition::key_of`]
/// produces a type-erased [`AnyFlowKey`] for that purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowDefinition {
    /// 5-tuple flows.
    FiveTuple,
    /// Destination-prefix flows with the given prefix length.
    DstPrefix(u8),
}

impl FlowDefinition {
    /// The /24 destination-prefix definition used throughout the paper.
    pub const PREFIX24: FlowDefinition = FlowDefinition::DstPrefix(24);

    /// Extracts the (type-erased) flow key of a packet under this definition.
    pub fn key_of(self, packet: &PacketRecord) -> AnyFlowKey {
        match self {
            FlowDefinition::FiveTuple => AnyFlowKey::FiveTuple(FiveTuple::from_packet(packet)),
            FlowDefinition::DstPrefix(len) => {
                AnyFlowKey::DstPrefix(DstPrefix::of(packet.dst_ip, len))
            }
        }
    }

    /// Human-readable name of the definition.
    pub fn name(self) -> String {
        match self {
            FlowDefinition::FiveTuple => "5-tuple".to_string(),
            FlowDefinition::DstPrefix(len) => format!("/{len} dst prefix"),
        }
    }
}

impl fmt::Display for FlowDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Type-erased flow key produced by [`FlowDefinition::key_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnyFlowKey {
    /// A 5-tuple key.
    FiveTuple(FiveTuple),
    /// A destination-prefix key.
    DstPrefix(DstPrefix),
}

impl FlowKey for AnyFlowKey {
    fn from_packet(packet: &PacketRecord) -> Self {
        AnyFlowKey::FiveTuple(FiveTuple::from_packet(packet))
    }

    fn definition_name() -> &'static str {
        "any"
    }
}

/// Bit 127 tags the variant: set for 5-tuples (whose own packing tops out
/// at bit 103), clear for prefixes (bit 32 at most) — so the two key spaces
/// never collide in the packed domain, mirroring the enum's `Eq`.
impl CompactKey for AnyFlowKey {
    type Packed = u128;

    #[inline]
    fn pack(self) -> u128 {
        match self {
            AnyFlowKey::FiveTuple(k) => (1u128 << 127) | k.pack(),
            AnyFlowKey::DstPrefix(k) => u128::from(k.pack()),
        }
    }

    #[inline]
    fn unpack(packed: u128) -> Self {
        if packed >> 127 == 1 {
            AnyFlowKey::FiveTuple(FiveTuple::unpack(packed & !(1u128 << 127)))
        } else {
            AnyFlowKey::DstPrefix(DstPrefix::unpack(packed as u64))
        }
    }
}

impl fmt::Display for AnyFlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyFlowKey::FiveTuple(k) => write!(f, "{k}"),
            AnyFlowKey::DstPrefix(k) => write!(f, "{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Timestamp;

    fn sample_packet() -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_secs_f64(1.0),
            Ipv4Addr::new(10, 1, 2, 3),
            40000,
            Ipv4Addr::new(192, 168, 55, 77),
            443,
            500,
            0,
        )
    }

    #[test]
    fn protocol_number_round_trip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
        assert_eq!(Protocol::Tcp.to_string(), "tcp");
        assert_eq!(Protocol::Other(89).to_string(), "proto-89");
    }

    #[test]
    fn five_tuple_extraction() {
        let p = sample_packet();
        let k = FiveTuple::from_packet(&p);
        assert_eq!(k.src_port, 40000);
        assert_eq!(k.dst_port, 443);
        assert_eq!(k.protocol, Protocol::Tcp);
        assert_eq!(FiveTuple::definition_name(), "5-tuple");
        assert!(k.to_string().contains("192.168.55.77:443"));
    }

    #[test]
    fn five_tuple_distinguishes_directions() {
        let p = sample_packet();
        let mut reverse = p;
        std::mem::swap(&mut reverse.src_ip, &mut reverse.dst_ip);
        std::mem::swap(&mut reverse.src_port, &mut reverse.dst_port);
        assert_ne!(FiveTuple::from_packet(&p), FiveTuple::from_packet(&reverse));
    }

    #[test]
    fn prefix_masking() {
        let k = DstPrefix::of(Ipv4Addr::new(192, 168, 55, 77), 24);
        assert_eq!(k.network, Ipv4Addr::new(192, 168, 55, 0));
        assert_eq!(k.prefix_len, 24);
        let k16 = DstPrefix::of(Ipv4Addr::new(192, 168, 55, 77), 16);
        assert_eq!(k16.network, Ipv4Addr::new(192, 168, 0, 0));
        let k0 = DstPrefix::of(Ipv4Addr::new(192, 168, 55, 77), 0);
        assert_eq!(k0.network, Ipv4Addr::new(0, 0, 0, 0));
        let k32 = DstPrefix::of(Ipv4Addr::new(192, 168, 55, 77), 32);
        assert_eq!(k32.network, Ipv4Addr::new(192, 168, 55, 77));
        // Lengths above 32 are clamped.
        let k40 = DstPrefix::of(Ipv4Addr::new(1, 2, 3, 4), 40);
        assert_eq!(k40.prefix_len, 32);
        assert_eq!(k.to_string(), "192.168.55.0/24");
    }

    #[test]
    fn prefix_aggregates_same_subnet() {
        let p1 = sample_packet();
        let mut p2 = p1;
        p2.dst_ip = Ipv4Addr::new(192, 168, 55, 200);
        p2.src_port = 12345;
        assert_ne!(FiveTuple::from_packet(&p1), FiveTuple::from_packet(&p2));
        assert_eq!(DstPrefix::from_packet(&p1), DstPrefix::from_packet(&p2));
    }

    #[test]
    fn flow_definition_dispatch() {
        let p = sample_packet();
        let k5 = FlowDefinition::FiveTuple.key_of(&p);
        let k24 = FlowDefinition::PREFIX24.key_of(&p);
        assert!(matches!(k5, AnyFlowKey::FiveTuple(_)));
        assert!(matches!(k24, AnyFlowKey::DstPrefix(_)));
        assert_eq!(FlowDefinition::FiveTuple.name(), "5-tuple");
        assert_eq!(FlowDefinition::PREFIX24.name(), "/24 dst prefix");
        assert_eq!(FlowDefinition::DstPrefix(16).to_string(), "/16 dst prefix");
    }

    #[test]
    fn protocol_equality_is_canonical() {
        // A hand-built Other(6) is the same protocol as Tcp: equality,
        // ordering, hashing and the compact packing must all agree.
        assert_eq!(Protocol::Other(6), Protocol::Tcp);
        assert_eq!(
            Protocol::Other(6).cmp(&Protocol::Tcp),
            std::cmp::Ordering::Equal
        );
        let p = sample_packet();
        let canonical = FiveTuple::from_packet(&p);
        let mut aliased = canonical;
        aliased.protocol = Protocol::Other(6);
        assert_eq!(aliased, canonical);
        assert_eq!(aliased.pack(), canonical.pack());
        // Ordering ranks by IANA number.
        assert!(Protocol::Icmp < Protocol::Tcp && Protocol::Tcp < Protocol::Udp);
    }

    #[test]
    fn five_tuple_pack_round_trips() {
        let p = sample_packet();
        let key = FiveTuple::from_packet(&p);
        assert_eq!(FiveTuple::unpack(key.pack()), key);
        // Every field participates in the packing.
        for mutate in [
            |k: &mut FiveTuple| k.src_ip = Ipv4Addr::new(1, 2, 3, 4),
            |k: &mut FiveTuple| k.dst_ip = Ipv4Addr::new(4, 3, 2, 1),
            |k: &mut FiveTuple| k.src_port = 1,
            |k: &mut FiveTuple| k.dst_port = 2,
            |k: &mut FiveTuple| k.protocol = Protocol::Other(200),
        ] {
            let mut other = key;
            mutate(&mut other);
            assert_ne!(other.pack(), key.pack());
            assert_eq!(FiveTuple::unpack(other.pack()), other);
        }
    }

    #[test]
    fn prefix_pack_round_trips_at_every_length() {
        for len in 0..=32u8 {
            let key = DstPrefix::of(Ipv4Addr::new(203, 0, 113, 77), len);
            assert_eq!(DstPrefix::unpack(key.pack()), key, "len {len}");
        }
        // Same network bits at different lengths stay distinct.
        let a = DstPrefix::of(Ipv4Addr::new(10, 0, 0, 0), 8);
        let b = DstPrefix::of(Ipv4Addr::new(10, 0, 0, 0), 16);
        assert_ne!(a.pack(), b.pack());
        // The paper's /24 keys fit in 32 bits.
        let k24 = DstPrefix::of(Ipv4Addr::new(255, 255, 255, 255), 24);
        assert!(k24.pack() <= u64::from(u32::MAX));
    }

    #[test]
    fn any_key_pack_separates_variants() {
        let p = sample_packet();
        let five = AnyFlowKey::FiveTuple(FiveTuple::from_packet(&p));
        let prefix = AnyFlowKey::DstPrefix(DstPrefix::from_packet(&p));
        assert_eq!(AnyFlowKey::unpack(five.pack()), five);
        assert_eq!(AnyFlowKey::unpack(prefix.pack()), prefix);
        assert_ne!(five.pack(), prefix.pack());
    }

    #[test]
    fn any_flow_key_defaults_to_five_tuple() {
        let p = sample_packet();
        assert!(matches!(
            AnyFlowKey::from_packet(&p),
            AnyFlowKey::FiveTuple(_)
        ));
        assert!(AnyFlowKey::DstPrefix(DstPrefix::of(p.dst_ip, 24))
            .to_string()
            .contains("/24"));
    }
}

//! Bounded sorted-list flow memory (Jedwab, Phaal & Pinna, HP Labs 1992).
//!
//! Reference \[13\] of the paper: keep a small list of flow records sorted by
//! count; when a packet arrives for a flow not in the list and the list is
//! full, evict a record at the bottom of the list to make room. The paper
//! (Sec. 2) notes that these mechanisms rank the *observed* (possibly
//! sampled) stream well, but cannot repair errors introduced by sampling —
//! which is exactly what the combined `ablation_topk_under_sampling` bench
//! demonstrates.

use flowrank_net::{FiveTuple, FlowMap};
use flowrank_stats::rng::Rng;

use crate::tracker::{TopKEntry, TopKTracker};

/// Bounded flow memory with bottom-of-list eviction.
#[derive(Debug, Clone)]
pub struct SortedListMemory {
    capacity: usize,
    counts: FlowMap<FiveTuple, u64>,
    evictions: u64,
}

impl SortedListMemory {
    /// Creates a memory with room for `capacity` flow records (at least 1).
    pub fn new(capacity: usize) -> Self {
        SortedListMemory {
            capacity: capacity.max(1),
            counts: FlowMap::with_capacity(capacity.max(1)),
            evictions: 0,
        }
    }

    /// Number of records evicted so far (a measure of thrash).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn evict_smallest(&mut self) {
        // The (count, key) tie-break totally orders the candidates, so the
        // victim is independent of the map's iteration order.
        if let Some((victim, _)) = self
            .counts
            .iter()
            .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
        {
            self.counts.remove(&victim);
            self.evictions += 1;
        }
    }
}

impl TopKTracker for SortedListMemory {
    fn observe(&mut self, key: &FiveTuple, _rng: &mut dyn Rng) {
        if let Some(count) = self.counts.get_mut(key) {
            *count += 1;
            return;
        }
        if self.counts.len() >= self.capacity {
            self.evict_smallest();
        }
        self.counts.insert(*key, 1);
    }

    fn top(&self, t: usize) -> Vec<TopKEntry> {
        let mut entries: Vec<TopKEntry> = self
            .counts
            .iter()
            .map(|(key, &estimate)| TopKEntry { key, estimate })
            .collect();
        entries.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        entries.truncate(t);
        entries
    }

    fn memory_entries(&self) -> usize {
        self.counts.len()
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.evictions = 0;
    }

    fn name(&self) -> &'static str {
        "sorted-list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactTopK;
    use crate::tracker::test_util::{key, skewed_workload};
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn never_exceeds_capacity() {
        let mut tracker = SortedListMemory::new(16);
        let mut rng = Pcg64::seed_from_u64(1);
        for packet_key in skewed_workload(100, 2) {
            tracker.observe(&packet_key, &mut rng);
            assert!(tracker.memory_entries() <= 16);
        }
        assert!(tracker.evictions() > 0);
        assert_eq!(tracker.capacity(), 16);
    }

    #[test]
    fn finds_large_flows_when_memory_is_generous() {
        // With memory comfortably larger than the number of heavy flows, the
        // top of the list matches the exact ranking.
        let workload = skewed_workload(50, 20);
        let mut bounded = SortedListMemory::new(100);
        let mut exact = ExactTopK::new();
        let mut rng = Pcg64::seed_from_u64(2);
        for packet_key in &workload {
            bounded.observe(packet_key, &mut rng);
            exact.observe(packet_key, &mut rng);
        }
        let top_bounded: Vec<_> = bounded.top(5).iter().map(|e| e.key).collect();
        let top_exact: Vec<_> = exact.top(5).iter().map(|e| e.key).collect();
        assert_eq!(top_bounded, top_exact);
    }

    #[test]
    fn tight_memory_loses_counts_under_eviction_pressure() {
        // The bottom-eviction list is known to thrash when the number of
        // concurrently active flows exceeds its capacity (this is exactly the
        // weakness Estan–Varghese address): the heaviest flow keeps being
        // evicted and restarted, so its final estimate is far below its true
        // 2000 packets. This test documents that limitation.
        let workload = skewed_workload(200, 10);
        let mut tracker = SortedListMemory::new(32);
        let mut rng = Pcg64::seed_from_u64(3);
        for packet_key in &workload {
            tracker.observe(packet_key, &mut rng);
        }
        assert!(tracker.evictions() > 0);
        let top = tracker.top(1);
        assert!(
            top[0].estimate < 1_000,
            "bounded list should have lost most of the heavy flow's count, got {}",
            top[0].estimate
        );
    }

    #[test]
    fn capacity_one_degenerates_to_last_heavy_hitter() {
        let mut tracker = SortedListMemory::new(1);
        let mut rng = Pcg64::seed_from_u64(4);
        for _ in 0..10 {
            tracker.observe(&key(7), &mut rng);
        }
        assert_eq!(tracker.top(1)[0].key, key(7));
        assert_eq!(tracker.top(1)[0].estimate, 10);
        assert_eq!(SortedListMemory::new(0).capacity(), 1);
    }

    #[test]
    fn reset_clears_counters_and_evictions() {
        let mut tracker = SortedListMemory::new(4);
        let mut rng = Pcg64::seed_from_u64(5);
        for packet_key in skewed_workload(10, 2) {
            tracker.observe(&packet_key, &mut rng);
        }
        tracker.reset();
        assert_eq!(tracker.memory_entries(), 0);
        assert_eq!(tracker.evictions(), 0);
        assert_eq!(tracker.name(), "sorted-list");
    }
}

//! Sample-and-hold (Estan & Varghese, SIGCOMM 2002).
//!
//! Reference \[11\] of the paper. Packets of flows that are *not* in the flow
//! memory are sampled with a small probability; once a flow is sampled it is
//! *held*: every subsequent packet of that flow is counted exactly. Large
//! flows are therefore caught early and counted almost exactly, while most
//! small flows never enter the memory. The estimate for a held flow is its
//! count since insertion — a slight undercount of the true size.

use flowrank_net::{FiveTuple, FlowMap};
use flowrank_stats::rng::Rng;

use crate::tracker::{TopKEntry, TopKTracker};

/// Sample-and-hold flow memory.
#[derive(Debug, Clone)]
pub struct SampleAndHold {
    sampling_probability: f64,
    capacity: usize,
    counts: FlowMap<FiveTuple, u64>,
    dropped_inserts: u64,
}

impl SampleAndHold {
    /// Creates a sample-and-hold tracker.
    ///
    /// * `sampling_probability` — probability that a packet of an untracked
    ///   flow creates an entry (Estan–Varghese recommend a value such that
    ///   `p × threshold ≈ O(1)`).
    /// * `capacity` — maximum number of flow entries; inserts beyond it are
    ///   dropped (and counted in [`SampleAndHold::dropped_inserts`]).
    pub fn new(sampling_probability: f64, capacity: usize) -> Self {
        SampleAndHold {
            sampling_probability: sampling_probability.clamp(0.0, 1.0),
            capacity: capacity.max(1),
            counts: FlowMap::new(),
            dropped_inserts: 0,
        }
    }

    /// The per-packet entry-creation probability.
    pub fn sampling_probability(&self) -> f64 {
        self.sampling_probability
    }

    /// Number of entry creations that were refused because memory was full.
    pub fn dropped_inserts(&self) -> u64 {
        self.dropped_inserts
    }
}

impl TopKTracker for SampleAndHold {
    fn observe(&mut self, key: &FiveTuple, rng: &mut dyn Rng) {
        if let Some(count) = self.counts.get_mut(key) {
            *count += 1;
            return;
        }
        if rng.bernoulli(self.sampling_probability) {
            if self.counts.len() < self.capacity {
                self.counts.insert(*key, 1);
            } else {
                self.dropped_inserts += 1;
            }
        }
    }

    fn top(&self, t: usize) -> Vec<TopKEntry> {
        let mut entries: Vec<TopKEntry> = self
            .counts
            .iter()
            .map(|(key, &estimate)| TopKEntry { key, estimate })
            .collect();
        entries.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        entries.truncate(t);
        entries
    }

    fn memory_entries(&self) -> usize {
        self.counts.len()
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.dropped_inserts = 0;
    }

    fn name(&self) -> &'static str {
        "sample-and-hold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::test_util::{key, skewed_workload};
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn large_flows_are_held_and_counted_nearly_exactly() {
        // Flow 0 sends 2000 packets; with p=0.01 it is caught within a few
        // hundred packets and counted exactly afterwards.
        let mut tracker = SampleAndHold::new(0.01, 1_000);
        let mut rng = Pcg64::seed_from_u64(1);
        for packet_key in skewed_workload(20, 100) {
            tracker.observe(&packet_key, &mut rng);
        }
        let top = tracker.top(3);
        assert!(!top.is_empty());
        // The heaviest flow (2000 packets) is caught early and counted nearly
        // exactly; because the estimate only counts packets since insertion,
        // it may be narrowly outranked by the second-heaviest flow, but it
        // must appear near the top with most of its packets counted.
        let heaviest = top
            .iter()
            .find(|e| e.key == key(0))
            .expect("heaviest flow must be in the top 3");
        assert!(heaviest.estimate > 1_000 && heaviest.estimate <= 2_000);
    }

    #[test]
    fn small_flows_mostly_stay_out_of_memory() {
        let mut tracker = SampleAndHold::new(0.001, 10_000);
        let mut rng = Pcg64::seed_from_u64(2);
        // 5000 flows of 2 packets each.
        for i in 0..5_000u32 {
            tracker.observe(&key(i), &mut rng);
            tracker.observe(&key(i), &mut rng);
        }
        assert!(
            tracker.memory_entries() < 100,
            "only ~10 of 5000 mouse flows should be held, got {}",
            tracker.memory_entries()
        );
    }

    #[test]
    fn capacity_limit_is_enforced() {
        let mut tracker = SampleAndHold::new(1.0, 8);
        let mut rng = Pcg64::seed_from_u64(3);
        for i in 0..100u32 {
            tracker.observe(&key(i), &mut rng);
        }
        assert_eq!(tracker.memory_entries(), 8);
        assert_eq!(tracker.dropped_inserts(), 92);
    }

    #[test]
    fn zero_probability_never_creates_entries() {
        let mut tracker = SampleAndHold::new(0.0, 100);
        let mut rng = Pcg64::seed_from_u64(4);
        for packet_key in skewed_workload(5, 10) {
            tracker.observe(&packet_key, &mut rng);
        }
        assert_eq!(tracker.memory_entries(), 0);
        assert!(tracker.top(5).is_empty());
    }

    #[test]
    fn reset_and_accessors() {
        let mut tracker = SampleAndHold::new(0.7, 10);
        assert!((tracker.sampling_probability() - 0.7).abs() < 1e-12);
        let mut rng = Pcg64::seed_from_u64(5);
        tracker.observe(&key(1), &mut rng);
        tracker.reset();
        assert_eq!(tracker.memory_entries(), 0);
        assert_eq!(tracker.name(), "sample-and-hold");
    }
}

//! The top-k tracker abstraction shared by all flow-memory algorithms.

use flowrank_net::FiveTuple;
use flowrank_stats::rng::Rng;

/// One entry of an estimated top-`t` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKEntry {
    /// Flow identity.
    pub key: FiveTuple,
    /// Estimated size in packets (algorithm-specific semantics: exact count,
    /// count since insertion, or upper bound).
    pub estimate: u64,
}

/// A flow-memory algorithm that tracks the largest flows under a bounded
/// memory budget.
pub trait TopKTracker {
    /// Observes one packet belonging to `key` (an increment of one packet).
    fn observe(&mut self, key: &FiveTuple, rng: &mut dyn Rng);

    /// Returns the estimated top `t` flows, largest first.
    fn top(&self, t: usize) -> Vec<TopKEntry>;

    /// Number of flow records currently held in memory.
    fn memory_entries(&self) -> usize;

    /// Clears all state (start of a new measurement interval).
    fn reset(&mut self);

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Shared test fixtures for tracker implementations.
#[cfg(test)]
pub(crate) mod test_util {
    use flowrank_net::{FiveTuple, Protocol};
    use std::net::Ipv4Addr;

    /// A deterministic flow key for test flow number `i`.
    pub fn key(i: u32) -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr::from(0x0A00_0000 | i),
            dst_ip: Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8),
            src_port: 1_000 + (i % 60_000) as u16,
            dst_port: 80,
            protocol: Protocol::Tcp,
        }
    }

    /// A skewed workload: flow `i` (0-based) of `flows` sends
    /// `base * (flows - i)` packets, so flow 0 is the largest. Packets are
    /// interleaved round-robin to stress eviction policies.
    pub fn skewed_workload(flows: u32, base: u64) -> Vec<FiveTuple> {
        let mut packets = Vec::new();
        let mut remaining: Vec<u64> = (0..flows).map(|i| base * (flows - i) as u64).collect();
        let mut active = true;
        while active {
            active = false;
            for i in 0..flows {
                if remaining[i as usize] > 0 {
                    remaining[i as usize] -= 1;
                    packets.push(key(i));
                    active = true;
                }
            }
        }
        packets
    }
}

//! Space-Saving (Metwally, Agrawal & El Abbadi, 2005).
//!
//! A later algorithm than the ones the paper cites, included as an extension
//! baseline: it maintains exactly `capacity` counters and, when a new flow
//! arrives with the memory full, replaces the smallest counter and inherits
//! its value (so estimates are upper bounds with bounded overestimation
//! error `≤ min_counter`). On the same memory budget it strictly dominates
//! the bottom-eviction sorted list for heavy-hitter identification, which
//! makes it the natural "modern" comparison point in the top-k ablation.

use flowrank_net::{FiveTuple, FlowMap};
use flowrank_stats::rng::Rng;

use crate::tracker::{TopKEntry, TopKTracker};

/// Space-Saving counter set.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// count and overestimation error per tracked flow.
    counters: FlowMap<FiveTuple, (u64, u64)>,
}

impl SpaceSaving {
    /// Creates a Space-Saving tracker with `capacity` counters (at least 1).
    pub fn new(capacity: usize) -> Self {
        SpaceSaving {
            capacity: capacity.max(1),
            counters: FlowMap::with_capacity(capacity.max(1)),
        }
    }

    /// The configured number of counters.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The maximum possible overestimation of `key`'s count, if tracked.
    pub fn error_bound(&self, key: &FiveTuple) -> Option<u64> {
        self.counters.get(key).map(|&(_, err)| err)
    }
}

impl TopKTracker for SpaceSaving {
    fn observe(&mut self, key: &FiveTuple, _rng: &mut dyn Rng) {
        if let Some((count, _)) = self.counters.get_mut(key) {
            *count += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(*key, (1, 0));
            return;
        }
        // Replace the minimum counter; the newcomer inherits its value as the
        // overestimation error. The (count, key) tie-break totally orders
        // the candidates, so the victim is independent of iteration order.
        let (victim, &(min_count, _)) = self
            .counters
            .iter()
            .min_by(|a, b| a.1 .0.cmp(&b.1 .0).then(a.0.cmp(&b.0)))
            .expect("capacity >= 1 guarantees a victim");
        self.counters.remove(&victim);
        self.counters.insert(*key, (min_count + 1, min_count));
    }

    fn top(&self, t: usize) -> Vec<TopKEntry> {
        let mut entries: Vec<TopKEntry> = self
            .counters
            .iter()
            .map(|(key, &(estimate, _))| TopKEntry { key, estimate })
            .collect();
        entries.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        entries.truncate(t);
        entries
    }

    fn memory_entries(&self) -> usize {
        self.counters.len()
    }

    fn reset(&mut self) {
        self.counters.clear();
    }

    fn name(&self) -> &'static str {
        "space-saving"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactTopK;
    use crate::tracker::test_util::{key, skewed_workload};
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn memory_is_exactly_bounded() {
        let mut tracker = SpaceSaving::new(10);
        let mut rng = Pcg64::seed_from_u64(1);
        for packet_key in skewed_workload(200, 3) {
            tracker.observe(&packet_key, &mut rng);
            assert!(tracker.memory_entries() <= 10);
        }
        assert_eq!(tracker.capacity(), 10);
        assert_eq!(SpaceSaving::new(0).capacity(), 1);
    }

    #[test]
    fn estimates_are_upper_bounds_within_error() {
        let workload = skewed_workload(100, 10);
        let mut tracker = SpaceSaving::new(50);
        let mut exact = ExactTopK::new();
        let mut rng = Pcg64::seed_from_u64(2);
        for packet_key in &workload {
            tracker.observe(packet_key, &mut rng);
            exact.observe(packet_key, &mut rng);
        }
        for entry in tracker.top(50) {
            let true_count = exact.count(&entry.key).unwrap_or(0);
            let error = tracker.error_bound(&entry.key).unwrap();
            assert!(
                entry.estimate >= true_count,
                "estimate must upper-bound truth"
            );
            assert!(entry.estimate - error <= true_count, "error bound violated");
        }
    }

    #[test]
    fn heavy_hitters_survive_with_tight_memory() {
        // 5 elephants of 1000 packets among 1000 mice of 1 packet.
        let mut packets = Vec::new();
        for i in 0..5u32 {
            for _ in 0..1_000 {
                packets.push(key(i));
            }
        }
        for i in 100..1_100u32 {
            packets.push(key(i));
        }
        // Interleave mice throughout to stress replacement.
        let mut rng_shuffle = Pcg64::seed_from_u64(3);
        flowrank_stats::rng::Rng::shuffle(&mut rng_shuffle, &mut packets);

        let mut tracker = SpaceSaving::new(64);
        let mut rng = Pcg64::seed_from_u64(4);
        for packet_key in &packets {
            tracker.observe(packet_key, &mut rng);
        }
        let top: Vec<FiveTuple> = tracker.top(5).iter().map(|e| e.key).collect();
        for i in 0..5u32 {
            assert!(top.contains(&key(i)), "elephant {i} missing from top-5");
        }
    }

    #[test]
    fn reset_clears_counters() {
        let mut tracker = SpaceSaving::new(4);
        let mut rng = Pcg64::seed_from_u64(5);
        tracker.observe(&key(1), &mut rng);
        assert_eq!(tracker.memory_entries(), 1);
        assert_eq!(tracker.error_bound(&key(1)), Some(0));
        tracker.reset();
        assert_eq!(tracker.memory_entries(), 0);
        assert_eq!(tracker.error_bound(&key(1)), None);
        assert_eq!(tracker.name(), "space-saving");
    }
}

//! Parallel multistage filter (Estan & Varghese, SIGCOMM 2002).
//!
//! The second mechanism of reference \[11\]: every packet hashes into one
//! counter per stage (different hash functions per stage); when *all* of a
//! flow's counters exceed a threshold, the flow is promoted into exact flow
//! memory. Small flows almost never exceed the threshold in every stage
//! simultaneously, so the exact memory holds (mostly) elephants. The
//! conservative-update optimisation from the paper is implemented as an
//! option.

use flowrank_flowtable::{fx_fold, fx_mix64, CompactKey};
use flowrank_net::{FiveTuple, FlowMap};
use flowrank_stats::rng::Rng;

use crate::tracker::{TopKEntry, TopKTracker};

/// Parallel multistage filter with exact flow memory behind it.
#[derive(Debug, Clone)]
pub struct MultistageFilter {
    stages: Vec<Vec<u64>>,
    counters_per_stage: usize,
    threshold: u64,
    conservative_update: bool,
    flow_memory: FlowMap<FiveTuple, u64>,
    memory_capacity: usize,
}

impl MultistageFilter {
    /// Creates a multistage filter.
    ///
    /// * `stage_count` — number of parallel stages (hash functions).
    /// * `counters_per_stage` — counters per stage.
    /// * `threshold` — promotion threshold in packets.
    /// * `memory_capacity` — capacity of the exact flow memory behind the
    ///   filter.
    pub fn new(
        stage_count: usize,
        counters_per_stage: usize,
        threshold: u64,
        memory_capacity: usize,
    ) -> Self {
        MultistageFilter {
            stages: vec![vec![0; counters_per_stage.max(1)]; stage_count.max(1)],
            counters_per_stage: counters_per_stage.max(1),
            threshold: threshold.max(1),
            conservative_update: false,
            flow_memory: FlowMap::new(),
            memory_capacity: memory_capacity.max(1),
        }
    }

    /// Enables conservative update: each stage counter is only raised to the
    /// minimum value needed, which reduces false positives.
    pub fn with_conservative_update(mut self) -> Self {
        self.conservative_update = true;
        self
    }

    /// The promotion threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    fn stage_index(&self, stage: usize, key: &FiveTuple) -> usize {
        // Per-stage hash family over the packed key: fold the stage number
        // in first so every stage maps flows to independent counters. Same
        // integer-hash family as the flow tables — the filter's input is a
        // trusted trace, not adversarial keys.
        let packed = key.pack();
        let folded = fx_fold(
            fx_fold(stage as u64 + 1, (packed >> 64) as u64),
            packed as u64,
        );
        (fx_mix64(folded) % self.counters_per_stage as u64) as usize
    }

    /// Returns the minimum counter value across stages for a key (the
    /// filter's size estimate for untracked flows).
    pub fn filter_estimate(&self, key: &FiveTuple) -> u64 {
        (0..self.stages.len())
            .map(|s| self.stages[s][self.stage_index(s, key)])
            .min()
            .unwrap_or(0)
    }
}

impl TopKTracker for MultistageFilter {
    fn observe(&mut self, key: &FiveTuple, _rng: &mut dyn Rng) {
        // Flows already promoted are counted exactly.
        if let Some(count) = self.flow_memory.get_mut(key) {
            *count += 1;
            return;
        }
        // Update every stage.
        let indices: Vec<usize> = (0..self.stages.len())
            .map(|s| self.stage_index(s, key))
            .collect();
        let current_min = indices
            .iter()
            .enumerate()
            .map(|(s, &i)| self.stages[s][i])
            .min()
            .unwrap_or(0);
        for (s, &i) in indices.iter().enumerate() {
            if self.conservative_update {
                // Raise each counter only as far as needed.
                let target = current_min + 1;
                if self.stages[s][i] < target {
                    self.stages[s][i] = target;
                }
            } else {
                self.stages[s][i] += 1;
            }
        }
        // Promote when every stage exceeds the threshold.
        let passes = indices
            .iter()
            .enumerate()
            .all(|(s, &i)| self.stages[s][i] >= self.threshold);
        if passes && self.flow_memory.len() < self.memory_capacity {
            // The filter estimate seeds the exact counter (upper bound).
            self.flow_memory.insert(*key, self.threshold);
        }
    }

    fn top(&self, t: usize) -> Vec<TopKEntry> {
        let mut entries: Vec<TopKEntry> = self
            .flow_memory
            .iter()
            .map(|(key, &estimate)| TopKEntry { key, estimate })
            .collect();
        entries.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        entries.truncate(t);
        entries
    }

    fn memory_entries(&self) -> usize {
        self.flow_memory.len()
    }

    fn reset(&mut self) {
        for stage in &mut self.stages {
            stage.iter_mut().for_each(|c| *c = 0);
        }
        self.flow_memory.clear();
    }

    fn name(&self) -> &'static str {
        "multistage-filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::test_util::{key, skewed_workload};
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn elephants_are_promoted_mice_are_not() {
        let mut filter = MultistageFilter::new(4, 1024, 50, 100);
        let mut rng = Pcg64::seed_from_u64(1);
        // Flow 0: 500 packets (elephant); flows 1..=400: 2 packets each.
        for _ in 0..500 {
            filter.observe(&key(0), &mut rng);
        }
        for i in 1..=400u32 {
            filter.observe(&key(i), &mut rng);
            filter.observe(&key(i), &mut rng);
        }
        let top = filter.top(5);
        assert!(
            top.iter().any(|e| e.key == key(0)),
            "elephant must be tracked"
        );
        // The elephant's exact count after promotion is close to its size.
        let elephant = top.iter().find(|e| e.key == key(0)).unwrap();
        assert!(elephant.estimate >= 450, "estimate {}", elephant.estimate);
        // Few mice sneak in.
        assert!(
            filter.memory_entries() <= 10,
            "flow memory holds {} entries",
            filter.memory_entries()
        );
    }

    #[test]
    fn conservative_update_reduces_counter_inflation() {
        let workload = skewed_workload(300, 2);
        let mut plain = MultistageFilter::new(2, 64, 1_000_000, 10);
        let mut conservative =
            MultistageFilter::new(2, 64, 1_000_000, 10).with_conservative_update();
        let mut rng = Pcg64::seed_from_u64(2);
        for packet_key in &workload {
            plain.observe(packet_key, &mut rng);
            conservative.observe(packet_key, &mut rng);
        }
        // Conservative update never produces larger filter estimates.
        for i in 0..300u32 {
            assert!(conservative.filter_estimate(&key(i)) <= plain.filter_estimate(&key(i)));
        }
        let total_plain: u64 = (0..300u32).map(|i| plain.filter_estimate(&key(i))).sum();
        let total_cons: u64 = (0..300u32)
            .map(|i| conservative.filter_estimate(&key(i)))
            .sum();
        assert!(total_cons < total_plain);
    }

    #[test]
    fn memory_capacity_is_respected() {
        let mut filter = MultistageFilter::new(1, 4, 1, 5);
        let mut rng = Pcg64::seed_from_u64(3);
        for i in 0..100u32 {
            filter.observe(&key(i), &mut rng);
            filter.observe(&key(i), &mut rng);
        }
        assert!(filter.memory_entries() <= 5);
    }

    #[test]
    fn reset_and_accessors() {
        let mut filter = MultistageFilter::new(3, 128, 10, 50);
        assert_eq!(filter.threshold(), 10);
        let mut rng = Pcg64::seed_from_u64(4);
        for _ in 0..100 {
            filter.observe(&key(1), &mut rng);
        }
        assert!(filter.memory_entries() > 0);
        assert!(filter.filter_estimate(&key(1)) > 0);
        filter.reset();
        assert_eq!(filter.memory_entries(), 0);
        assert_eq!(filter.filter_estimate(&key(1)), 0);
        assert_eq!(filter.name(), "multistage-filter");
        // Degenerate constructor arguments are clamped.
        let tiny = MultistageFilter::new(0, 0, 0, 0);
        assert_eq!(tiny.threshold(), 1);
    }
}

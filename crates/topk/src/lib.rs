//! # flowrank-topk
//!
//! Heavy-hitter / top-k flow-memory algorithms.
//!
//! The related-work section of the paper (Sec. 2) surveys mechanisms that
//! rank the largest flows *under memory constraints* — maintaining a small
//! sorted list (Jedwab, Phaal & Pinna, HP Labs 1992, reference \[13\]) or the
//! sample-and-hold / multistage-filter techniques of Estan & Varghese
//! (reference \[11\]) — and its first future-work direction is to feed *sampled*
//! traffic into those mechanisms. This crate implements them so that the
//! `ablation_topk_under_sampling` bench can run exactly that experiment:
//!
//! * [`exact`] — unbounded exact counting (the ground truth the paper uses).
//! * [`sorted_list`] — bounded sorted list with bottom eviction (\[13\]).
//! * [`sample_and_hold`] — Estan–Varghese sample-and-hold (\[11\]).
//! * [`multistage`] — Estan–Varghese parallel multistage filter (\[11\]).
//! * [`space_saving`] — the Space-Saving algorithm (Metwally et al. 2005), a
//!   later baseline included as an extension because it strictly dominates
//!   the bounded sorted list on the same memory budget.
//!
//! All trackers implement the [`TopKTracker`] trait: they are driven
//! packet-by-packet (flow key + increment) and report an estimated top-`t`
//! list at the end of the measurement interval.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod multistage;
pub mod sample_and_hold;
pub mod sorted_list;
pub mod space_saving;
pub mod tracker;

pub use exact::ExactTopK;
pub use multistage::MultistageFilter;
pub use sample_and_hold::SampleAndHold;
pub use sorted_list::SortedListMemory;
pub use space_saving::SpaceSaving;
pub use tracker::{TopKEntry, TopKTracker};

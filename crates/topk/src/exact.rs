//! Exact (unbounded-memory) top-k tracking.
//!
//! One counter per flow: this is the idealised monitor the paper assumes when
//! it isolates the effect of *sampling* on the ranking — with unbounded
//! memory and no sampling the ranking is perfect, so any error measured in
//! the trace-driven experiments is attributable to sampling alone.

use flowrank_net::{FiveTuple, FlowMap};
use flowrank_stats::rng::Rng;

use crate::tracker::{TopKEntry, TopKTracker};

/// Unbounded exact per-flow counters.
#[derive(Debug, Clone, Default)]
pub struct ExactTopK {
    counts: FlowMap<FiveTuple, u64>,
}

impl ExactTopK {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact packet count of `key`, if the flow has been seen.
    pub fn count(&self, key: &FiveTuple) -> Option<u64> {
        self.counts.get(key).copied()
    }
}

impl TopKTracker for ExactTopK {
    fn observe(&mut self, key: &FiveTuple, _rng: &mut dyn Rng) {
        self.counts.upsert(*key, || 1, |c| *c += 1);
    }

    fn top(&self, t: usize) -> Vec<TopKEntry> {
        let mut entries: Vec<TopKEntry> = self
            .counts
            .iter()
            .map(|(key, &estimate)| TopKEntry { key, estimate })
            .collect();
        entries.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        entries.truncate(t);
        entries
    }

    fn memory_entries(&self) -> usize {
        self.counts.len()
    }

    fn reset(&mut self) {
        self.counts.clear();
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::test_util::{key, skewed_workload};
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn counts_exactly() {
        let mut tracker = ExactTopK::new();
        let mut rng = Pcg64::seed_from_u64(1);
        for packet_key in skewed_workload(10, 5) {
            tracker.observe(&packet_key, &mut rng);
        }
        assert_eq!(tracker.count(&key(0)), Some(50));
        assert_eq!(tracker.count(&key(9)), Some(5));
        assert_eq!(tracker.count(&key(100)), None);
        assert_eq!(tracker.memory_entries(), 10);
    }

    #[test]
    fn top_list_is_correctly_ordered() {
        let mut tracker = ExactTopK::new();
        let mut rng = Pcg64::seed_from_u64(1);
        for packet_key in skewed_workload(20, 3) {
            tracker.observe(&packet_key, &mut rng);
        }
        let top5 = tracker.top(5);
        assert_eq!(top5.len(), 5);
        let estimates: Vec<u64> = top5.iter().map(|e| e.estimate).collect();
        assert_eq!(estimates, vec![60, 57, 54, 51, 48]);
        assert_eq!(top5[0].key, key(0));
        // Asking for more than exists returns everything.
        assert_eq!(tracker.top(100).len(), 20);
    }

    #[test]
    fn reset_clears_state() {
        let mut tracker = ExactTopK::new();
        let mut rng = Pcg64::seed_from_u64(1);
        tracker.observe(&key(1), &mut rng);
        assert_eq!(tracker.memory_entries(), 1);
        tracker.reset();
        assert_eq!(tracker.memory_entries(), 0);
        assert!(tracker.top(3).is_empty());
        assert_eq!(tracker.name(), "exact");
    }
}

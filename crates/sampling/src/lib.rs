//! # flowrank-sampling
//!
//! Packet- and flow-sampling strategies, plus the inversion estimators that
//! turn sampled counters back into estimates of the original traffic.
//!
//! The paper studies *random packet sampling* — every packet is kept
//! independently with probability `p` — because that is what production
//! monitors implement (NetFlow-style 1-in-N or probabilistic sampling), and
//! shows that periodic and random sampling behave alike on high-speed links.
//! This crate implements that sampler along with the alternatives the paper
//! discusses or cites, so the benches can compare them:
//!
//! * [`random`] — independent Bernoulli(p) packet sampling (the paper's
//!   model), implemented in skip-based form: the gap to the next retained
//!   packet is drawn from the geometric distribution, so cost scales with
//!   the packets *kept* instead of the packets offered.
//! * [`periodic`] — deterministic 1-in-N packet sampling (what routers ship),
//!   with a skip-based batch path that is pure counter arithmetic.
//! * [`stratified`] — one uniformly chosen packet per stratum of N packets,
//!   skipping whole strata in batch form.
//! * [`flow_sampling`] — whole-flow sampling (reference \[8\]/\[11\] discussion in
//!   Sec. 1): if a flow is sampled, all of its packets are kept.
//! * [`smart`] — size-dependent sampling ("smart sampling", Duffield–Lund):
//!   the record-level [`smart::SmartSampler`] plus the packet-level
//!   [`smart::SmartPacketSampler`] adaptation used by the streaming monitor.
//! * [`adaptive`] — an adaptive-rate packet sampler that tracks a packet
//!   budget per interval (the paper's third future-work direction).
//! * [`inversion`] — estimators of original-traffic quantities from sampled
//!   data (scale-by-1/p, flow counts, mean flow size).
//! * [`seqno`] — TCP sequence-number flow-size estimator (the paper's second
//!   future-work direction).
//! * [`pipeline`] — sampling pipelines without intermediate copies: the lazy
//!   [`pipeline::sample_iter`] filter and the push-based
//!   [`pipeline::SamplerStage`] that the streaming `Monitor` builds its lanes
//!   from.
//!
//! Every sampler implements the object-safe [`PacketSampler`] trait, so a
//! monitor can select its sampling discipline at run time
//! (`Box<dyn PacketSampler>`) without monomorphising the whole pipeline per
//! sampler; blanket impls forward through `Box` and `&mut`. The trait's
//! batched entry point ([`PacketSampler::keep_batch`]) shares each
//! sampler's state with the per-packet path, so cutting a stream into
//! batches of any size never changes the decisions — the contract the
//! streaming monitor's `push`/`push_batch` equivalence rides on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod flow_sampling;
pub mod inversion;
pub mod periodic;
pub mod pipeline;
pub mod random;
pub mod sampler;
pub mod seqno;
pub mod smart;
pub mod stratified;

pub use adaptive::AdaptiveRateSampler;
pub use flow_sampling::FlowSampler;
pub use periodic::PeriodicSampler;
pub use pipeline::{sample_and_classify, sample_iter, sample_stream, SamplerStage};
pub use random::RandomSampler;
pub use sampler::PacketSampler;
pub use smart::SmartPacketSampler;
pub use stratified::StratifiedSampler;

//! Inversion estimators: recovering original-traffic quantities from sampled
//! counters.
//!
//! The introduction of the paper contrasts the easy inversions (total packet
//! count: multiply by `1/p`) with the hard ones (per-flow properties). This
//! module implements the aggregate estimators the paper builds on, in the
//! spirit of Duffield, Lund & Thorup (reference \[9\]):
//!
//! * [`scale_count`] / [`estimate_flow_size`] — unbiased `1/p` scaling of
//!   packet counts (per link or per flow).
//! * [`detection_probability`] — probability that a flow of a given size is
//!   seen at all, `1 − (1−p)^S`, which drives the detection results of Sec. 7.
//! * [`evasion_probability_for_sizes`] — the complementary quantity averaged
//!   over a flow-size population, `π₀ = E[(1−p)^S]`: the fraction of flows
//!   expected to disappear entirely from the sampled stream. Reference \[9\]
//!   points out that this unseen population is what makes flow counting and
//!   size-distribution inversion hard.
//! * [`estimate_original_flow_count`] — corrects the sampled flow count for
//!   the evading flows: `N̂ = M / (1 − π₀)`.
//! * [`estimate_mean_flow_size`] — mean original flow size from the unbiased
//!   packet total and the corrected flow count.

/// Scales a sampled packet count by `1/p` (unbiased under random sampling).
pub fn scale_count(sampled: u64, rate: f64) -> f64 {
    if rate <= 0.0 {
        return 0.0;
    }
    sampled as f64 / rate
}

/// Unbiased estimator of an individual flow's original size in packets.
pub fn estimate_flow_size(sampled_packets: u64, rate: f64) -> f64 {
    scale_count(sampled_packets, rate)
}

/// Probability that a flow of `size` packets is detected at all under random
/// packet sampling at rate `p`: `1 − (1−p)^size`.
pub fn detection_probability(size: u64, rate: f64) -> f64 {
    if rate >= 1.0 {
        return if size > 0 { 1.0 } else { 0.0 };
    }
    if rate <= 0.0 || size == 0 {
        return 0.0;
    }
    -(((1.0 - rate).ln() * size as f64).exp() - 1.0)
}

/// Average probability that a flow evades sampling entirely, `E[(1−p)^S]`,
/// estimated over a reference population of flow sizes (for example the
/// previous measurement interval, or a model-generated population).
pub fn evasion_probability_for_sizes(sizes: &[u64], rate: f64) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    if rate >= 1.0 {
        return 0.0;
    }
    if rate <= 0.0 {
        return 1.0;
    }
    let ln_q = (1.0 - rate).ln();
    sizes.iter().map(|&s| (ln_q * s as f64).exp()).sum::<f64>() / sizes.len() as f64
}

/// Estimates the number of flows in the *original* traffic from the number of
/// sampled flows `M` and the evasion probability `π₀`: `N̂ = M / (1 − π₀)`.
///
/// `π₀` comes from [`evasion_probability_for_sizes`] (empirical calibration)
/// or from a flow-size model. Returns `M` unchanged when `π₀` is out of the
/// usable range.
pub fn estimate_original_flow_count(sampled_flows: u64, evasion_probability: f64) -> f64 {
    if !(0.0..1.0).contains(&evasion_probability) {
        return sampled_flows as f64;
    }
    sampled_flows as f64 / (1.0 - evasion_probability)
}

/// Estimates the mean original flow size (in packets) from sampled totals.
///
/// Combines the unbiased total-packet estimator with the corrected flow-count
/// estimator: `mean ≈ (sampled_packets / p) / N̂`.
pub fn estimate_mean_flow_size(
    sampled_packets: u64,
    sampled_flows: u64,
    evasion_probability: f64,
    rate: f64,
) -> f64 {
    let flows = estimate_original_flow_count(sampled_flows, evasion_probability);
    if flows <= 0.0 {
        return 0.0;
    }
    scale_count(sampled_packets, rate) / flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_stats::dist::{DiscreteDistribution, Geometric};
    use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};

    #[test]
    fn scaling_is_unbiased_in_expectation() {
        let mut rng = Pcg64::seed_from_u64(1);
        let p = 0.05;
        let true_count = 200_000u64;
        let sampled = (0..true_count).filter(|_| rng.bernoulli(p)).count() as u64;
        let estimate = scale_count(sampled, p);
        let rel_err = (estimate - true_count as f64).abs() / true_count as f64;
        assert!(rel_err < 0.05, "relative error {rel_err}");
        assert_eq!(scale_count(100, 0.0), 0.0);
        assert_eq!(estimate_flow_size(10, 0.1), 100.0);
    }

    #[test]
    fn detection_probability_limits() {
        assert_eq!(detection_probability(0, 0.5), 0.0);
        assert_eq!(detection_probability(10, 0.0), 0.0);
        assert_eq!(detection_probability(10, 1.0), 1.0);
        assert_eq!(detection_probability(0, 1.0), 0.0);
        // Matches the direct formula.
        let direct = 1.0 - (1.0f64 - 0.01).powi(100);
        assert!((detection_probability(100, 0.01) - direct).abs() < 1e-12);
        // Monotone in both size and rate.
        assert!(detection_probability(100, 0.01) < detection_probability(1_000, 0.01));
        assert!(detection_probability(100, 0.01) < detection_probability(100, 0.1));
    }

    #[test]
    fn evasion_probability_bounds_and_consistency() {
        let sizes = vec![1u64, 2, 5, 10, 100];
        let p = 0.1;
        let pi0 = evasion_probability_for_sizes(&sizes, p);
        assert!(pi0 > 0.0 && pi0 < 1.0);
        // Complementarity with the detection probability, flow by flow.
        let direct: f64 = sizes
            .iter()
            .map(|&s| 1.0 - detection_probability(s, p))
            .sum::<f64>()
            / sizes.len() as f64;
        assert!((pi0 - direct).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(evasion_probability_for_sizes(&[], p), 0.0);
        assert_eq!(evasion_probability_for_sizes(&sizes, 1.0), 0.0);
        assert_eq!(evasion_probability_for_sizes(&sizes, 0.0), 1.0);
    }

    #[test]
    fn flow_count_estimator_recovers_geometric_population() {
        // Simulate sampling a population with geometric flow sizes and check
        // that correcting by the (empirically calibrated) evasion probability
        // recovers the true number of flows.
        let mut rng = Pcg64::seed_from_u64(9);
        let size_dist = Geometric::new(0.2).unwrap();
        let p = 0.1;
        let n_flows = 40_000;
        let sizes: Vec<u64> = (0..n_flows)
            .map(|_| 1 + size_dist.sample(&mut rng))
            .collect();
        let mut sampled_flows = 0u64;
        for &size in &sizes {
            let sampled = (0..size).filter(|_| rng.bernoulli(p)).count();
            if sampled > 0 {
                sampled_flows += 1;
            }
        }
        let pi0 = evasion_probability_for_sizes(&sizes, p);
        let estimate = estimate_original_flow_count(sampled_flows, pi0);
        let rel_err = (estimate - n_flows as f64).abs() / n_flows as f64;
        assert!(
            rel_err < 0.03,
            "relative error {rel_err} (estimate {estimate})"
        );
        // Degenerate evasion probabilities leave the count unchanged.
        assert_eq!(estimate_original_flow_count(10, 1.0), 10.0);
        assert_eq!(estimate_original_flow_count(10, -0.5), 10.0);
    }

    #[test]
    fn mean_flow_size_estimator_tracks_truth() {
        let mut rng = Pcg64::seed_from_u64(3);
        let p = 0.1;
        let n_flows = 20_000u64;
        let flow_size = 12u64;
        let sizes = vec![flow_size; n_flows as usize];
        let mut sampled_packets = 0u64;
        let mut sampled_flows = 0u64;
        for _ in 0..n_flows {
            let s = (0..flow_size).filter(|_| rng.bernoulli(p)).count() as u64;
            sampled_packets += s;
            if s > 0 {
                sampled_flows += 1;
            }
        }
        let pi0 = evasion_probability_for_sizes(&sizes, p);
        let estimate = estimate_mean_flow_size(sampled_packets, sampled_flows, pi0, p);
        let rel_err = (estimate - flow_size as f64).abs() / flow_size as f64;
        assert!(rel_err < 0.05, "estimated mean flow size {estimate}");
        assert_eq!(estimate_mean_flow_size(100, 0, 0.0, 0.5), 0.0);
    }
}

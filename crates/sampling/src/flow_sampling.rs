//! Whole-flow sampling.
//!
//! Under flow sampling, the keep/discard decision is made once per *flow*: if
//! a flow is selected, every one of its packets is retained (footnote 2 of
//! the paper, after references \[8\] and \[11\]). The paper does not adopt this
//! scheme — it requires per-packet flow-state lookups at line rate — but it is
//! the natural comparison point: flow sampling preserves exact flow sizes for
//! the flows it keeps, so ranking errors come only from missing flows
//! entirely.
//!
//! The decision is made by hashing the flow key with a seeded hash, so it is
//! consistent across packets of the same flow without keeping per-flow state.

use std::hash::{Hash, Hasher};

use flowrank_net::{FiveTuple, FlowKey, PacketRecord};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Samples entire flows with probability `q`, using a keyed hash of the
/// 5-tuple as the per-flow coin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSampler {
    rate: f64,
    seed: u64,
}

impl FlowSampler {
    /// Creates a flow sampler keeping each flow with probability `rate`.
    pub fn new(rate: f64, seed: u64) -> Self {
        FlowSampler {
            rate: rate.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The per-flow keep probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Returns `true` when the given flow key is selected.
    pub fn keeps_flow(&self, key: &FiveTuple) -> bool {
        if self.rate >= 1.0 {
            return true;
        }
        if self.rate <= 0.0 {
            return false;
        }
        // SplitMix-style scrambling of the flow hash gives a uniform value in
        // [0, 1) that is fixed for the flow and independent across seeds.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut hasher);
        key.hash(&mut hasher);
        let mut z = hasher.finish();
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.rate
    }
}

impl PacketSampler for FlowSampler {
    fn keep(&mut self, packet: &PacketRecord, _rng: &mut dyn Rng) -> bool {
        self.keeps_flow(&FiveTuple::from_packet(packet))
    }

    fn nominal_rate(&self) -> f64 {
        self.rate
    }

    fn name(&self) -> &'static str {
        "flow-sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::test_util::packet_stream;
    use flowrank_net::FlowTable;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn decisions_are_consistent_per_flow() {
        let packets = packet_stream(10_000, 100, 10.0);
        let mut sampler = FlowSampler::new(0.3, 42);
        let mut rng = Pcg64::seed_from_u64(0);
        let mut original: FlowTable<FiveTuple> = FlowTable::new();
        let mut sampled: FlowTable<FiveTuple> = FlowTable::new();
        for p in &packets {
            original.observe(p);
            if sampler.keep(p, &mut rng) {
                sampled.observe(p);
            }
        }
        // Every sampled flow keeps its exact original size.
        for (key, stats) in sampled.iter() {
            assert_eq!(stats.packets, original.get(&key).unwrap().packets);
        }
        // Roughly 30% of the 100 flows survive.
        let kept = sampled.flow_count();
        assert!((10..=55).contains(&kept), "kept {kept} flows");
    }

    #[test]
    fn rate_extremes() {
        let packets = packet_stream(100, 10, 1.0);
        let mut rng = Pcg64::seed_from_u64(0);
        let mut all = FlowSampler::new(1.0, 1);
        let mut none = FlowSampler::new(0.0, 1);
        assert!(packets.iter().all(|p| all.keep(p, &mut rng)));
        assert!(packets.iter().all(|p| !none.keep(p, &mut rng)));
        assert_eq!(FlowSampler::new(2.0, 1).rate(), 1.0);
        assert_eq!(all.name(), "flow-sampling");
    }

    #[test]
    fn different_seeds_select_different_flows() {
        let packets = packet_stream(1_000, 50, 1.0);
        let mut rng = Pcg64::seed_from_u64(0);
        let selections: Vec<Vec<bool>> = (0..3)
            .map(|seed| {
                let mut s = FlowSampler::new(0.5, seed);
                packets.iter().map(|p| s.keep(p, &mut rng)).collect()
            })
            .collect();
        assert_ne!(selections[0], selections[1]);
        assert_ne!(selections[1], selections[2]);
    }
}

//! Sampling pipelines: drive a sampler over a packet stream, lazily or
//! push-based, and build sampled flow tables.
//!
//! These helpers wire together the substrate pieces exactly the way the
//! paper's monitor does: packets arrive in time order, each one passes
//! through the sampler, surviving packets are classified into flows, and at
//! the end of the measurement period the flow table is ranked. None of them
//! materialise intermediate packet vectors:
//!
//! * [`sample_iter`] — a lazy filtering iterator over borrowed packets.
//! * [`SamplerStage`] — the push adapter the streaming `Monitor` builds its
//!   lanes from: an owned sampler plus its RNG, driven one packet at a time.
//! * [`sample_and_classify`] / [`classify_all`] — single-pass table builders.

use std::ops::Range;

use flowrank_net::{FlowKey, FlowTable, PacketBatch, PacketRecord};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Lazily filters `packets` through `sampler`: yields exactly the packets the
/// monitor retains, in order, without copying them into an intermediate
/// vector.
pub fn sample_iter<'a, I, S>(
    packets: I,
    sampler: &'a mut S,
    rng: &'a mut dyn Rng,
) -> impl Iterator<Item = &'a PacketRecord> + 'a
where
    I: IntoIterator<Item = &'a PacketRecord>,
    I::IntoIter: 'a,
    S: PacketSampler + ?Sized,
{
    packets
        .into_iter()
        .filter(move |packet| sampler.keep(packet, rng))
}

/// Runs `sampler` over `packets` and returns the retained packets as a lazy
/// iterator (callers that really need an owned copy can `.copied().collect()`
/// — nothing inside the pipeline does).
///
/// Thin slice-specialised alias of [`sample_iter`], retained for source
/// compatibility with the original batch API; prefer [`sample_iter`] in new
/// code.
pub fn sample_stream<'a, S: PacketSampler + ?Sized>(
    packets: &'a [PacketRecord],
    sampler: &'a mut S,
    rng: &'a mut dyn Rng,
) -> impl Iterator<Item = &'a PacketRecord> + 'a {
    sample_iter(packets, sampler, rng)
}

/// A push-based sampling stage: an owned (possibly runtime-selected) sampler
/// together with the RNG that drives its decisions.
///
/// This is the unit the streaming `Monitor` replicates per lane — each
/// (run, rate) combination owns one stage so the lanes' random streams stay
/// independent of how many lanes run side by side.
pub struct SamplerStage<R> {
    sampler: Box<dyn PacketSampler + Send>,
    rng: R,
}

impl<R> std::fmt::Debug for SamplerStage<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerStage")
            .field("sampler", &self.sampler.name())
            .field("nominal_rate", &self.sampler.nominal_rate())
            .finish_non_exhaustive()
    }
}

impl<R: Rng> SamplerStage<R> {
    /// Creates a stage from an owned sampler and its RNG.
    pub fn new(sampler: Box<dyn PacketSampler + Send>, rng: R) -> Self {
        SamplerStage { sampler, rng }
    }

    /// Pushes one packet through the stage; returns `true` when the monitor
    /// keeps it.
    pub fn admit(&mut self, packet: &PacketRecord) -> bool {
        self.sampler.keep(packet, &mut self.rng)
    }

    /// Offers `batch[range]` to the stage and appends the batch indices of
    /// the retained packets to `kept` — the batched form of
    /// [`SamplerStage::admit`], with identical decisions and RNG consumption
    /// for any way of cutting the stream into batches (see
    /// [`PacketSampler::keep_batch`]). Skip-capable samplers make the cost
    /// of this call proportional to the packets *kept*.
    pub fn admit_batch(&mut self, batch: &PacketBatch, range: Range<usize>, kept: &mut Vec<u32>) {
        self.sampler.keep_batch(batch, range, &mut self.rng, kept)
    }

    /// The sampler's nominal rate (see [`PacketSampler::nominal_rate`]).
    pub fn nominal_rate(&self) -> f64 {
        self.sampler.nominal_rate()
    }

    /// The sampler's short name.
    pub fn sampler_name(&self) -> &'static str {
        self.sampler.name()
    }

    /// Starts a new measurement interval: resets the sampler's internal state
    /// and replaces the RNG (each bin of the paper's methodology restarts the
    /// per-run random stream).
    pub fn start_interval(&mut self, rng: R) {
        self.sampler.reset();
        self.rng = rng;
    }
}

/// Runs `sampler` over `packets` and classifies the retained packets into a
/// flow table keyed by `K` — the monitor's end-of-interval state, built in a
/// single pass.
pub fn sample_and_classify<K: FlowKey, S: PacketSampler + ?Sized>(
    packets: &[PacketRecord],
    sampler: &mut S,
    rng: &mut dyn Rng,
) -> FlowTable<K> {
    let mut table = FlowTable::new();
    for packet in sample_iter(packets, sampler, rng) {
        table.observe(packet);
    }
    table
}

/// Classifies an (unsampled) packet stream — the ground-truth table the
/// sampled ranking is compared against.
pub fn classify_all<K: FlowKey>(packets: &[PacketRecord]) -> FlowTable<K> {
    let mut table = FlowTable::new();
    for packet in packets {
        table.observe(packet);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSampler;
    use crate::sampler::test_util::packet_stream;
    use flowrank_net::FiveTuple;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn sample_stream_keeps_about_p_fraction() {
        let packets = packet_stream(50_000, 100, 10.0);
        let mut sampler = RandomSampler::new(0.02);
        let mut rng = Pcg64::seed_from_u64(4);
        let kept = sample_stream(&packets, &mut sampler, &mut rng).count();
        let frac = kept as f64 / packets.len() as f64;
        assert!((frac - 0.02).abs() < 0.004, "kept fraction {frac}");
    }

    #[test]
    fn sample_iter_yields_borrowed_packets_in_order() {
        let packets = packet_stream(1_000, 4, 1.0);
        let mut sampler = RandomSampler::new(0.5);
        let mut rng = Pcg64::seed_from_u64(11);
        let mut last_index = None;
        for kept in sample_iter(&packets, &mut sampler, &mut rng) {
            let index = packets
                .iter()
                .position(|p| std::ptr::eq(p, kept))
                .expect("yielded reference must point into the input slice");
            assert!(
                last_index.is_none_or(|prev| index > prev),
                "order preserved"
            );
            last_index = Some(index);
        }
        assert!(last_index.is_some());
    }

    #[test]
    fn sampler_stage_matches_direct_sampler_use() {
        let packets = packet_stream(5_000, 20, 2.0);
        let mut direct = RandomSampler::new(0.1);
        let mut direct_rng = Pcg64::seed_from_u64(21);
        let expected: Vec<bool> = packets
            .iter()
            .map(|p| direct.keep(p, &mut direct_rng))
            .collect();

        let mut stage =
            SamplerStage::new(Box::new(RandomSampler::new(0.1)), Pcg64::seed_from_u64(21));
        let got: Vec<bool> = packets.iter().map(|p| stage.admit(p)).collect();
        assert_eq!(expected, got, "push adapter must not perturb the stream");
        assert!((stage.nominal_rate() - 0.1).abs() < 1e-12);
        assert_eq!(stage.sampler_name(), "random");
    }

    #[test]
    fn sampler_stage_interval_restart_replays_the_stream() {
        let packets = packet_stream(200, 5, 1.0);
        let mut stage =
            SamplerStage::new(Box::new(RandomSampler::new(0.3)), Pcg64::seed_from_u64(33));
        let first: Vec<bool> = packets.iter().map(|p| stage.admit(p)).collect();
        stage.start_interval(Pcg64::seed_from_u64(33));
        let second: Vec<bool> = packets.iter().map(|p| stage.admit(p)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn classify_all_recovers_flow_structure() {
        let packets = packet_stream(1_000, 10, 1.0);
        let table: FlowTable<FiveTuple> = classify_all(&packets);
        assert_eq!(table.flow_count(), 10);
        assert_eq!(table.total_packets(), 1_000);
        // Each of the 10 round-robin flows got 100 packets.
        assert!(table.ranked_by_packets().iter().all(|f| f.packets == 100));
    }

    #[test]
    fn sampled_table_is_subset_of_original() {
        let packets = packet_stream(20_000, 40, 5.0);
        let original: FlowTable<FiveTuple> = classify_all(&packets);
        let mut sampler = RandomSampler::new(0.1);
        let mut rng = Pcg64::seed_from_u64(5);
        let sampled: FlowTable<FiveTuple> = sample_and_classify(&packets, &mut sampler, &mut rng);
        assert!(sampled.flow_count() <= original.flow_count());
        assert!(sampled.total_packets() < original.total_packets());
        for (key, stats) in sampled.iter() {
            let orig = original.get(&key).expect("sampled flow must exist");
            assert!(stats.packets <= orig.packets);
        }
    }

    #[test]
    fn zero_rate_yields_empty_table() {
        let packets = packet_stream(1_000, 10, 1.0);
        let mut sampler = RandomSampler::new(0.0);
        let mut rng = Pcg64::seed_from_u64(6);
        let sampled: FlowTable<FiveTuple> = sample_and_classify(&packets, &mut sampler, &mut rng);
        assert_eq!(sampled.flow_count(), 0);
        assert_eq!(sampled.total_packets(), 0);
    }
}

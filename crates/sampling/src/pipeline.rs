//! Sampling pipelines: run a sampler over a packet stream and build sampled
//! flow tables.
//!
//! These helpers wire together the substrate pieces exactly the way the
//! paper's monitor does: packets arrive in time order, each one passes
//! through the sampler, surviving packets are classified into flows, and at
//! the end of the measurement period the flow table is ranked.

use flowrank_net::{FlowKey, FlowTable, PacketRecord};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Runs `sampler` over `packets` and returns the retained packets.
pub fn sample_stream<S: PacketSampler>(
    packets: &[PacketRecord],
    sampler: &mut S,
    rng: &mut dyn Rng,
) -> Vec<PacketRecord> {
    packets
        .iter()
        .filter(|p| sampler.keep(p, rng))
        .copied()
        .collect()
}

/// Runs `sampler` over `packets` and classifies the retained packets into a
/// flow table keyed by `K` — the monitor's end-of-interval state.
pub fn sample_and_classify<K: FlowKey, S: PacketSampler>(
    packets: &[PacketRecord],
    sampler: &mut S,
    rng: &mut dyn Rng,
) -> FlowTable<K> {
    let mut table = FlowTable::new();
    for packet in packets {
        if sampler.keep(packet, rng) {
            table.observe(packet);
        }
    }
    table
}

/// Classifies an (unsampled) packet stream — the ground-truth table the
/// sampled ranking is compared against.
pub fn classify_all<K: FlowKey>(packets: &[PacketRecord]) -> FlowTable<K> {
    let mut table = FlowTable::new();
    for packet in packets {
        table.observe(packet);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSampler;
    use crate::sampler::test_util::packet_stream;
    use flowrank_net::FiveTuple;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn sample_stream_keeps_about_p_fraction() {
        let packets = packet_stream(50_000, 100, 10.0);
        let mut sampler = RandomSampler::new(0.02);
        let mut rng = Pcg64::seed_from_u64(4);
        let kept = sample_stream(&packets, &mut sampler, &mut rng);
        let frac = kept.len() as f64 / packets.len() as f64;
        assert!((frac - 0.02).abs() < 0.004, "kept fraction {frac}");
    }

    #[test]
    fn classify_all_recovers_flow_structure() {
        let packets = packet_stream(1_000, 10, 1.0);
        let table: FlowTable<FiveTuple> = classify_all(&packets);
        assert_eq!(table.flow_count(), 10);
        assert_eq!(table.total_packets(), 1_000);
        // Each of the 10 round-robin flows got 100 packets.
        assert!(table.ranked_by_packets().iter().all(|f| f.packets == 100));
    }

    #[test]
    fn sampled_table_is_subset_of_original() {
        let packets = packet_stream(20_000, 40, 5.0);
        let original: FlowTable<FiveTuple> = classify_all(&packets);
        let mut sampler = RandomSampler::new(0.1);
        let mut rng = Pcg64::seed_from_u64(5);
        let sampled: FlowTable<FiveTuple> =
            sample_and_classify(&packets, &mut sampler, &mut rng);
        assert!(sampled.flow_count() <= original.flow_count());
        assert!(sampled.total_packets() < original.total_packets());
        for (key, stats) in sampled.iter() {
            let orig = original.get(key).expect("sampled flow must exist");
            assert!(stats.packets <= orig.packets);
        }
    }

    #[test]
    fn zero_rate_yields_empty_table() {
        let packets = packet_stream(1_000, 10, 1.0);
        let mut sampler = RandomSampler::new(0.0);
        let mut rng = Pcg64::seed_from_u64(6);
        let sampled: FlowTable<FiveTuple> =
            sample_and_classify(&packets, &mut sampler, &mut rng);
        assert_eq!(sampled.flow_count(), 0);
        assert_eq!(sampled.total_packets(), 0);
    }
}

//! Periodic (deterministic 1-in-N) packet sampling.
//!
//! Production routers typically implement "keep one packet out of every N".
//! The paper cites \[10\] for the observation that periodic and random sampling
//! give essentially the same inversion results on high-speed links, which is
//! why the analysis uses random sampling; this implementation lets the
//! `ablation_random_vs_periodic` bench verify that equivalence empirically.

use std::ops::Range;

use flowrank_net::{PacketBatch, PacketRecord};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Deterministic 1-in-N sampler with an optional random initial phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicSampler {
    period: u64,
    counter: u64,
    randomize_phase: bool,
    phase_initialized: bool,
}

impl PeriodicSampler {
    /// Creates a sampler that keeps one packet out of every `period`.
    ///
    /// A `period` of zero is treated as 1 (keep everything).
    pub fn new(period: u64) -> Self {
        PeriodicSampler {
            period: period.max(1),
            counter: 0,
            randomize_phase: false,
            phase_initialized: true,
        }
    }

    /// Creates a sampler whose nominal rate is `rate` (period = round(1/rate)).
    pub fn with_rate(rate: f64) -> Self {
        let period = if rate <= 0.0 {
            u64::MAX
        } else if rate >= 1.0 {
            1
        } else {
            (1.0 / rate).round() as u64
        };
        Self::new(period.max(1))
    }

    /// Randomises the phase at the start of each measurement interval, which
    /// removes the synchronisation bias of strict 1-in-N sampling.
    pub fn with_random_phase(mut self) -> Self {
        self.randomize_phase = true;
        self.phase_initialized = false;
        self
    }

    /// The sampling period N.
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl PacketSampler for PeriodicSampler {
    fn keep(&mut self, _packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        if !self.phase_initialized {
            self.counter = rng.next_below(self.period);
            self.phase_initialized = true;
        }
        let keep = self.counter == 0;
        self.counter = (self.counter + 1) % self.period;
        keep
    }

    /// Skip form: the retained positions of a 1-in-N stream are pure
    /// counter arithmetic, so the batch path jumps from keep to keep without
    /// visiting the packets between them. Decisions and RNG consumption
    /// (the optional phase draw) are identical to the per-packet path.
    fn keep_batch(
        &mut self,
        _batch: &PacketBatch,
        range: Range<usize>,
        rng: &mut dyn Rng,
        kept: &mut Vec<u32>,
    ) {
        if range.is_empty() {
            return;
        }
        if !self.phase_initialized {
            self.counter = rng.next_below(self.period);
            self.phase_initialized = true;
        }
        let len = (range.end - range.start) as u64;
        // First keep happens when the counter wraps to zero.
        let mut offset = (self.period - self.counter) % self.period;
        while offset < len {
            kept.push((range.start as u64 + offset) as u32);
            match offset.checked_add(self.period) {
                Some(next) => offset = next,
                None => break,
            }
        }
        self.counter = ((self.counter as u128 + len as u128) % self.period as u128) as u64;
    }

    fn nominal_rate(&self) -> f64 {
        1.0 / self.period as f64
    }

    fn reset(&mut self) {
        self.counter = 0;
        if self.randomize_phase {
            self.phase_initialized = false;
        }
    }

    fn name(&self) -> &'static str {
        "periodic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::test_util::packet_stream;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn keeps_exactly_one_in_n() {
        let packets = packet_stream(1_000, 10, 1.0);
        let mut sampler = PeriodicSampler::new(10);
        let mut rng = Pcg64::seed_from_u64(1);
        let kept: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| sampler.keep(p, &mut rng))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept.len(), 100);
        // Kept packets are exactly the multiples of 10 (phase 0).
        assert!(kept.iter().enumerate().all(|(j, &i)| i == j * 10));
    }

    #[test]
    fn rate_constructor_round_trips() {
        assert_eq!(PeriodicSampler::with_rate(0.01).period(), 100);
        assert_eq!(PeriodicSampler::with_rate(1.0).period(), 1);
        assert_eq!(PeriodicSampler::with_rate(0.0).period(), u64::MAX);
        assert!((PeriodicSampler::new(1000).nominal_rate() - 0.001).abs() < 1e-12);
        assert_eq!(PeriodicSampler::new(0).period(), 1);
    }

    #[test]
    fn random_phase_varies_with_rng_but_preserves_rate() {
        let packets = packet_stream(10_000, 10, 1.0);
        let mut first_indices = Vec::new();
        for seed in 0..5 {
            let mut sampler = PeriodicSampler::new(100).with_random_phase();
            let mut rng = Pcg64::seed_from_u64(seed);
            let kept: Vec<usize> = packets
                .iter()
                .enumerate()
                .filter(|(_, p)| sampler.keep(p, &mut rng))
                .map(|(i, _)| i)
                .collect();
            assert!((kept.len() as i64 - 100).abs() <= 1);
            first_indices.push(kept[0]);
        }
        first_indices.dedup();
        assert!(first_indices.len() > 1, "phases should differ across seeds");
    }

    #[test]
    fn batch_path_preserves_decisions_and_rng_stream() {
        let packets = packet_stream(5_000, 10, 1.0);
        let batch = PacketBatch::from_records(&packets);
        for (period, random_phase) in [(1u64, false), (7, false), (100, true), (6_000, true)] {
            let build = || {
                let sampler = PeriodicSampler::new(period);
                if random_phase {
                    sampler.with_random_phase()
                } else {
                    sampler
                }
            };
            let mut per_packet = build();
            let mut rng_a = Pcg64::seed_from_u64(17);
            let expected: Vec<u32> = packets
                .iter()
                .enumerate()
                .filter(|(_, p)| per_packet.keep(p, &mut rng_a))
                .map(|(i, _)| i as u32)
                .collect();

            let mut skip = build();
            let mut rng_b = Pcg64::seed_from_u64(17);
            let mut kept = Vec::new();
            let mut start = 0usize;
            for chunk in [3usize, 1, 500, usize::MAX] {
                let end = batch.len().min(start.saturating_add(chunk));
                skip.keep_batch(&batch, start..end, &mut rng_b, &mut kept);
                start = end;
                if start == batch.len() {
                    break;
                }
            }
            assert_eq!(kept, expected, "period {period}");
            assert_eq!(rng_a, rng_b, "period {period}: identical RNG stream");
        }
    }

    #[test]
    fn reset_restores_phase() {
        let packets = packet_stream(10, 2, 1.0);
        let mut sampler = PeriodicSampler::new(5);
        let mut rng = Pcg64::seed_from_u64(3);
        assert!(sampler.keep(&packets[0], &mut rng));
        assert!(!sampler.keep(&packets[1], &mut rng));
        sampler.reset();
        assert!(sampler.keep(&packets[2], &mut rng));
        assert_eq!(sampler.name(), "periodic");
    }
}

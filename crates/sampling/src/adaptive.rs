//! Adaptive-rate packet sampling.
//!
//! The paper's third future-work direction is "adaptive schemes that set the
//! sampling rate based on the characteristics of the observed traffic". This
//! module implements a simple, practical variant: the operator fixes a budget
//! of sampled packets per adjustment interval and the sampler scales its rate
//! multiplicatively so that the realised volume tracks the budget. On a link
//! whose offered load varies over time this keeps the monitor's memory/CPU
//! cost constant while sampling as aggressively as the budget allows — which
//! is exactly the regime in which the ranking accuracy of the paper degrades
//! or improves bin by bin.

use flowrank_net::{PacketRecord, Timestamp};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Empty-interval steps replayed after an idle gap, at most. The per-step
/// factor is already clamped to ×4, so the rate saturates at `max_rate`
/// within a few steps; capping the replay keeps a very long idle period
/// from costing work proportional to its length.
const MAX_EMPTY_REPLAY: u64 = 16;

/// Packet sampler that adapts its rate to a per-interval sample budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveRateSampler {
    rate: f64,
    min_rate: f64,
    max_rate: f64,
    budget_per_interval: u64,
    interval: Timestamp,
    current_interval: u64,
    sampled_in_interval: u64,
    initial_rate: f64,
    /// No packet observed since construction/reset: the first packet may
    /// land in any interval (the enclosing monitor resets samplers per
    /// measurement bin), which must not be mistaken for an idle gap.
    fresh: bool,
}

impl AdaptiveRateSampler {
    /// Creates an adaptive sampler.
    ///
    /// * `initial_rate` — starting sampling probability.
    /// * `budget_per_interval` — target number of sampled packets per interval.
    /// * `interval` — length of the adjustment interval.
    pub fn new(initial_rate: f64, budget_per_interval: u64, interval: Timestamp) -> Self {
        let rate = initial_rate.clamp(1e-6, 1.0);
        AdaptiveRateSampler {
            rate,
            min_rate: 1e-6,
            max_rate: 1.0,
            budget_per_interval: budget_per_interval.max(1),
            interval,
            current_interval: 0,
            sampled_in_interval: 0,
            initial_rate: rate,
            fresh: true,
        }
    }

    /// Restricts the range the adapted rate may take.
    pub fn with_rate_bounds(mut self, min_rate: f64, max_rate: f64) -> Self {
        self.min_rate = min_rate.clamp(1e-9, 1.0);
        self.max_rate = max_rate.clamp(self.min_rate, 1.0);
        self.rate = self.rate.clamp(self.min_rate, self.max_rate);
        self.initial_rate = self.initial_rate.clamp(self.min_rate, self.max_rate);
        self
    }

    /// The rate currently in force.
    pub fn current_rate(&self) -> f64 {
        self.rate
    }

    fn roll_interval(&mut self, packet_interval: u64) {
        // Multiplicative update for the interval that just ended: scale the
        // rate by budget / realised count, bounded to a factor of 4 per step
        // to avoid oscillation.
        let realised = self.sampled_in_interval.max(1) as f64;
        let factor = (self.budget_per_interval as f64 / realised).clamp(0.25, 4.0);
        self.rate = (self.rate * factor).clamp(self.min_rate, self.max_rate);
        // A quiet gap skipped whole intervals in which nothing was sampled:
        // replay one empty-interval step per elapsed interval (realised = 0,
        // so the step factor is the clamped budget), so the rate coming out
        // of an idle period matches what rolling through it interval by
        // interval would have produced, instead of staying one stale step
        // behind. A fresh sampler skips the replay — its first packet may
        // legitimately land in any interval.
        let elapsed = packet_interval.saturating_sub(self.current_interval);
        if !self.fresh && elapsed > 1 {
            let empty_factor = (self.budget_per_interval as f64).clamp(0.25, 4.0);
            for _ in 1..elapsed.min(MAX_EMPTY_REPLAY) {
                if empty_factor <= 1.0 || self.rate >= self.max_rate {
                    break;
                }
                self.rate = (self.rate * empty_factor).clamp(self.min_rate, self.max_rate);
            }
        }
        self.sampled_in_interval = 0;
        self.current_interval = packet_interval;
    }
}

impl PacketSampler for AdaptiveRateSampler {
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        let packet_interval = packet.timestamp.bin_index(self.interval);
        if packet_interval != self.current_interval {
            self.roll_interval(packet_interval);
        }
        self.fresh = false;
        let keep = rng.bernoulli(self.rate);
        if keep {
            self.sampled_in_interval += 1;
        }
        keep
    }

    fn nominal_rate(&self) -> f64 {
        self.rate
    }

    fn reset(&mut self) {
        self.rate = self.initial_rate;
        self.current_interval = 0;
        self.sampled_in_interval = 0;
        self.fresh = true;
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_stats::rng::{Pcg64, SeedableRng};
    use std::net::Ipv4Addr;

    fn packet_at(t: f64) -> PacketRecord {
        PacketRecord::udp(
            Timestamp::from_secs_f64(t),
            Ipv4Addr::new(10, 0, 0, 1),
            1,
            Ipv4Addr::new(10, 0, 0, 2),
            2,
            500,
        )
    }

    /// Feeds `pps` packets per second for `secs` seconds and returns the
    /// sampler's rate trajectory at the end of each second.
    fn run(sampler: &mut AdaptiveRateSampler, pps: usize, secs: usize, seed: u64) -> Vec<f64> {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut rates = Vec::new();
        for s in 0..secs {
            for i in 0..pps {
                let t = s as f64 + i as f64 / pps as f64;
                sampler.keep(&packet_at(t), &mut rng);
            }
            rates.push(sampler.current_rate());
        }
        rates
    }

    #[test]
    fn rate_decreases_when_over_budget() {
        // 10k packets/s, budget 100 samples/s → rate should fall toward 1%.
        let mut sampler = AdaptiveRateSampler::new(0.5, 100, Timestamp::from_secs_f64(1.0));
        let rates = run(&mut sampler, 10_000, 10, 1);
        assert!(
            rates.last().unwrap() < &0.05,
            "final rate {:?}",
            rates.last()
        );
        assert!(rates.first().unwrap() >= rates.last().unwrap());
    }

    #[test]
    fn rate_increases_when_under_budget() {
        // 1k packets/s, budget 500 samples/s → rate should rise toward 50%.
        let mut sampler = AdaptiveRateSampler::new(0.01, 500, Timestamp::from_secs_f64(1.0));
        let rates = run(&mut sampler, 1_000, 12, 2);
        assert!(
            rates.last().unwrap() > &0.2,
            "final rate {:?}",
            rates.last()
        );
    }

    #[test]
    fn converges_near_budget() {
        let mut sampler = AdaptiveRateSampler::new(0.3, 200, Timestamp::from_secs_f64(1.0));
        let mut rng = Pcg64::seed_from_u64(3);
        let mut sampled_last_second = 0;
        for s in 0..20 {
            sampled_last_second = 0;
            for i in 0..5_000 {
                let t = s as f64 + i as f64 / 5_000.0;
                if sampler.keep(&packet_at(t), &mut rng) {
                    sampled_last_second += 1;
                }
            }
        }
        assert!(
            (80..=500).contains(&sampled_last_second),
            "sampled {sampled_last_second} in final second"
        );
    }

    #[test]
    fn idle_gap_replays_one_step_per_elapsed_interval() {
        // Pinned-seed regression for the stale-rate-after-idle bug: a gap of
        // k quiet intervals used to trigger a single multiplicative step.
        // With budget 2 the empty-interval factor is ×2, so a packet at
        // interval 0 followed by one at interval 4 (intervals 1–3 empty)
        // must step ×2 four times: once for interval 0 (nothing sampled at
        // a 1% rate under this seed) and once per empty interval.
        let mut sampler = AdaptiveRateSampler::new(0.01, 2, Timestamp::from_secs_f64(1.0));
        let mut rng = Pcg64::seed_from_u64(0xD00D_2026);
        sampler.keep(&packet_at(0.5), &mut rng);
        sampler.keep(&packet_at(4.5), &mut rng);
        assert!(
            (sampler.current_rate() - 0.16).abs() < 1e-12,
            "expected 0.01 × 2⁴ after the gap, got {}",
            sampler.current_rate()
        );
    }

    #[test]
    fn replay_saturates_instead_of_scaling_with_idle_time() {
        // A week-long gap must not cost a week of steps: the replay caps
        // once the rate pins at max_rate.
        let mut sampler = AdaptiveRateSampler::new(0.01, 1000, Timestamp::from_secs_f64(1.0));
        let mut rng = Pcg64::seed_from_u64(7);
        sampler.keep(&packet_at(0.5), &mut rng);
        sampler.keep(&packet_at(604_800.5), &mut rng);
        assert_eq!(sampler.current_rate(), 1.0);
    }

    #[test]
    fn fresh_sampler_takes_one_legacy_step_for_a_late_first_packet() {
        // The enclosing monitor resets samplers at every bin close, so the
        // first packet of a bin can land many intervals in. That is not an
        // idle gap: exactly one multiplicative step fires (0.2 × 4 = 0.8),
        // the behaviour the conformance goldens pin.
        let mut sampler = AdaptiveRateSampler::new(0.2, 400, Timestamp::from_secs_f64(5.0));
        let mut rng = Pcg64::seed_from_u64(1);
        sampler.keep(&packet_at(2.0), &mut rng);
        sampler.reset();
        sampler.keep(&packet_at(62.0), &mut rng);
        assert!(
            (sampler.current_rate() - 0.8).abs() < 1e-12,
            "got {}",
            sampler.current_rate()
        );
    }

    #[test]
    fn bounds_and_reset() {
        let mut sampler = AdaptiveRateSampler::new(0.5, 1, Timestamp::from_secs_f64(1.0))
            .with_rate_bounds(0.01, 0.2);
        assert!(sampler.current_rate() <= 0.2);
        let _ = run(&mut sampler, 10_000, 5, 4);
        assert!(sampler.current_rate() >= 0.01);
        sampler.reset();
        assert!((sampler.current_rate() - 0.2).abs() < 1e-12);
        assert_eq!(sampler.name(), "adaptive");
    }
}

//! TCP sequence-number flow-size estimation.
//!
//! The paper's second future-work direction: instead of scaling the sampled
//! packet count by `1/p`, use protocol information in the sampled packets —
//! the span of observed TCP sequence numbers bounds the number of bytes the
//! flow transferred between its first and last sampled packet, with far lower
//! variance than count scaling when at least two packets are sampled. The
//! estimator below combines both:
//!
//! * ≥ 2 sampled packets with distinct sequence numbers → the byte span,
//!   extrapolated for the unseen head and tail of the flow;
//! * otherwise → fall back to `count / p`.
//!
//! The drawback the paper notes — it only works for TCP 5-tuple flows, not
//! for prefix aggregates or encrypted/other protocols — applies here too and
//! is surfaced by [`SeqnoEstimate::method`].

use flowrank_net::FlowStats;

/// How a size estimate was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationMethod {
    /// Sequence-number span (at least two distinct sequence numbers sampled).
    SequenceSpan,
    /// `count / p` scaling fallback.
    CountScaling,
}

/// A flow-size estimate in packets with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqnoEstimate {
    /// Estimated original flow size in packets.
    pub packets: f64,
    /// Which estimator produced the value.
    pub method: EstimationMethod,
}

/// Sequence-number-based flow-size estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqnoSizeEstimator {
    /// Packet sampling rate `p`.
    pub rate: f64,
    /// Assumed mean packet payload size in bytes (500 B in the paper's
    /// setting) used to convert a byte span into packets.
    pub mean_packet_bytes: f64,
}

impl SeqnoSizeEstimator {
    /// Creates an estimator for sampling rate `rate` and the given mean
    /// packet size in bytes.
    pub fn new(rate: f64, mean_packet_bytes: f64) -> Self {
        SeqnoSizeEstimator {
            rate: rate.clamp(0.0, 1.0),
            mean_packet_bytes: mean_packet_bytes.max(1.0),
        }
    }

    /// Estimates the original size (in packets) of a sampled flow.
    pub fn estimate(&self, sampled: &FlowStats) -> SeqnoEstimate {
        if let Some(span_bytes) = sampled.tcp_seq_span() {
            // Packets covered by the observed span (inclusive of both ends).
            let covered = span_bytes as f64 / self.mean_packet_bytes + 1.0;
            // The first sampled packet sits, on average, p·(k+1)-th … more
            // simply: the unseen head and tail are each ≈ (1−p)/p packets in
            // expectation under random sampling, so extend the span by that.
            let tail_correction = if self.rate > 0.0 {
                2.0 * (1.0 - self.rate) / self.rate
            } else {
                0.0
            };
            let estimate = covered + tail_correction.min(covered); // cap the correction
            SeqnoEstimate {
                packets: estimate,
                method: EstimationMethod::SequenceSpan,
            }
        } else {
            let packets = if self.rate > 0.0 {
                sampled.packets as f64 / self.rate
            } else {
                0.0
            };
            SeqnoEstimate {
                packets,
                method: EstimationMethod::CountScaling,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_net::{FiveTuple, FlowTable, PacketRecord, Timestamp};
    use flowrank_stats::rng::{Pcg64, Rng, SeedableRng};
    use std::net::Ipv4Addr;

    /// Builds a sampled flow table for one flow of `size` packets sampled at
    /// rate `p`, and returns its stats (if any packet survived).
    fn sampled_flow(size: u64, p: f64, seed: u64) -> Option<FlowStats> {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut table: FlowTable<FiveTuple> = FlowTable::new();
        for i in 0..size {
            if rng.bernoulli(p) {
                let packet = PacketRecord::tcp(
                    Timestamp::from_secs_f64(i as f64),
                    Ipv4Addr::new(10, 0, 0, 1),
                    1234,
                    Ipv4Addr::new(100, 64, 0, 1),
                    80,
                    500,
                    (i * 500) as u32,
                );
                table.observe(&packet);
            }
        }
        let stats = table.iter().next().map(|(_, s)| *s);
        stats
    }

    #[test]
    fn span_estimator_beats_count_scaling_for_large_flows() {
        let true_size = 10_000u64;
        let p = 0.01;
        let estimator = SeqnoSizeEstimator::new(p, 500.0);
        let mut span_errors = Vec::new();
        let mut count_errors = Vec::new();
        for seed in 0..30 {
            if let Some(stats) = sampled_flow(true_size, p, seed) {
                let est = estimator.estimate(&stats);
                if est.method == EstimationMethod::SequenceSpan {
                    span_errors.push((est.packets - true_size as f64).abs());
                }
                count_errors.push((stats.packets as f64 / p - true_size as f64).abs());
            }
        }
        assert!(!span_errors.is_empty());
        let mean_span = span_errors.iter().sum::<f64>() / span_errors.len() as f64;
        let mean_count = count_errors.iter().sum::<f64>() / count_errors.len() as f64;
        assert!(
            mean_span < mean_count,
            "span error {mean_span} should beat count-scaling error {mean_count}"
        );
        // And the span estimate should be in the right ballpark (within 20%).
        assert!(
            mean_span < 0.2 * true_size as f64,
            "mean span error {mean_span}"
        );
    }

    #[test]
    fn falls_back_to_count_scaling_with_single_sample() {
        let estimator = SeqnoSizeEstimator::new(0.1, 500.0);
        // Find a seed where exactly one packet of a 10-packet flow survives.
        let mut found = false;
        for seed in 0..200 {
            if let Some(stats) = sampled_flow(10, 0.1, seed) {
                if stats.packets == 1 {
                    let est = estimator.estimate(&stats);
                    assert_eq!(est.method, EstimationMethod::CountScaling);
                    assert!((est.packets - 10.0).abs() < 1e-9);
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "no single-sample flow found in 200 seeds");
    }

    #[test]
    fn degenerate_rates() {
        let estimator = SeqnoSizeEstimator::new(0.0, 500.0);
        let stats = sampled_flow(100, 1.0, 1).unwrap();
        let est = estimator.estimate(&stats);
        // With a span present, rate 0 just skips the tail correction.
        assert_eq!(est.method, EstimationMethod::SequenceSpan);
        assert!(est.packets >= 100.0 - 1e-9);
        assert_eq!(SeqnoSizeEstimator::new(2.0, 0.0).mean_packet_bytes, 1.0);
    }
}

//! Independent random packet sampling — the paper's sampling model.
//!
//! Every packet is retained with probability `p`, independently of every
//! other packet, so a flow of `S` packets yields a Binomial(S, p) sampled
//! size. All of the analytical machinery in `flowrank-core` assumes this
//! sampler.

use flowrank_net::PacketRecord;
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Bernoulli(p) packet sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSampler {
    rate: f64,
}

impl RandomSampler {
    /// Creates a random sampler with sampling probability `rate`, clamped to
    /// `[0, 1]`.
    pub fn new(rate: f64) -> Self {
        RandomSampler {
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The sampling probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl PacketSampler for RandomSampler {
    fn keep(&mut self, _packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        rng.bernoulli(self.rate)
    }

    fn nominal_rate(&self) -> f64 {
        self.rate
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::test_util::packet_stream;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn clamps_rate() {
        assert_eq!(RandomSampler::new(-0.5).rate(), 0.0);
        assert_eq!(RandomSampler::new(1.7).rate(), 1.0);
        assert_eq!(RandomSampler::new(0.01).nominal_rate(), 0.01);
        assert_eq!(RandomSampler::new(0.5).name(), "random");
    }

    #[test]
    fn empirical_rate_matches_nominal() {
        let packets = packet_stream(100_000, 50, 10.0);
        let mut sampler = RandomSampler::new(0.1);
        let mut rng = Pcg64::seed_from_u64(1);
        let kept = packets.iter().filter(|p| sampler.keep(p, &mut rng)).count();
        let rate = kept as f64 / packets.len() as f64;
        assert!((rate - 0.1).abs() < 0.005, "empirical rate {rate}");
    }

    #[test]
    fn extreme_rates() {
        let packets = packet_stream(1_000, 10, 1.0);
        let mut rng = Pcg64::seed_from_u64(2);
        let mut none = RandomSampler::new(0.0);
        let mut all = RandomSampler::new(1.0);
        assert!(packets.iter().all(|p| !none.keep(p, &mut rng)));
        assert!(packets.iter().all(|p| all.keep(p, &mut rng)));
    }

    #[test]
    fn decisions_are_independent_of_packet_content() {
        // Two different packets at the same position in the RNG stream get
        // the same decision — the sampler never inspects the packet.
        let packets = packet_stream(2, 2, 1.0);
        let mut s = RandomSampler::new(0.5);
        let mut rng_a = Pcg64::seed_from_u64(3);
        let mut rng_b = Pcg64::seed_from_u64(3);
        assert_eq!(
            s.keep(&packets[0], &mut rng_a),
            s.keep(&packets[1], &mut rng_b)
        );
    }
}

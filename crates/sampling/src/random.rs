//! Independent random packet sampling — the paper's sampling model, in
//! skip-based (geometric-gap) form.
//!
//! Every packet is retained with probability `p`, independently of every
//! other packet, so a flow of `S` packets yields a Binomial(S, p) sampled
//! size. All of the analytical machinery in `flowrank-core` assumes this
//! sampler.
//!
//! # Skip-based sampling
//!
//! A naive implementation flips one Bernoulli(p) coin per packet — `n` RNG
//! draws to keep `p·n` packets. At low rates this implementation instead
//! draws the **gap to the next retained packet** from the geometric
//! distribution `P(G = g) = p(1−p)^g` (Vitter's "Method A" of sequential
//! random sampling): the two processes are identical in distribution, but
//! the skip form consumes one RNG draw per *retained* packet. Over a
//! [`PacketBatch`] the sampler indexes straight to the retained positions
//! (`keep_batch`), so per-lane cost is `O(p·n)` instead of `O(n)`; the
//! per-packet [`PacketSampler::keep`] entry point drives the same gap
//! counter, which is what keeps streaming (`push`) and batched
//! (`push_batch`) monitors bit-identical.
//!
//! A geometric draw pays an `ln()`, so it only wins while keeps are rare;
//! at rates of [`SKIP_RATE_CEILING`] (1-in-8) and above the sampler flips
//! plain Bernoulli coins instead — the regime switch is a pure function of
//! the rate, so the per-packet and batch paths always agree.
//!
//! Note the RNG *stream* in the skip regime differs from the naive
//! per-packet Bernoulli form (one geometric draw per retained packet
//! instead of one uniform draw per offered packet), so seeded low-rate
//! results differ from pre-skip versions of this crate while remaining
//! distribution-equivalent — the `skip_sampling_stats` integration suite
//! pins both facts. High-rate (Bernoulli-regime) results, and the periodic
//! and stratified samplers' streams at every rate, are preserved exactly.

use std::ops::Range;

use flowrank_net::{PacketBatch, PacketRecord};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Rates at or above this ceiling use a plain Bernoulli draw per packet
/// instead of geometric skips: a gap draw costs one `ln()` per *kept*
/// packet while a Bernoulli trial costs one cheap uniform draw per
/// *offered* packet, so skipping only wins when keeps are rare (Vitter's
/// classic Method A/B switch). At 1-in-8 the two costs cross on commodity
/// hardware.
pub const SKIP_RATE_CEILING: f64 = 0.125;

/// Bernoulli(p) packet sampler in skip-based form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSampler {
    rate: f64,
    /// Precomputed `1 / ln(1−p)` for the geometric inverse CDF (0 outside
    /// the skip regime).
    inv_ln_discard: f64,
    /// Packets still to skip before the next retained one; `None` when the
    /// next gap has not been drawn yet. Unused outside the skip regime.
    gap: Option<u64>,
}

impl RandomSampler {
    /// Creates a random sampler with sampling probability `rate`, clamped to
    /// `[0, 1]`.
    pub fn new(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let inv_ln_discard = if rate > 0.0 && rate < SKIP_RATE_CEILING {
            let inverse = 1.0 / (1.0 - rate).ln();
            if inverse.is_finite() {
                inverse
            } else {
                // Rates below ~1e-16 underflow `1 − p` to exactly 1, making
                // the inverse +∞ and every gap zero (keep everything!).
                // Such a rate keeps nothing within any u64-indexable
                // stream, so pin the gap to +∞ instead: ln(U) < 0 times −∞
                // saturates the cast to `u64::MAX`.
                f64::NEG_INFINITY
            }
        } else {
            0.0
        };
        RandomSampler {
            rate,
            inv_ln_discard,
            gap: None,
        }
    }

    /// The sampling probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether this rate runs in the geometric-skip regime (low rates) or
    /// the per-packet Bernoulli regime (high rates). The choice is a pure
    /// function of the rate, so the per-packet and batch entry points always
    /// agree on it.
    fn skips(&self) -> bool {
        self.rate < SKIP_RATE_CEILING
    }

    /// Draws the geometric gap to the next retained packet: the number of
    /// consecutive discards before a keep, `P(G = g) = p(1−p)^g`.
    fn draw_gap(&self, rng: &mut dyn Rng) -> u64 {
        // Inverse CDF: G = floor(ln U / ln(1−p)) with U uniform in (0, 1).
        let gap = rng.next_open_f64().ln() * self.inv_ln_discard;
        if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        }
    }
}

impl PacketSampler for RandomSampler {
    fn keep(&mut self, _packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        // Degenerate rates consume no randomness, matching `Rng::bernoulli`.
        if self.rate <= 0.0 {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        if !self.skips() {
            return rng.bernoulli(self.rate);
        }
        let gap = match self.gap {
            Some(gap) => gap,
            None => self.draw_gap(rng),
        };
        if gap == 0 {
            self.gap = None;
            true
        } else {
            self.gap = Some(gap - 1);
            false
        }
    }

    fn keep_batch(
        &mut self,
        _batch: &PacketBatch,
        range: Range<usize>,
        rng: &mut dyn Rng,
        kept: &mut Vec<u32>,
    ) {
        if self.rate <= 0.0 {
            return;
        }
        if self.rate >= 1.0 {
            kept.extend(range.map(|i| i as u32));
            return;
        }
        if !self.skips() {
            // Bernoulli regime: still batch-friendly — no per-packet record
            // reconstruction or virtual dispatch, just one uniform draw per
            // offered packet (the decisions never depend on packet content).
            for i in range {
                if rng.bernoulli(self.rate) {
                    kept.push(i as u32);
                }
            }
            return;
        }
        let mut i = range.start;
        while i < range.end {
            let gap = match self.gap.take() {
                Some(gap) => gap,
                None => self.draw_gap(rng),
            };
            let remaining = (range.end - i) as u64;
            if gap < remaining {
                i += gap as usize;
                kept.push(i as u32);
                i += 1;
            } else {
                // The next retained packet lies beyond this batch; carry the
                // unconsumed part of the gap into the next call.
                self.gap = Some(gap - remaining);
                break;
            }
        }
    }

    fn nominal_rate(&self) -> f64 {
        self.rate
    }

    fn reset(&mut self) {
        self.gap = None;
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::test_util::packet_stream;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn clamps_rate() {
        assert_eq!(RandomSampler::new(-0.5).rate(), 0.0);
        assert_eq!(RandomSampler::new(1.7).rate(), 1.0);
        assert_eq!(RandomSampler::new(0.01).nominal_rate(), 0.01);
        assert_eq!(RandomSampler::new(0.5).name(), "random");
    }

    #[test]
    fn empirical_rate_matches_nominal() {
        let packets = packet_stream(100_000, 50, 10.0);
        let mut sampler = RandomSampler::new(0.1);
        let mut rng = Pcg64::seed_from_u64(1);
        let kept = packets.iter().filter(|p| sampler.keep(p, &mut rng)).count();
        let rate = kept as f64 / packets.len() as f64;
        assert!((rate - 0.1).abs() < 0.005, "empirical rate {rate}");
    }

    #[test]
    fn extreme_rates() {
        let packets = packet_stream(1_000, 10, 1.0);
        let mut rng = Pcg64::seed_from_u64(2);
        let mut none = RandomSampler::new(0.0);
        let mut all = RandomSampler::new(1.0);
        assert!(packets.iter().all(|p| !none.keep(p, &mut rng)));
        assert!(packets.iter().all(|p| all.keep(p, &mut rng)));

        // Batch form: nothing / everything, without consuming randomness.
        let batch = PacketBatch::from_records(&packets);
        let mut kept = Vec::new();
        let mut probe = Pcg64::seed_from_u64(2);
        none.keep_batch(&batch, 0..batch.len(), &mut probe, &mut kept);
        assert!(kept.is_empty());
        all.keep_batch(&batch, 0..batch.len(), &mut probe, &mut kept);
        assert_eq!(kept.len(), batch.len());
        assert_eq!(probe, Pcg64::seed_from_u64(2), "no RNG draws consumed");
    }

    #[test]
    fn decisions_are_independent_of_packet_content() {
        // Two different packets at the same position in the RNG stream get
        // the same decision — the sampler never inspects the packet.
        let packets = packet_stream(2, 2, 1.0);
        let mut sampler_a = RandomSampler::new(0.5);
        let mut sampler_b = RandomSampler::new(0.5);
        let mut rng_a = Pcg64::seed_from_u64(3);
        let mut rng_b = Pcg64::seed_from_u64(3);
        assert_eq!(
            sampler_a.keep(&packets[0], &mut rng_a),
            sampler_b.keep(&packets[1], &mut rng_b)
        );
    }

    #[test]
    fn batch_path_is_bit_identical_to_per_packet_path() {
        let packets = packet_stream(20_000, 40, 5.0);
        let batch = PacketBatch::from_records(&packets);
        for rate in [0.003, 0.01, 0.25, 0.9] {
            let mut per_packet = RandomSampler::new(rate);
            let mut rng_a = Pcg64::seed_from_u64(7);
            let expected: Vec<u32> = packets
                .iter()
                .enumerate()
                .filter(|(_, p)| per_packet.keep(p, &mut rng_a))
                .map(|(i, _)| i as u32)
                .collect();

            // Split the same stream into irregular batches.
            let mut skip = RandomSampler::new(rate);
            let mut rng_b = Pcg64::seed_from_u64(7);
            let mut kept = Vec::new();
            let mut start = 0usize;
            for chunk in [1usize, 37, 4096, 1, 999, usize::MAX] {
                let end = batch.len().min(start.saturating_add(chunk));
                skip.keep_batch(&batch, start..end, &mut rng_b, &mut kept);
                start = end;
                if start == batch.len() {
                    break;
                }
            }
            assert_eq!(kept, expected, "rate {rate}");
            assert_eq!(rng_a, rng_b, "rate {rate}: same RNG consumption");
        }
    }

    #[test]
    fn sub_epsilon_rates_keep_nothing() {
        // `1 − p` underflows to 1.0 for p below ~1e-16; the sampler must
        // treat such rates as "next keep beyond any stream", never as
        // keep-everything.
        let packets = packet_stream(5_000, 10, 1.0);
        let batch = PacketBatch::from_records(&packets);
        for rate in [1e-18, 1e-17, f64::MIN_POSITIVE] {
            let mut sampler = RandomSampler::new(rate);
            let mut rng = Pcg64::seed_from_u64(29);
            assert!(
                packets.iter().all(|p| !sampler.keep(p, &mut rng)),
                "rate {rate}: per-packet path"
            );
            let mut kept = Vec::new();
            let mut batched = RandomSampler::new(rate);
            batched.keep_batch(&batch, 0..batch.len(), &mut rng, &mut kept);
            assert!(kept.is_empty(), "rate {rate}: batch path");
        }
    }

    #[test]
    fn reset_discards_the_pending_gap() {
        let packets = packet_stream(100, 5, 1.0);
        let mut sampler = RandomSampler::new(0.2);
        let mut rng = Pcg64::seed_from_u64(11);
        for p in &packets {
            sampler.keep(p, &mut rng);
        }
        sampler.reset();
        // After reset + reseeded RNG the decision stream replays exactly.
        let mut fresh = RandomSampler::new(0.2);
        let mut rng_a = Pcg64::seed_from_u64(13);
        let mut rng_b = Pcg64::seed_from_u64(13);
        let replay_a: Vec<bool> = packets
            .iter()
            .map(|p| sampler.keep(p, &mut rng_a))
            .collect();
        let replay_b: Vec<bool> = packets.iter().map(|p| fresh.keep(p, &mut rng_b)).collect();
        assert_eq!(replay_a, replay_b);
    }
}

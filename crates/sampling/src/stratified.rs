//! Stratified packet sampling.
//!
//! The packet stream is divided into consecutive strata of N packets and one
//! packet is chosen uniformly at random within each stratum. Compared with
//! strict 1-in-N sampling this removes periodic aliasing while keeping the
//! per-stratum budget exactly fixed; it sits between the random and periodic
//! samplers compared in the ablation benches.

use std::ops::Range;

use flowrank_net::{PacketBatch, PacketRecord};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// One-per-stratum sampler with stratum size N.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedSampler {
    stratum: u64,
    position: u64,
    chosen: u64,
}

impl StratifiedSampler {
    /// Creates a stratified sampler with strata of `stratum` packets
    /// (clamped to at least 1).
    pub fn new(stratum: u64) -> Self {
        StratifiedSampler {
            stratum: stratum.max(1),
            position: 0,
            chosen: 0,
        }
    }

    /// Creates a sampler whose nominal rate is `rate`.
    pub fn with_rate(rate: f64) -> Self {
        let stratum = if rate <= 0.0 {
            u64::MAX
        } else if rate >= 1.0 {
            1
        } else {
            (1.0 / rate).round() as u64
        };
        Self::new(stratum)
    }

    /// Stratum size N.
    pub fn stratum(&self) -> u64 {
        self.stratum
    }
}

impl PacketSampler for StratifiedSampler {
    fn keep(&mut self, _packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        if self.position == 0 {
            self.chosen = rng.next_below(self.stratum);
        }
        let keep = self.position == self.chosen;
        self.position = (self.position + 1) % self.stratum;
        keep
    }

    /// Skip form: one RNG draw per stratum *entered* (exactly as the
    /// per-packet path draws on each stratum's first packet), then the
    /// chosen offset is indexed directly — strata are jumped over whole, so
    /// batch cost is proportional to the number of strata touched, not the
    /// number of packets offered.
    fn keep_batch(
        &mut self,
        _batch: &PacketBatch,
        range: Range<usize>,
        rng: &mut dyn Rng,
        kept: &mut Vec<u32>,
    ) {
        let mut i = range.start as u64;
        let end = range.end as u64;
        while i < end {
            if self.position == 0 {
                self.chosen = rng.next_below(self.stratum);
            }
            let left_in_stratum = self.stratum - self.position;
            let advance = (end - i).min(left_in_stratum);
            if self.chosen >= self.position && self.chosen - self.position < advance {
                kept.push((i + (self.chosen - self.position)) as u32);
            }
            self.position = (self.position + advance) % self.stratum;
            i += advance;
        }
    }

    fn nominal_rate(&self) -> f64 {
        1.0 / self.stratum as f64
    }

    fn reset(&mut self) {
        self.position = 0;
        self.chosen = 0;
    }

    fn name(&self) -> &'static str {
        "stratified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::test_util::packet_stream;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn exactly_one_packet_per_stratum() {
        let packets = packet_stream(1_000, 5, 1.0);
        let mut sampler = StratifiedSampler::new(20);
        let mut rng = Pcg64::seed_from_u64(7);
        let kept: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| sampler.keep(p, &mut rng))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept.len(), 50);
        for (stratum_index, &packet_index) in kept.iter().enumerate() {
            let lo = stratum_index * 20;
            let hi = lo + 20;
            assert!(packet_index >= lo && packet_index < hi);
        }
    }

    #[test]
    fn chosen_offset_varies() {
        let packets = packet_stream(2_000, 5, 1.0);
        let mut sampler = StratifiedSampler::new(100);
        let mut rng = Pcg64::seed_from_u64(9);
        let offsets: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| sampler.keep(p, &mut rng))
            .map(|(i, _)| i % 100)
            .collect();
        let mut unique = offsets.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() > 5, "offsets should not all coincide");
    }

    #[test]
    fn batch_path_preserves_decisions_and_rng_stream() {
        let packets = packet_stream(4_321, 5, 1.0);
        let batch = PacketBatch::from_records(&packets);
        for stratum in [1u64, 2, 33, 1_000, 10_000] {
            let mut per_packet = StratifiedSampler::new(stratum);
            let mut rng_a = Pcg64::seed_from_u64(23);
            let expected: Vec<u32> = packets
                .iter()
                .enumerate()
                .filter(|(_, p)| per_packet.keep(p, &mut rng_a))
                .map(|(i, _)| i as u32)
                .collect();

            let mut skip = StratifiedSampler::new(stratum);
            let mut rng_b = Pcg64::seed_from_u64(23);
            let mut kept = Vec::new();
            let mut start = 0usize;
            for chunk in [1usize, 16, 17, 2_000, usize::MAX] {
                let end = batch.len().min(start.saturating_add(chunk));
                skip.keep_batch(&batch, start..end, &mut rng_b, &mut kept);
                start = end;
                if start == batch.len() {
                    break;
                }
            }
            assert_eq!(kept, expected, "stratum {stratum}");
            assert_eq!(rng_a, rng_b, "stratum {stratum}: identical RNG stream");
        }
    }

    #[test]
    fn constructors_and_reset() {
        assert_eq!(StratifiedSampler::with_rate(0.02).stratum(), 50);
        assert_eq!(StratifiedSampler::with_rate(2.0).stratum(), 1);
        assert_eq!(StratifiedSampler::with_rate(0.0).stratum(), u64::MAX);
        assert_eq!(StratifiedSampler::new(0).stratum(), 1);
        let mut s = StratifiedSampler::new(4);
        assert!((s.nominal_rate() - 0.25).abs() < 1e-12);
        s.reset();
        assert_eq!(s.name(), "stratified");
    }
}

//! Stratified packet sampling.
//!
//! The packet stream is divided into consecutive strata of N packets and one
//! packet is chosen uniformly at random within each stratum. Compared with
//! strict 1-in-N sampling this removes periodic aliasing while keeping the
//! per-stratum budget exactly fixed; it sits between the random and periodic
//! samplers compared in the ablation benches.

use flowrank_net::PacketRecord;
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// One-per-stratum sampler with stratum size N.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedSampler {
    stratum: u64,
    position: u64,
    chosen: u64,
}

impl StratifiedSampler {
    /// Creates a stratified sampler with strata of `stratum` packets
    /// (clamped to at least 1).
    pub fn new(stratum: u64) -> Self {
        StratifiedSampler {
            stratum: stratum.max(1),
            position: 0,
            chosen: 0,
        }
    }

    /// Creates a sampler whose nominal rate is `rate`.
    pub fn with_rate(rate: f64) -> Self {
        let stratum = if rate <= 0.0 {
            u64::MAX
        } else if rate >= 1.0 {
            1
        } else {
            (1.0 / rate).round() as u64
        };
        Self::new(stratum)
    }

    /// Stratum size N.
    pub fn stratum(&self) -> u64 {
        self.stratum
    }
}

impl PacketSampler for StratifiedSampler {
    fn keep(&mut self, _packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        if self.position == 0 {
            self.chosen = rng.next_below(self.stratum);
        }
        let keep = self.position == self.chosen;
        self.position = (self.position + 1) % self.stratum;
        keep
    }

    fn nominal_rate(&self) -> f64 {
        1.0 / self.stratum as f64
    }

    fn reset(&mut self) {
        self.position = 0;
        self.chosen = 0;
    }

    fn name(&self) -> &'static str {
        "stratified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::test_util::packet_stream;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn exactly_one_packet_per_stratum() {
        let packets = packet_stream(1_000, 5, 1.0);
        let mut sampler = StratifiedSampler::new(20);
        let mut rng = Pcg64::seed_from_u64(7);
        let kept: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| sampler.keep(p, &mut rng))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept.len(), 50);
        for (stratum_index, &packet_index) in kept.iter().enumerate() {
            let lo = stratum_index * 20;
            let hi = lo + 20;
            assert!(packet_index >= lo && packet_index < hi);
        }
    }

    #[test]
    fn chosen_offset_varies() {
        let packets = packet_stream(2_000, 5, 1.0);
        let mut sampler = StratifiedSampler::new(100);
        let mut rng = Pcg64::seed_from_u64(9);
        let offsets: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| sampler.keep(p, &mut rng))
            .map(|(i, _)| i % 100)
            .collect();
        let mut unique = offsets.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() > 5, "offsets should not all coincide");
    }

    #[test]
    fn constructors_and_reset() {
        assert_eq!(StratifiedSampler::with_rate(0.02).stratum(), 50);
        assert_eq!(StratifiedSampler::with_rate(2.0).stratum(), 1);
        assert_eq!(StratifiedSampler::with_rate(0.0).stratum(), u64::MAX);
        assert_eq!(StratifiedSampler::new(0).stratum(), 1);
        let mut s = StratifiedSampler::new(4);
        assert!((s.nominal_rate() - 0.25).abs() < 1e-12);
        s.reset();
        assert_eq!(s.name(), "stratified");
    }
}

//! The packet-sampler abstraction.
//!
//! A sampler is driven packet-by-packet and decides, for each packet, whether
//! the monitor keeps it. Samplers are allowed to keep internal state
//! (periodic counters, per-flow decisions, adaptive rates) and receive a
//! caller-supplied RNG so that entire experiments stay deterministic under a
//! fixed seed.

use flowrank_net::PacketRecord;
use flowrank_stats::rng::Rng;

/// Decides which packets the monitor retains.
pub trait PacketSampler {
    /// Returns `true` when `packet` is retained by the monitor.
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool;

    /// The sampler's nominal sampling rate (expected fraction of packets
    /// kept), used for inversion / scaling. Adaptive samplers report their
    /// current rate.
    fn nominal_rate(&self) -> f64;

    /// Resets any internal state (start of a new measurement interval).
    fn reset(&mut self) {}

    /// Short human-readable name used in reports and bench output.
    fn name(&self) -> &'static str;
}

// The trait is object safe; these blanket impls let `Box<dyn PacketSampler>`
// and `&mut S` flow through APIs that take `S: PacketSampler` by value, so
// runtime-selected samplers (the monitor's `SamplerSpec`) and borrowed ones
// use the same entry points.

impl<S: PacketSampler + ?Sized> PacketSampler for Box<S> {
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        (**self).keep(packet, rng)
    }

    fn nominal_rate(&self) -> f64 {
        (**self).nominal_rate()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: PacketSampler + ?Sized> PacketSampler for &mut S {
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        (**self).keep(packet, rng)
    }

    fn nominal_rate(&self) -> f64 {
        (**self).nominal_rate()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared fixtures for sampler tests.
    use flowrank_net::{PacketRecord, Timestamp};
    use std::net::Ipv4Addr;

    /// Builds `n` packets spread over `duration` seconds, cycling over
    /// `flows` distinct 5-tuples.
    pub fn packet_stream(n: usize, flows: usize, duration: f64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let flow = (i % flows.max(1)) as u8;
                PacketRecord::tcp(
                    Timestamp::from_secs_f64(duration * i as f64 / n.max(1) as f64),
                    Ipv4Addr::new(10, 0, 1, flow),
                    10_000 + flow as u16,
                    Ipv4Addr::new(100, 64, 0, flow),
                    80,
                    500,
                    (i * 500) as u32,
                )
            })
            .collect()
    }
}

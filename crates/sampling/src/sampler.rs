//! The packet-sampler abstraction.
//!
//! A sampler is driven packet-by-packet and decides, for each packet, whether
//! the monitor keeps it. Samplers are allowed to keep internal state
//! (periodic counters, per-flow decisions, adaptive rates) and receive a
//! caller-supplied RNG so that entire experiments stay deterministic under a
//! fixed seed.
//!
//! Since the batched-ingestion redesign the trait also carries a *batch*
//! entry point, [`PacketSampler::keep_batch`]: given a [`PacketBatch`] range
//! it appends the indices of the retained packets. The contract is that
//! splitting a packet stream into arbitrary batches never changes the
//! decisions or the RNG consumption — `keep` and `keep_batch` share the
//! sampler's state, so a one-element batch *is* the per-packet call. The
//! default implementation loops over [`PacketSampler::keep`]; skip-capable
//! samplers (random, periodic, stratified) override it to jump directly to
//! the next retained packet, making their per-batch cost proportional to the
//! number of *sampled* packets rather than the number offered.

use std::ops::Range;

use flowrank_net::{PacketBatch, PacketRecord};
use flowrank_stats::rng::Rng;

/// Decides which packets the monitor retains.
pub trait PacketSampler {
    /// Returns `true` when `packet` is retained by the monitor.
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool;

    /// Offers the packets `batch[range]` to the sampler and appends the
    /// batch indices of the retained ones to `kept`, in order.
    ///
    /// Equivalent to calling [`PacketSampler::keep`] on every packet of the
    /// range — same decisions, same RNG consumption — because both entry
    /// points share the sampler's state. Implementations that can skip
    /// (draw the gap to their next retained packet instead of deciding per
    /// packet) override this to index straight into the batch.
    fn keep_batch(
        &mut self,
        batch: &PacketBatch,
        range: Range<usize>,
        rng: &mut dyn Rng,
        kept: &mut Vec<u32>,
    ) {
        for i in range {
            if self.keep(&batch.record(i), rng) {
                kept.push(i as u32);
            }
        }
    }

    /// The sampler's nominal sampling rate (expected fraction of packets
    /// kept), used for inversion / scaling. Adaptive samplers report their
    /// current rate.
    fn nominal_rate(&self) -> f64;

    /// Resets any internal state (start of a new measurement interval).
    fn reset(&mut self) {}

    /// Short human-readable name used in reports and bench output.
    fn name(&self) -> &'static str;
}

// The trait is object safe; these blanket impls let `Box<dyn PacketSampler>`
// and `&mut S` flow through APIs that take `S: PacketSampler` by value, so
// runtime-selected samplers (the monitor's `SamplerSpec`) and borrowed ones
// use the same entry points.

impl<S: PacketSampler + ?Sized> PacketSampler for Box<S> {
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        (**self).keep(packet, rng)
    }

    fn keep_batch(
        &mut self,
        batch: &PacketBatch,
        range: Range<usize>,
        rng: &mut dyn Rng,
        kept: &mut Vec<u32>,
    ) {
        (**self).keep_batch(batch, range, rng, kept)
    }

    fn nominal_rate(&self) -> f64 {
        (**self).nominal_rate()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: PacketSampler + ?Sized> PacketSampler for &mut S {
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        (**self).keep(packet, rng)
    }

    fn keep_batch(
        &mut self,
        batch: &PacketBatch,
        range: Range<usize>,
        rng: &mut dyn Rng,
        kept: &mut Vec<u32>,
    ) {
        (**self).keep_batch(batch, range, rng, kept)
    }

    fn nominal_rate(&self) -> f64 {
        (**self).nominal_rate()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared fixtures for sampler tests.
    use flowrank_net::{PacketRecord, Timestamp};
    use std::net::Ipv4Addr;

    /// Builds `n` packets spread over `duration` seconds, cycling over
    /// `flows` distinct 5-tuples.
    pub fn packet_stream(n: usize, flows: usize, duration: f64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let flow = (i % flows.max(1)) as u8;
                PacketRecord::tcp(
                    Timestamp::from_secs_f64(duration * i as f64 / n.max(1) as f64),
                    Ipv4Addr::new(10, 0, 1, flow),
                    10_000 + flow as u16,
                    Ipv4Addr::new(100, 64, 0, flow),
                    80,
                    500,
                    (i * 500) as u32,
                )
            })
            .collect()
    }
}

//! Size-dependent flow-record sampling ("smart sampling").
//!
//! Reference \[8\] of the paper (Duffield & Lund) selects *flow records* for
//! export with a probability that increases with the flow's size:
//! `p(x) = min(1, x/z)` for a threshold `z`. Large flows are always exported;
//! small flows are exported rarely but, when they are, their size is scaled
//! by `1/p(x) = z/x` to keep the total-volume estimator unbiased. The paper
//! contrasts its packet-sampling setting with this record-level scheme; we
//! implement it so the `ablation_topk_under_sampling` bench can compare heavy-
//! hitter detection with and without record-level thresholding.

use flowrank_net::{FiveTuple, FlowKey, FlowMap, PacketRecord};
use flowrank_stats::rng::Rng;

use crate::sampler::PacketSampler;

/// Smart (threshold) sampling of flow records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartSampler {
    threshold: f64,
}

/// A flow record selected by smart sampling, with its unbiased size estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartSample {
    /// The original size used in the selection decision.
    pub original_size: f64,
    /// Unbiased estimate of the size contributed by this record
    /// (`max(size, z)` for selected records).
    pub estimated_size: f64,
}

impl SmartSampler {
    /// Creates a smart sampler with threshold `z` (sizes ≥ `z` are always
    /// kept). Non-positive thresholds keep everything.
    pub fn new(threshold: f64) -> Self {
        SmartSampler {
            threshold: threshold.max(0.0),
        }
    }

    /// The threshold `z`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Probability that a record of `size` is selected.
    pub fn selection_probability(&self, size: f64) -> f64 {
        if self.threshold <= 0.0 {
            1.0
        } else {
            (size / self.threshold).clamp(0.0, 1.0)
        }
    }

    /// Applies the selection to one record; returns the unbiased size
    /// estimate when the record is kept.
    pub fn select(&self, size: f64, rng: &mut dyn Rng) -> Option<SmartSample> {
        let p = self.selection_probability(size);
        if p >= 1.0 || rng.bernoulli(p) {
            Some(SmartSample {
                original_size: size,
                estimated_size: size.max(self.threshold),
            })
        } else {
            None
        }
    }

    /// Applies the selection to a whole list of flow sizes and returns the
    /// kept records.
    pub fn select_all(&self, sizes: &[f64], rng: &mut dyn Rng) -> Vec<SmartSample> {
        sizes.iter().filter_map(|&s| self.select(s, rng)).collect()
    }
}

/// Packet-level adaptation of smart sampling, usable as a [`PacketSampler`].
///
/// The original scheme selects *flow records* after the interval is over;
/// a streaming monitor sees packets. This adapter carries the same
/// size-dependent idea to the packet level: it tracks how many packets each
/// 5-tuple flow has sent so far and keeps a packet with probability
/// `min(1, c/z)` where `c` is the flow's running count and `z` the
/// threshold. Flows beyond `z` packets are sampled at full rate, mice almost
/// never — the monitor's memory concentrates on elephants exactly as with
/// record-level smart sampling, but the decision happens at line rate.
#[derive(Debug, Clone)]
pub struct SmartPacketSampler {
    threshold: f64,
    counts: FlowMap<FiveTuple, u64>,
    seen: u64,
    kept: u64,
}

impl SmartPacketSampler {
    /// Creates a packet-level smart sampler with threshold `z` packets
    /// (non-positive thresholds keep everything).
    pub fn new(threshold: f64) -> Self {
        SmartPacketSampler {
            threshold: threshold.max(0.0),
            counts: FlowMap::new(),
            seen: 0,
            kept: 0,
        }
    }

    /// The threshold `z`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The nominal-rate proxy reported before any traffic has been seen:
    /// `1/z`, saturating at 1 for thresholds of one packet or less. Shared
    /// with the monitor's sampler specification so both report the same
    /// figure.
    pub fn pre_traffic_rate(threshold: f64) -> f64 {
        if threshold <= 1.0 {
            1.0
        } else {
            1.0 / threshold
        }
    }
}

impl PacketSampler for SmartPacketSampler {
    fn keep(&mut self, packet: &PacketRecord, rng: &mut dyn Rng) -> bool {
        let count = self
            .counts
            .upsert(FiveTuple::from_packet(packet), || 1, |c| *c += 1);
        self.seen += 1;
        let probability = if self.threshold <= 0.0 {
            1.0
        } else {
            (*count as f64 / self.threshold).clamp(0.0, 1.0)
        };
        let keep = probability >= 1.0 || rng.bernoulli(probability);
        if keep {
            self.kept += 1;
        }
        keep
    }

    fn nominal_rate(&self) -> f64 {
        // Size-dependent sampling has no fixed rate; report the realised one
        // (1/z before any traffic, the traffic-weighted average afterwards).
        if self.seen == 0 {
            Self::pre_traffic_rate(self.threshold)
        } else {
            self.kept as f64 / self.seen as f64
        }
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.seen = 0;
        self.kept = 0;
    }

    fn name(&self) -> &'static str {
        "smart"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::test_util::packet_stream;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn large_flows_always_kept() {
        let sampler = SmartSampler::new(100.0);
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..100 {
            let s = sampler.select(250.0, &mut rng).unwrap();
            assert_eq!(s.estimated_size, 250.0);
        }
    }

    #[test]
    fn small_flows_kept_proportionally_and_reweighted() {
        let sampler = SmartSampler::new(100.0);
        let mut rng = Pcg64::seed_from_u64(2);
        let n = 50_000;
        let kept = sampler.select_all(&vec![10.0; n], &mut rng);
        let frac = kept.len() as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "kept fraction {frac}");
        assert!(kept.iter().all(|s| s.estimated_size == 100.0));
    }

    #[test]
    fn volume_estimator_is_unbiased() {
        let sampler = SmartSampler::new(50.0);
        let mut rng = Pcg64::seed_from_u64(3);
        // Mixture of small and large flows.
        let sizes: Vec<f64> = (0..20_000)
            .map(|i| if i % 10 == 0 { 200.0 } else { 5.0 })
            .collect();
        let true_total: f64 = sizes.iter().sum();
        let estimated: f64 = sampler
            .select_all(&sizes, &mut rng)
            .iter()
            .map(|s| s.estimated_size)
            .sum();
        let rel_err = (estimated - true_total).abs() / true_total;
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn packet_level_smart_prefers_elephants() {
        // 4 flows round-robin over 8000 packets → 2000 packets per flow, far
        // above the threshold: almost everything past the ramp-up is kept.
        let packets = packet_stream(8_000, 4, 10.0);
        let mut sampler = SmartPacketSampler::new(50.0);
        let mut rng = Pcg64::seed_from_u64(7);
        let kept = packets.iter().filter(|p| sampler.keep(p, &mut rng)).count();
        assert!(kept > 7_000, "elephants must be kept at ~full rate: {kept}");
        assert!(sampler.nominal_rate() > 0.85);

        // Many tiny flows (1 packet each; the fixture distinguishes at most
        // 255 flows, so stay below that) are almost never kept.
        sampler.reset();
        let mice = packet_stream(200, 200, 10.0);
        let kept_mice = mice.iter().filter(|p| sampler.keep(p, &mut rng)).count();
        assert!(kept_mice < 25, "mice must be dropped: {kept_mice}");
        assert_eq!(sampler.name(), "smart");
        assert_eq!(sampler.threshold(), 50.0);
    }

    #[test]
    fn packet_level_smart_degenerate_thresholds() {
        let packets = packet_stream(100, 10, 1.0);
        let mut rng = Pcg64::seed_from_u64(8);
        let mut keep_all = SmartPacketSampler::new(0.0);
        assert!(packets.iter().all(|p| keep_all.keep(p, &mut rng)));
        assert_eq!(SmartPacketSampler::new(-3.0).threshold(), 0.0);
        // Before any traffic the nominal rate falls back to 1/z.
        assert!((SmartPacketSampler::new(200.0).nominal_rate() - 0.005).abs() < 1e-12);
        assert_eq!(SmartPacketSampler::new(0.5).nominal_rate(), 1.0);
    }

    #[test]
    fn probabilities_and_degenerate_threshold() {
        let sampler = SmartSampler::new(100.0);
        assert_eq!(sampler.selection_probability(0.0), 0.0);
        assert_eq!(sampler.selection_probability(50.0), 0.5);
        assert_eq!(sampler.selection_probability(500.0), 1.0);
        let keep_all = SmartSampler::new(0.0);
        assert_eq!(keep_all.selection_probability(1.0), 1.0);
        assert_eq!(keep_all.threshold(), 0.0);
        let neg = SmartSampler::new(-5.0);
        assert_eq!(neg.threshold(), 0.0);
    }
}

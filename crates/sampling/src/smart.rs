//! Size-dependent flow-record sampling ("smart sampling").
//!
//! Reference [8] of the paper (Duffield & Lund) selects *flow records* for
//! export with a probability that increases with the flow's size:
//! `p(x) = min(1, x/z)` for a threshold `z`. Large flows are always exported;
//! small flows are exported rarely but, when they are, their size is scaled
//! by `1/p(x) = z/x` to keep the total-volume estimator unbiased. The paper
//! contrasts its packet-sampling setting with this record-level scheme; we
//! implement it so the `ablation_topk_under_sampling` bench can compare heavy-
//! hitter detection with and without record-level thresholding.

use flowrank_stats::rng::Rng;

/// Smart (threshold) sampling of flow records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartSampler {
    threshold: f64,
}

/// A flow record selected by smart sampling, with its unbiased size estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartSample {
    /// The original size used in the selection decision.
    pub original_size: f64,
    /// Unbiased estimate of the size contributed by this record
    /// (`max(size, z)` for selected records).
    pub estimated_size: f64,
}

impl SmartSampler {
    /// Creates a smart sampler with threshold `z` (sizes ≥ `z` are always
    /// kept). Non-positive thresholds keep everything.
    pub fn new(threshold: f64) -> Self {
        SmartSampler {
            threshold: threshold.max(0.0),
        }
    }

    /// The threshold `z`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Probability that a record of `size` is selected.
    pub fn selection_probability(&self, size: f64) -> f64 {
        if self.threshold <= 0.0 {
            1.0
        } else {
            (size / self.threshold).clamp(0.0, 1.0)
        }
    }

    /// Applies the selection to one record; returns the unbiased size
    /// estimate when the record is kept.
    pub fn select(&self, size: f64, rng: &mut dyn Rng) -> Option<SmartSample> {
        let p = self.selection_probability(size);
        if p >= 1.0 || rng.bernoulli(p) {
            Some(SmartSample {
                original_size: size,
                estimated_size: size.max(self.threshold),
            })
        } else {
            None
        }
    }

    /// Applies the selection to a whole list of flow sizes and returns the
    /// kept records.
    pub fn select_all(&self, sizes: &[f64], rng: &mut dyn Rng) -> Vec<SmartSample> {
        sizes.iter().filter_map(|&s| self.select(s, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_stats::rng::{Pcg64, SeedableRng};

    #[test]
    fn large_flows_always_kept() {
        let sampler = SmartSampler::new(100.0);
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..100 {
            let s = sampler.select(250.0, &mut rng).unwrap();
            assert_eq!(s.estimated_size, 250.0);
        }
    }

    #[test]
    fn small_flows_kept_proportionally_and_reweighted() {
        let sampler = SmartSampler::new(100.0);
        let mut rng = Pcg64::seed_from_u64(2);
        let n = 50_000;
        let kept = sampler.select_all(&vec![10.0; n], &mut rng);
        let frac = kept.len() as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "kept fraction {frac}");
        assert!(kept.iter().all(|s| s.estimated_size == 100.0));
    }

    #[test]
    fn volume_estimator_is_unbiased() {
        let sampler = SmartSampler::new(50.0);
        let mut rng = Pcg64::seed_from_u64(3);
        // Mixture of small and large flows.
        let sizes: Vec<f64> = (0..20_000)
            .map(|i| if i % 10 == 0 { 200.0 } else { 5.0 })
            .collect();
        let true_total: f64 = sizes.iter().sum();
        let estimated: f64 = sampler
            .select_all(&sizes, &mut rng)
            .iter()
            .map(|s| s.estimated_size)
            .sum();
        let rel_err = (estimated - true_total).abs() / true_total;
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn probabilities_and_degenerate_threshold() {
        let sampler = SmartSampler::new(100.0);
        assert_eq!(sampler.selection_probability(0.0), 0.0);
        assert_eq!(sampler.selection_probability(50.0), 0.5);
        assert_eq!(sampler.selection_probability(500.0), 1.0);
        let keep_all = SmartSampler::new(0.0);
        assert_eq!(keep_all.selection_probability(1.0), 1.0);
        assert_eq!(keep_all.threshold(), 0.0);
        let neg = SmartSampler::new(-5.0);
        assert_eq!(neg.threshold(), 0.0);
    }
}

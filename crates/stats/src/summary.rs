//! Summary statistics: online moments, quantiles and histograms.
//!
//! The trace-driven experiments (Sec. 8) report, for every measurement bin,
//! the ranking metric averaged over 30 sampling runs together with its
//! standard deviation (the error bars of Figs. 12–16). [`RunningStats`] is
//! the Welford accumulator behind those numbers; [`Histogram`] and
//! [`LogHistogram`] support the flow-size summaries in the examples.

use crate::error::{StatsError, StatsResult};

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; merging two accumulators is supported
/// so per-thread partial results can be combined.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (n−1 denominator); `None` with < 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population variance (n denominator); `None` when empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean, `s/√n`.
    pub fn std_error(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.count as f64).sqrt())
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel combination).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Computes the mean of a slice. Returns an error when the slice is empty.
pub fn mean(values: &[f64]) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { operation: "mean" });
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Computes the empirical `q`-quantile of a slice using linear interpolation
/// between order statistics (type-7, the R/NumPy default).
pub fn quantile(values: &[f64], q: f64) -> StatsResult<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput {
            operation: "quantile",
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            value: q,
            constraint: "within [0, 1]",
        });
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Fixed-width histogram over `[lo, hi)` with a configurable number of bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> StatsResult<Self> {
        let increasing = matches!(hi.partial_cmp(&lo), Some(std::cmp::Ordering::Greater));
        if !increasing || bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins/range",
                value: bins as f64,
                constraint: "hi > lo and bins >= 1",
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

/// Histogram with logarithmically spaced bins — the natural view of a
/// heavy-tailed flow-size distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` bins covering `[lo, hi)` where each
    /// bin's upper edge is `ratio` times its lower edge.
    pub fn new(lo: f64, hi: f64, bins: usize) -> StatsResult<Self> {
        let increasing = matches!(hi.partial_cmp(&lo), Some(std::cmp::Ordering::Greater));
        if !increasing || lo <= 0.0 || bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins/range",
                value: bins as f64,
                constraint: "0 < lo < hi and bins >= 1",
            });
        }
        let ratio = (hi / lo).powf(1.0 / bins as f64);
        Ok(Self {
            lo,
            ratio,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.lo).ln() / self.ratio.ln()).floor();
        if idx.is_finite() && (idx as usize) < self.counts.len() {
            self.counts[idx as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower(&self, i: usize) -> f64 {
        self.lo * self.ratio.powi(i as i32)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {a} ≈ {b}");
    }

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        assert!(s.mean().is_none());
        assert!(s.variance().is_none());
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_close(s.mean().unwrap(), 5.0, 1e-12);
        assert_close(s.population_variance().unwrap(), 4.0, 1e-12);
        assert_close(s.variance().unwrap(), 4.571428571428571, 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
        assert!(s.std_error().unwrap() > 0.0);
    }

    #[test]
    fn running_stats_single_value() {
        let mut s = RunningStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), Some(3.0));
        assert!(s.variance().is_none());
        assert_eq!(s.population_variance(), Some(0.0));
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(data.iter().copied());
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        left.extend(data[..400].iter().copied());
        right.extend(data[400..].iter().copied());
        left.merge(&right);
        assert_close(left.mean().unwrap(), whole.mean().unwrap(), 1e-10);
        assert_close(left.variance().unwrap(), whole.variance().unwrap(), 1e-10);
        assert_eq!(left.count(), whole.count());
        // Merging an empty accumulator is a no-op.
        let before = left;
        left.merge(&RunningStats::new());
        assert_eq!(left, before);
        // Merging into an empty accumulator copies.
        let mut empty = RunningStats::new();
        empty.merge(&whole);
        assert_close(empty.mean().unwrap(), whole.mean().unwrap(), 1e-12);
    }

    #[test]
    fn mean_and_quantile_edge_cases() {
        assert!(mean(&[]).is_err());
        assert_close(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0, 1e-15);
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert_close(quantile(&[5.0], 0.9).unwrap(), 5.0, 1e-15);
    }

    #[test]
    fn quantile_interpolation() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert_close(quantile(&vals, 0.0).unwrap(), 1.0, 1e-12);
        assert_close(quantile(&vals, 1.0).unwrap(), 4.0, 1e-12);
        assert_close(quantile(&vals, 0.5).unwrap(), 2.5, 1e-12);
        assert_close(quantile(&vals, 0.25).unwrap(), 1.75, 1e-12);
        // Order of input should not matter.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_close(quantile(&shuffled, 0.5).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert_close(h.bin_center(0), 1.0, 1e-12);
        assert!(Histogram::new(1.0, 1.0, 5).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn log_histogram_binning() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3).unwrap();
        for x in [1.0, 5.0, 15.0, 150.0, 999.0, 0.5, 2000.0] {
            h.record(x);
        }
        // Bins: [1,10), [10,100), [100,1000)
        assert_eq!(h.counts(), &[2, 1, 2]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_close(h.bin_lower(1), 10.0, 1e-9);
        assert!(LogHistogram::new(0.0, 10.0, 3).is_err());
    }
}

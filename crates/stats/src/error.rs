//! Error types shared by the numerics substrate.

use std::fmt;

/// Convenience alias for results returned by `flowrank-stats`.
pub type StatsResult<T> = Result<T, StatsError>;

/// Errors produced by the numerics substrate.
///
/// The library never panics on invalid user input: fallible constructors and
/// algorithms return one of these variants instead.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution or function parameter is outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was supplied.
        value: f64,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A root-finding bracket does not actually bracket a sign change.
    InvalidBracket {
        /// Lower end of the bracket.
        lo: f64,
        /// Upper end of the bracket.
        hi: f64,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations that were performed.
        iterations: usize,
    },
    /// The input slice was empty where at least one element is required.
    EmptyInput {
        /// Name of the operation that required data.
        operation: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}: must satisfy {constraint}"
            ),
            StatsError::InvalidBracket { lo, hi } => write!(
                f,
                "bracket [{lo}, {hi}] does not bracket a root (no sign change)"
            ),
            StatsError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            StatsError::EmptyInput { operation } => {
                write!(f, "{operation} requires a non-empty input")
            }
        }
    }
}

impl std::error::Error for StatsError {}

impl StatsError {
    /// Returns `true` when the error is an [`StatsError::InvalidParameter`]
    /// for the parameter called `expected`. Convenient in tests and examples.
    pub fn is_invalid_parameter(&self, expected: &str) -> bool {
        matches!(self, StatsError::InvalidParameter { name, .. } if *name == expected)
    }
}

/// Checks that `value` is strictly positive, returning an error otherwise.
pub(crate) fn require_positive(name: &'static str, value: f64) -> StatsResult<()> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(StatsError::InvalidParameter {
            name,
            value,
            constraint: "finite and > 0",
        })
    }
}

/// Checks that `value` is a probability in `[0, 1]`.
pub(crate) fn require_probability(name: &'static str, value: f64) -> StatsResult<()> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(StatsError::InvalidParameter {
            name,
            value,
            constraint: "within [0, 1]",
        })
    }
}

/// Checks that `value` is finite.
pub(crate) fn require_finite(name: &'static str, value: f64) -> StatsResult<()> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(StatsError::InvalidParameter {
            name,
            value,
            constraint: "finite",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let err = StatsError::InvalidParameter {
            name: "beta",
            value: -1.0,
            constraint: "> 0",
        };
        let text = err.to_string();
        assert!(text.contains("beta"));
        assert!(text.contains("-1"));
    }

    #[test]
    fn display_other_variants() {
        assert!(StatsError::InvalidBracket { lo: 0.0, hi: 1.0 }
            .to_string()
            .contains("bracket"));
        assert!(StatsError::NoConvergence {
            algorithm: "brent",
            iterations: 100
        }
        .to_string()
        .contains("brent"));
        assert!(StatsError::EmptyInput { operation: "mean" }
            .to_string()
            .contains("mean"));
    }

    #[test]
    fn require_positive_accepts_positive() {
        assert!(require_positive("x", 1e-12).is_ok());
        assert!(require_positive("x", 1.0).is_ok());
    }

    #[test]
    fn require_positive_rejects_zero_negative_nan() {
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", -3.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn require_probability_bounds() {
        assert!(require_probability("p", 0.0).is_ok());
        assert!(require_probability("p", 1.0).is_ok());
        assert!(require_probability("p", 0.5).is_ok());
        assert!(require_probability("p", -0.01).is_err());
        assert!(require_probability("p", 1.01).is_err());
        assert!(require_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn require_finite_rejects_nan_inf() {
        assert!(require_finite("x", 3.0).is_ok());
        assert!(require_finite("x", f64::NAN).is_err());
        assert!(require_finite("x", f64::NEG_INFINITY).is_err());
    }
}

//! Special functions: log-gamma, error functions, regularised incomplete
//! gamma and beta functions, and log-domain combinatorics.
//!
//! These are the primitives behind every probability computed by the
//! analytical models: binomial tails (via the regularised incomplete beta
//! function), Poisson tails (incomplete gamma), and the Gaussian misranking
//! approximation of Eq. 2 (complementary error function).
//!
//! The implementations follow the classical Lanczos / Numerical-Recipes
//! formulations and are accurate to roughly 1e-13 relative error over the
//! ranges exercised by the models, which is far below the 0.1% misranking
//! targets discussed in the paper.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, giving about
/// 15 significant digits for all positive arguments.
///
/// # Panics
///
/// Does not panic; returns `f64::NAN` for `x <= 0` or non-finite input.
pub fn ln_gamma(x: f64) -> f64 {
    if !x.is_finite() || x <= 0.0 {
        return f64::NAN;
    }
    // Lanczos coefficients for g = 7, n = 9, at full printed precision.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - sin_pi_x.ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of `n!`.
///
/// Exact for small `n` (table lookup up to 20), `ln Γ(n+1)` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    // 0! .. 20! fit exactly in f64.
    const TABLE: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362880.0,
        3628800.0,
        39916800.0,
        479001600.0,
        6227020800.0,
        87178291200.0,
        1307674368000.0,
        20922789888000.0,
        355687428096000.0,
        6402373705728000.0,
        121645100408832000.0,
        2432902008176640000.0,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{-t²} dt`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    let value = if ax == 0.0 {
        0.0
    } else {
        // erf(x) = P(1/2, x²) for x ≥ 0.
        gamma_p(0.5, ax * ax)
    };
    sign * value
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed through the regularised upper incomplete gamma function so the
/// deep tail (`x ≫ 1`) retains full relative accuracy rather than cancelling
/// to zero — the misranking probabilities of Eq. 2 live exactly in that tail
/// once the two flows differ by many packets.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Natural logarithm of `erfc(x)`, accurate for large positive `x` where
/// `erfc(x)` underflows to zero.
///
/// For `x ≥ 0` we use `ln Q(1/2, x²)` computed in the log domain through the
/// continued-fraction expansion; for negative `x` the value is close to
/// `ln 2` and the direct formula is fine.
pub fn ln_erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return erfc(x).ln();
    }
    if x < 1.0 {
        return erfc(x).ln();
    }
    // ln Q(a, z) via the Lentz continued fraction evaluated in log space:
    // Q(a, z) = e^{-z} z^a / Γ(a) * CF, so
    // ln Q = -z + a ln z - ln Γ(a) + ln CF.
    let a = 0.5;
    let z = x * x;
    let ln_cf = ln_upper_gamma_cf(a, z);
    -z + a * z.ln() - ln_gamma(a) + ln_cf
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF of the Gamma(a, 1) distribution; `P(k+1, λ)` is the
/// complement of the Poisson CDF.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)` — efficient for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_ga).exp()
}

/// Continued-fraction (modified Lentz) evaluation of `Q(a, x)` — efficient for
/// `x ≥ a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let cf = upper_gamma_cf(a, x);
    (-x + a * x.ln() - ln_ga).exp() * cf
}

/// The continued-fraction factor of `Q(a, x)` (without the `e^{-x} x^a / Γ(a)`
/// prefactor), evaluated with the modified Lentz algorithm.
fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

/// `ln` of the continued-fraction factor used by [`ln_erfc`].
fn ln_upper_gamma_cf(a: f64, x: f64) -> f64 {
    upper_gamma_cf(a, x).ln()
}

/// Regularised incomplete beta function `I_x(a, b)`.
///
/// `I_x(a, b)` is the CDF of the Beta(a, b) distribution at `x`; the binomial
/// CDF is obtained as `P(X ≤ k) = I_{1-p}(n-k, k+1)`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 || !(0.0..=1.0).contains(&x) {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        // Symmetric branch: I_x(a, b) = 1 − I_{1−x}(b, a).
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

/// Log-sum-exp of two log-domain values: `ln(e^a + e^b)` without overflow.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Log-sum-exp over a slice of log-domain values.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the log of an empty sum).
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        let diff = (a - b).abs();
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            diff <= tol * scale,
            "expected {a} ≈ {b} (diff {diff}, tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(0.5) = √π
        assert_close(ln_gamma(1.0), 0.0, 1e-14);
        assert_close(ln_gamma(2.0), 0.0, 1e-14);
        assert_close(ln_gamma(3.0), 2.0_f64.ln(), 1e-14);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-13);
        assert_close(ln_gamma(10.0), 362880.0_f64.ln(), 1e-13);
        // Large argument: Γ(171) = 170!, ln(170!) ≈ 706.5730622457874.
        assert_close(ln_gamma(171.0), 706.5730622457874, 1e-12);
        // Recurrence Γ(x+1) = xΓ(x) at a non-integer point.
        assert_close(ln_gamma(10.3), ln_gamma(11.3) - 10.3_f64.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_branch() {
        // Γ(0.25) = 3.6256099082219083..., exercised via x < 0.5 branch.
        assert_close(ln_gamma(0.25), 3.625_609_908_221_908_f64.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_invalid_inputs() {
        assert!(ln_gamma(0.0).is_nan());
        assert!(ln_gamma(-1.0).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
    }

    #[test]
    fn ln_factorial_exact_small() {
        assert_close(ln_factorial(0), 0.0, 1e-15);
        assert_close(ln_factorial(5), 120.0_f64.ln(), 1e-15);
        assert_close(ln_factorial(20), 2432902008176640000.0_f64.ln(), 1e-15);
        assert_close(ln_factorial(30), ln_gamma(31.0), 1e-13);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_close(ln_choose(5, 2).exp(), 10.0, 1e-12);
        assert_close(ln_choose(10, 0).exp(), 1.0, 1e-12);
        assert_close(ln_choose(10, 10).exp(), 1.0, 1e-12);
        assert_close(ln_choose(52, 5).exp(), 2_598_960.0, 1e-10);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(1.0), 0.8427007929497149, 1e-12);
        assert_close(erf(2.0), 0.9953222650189527, 1e-12);
        assert_close(erf(-1.0), -0.8427007929497149, 1e-12);
        assert_close(erf(0.5), 0.5204998778130465, 1e-12);
    }

    #[test]
    fn erfc_known_values() {
        assert_close(erfc(0.0), 1.0, 1e-15);
        assert_close(erfc(1.0), 0.15729920705028513, 1e-12);
        assert_close(erfc(2.0), 0.004677734981047266, 1e-12);
        assert_close(erfc(3.0), 2.209049699858544e-5, 1e-11);
        assert_close(erfc(-1.0), 1.8427007929497148, 1e-12);
    }

    #[test]
    fn erfc_deep_tail_accuracy() {
        // erfc(5) = 1.5374597944280347e-12 — must keep relative accuracy.
        assert_close(erfc(5.0), 1.5374597944280347e-12, 1e-9);
        // erfc(10) = 2.0884875837625447e-45
        assert_close(erfc(10.0), 2.0884875837625447e-45, 1e-9);
    }

    #[test]
    fn erf_erfc_complementarity() {
        for &x in &[0.1, 0.7, 1.3, 2.4, 3.9] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-13);
            assert_close(erf(-x), -erf(x), 1e-13);
        }
    }

    #[test]
    fn ln_erfc_matches_erfc_where_representable() {
        for &x in &[0.0, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert_close(ln_erfc(x), erfc(x).ln(), 1e-10);
        }
        for &x in &[-0.5, -2.0] {
            assert_close(ln_erfc(x), erfc(x).ln(), 1e-12);
        }
    }

    #[test]
    fn ln_erfc_far_tail_does_not_underflow() {
        // erfc(30) underflows f64 (≈ 2.6e-393); ln_erfc must remain finite.
        let v = ln_erfc(30.0);
        assert!(v.is_finite());
        // Asymptotic: ln erfc(x) ≈ -x² - ln(x√π) for large x.
        let approx = -30.0_f64 * 30.0 - (30.0 * std::f64::consts::PI.sqrt()).ln();
        assert!((v - approx).abs() < 0.01, "v={v} approx={approx}");
    }

    #[test]
    fn gamma_p_q_poisson_identity() {
        // For integer a = k+1, Q(k+1, λ) = P(Poisson(λ) ≤ k).
        // Poisson(2) CDF at k=3 is 0.857123460498547.
        assert_close(gamma_q(4.0, 2.0), 0.857123460498547, 1e-12);
        // P + Q = 1
        for &(a, x) in &[(0.5, 0.3), (2.0, 5.0), (10.0, 3.0), (10.0, 30.0)] {
            assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_edge_cases() {
        assert_eq!(gamma_p(1.0, 0.0), 0.0);
        assert_eq!(gamma_q(1.0, 0.0), 1.0);
        assert!(gamma_p(-1.0, 1.0).is_nan());
        assert!(gamma_q(1.0, -1.0).is_nan());
        // Exponential CDF: P(1, x) = 1 - e^{-x}
        assert_close(gamma_p(1.0, 2.0), 1.0 - (-2.0_f64).exp(), 1e-13);
    }

    #[test]
    fn beta_inc_known_values() {
        // I_x(1, 1) = x (uniform CDF)
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert_close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = 3x² - 2x³
        for &x in &[0.2, 0.5, 0.8] {
            assert_close(beta_inc(2.0, 2.0, x), 3.0 * x * x - 2.0 * x * x * x, 1e-12);
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a)
        assert_close(
            beta_inc(3.0, 7.0, 0.3),
            1.0 - beta_inc(7.0, 3.0, 0.7),
            1e-12,
        );
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_inc_matches_binomial_cdf() {
        // P(Bin(n, p) ≤ k) = I_{1-p}(n-k, k+1). Check against direct sums.
        let n = 20u64;
        let p: f64 = 0.3;
        for k in 0..n {
            let direct: f64 = (0..=k)
                .map(|i| {
                    (ln_choose(n, i) + (i as f64) * p.ln() + ((n - i) as f64) * (1.0 - p).ln())
                        .exp()
                })
                .sum();
            let via_beta = beta_inc((n - k) as f64, k as f64 + 1.0, 1.0 - p);
            assert_close(direct, via_beta, 1e-10);
        }
    }

    #[test]
    fn log_add_exp_basics() {
        assert_close(log_add_exp(0.0, 0.0), 2.0_f64.ln(), 1e-14);
        assert_close(log_add_exp(f64::NEG_INFINITY, 3.0), 3.0, 1e-14);
        assert_close(log_add_exp(3.0, f64::NEG_INFINITY), 3.0, 1e-14);
        // Values of very different magnitude.
        assert_close(log_add_exp(-1000.0, 0.0), 0.0, 1e-12);
    }

    #[test]
    fn log_sum_exp_slice() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let vals = [0.0, 1.0_f64.ln(), 2.0_f64.ln()];
        assert_close(log_sum_exp(&vals), 4.0_f64.ln(), 1e-13);
        // All -inf stays -inf.
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }
}

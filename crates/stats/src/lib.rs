//! # flowrank-stats
//!
//! Numerics substrate for the `flowrank` workspace — the reproduction of
//! *"Ranking flows from sampled traffic"* (Barakat, Iannaccone, Diot, 2004).
//!
//! The analytical models in `flowrank-core` need a small but carefully
//! implemented numerical toolbox:
//!
//! * [`special`] — log-gamma, error functions, regularised incomplete
//!   beta/gamma functions (used for binomial and Poisson tails and the
//!   Gaussian misranking approximation, Eq. 2 of the paper).
//! * [`dist`] — probability distributions: [`dist::Binomial`] (sampled flow
//!   sizes), [`dist::Normal`] (Gaussian approximation), [`dist::Pareto`] and
//!   [`dist::BoundedPareto`] (flow-size models, Sec. 6), plus the supporting
//!   distributions used by the synthetic trace generators.
//! * [`rng`] — deterministic, seedable pseudo-random number generators
//!   (SplitMix64, PCG-64, xoshiro256**). The trace-driven experiments of
//!   Sec. 8 average 30 independent sampling runs; explicit seeding makes every
//!   figure reproducible bit-for-bit.
//! * [`quadrature`] — Gauss–Legendre and adaptive Simpson integration,
//!   including semi-infinite integrals, used by the continuous ranking model.
//! * [`roots`] — bracketing root finders (bisection, Brent) used by the
//!   optimal-sampling-rate solver of Sec. 3.2.
//! * [`summary`] — online summary statistics (Welford), quantiles and
//!   histograms used when reporting the per-bin simulation metrics.
//! * [`rank`] — rank-comparison utilities (swapped-pair counts, Kendall tau)
//!   shared by the empirical evaluation.
//!
//! The crate has no dependencies and forbids `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod quadrature;
pub mod rank;
pub mod rng;
pub mod roots;
pub mod special;
pub mod summary;

pub use error::{StatsError, StatsResult};
pub use rng::{Pcg64, Rng, SeedableRng, SplitMix64, Xoshiro256StarStar};

//! Rank-comparison utilities.
//!
//! The paper's performance metric is a *swapped-pair count*: the number of
//! flow pairs whose relative order differs between the true list and the
//! sampled list (Sec. 5.1 for ranking, Sec. 7.1 for detection). The empirical
//! counterpart of those counts — applied to concrete before/after-sampling
//! flow tables — lives in `flowrank-core::metrics`; this module provides the
//! underlying generic machinery on value vectors plus standard rank
//! correlations used in the extended analyses.

/// Counts the pairs `(i, j)`, `i < j`, whose relative order differs between
/// `a` and `b` (ties in either vector count as concordant).
///
/// Both slices must be the same length: `a[i]` and `b[i]` are the two scores
/// of the same item. Complexity is O(n²); the lists compared in the paper are
/// top-`t` lists with `t ≤ 25`, so this is never a bottleneck.
///
/// # Panics
///
/// Panics if the slices have different lengths (programming error, not a
/// data-dependent condition).
pub fn discordant_pairs(a: &[f64], b: &[f64]) -> u64 {
    assert_eq!(a.len(), b.len(), "rank vectors must have equal length");
    let n = a.len();
    let mut count = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da * db < 0.0 {
                count += 1;
            }
        }
    }
    count
}

/// Kendall rank-correlation coefficient τ-a between two score vectors.
///
/// `τ = (concordant − discordant) / (n(n−1)/2)`. Returns `None` for vectors
/// with fewer than two elements.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "rank vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let prod = (a[i] - a[j]) * (b[i] - b[j]);
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / total)
}

/// Spearman rank-correlation coefficient ρ between two score vectors.
///
/// Ranks are assigned with mid-rank tie handling, then the Pearson
/// correlation of the ranks is returned. `None` for fewer than two elements
/// or when either vector is constant.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "rank vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Assigns fractional (mid) ranks to a vector of scores, 1-based.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .expect("NaN in ranks input")
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Mid-rank for the tie group [i, j].
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation of two equal-length vectors; `None` when either is
/// constant or has fewer than two elements.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// Returns the indices of the `t` largest values, sorted by decreasing value.
///
/// Ties are broken by index (smaller index first) so the result is
/// deterministic — this mirrors how a flow monitor reports a stable top list.
pub fn top_k_indices(values: &[f64], t: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| {
        values[j]
            .partial_cmp(&values[i])
            .expect("NaN in top_k input")
            .then(i.cmp(&j))
    });
    idx.truncate(t);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discordant_pairs_identity_and_reverse() {
        let a = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(discordant_pairs(&a, &a), 0);
        let rev = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(discordant_pairs(&a, &rev), 10); // all C(5,2) pairs swapped
    }

    #[test]
    fn discordant_pairs_single_swap() {
        let a = [10.0, 9.0, 8.0, 7.0];
        let b = [10.0, 8.0, 9.0, 7.0]; // items 1 and 2 swapped
        assert_eq!(discordant_pairs(&a, &b), 1);
    }

    #[test]
    fn discordant_pairs_ties_not_counted() {
        let a = [3.0, 2.0, 1.0];
        let b = [2.0, 2.0, 1.0];
        assert_eq!(discordant_pairs(&a, &b), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn discordant_pairs_length_mismatch_panics() {
        discordant_pairs(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(kendall_tau(&a, &b), Some(1.0));
        let c = [40.0, 30.0, 20.0, 10.0];
        assert_eq!(kendall_tau(&a, &c), Some(-1.0));
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
    }

    #[test]
    fn kendall_tau_partial() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0];
        // 2 concordant, 1 discordant out of 3 pairs → 1/3.
        let tau = kendall_tau(&a, &b).unwrap();
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0]);
        assert_eq!(r, vec![1.0]);
    }

    #[test]
    fn spearman_monotone_transform_is_one() {
        let a = [1.0, 2.0, 5.0, 9.0, 20.0];
        let b: Vec<f64> = a.iter().map(|x| x * x).collect(); // monotone
        assert!((spearman_rho(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((spearman_rho(&a, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_vector_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
    }

    #[test]
    fn pearson_known_value() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_indices_ordering_and_ties() {
        let v = [3.0, 9.0, 1.0, 9.0, 7.0];
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 4]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
        assert_eq!(top_k_indices(&v, 10), vec![1, 3, 4, 0, 2]);
    }
}

//! Probability distributions used across the workspace.
//!
//! Two small traits split the catalogue by support:
//!
//! * [`DiscreteDistribution`] — integer-valued laws: [`Binomial`] (sampled
//!   flow sizes, Eq. 1 of the paper), [`Geometric`] (flow-size toy model in
//!   the inversion tests) and [`Zipf`] (prefix popularity of the synthetic
//!   address generator).
//! * [`ContinuousDistribution`] — real-valued laws: [`Exponential`]
//!   (inter-arrival times and flow durations), [`Normal`] (the Gaussian
//!   approximation of Sec. 4), [`Pareto`] and [`BoundedPareto`] (heavy-tailed
//!   flow sizes, Sec. 6) and [`LogNormal`] (the short-tailed Abilene-like
//!   model of Sec. 8.3).
//!
//! All constructors validate their parameters and return a
//! [`crate::StatsResult`]; sampling draws from a caller-supplied
//! [`Rng`] so that every experiment stays reproducible under a fixed seed.

use crate::error::{
    require_finite, require_positive, require_probability, StatsError, StatsResult,
};
use crate::rng::Rng;
use crate::special::{erfc, ln_choose};

/// An integer-valued probability distribution on `0, 1, 2, …`.
pub trait DiscreteDistribution {
    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64;

    /// Cumulative probability `P{X ≤ k}`.
    fn cdf(&self, k: u64) -> f64;

    /// Draws one value.
    fn sample(&self, rng: &mut dyn Rng) -> u64;

    /// Mean of the distribution, if finite.
    fn mean(&self) -> Option<f64>;
}

/// A real-valued probability distribution.
pub trait ContinuousDistribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P{X ≤ x}`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `P{X > x}`; defaults to `1 − cdf(x)`.
    fn sf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }

    /// Quantile function (inverse CDF) for `q ∈ [0, 1)`.
    fn quantile(&self, q: f64) -> f64;

    /// Draws one value by inverse-CDF sampling.
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.quantile(rng.next_f64())
    }

    /// Mean of the distribution, if finite.
    fn mean(&self) -> Option<f64>;
}

// ---------------------------------------------------------------------------
// Binomial
// ---------------------------------------------------------------------------

/// Binomial(n, p) — the sampled size of a flow of `n` packets under
/// independent packet sampling at rate `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a Binomial(n, p) distribution; `p` must lie in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> StatsResult<Self> {
        require_finite("p", p)?;
        require_probability("p", p)?;
        Ok(Binomial { n, p })
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl DiscreteDistribution for Binomial {
    fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p <= 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p >= 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        // Log-space evaluation keeps the tail accurate for large n.
        let log_pmf =
            ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (-self.p).ln_1p();
        log_pmf.exp()
    }

    fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        let mut total = 0.0;
        for i in 0..=k {
            total += self.pmf(i);
        }
        total.min(1.0)
    }

    fn sample(&self, rng: &mut dyn Rng) -> u64 {
        let mut hits = 0;
        for _ in 0..self.n {
            if rng.bernoulli(self.p) {
                hits += 1;
            }
        }
        hits
    }

    fn mean(&self) -> Option<f64> {
        Some(self.n as f64 * self.p)
    }
}

// ---------------------------------------------------------------------------
// Geometric
// ---------------------------------------------------------------------------

/// Geometric(p) on `0, 1, 2, …` — number of failures before the first
/// success; `P{X = k} = (1 − p)^k p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a Geometric(p) distribution; `p` must lie in `(0, 1]`.
    pub fn new(p: f64) -> StatsResult<Self> {
        require_positive("p", p)?;
        require_probability("p", p)?;
        Ok(Geometric { p })
    }
}

impl DiscreteDistribution for Geometric {
    fn pmf(&self, k: u64) -> f64 {
        (1.0 - self.p).powi(k as i32) * self.p
    }

    fn cdf(&self, k: u64) -> f64 {
        1.0 - (1.0 - self.p).powi(k as i32 + 1)
    }

    fn sample(&self, rng: &mut dyn Rng) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = rng.next_open_f64();
        (u.ln() / (1.0 - self.p).ln()).floor().max(0.0) as u64
    }

    fn mean(&self) -> Option<f64> {
        Some((1.0 - self.p) / self.p)
    }
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

/// Zipf popularity over the ranks `0 … n−1`: `P{X = k} ∝ (k + 1)^{−s}`.
///
/// Rank 0 is the most popular item. Sampling uses a precomputed cumulative
/// table and binary search, so a draw costs `O(log n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf law over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> StatsResult<Self> {
        require_positive("n", n as f64)?;
        require_positive("s", s)?;
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += ((k + 1) as f64).powf(-s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Zipf { cumulative })
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }
}

impl DiscreteDistribution for Zipf {
    fn pmf(&self, k: u64) -> f64 {
        let k = k as usize;
        if k >= self.cumulative.len() {
            return 0.0;
        }
        if k == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[k] - self.cumulative[k - 1]
        }
    }

    fn cdf(&self, k: u64) -> f64 {
        let k = k as usize;
        if k >= self.cumulative.len() {
            1.0
        } else {
            self.cumulative[k]
        }
    }

    fn sample(&self, rng: &mut dyn Rng) -> u64 {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c <= u) as u64
    }

    fn mean(&self) -> Option<f64> {
        Some(
            (0..self.cumulative.len() as u64)
                .map(|k| k as f64 * self.pmf(k))
                .sum(),
        )
    }
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// Exponential(λ) with density `λ e^{−λx}` on `x ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an Exponential distribution with rate `λ > 0`.
    pub fn new(rate: f64) -> StatsResult<Self> {
        require_positive("rate", rate)?;
        Ok(Exponential { rate })
    }

    /// Creates an Exponential distribution with the given mean `1/λ > 0`.
    pub fn with_mean(mean: f64) -> StatsResult<Self> {
        require_positive("mean", mean)?;
        Self::new(1.0 / mean)
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0 - f64::EPSILON);
        -(1.0 - q).ln() / self.rate
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        -rng.next_open_f64().ln() / self.rate
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }
}

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// Normal(μ, σ²) — the Gaussian approximation of the sampled flow size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a Normal distribution with mean `μ` and standard deviation
    /// `σ > 0`.
    pub fn new(mean: f64, sd: f64) -> StatsResult<Self> {
        require_finite("mean", mean)?;
        require_positive("sd", sd)?;
        Ok(Normal { mean, sd })
    }

    /// The standard deviation σ.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Quantile of the standard Normal distribution (Acklam's rational
    /// approximation refined by one Halley step on `erfc`), accurate to
    /// ~1e-15 over `(0, 1)`.
    #[allow(clippy::excessive_precision)] // Acklam's published coefficients
    pub fn standard_quantile(q: f64) -> f64 {
        if q <= 0.0 {
            return f64::NEG_INFINITY;
        }
        if q >= 1.0 {
            return f64::INFINITY;
        }
        // Acklam's inverse-normal-CDF coefficients.
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_690e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        let x = if q < 0.02425 {
            let t = (-2.0 * q.ln()).sqrt();
            (((((C[0] * t + C[1]) * t + C[2]) * t + C[3]) * t + C[4]) * t + C[5])
                / ((((D[0] * t + D[1]) * t + D[2]) * t + D[3]) * t + 1.0)
        } else if q > 1.0 - 0.02425 {
            let t = (-2.0 * (1.0 - q).ln()).sqrt();
            -(((((C[0] * t + C[1]) * t + C[2]) * t + C[3]) * t + C[4]) * t + C[5])
                / ((((D[0] * t + D[1]) * t + D[2]) * t + D[3]) * t + 1.0)
        } else {
            let t = q - 0.5;
            let r = t * t;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * t
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        };
        // One Halley refinement against the high-precision erfc-based CDF.
        let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - q;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        0.5 * erfc(z / std::f64::consts::SQRT_2)
    }

    fn quantile(&self, q: f64) -> f64 {
        self.mean + self.sd * Self::standard_quantile(q)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
}

// ---------------------------------------------------------------------------
// Pareto
// ---------------------------------------------------------------------------

/// Pareto(a, β) with survival `P{X > x} = (x/a)^{−β}` on `x ≥ a` — the
/// heavy-tailed flow-size law of Sec. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution from its scale `a > 0` and shape `β > 0`.
    pub fn new(scale: f64, shape: f64) -> StatsResult<Self> {
        require_positive("scale", scale)?;
        require_positive("shape", shape)?;
        Ok(Pareto { scale, shape })
    }

    /// Creates a Pareto distribution with the given mean; requires `β > 1`
    /// (otherwise the mean is infinite).
    pub fn with_mean(mean: f64, shape: f64) -> StatsResult<Self> {
        require_positive("mean", mean)?;
        if !(shape.is_finite() && shape > 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "> 1 for a finite mean",
            });
        }
        Self::new(mean * (shape - 1.0) / shape, shape)
    }

    /// The scale parameter `a` (the smallest possible value).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The shape (tail index) β.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl ContinuousDistribution for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            self.shape * (self.scale / x).powf(self.shape) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            0.0
        } else {
            1.0 - (x / self.scale).powf(-self.shape)
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= self.scale {
            1.0
        } else {
            (x / self.scale).powf(-self.shape)
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0 - f64::EPSILON);
        self.scale * (1.0 - q).powf(-1.0 / self.shape)
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.scale * rng.next_open_f64().powf(-1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        if self.shape > 1.0 {
            Some(self.scale * self.shape / (self.shape - 1.0))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// BoundedPareto
// ---------------------------------------------------------------------------

/// Pareto truncated to `[lo, hi]` — "Pareto body, capped tail".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    shape: f64,
    /// `1 − (lo/hi)^β`, the total untruncated mass inside `[lo, hi]`.
    mass: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[lo, hi]` with shape `β > 0`.
    pub fn new(lo: f64, hi: f64, shape: f64) -> StatsResult<Self> {
        require_positive("lo", lo)?;
        require_positive("shape", shape)?;
        if !(hi.is_finite() && hi > lo) {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                constraint: "finite and > lo",
            });
        }
        Ok(BoundedPareto {
            lo,
            hi,
            shape,
            mass: 1.0 - (lo / hi).powf(shape),
        })
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDistribution for BoundedPareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.shape * (self.lo / x).powf(self.shape) / (x * self.mass)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (1.0 - (self.lo / x).powf(self.shape)) / self.mass
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.hi;
        }
        self.lo * (1.0 - q * self.mass).powf(-1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        // Finite for every shape because the support is bounded.
        let b = self.shape;
        let mean = if (b - 1.0).abs() < 1e-12 {
            self.lo * (self.hi / self.lo).ln() / self.mass * b
        } else {
            b / (b - 1.0) * (self.lo - self.hi * (self.lo / self.hi).powf(b)) / self.mass
        };
        Some(mean)
    }
}

// ---------------------------------------------------------------------------
// LogNormal
// ---------------------------------------------------------------------------

/// Log-normal: `ln X ~ Normal(μ, σ²)` — the short-tailed flow-size model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the log-space parameters.
    pub fn new(mu: f64, sigma: f64) -> StatsResult<Self> {
        require_finite("mu", mu)?;
        require_positive("sigma", sigma)?;
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal distribution with the given mean and squared
    /// coefficient of variation `cv² > 0`.
    pub fn with_mean_cv2(mean: f64, cv2: f64) -> StatsResult<Self> {
        require_positive("mean", mean)?;
        require_positive("cv2", cv2)?;
        let sigma2 = (1.0 + cv2).ln();
        Self::new(mean.ln() - sigma2 / 2.0, sigma2.sqrt())
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        0.5 * erfc(z / std::f64::consts::SQRT_2)
    }

    fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * Normal::standard_quantile(q)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Pcg64, SeedableRng};

    #[test]
    fn binomial_pmf_sums_to_one_and_matches_closed_forms() {
        let b = Binomial::new(20, 0.3).unwrap();
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // P{X = 0} = (1 − p)^n.
        assert!((b.pmf(0) - 0.7f64.powi(20)).abs() < 1e-15);
        // P{X ≤ 1} = (1 − p)^{n−1} (1 − p + np).
        let closed = 0.7f64.powi(19) * (0.7 + 20.0 * 0.3);
        assert!((b.cdf(1) - closed).abs() < 1e-12);
        assert_eq!(b.pmf(21), 0.0);
        assert_eq!(b.cdf(20), 1.0);
        assert_eq!(b.mean(), Some(6.0));
        assert_eq!(b.trials(), 20);
        assert!((b.probability() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn binomial_degenerate_rates() {
        let zero = Binomial::new(10, 0.0).unwrap();
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(3), 0.0);
        let one = Binomial::new(10, 1.0).unwrap();
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(9), 0.0);
        assert!(Binomial::new(10, 1.5).is_err());
        assert!(Binomial::new(10, -0.1).is_err());
    }

    #[test]
    fn binomial_sampling_matches_mean() {
        let b = Binomial::new(50, 0.2).unwrap();
        let mut rng = Pcg64::seed_from_u64(1);
        let n = 20_000;
        let mean = (0..n).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn geometric_basics() {
        let g = Geometric::new(0.25).unwrap();
        let total: f64 = (0..200).map(|k| g.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((g.cdf(0) - 0.25).abs() < 1e-15);
        assert_eq!(g.mean(), Some(3.0));
        let mut rng = Pcg64::seed_from_u64(2);
        let n = 50_000;
        let mean = (0..n).map(|_| g.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "sample mean {mean}");
        assert!(Geometric::new(0.0).is_err());
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut rng), 0);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.0).unwrap();
        assert_eq!(z.n(), 100);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        assert!((z.cdf(99) - 1.0).abs() < 1e-12);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must be the most sampled");
        assert!(z.mean().unwrap() > 0.0);
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, 0.0).is_err());
    }

    #[test]
    fn exponential_closed_forms() {
        let e = Exponential::with_mean(4.0).unwrap();
        assert!((e.rate() - 0.25).abs() < 1e-15);
        assert_eq!(e.mean(), Some(4.0));
        assert!((e.sf(e.quantile(0.9)) - 0.1).abs() < 1e-12);
        assert!((e.cdf(4.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
        assert_eq!(e.sf(-1.0), 1.0);
        assert_eq!(e.pdf(-1.0), 0.0);
        let mut rng = Pcg64::seed_from_u64(4);
        let n = 50_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "sample mean {mean}");
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::with_mean(-1.0).is_err());
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(3.0, 2.0).unwrap();
        for &q in &[1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-6] {
            let x = n.quantile(q);
            assert!((n.cdf(x) - q).abs() < 1e-11, "q = {q}");
        }
        assert!((n.cdf(3.0) - 0.5).abs() < 1e-15);
        assert!((n.sf(3.0) - 0.5).abs() < 1e-15);
        assert_eq!(n.mean(), Some(3.0));
        assert!((n.sd() - 2.0).abs() < 1e-15);
        assert!(Normal::new(0.0, 0.0).is_err());
    }

    #[test]
    fn pareto_calibration_and_inverse() {
        let p = Pareto::with_mean(9.6, 1.5).unwrap();
        assert!((p.scale() - 3.2).abs() < 1e-12);
        assert!((p.mean().unwrap() - 9.6).abs() < 1e-12);
        assert!((p.sf(32.0) - (32.0f64 / 3.2).powf(-1.5)).abs() < 1e-12);
        for &q in &[0.5, 0.9, 0.999] {
            assert!((p.sf(p.quantile(q)) - (1.0 - q)).abs() < 1e-9);
        }
        assert_eq!(Pareto::new(2.0, 0.8).unwrap().mean(), None);
        assert!(Pareto::with_mean(9.6, 0.9).is_err());
        let mut rng = Pcg64::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(p.sample(&mut rng) >= p.scale());
        }
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let b = BoundedPareto::new(1.0, 100.0, 1.1).unwrap();
        assert_eq!(b.lo(), 1.0);
        assert_eq!(b.hi(), 100.0);
        assert_eq!(b.cdf(0.5), 0.0);
        assert_eq!(b.cdf(200.0), 1.0);
        assert!((b.cdf(b.quantile(0.42)) - 0.42).abs() < 1e-12);
        let mut rng = Pcg64::seed_from_u64(6);
        for _ in 0..2_000 {
            let x = b.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x));
        }
        let mean = b.mean().unwrap();
        assert!(mean > 1.0 && mean < 100.0);
        // β = 1 takes the logarithmic branch.
        let unit = BoundedPareto::new(1.0, 10.0, 1.0).unwrap();
        assert!(unit.mean().unwrap() > 1.0);
        assert!(BoundedPareto::new(5.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn lognormal_mean_cv2_calibration() {
        let l = LogNormal::with_mean_cv2(12.0, 4.0).unwrap();
        assert!((l.mean().unwrap() - 12.0).abs() < 1e-9);
        assert!((l.sf(l.quantile(0.75)) - 0.25).abs() < 1e-9);
        assert_eq!(l.pdf(0.0), 0.0);
        assert_eq!(l.cdf(0.0), 0.0);
        assert_eq!(l.sf(-1.0), 1.0);
        let mut rng = Pcg64::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| l.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 12.0).abs() < 0.5, "sample mean {mean}");
        assert!(LogNormal::with_mean_cv2(-1.0, 1.0).is_err());
    }
}

//! Bracketing root finders.
//!
//! Section 3.2 of the paper defines the *optimal sampling rate* `p_d` as the
//! solution of `Pm(S1, S2; p) = Pm,d`: because the misranking probability is
//! monotone in `p`, a bracketing method on `[0, 1]` finds it reliably. The
//! same machinery answers "what sampling rate keeps the ranking metric below
//! one?" for the general model.

use crate::error::{StatsError, StatsResult};

/// Outcome of a successful root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Function value at `x` (should be close to zero).
    pub f_x: f64,
    /// Number of function evaluations used.
    pub evaluations: usize,
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs. Converges linearly
/// but unconditionally; `tol` is the absolute width of the final bracket.
// `evals` counts function evaluations (including the bracket endpoints),
// not loop iterations, so it is not a loop counter.
#[allow(clippy::explicit_counter_loop)]
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> StatsResult<Root> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    let mut evals = 2;
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            f_x: 0.0,
            evaluations: evals,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            f_x: 0.0,
            evaluations: evals,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(StatsError::InvalidBracket { lo, hi });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        evals += 1;
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(Root {
                x: mid,
                f_x: fm,
                evaluations: evals,
            });
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(StatsError::NoConvergence {
        algorithm: "bisection",
        iterations: max_iter,
    })
}

/// Finds a root of `f` in `[lo, hi]` with Brent's method.
///
/// Combines bisection, secant and inverse quadratic interpolation; converges
/// superlinearly on smooth functions while keeping the bisection guarantee.
/// `tol` is the absolute tolerance on the root location.
#[allow(clippy::explicit_counter_loop)]
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> StatsResult<Root> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    let mut evals = 2;
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            f_x: 0.0,
            evaluations: evals,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            f_x: 0.0,
            evaluations: evals,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(StatsError::InvalidBracket { lo, hi });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(Root {
                x: b,
                f_x: fb,
                evaluations: evals,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };

        let cond_range = {
            let lo_ = (3.0 * a + b) / 4.0;
            let hi_ = b;
            let (lo_, hi_) = if lo_ < hi_ { (lo_, hi_) } else { (hi_, lo_) };
            s < lo_ || s > hi_
        };
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_nflag = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond_tol_m = mflag && (b - c).abs() < tol;
        let cond_tol_n = !mflag && (c - d).abs() < tol;

        if cond_range || cond_mflag || cond_nflag || cond_tol_m || cond_tol_n {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        evals += 1;
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(StatsError::NoConvergence {
        algorithm: "brent",
        iterations: max_iter,
    })
}

/// Finds the smallest `x` in `[lo, hi]` at which the non-increasing function
/// `f` drops to or below `target`, by bisection on `g(x) = f(x) − target`.
///
/// This is the exact shape of the optimal-sampling-rate search: the
/// misranking probability decreases monotonically in `p`, and we want the
/// smallest `p` that achieves the target. Returns `hi` if even `f(hi)` is
/// above the target and `lo` if `f(lo)` is already below it.
pub fn monotone_threshold<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    target: f64,
    tol: f64,
    max_iter: usize,
) -> StatsResult<f64> {
    let f_lo = f(lo);
    if f_lo <= target {
        return Ok(lo);
    }
    let f_hi = f(hi);
    if f_hi > target {
        return Ok(hi);
    }
    let root = bisect(|x| f(x) - target, lo, hi, tol, max_iter)?;
    Ok(root.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {a} ≈ {b}");
    }

    #[test]
    fn bisect_finds_simple_roots() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert_close(r.x, std::f64::consts::SQRT_2, 1e-10);
        let r = bisect(|x| x.cos(), 0.0, 2.0, 1e-12, 200).unwrap();
        assert_close(r.x, std::f64::consts::FRAC_PI_2, 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        let r = bisect(|x| x - 1.0, 1.0, 3.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 1.0);
        let r = bisect(|x| x - 3.0, 1.0, 3.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 3.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, StatsError::InvalidBracket { .. }));
    }

    #[test]
    fn brent_finds_roots_faster_than_bisection() {
        let mut count_brent = 0usize;
        let r = brent(
            |x| {
                count_brent += 1;
                x.exp() - 5.0
            },
            0.0,
            3.0,
            1e-14,
            100,
        )
        .unwrap();
        assert_close(r.x, 5.0_f64.ln(), 1e-10);

        let mut count_bisect = 0usize;
        let _ = bisect(
            |x| {
                count_bisect += 1;
                x.exp() - 5.0
            },
            0.0,
            3.0,
            1e-14,
            200,
        )
        .unwrap();
        assert!(
            count_brent < count_bisect,
            "brent ({count_brent}) should beat bisection ({count_bisect})"
        );
    }

    #[test]
    fn brent_polynomial_with_flat_region() {
        let r = brent(|x| (x - 1.0).powi(3), 0.0, 4.0, 1e-12, 200).unwrap();
        assert_close(r.x, 1.0, 1e-6);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert!(brent(|x| x * x + 0.5, -1.0, 1.0, 1e-10, 50).is_err());
    }

    #[test]
    fn monotone_threshold_typical() {
        // f(p) = 1/p decreasing; smallest p with f(p) <= 10 is 0.1.
        let p = monotone_threshold(|p| 1.0 / p, 1e-4, 1.0, 10.0, 1e-10, 200).unwrap();
        assert_close(p, 0.1, 1e-8);
    }

    #[test]
    fn monotone_threshold_saturations() {
        // Already below target at lo.
        let p = monotone_threshold(|p| 1.0 / p, 0.5, 1.0, 10.0, 1e-10, 100).unwrap();
        assert_eq!(p, 0.5);
        // Never reaches target: return hi.
        let p = monotone_threshold(|p| 1.0 / p, 1e-4, 1e-3, 10.0, 1e-10, 100).unwrap();
        assert_eq!(p, 1e-3);
    }
}

//! Numerical integration.
//!
//! The continuous ranking model of Sec. 5/6 replaces the double sums of
//! Eq. 3 by integrals over the (Pareto) flow-size density, which is what
//! makes the metric computable "in a few seconds instead of hours" as the
//! paper notes. This module provides the integrators used for that:
//!
//! * [`gauss_legendre`] — fixed-order Gauss–Legendre rule on a finite
//!   interval (fast inner loop of the double integrals),
//! * [`adaptive_simpson`] — error-controlled adaptive Simpson on a finite
//!   interval (outer integrals and validation),
//! * [`integrate_tail`] — semi-infinite integrals `∫ₐ^∞ f`, computed on a
//!   sequence of geometrically growing panels until the contribution becomes
//!   negligible (suited to the power-law tails that dominate here).

// Published Gauss-Legendre node/weight tables are kept at full printed
// precision even where the nearest f64 differs in the last digit.
#![allow(clippy::excessive_precision)]

/// Nodes and weights of the 32-point Gauss–Legendre rule on `[-1, 1]`
/// (positive half; the rule is symmetric).
const GL32_NODES: [f64; 16] = [
    0.048307665687738316,
    0.144471961582796493,
    0.239287362252137075,
    0.331868602282127650,
    0.421351276130635345,
    0.506899908932229390,
    0.587715757240762329,
    0.663044266930215201,
    0.732182118740289680,
    0.794483795967942407,
    0.849367613732569970,
    0.896321155766052124,
    0.934906075937739689,
    0.964762255587506430,
    0.985611511545268335,
    0.997263861849481564,
];
const GL32_WEIGHTS: [f64; 16] = [
    0.096540088514727801,
    0.095638720079274859,
    0.093844399080804566,
    0.091173878695763885,
    0.087652093004403811,
    0.083311924226946755,
    0.078193895787070306,
    0.072345794108848506,
    0.065822222776361847,
    0.058684093478535547,
    0.050998059262376176,
    0.042835898022226681,
    0.034273862913021433,
    0.025392065309262059,
    0.016274394730905671,
    0.007018610009470097,
];

/// Integrates `f` over `[a, b]` with the 32-point Gauss–Legendre rule.
///
/// Exact for polynomials up to degree 63; for the smooth integrands of the
/// ranking model a single panel is usually enough, and panels can be chained
/// by the caller for better resolution.
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    let mut acc = 0.0;
    for i in 0..16 {
        let dx = half * GL32_NODES[i];
        acc += GL32_WEIGHTS[i] * (f(mid + dx) + f(mid - dx));
    }
    acc * half
}

/// Integrates `f` over `[a, b]` by splitting the interval into `panels`
/// equal sub-intervals and applying [`gauss_legendre`] to each.
pub fn gauss_legendre_composite<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, panels: usize) -> f64 {
    if panels == 0 || a == b {
        return 0.0;
    }
    let width = (b - a) / panels as f64;
    (0..panels)
        .map(|i| {
            let lo = a + i as f64 * width;
            gauss_legendre(&f, lo, lo + width)
        })
        .sum()
}

/// Adaptive Simpson integration of `f` over `[a, b]` with absolute error
/// target `tol` and a maximum recursion depth.
///
/// The recursion depth bounds the work on badly behaved integrands; with
/// `max_depth = 30` the smallest panel is `(b-a)/2³⁰`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64, max_depth: u32) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_rule(a, b, fa, fm, fb);
    adaptive_simpson_inner(&f, a, b, fa, fm, fb, whole, tol, max_depth)
}

fn simpson_rule(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_simpson_inner<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_rule(a, m, fa, flm, fm);
    let right = simpson_rule(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation term improves the estimate by one order.
        left + right + delta / 15.0
    } else {
        adaptive_simpson_inner(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + adaptive_simpson_inner(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

/// Integrates `f` over the semi-infinite interval `[a, ∞)`.
///
/// The tail is covered by geometrically growing panels `[a·2ᵏ, a·2ᵏ⁺¹]`
/// (or unit-width panels if `a ≤ 0`), each integrated with Gauss–Legendre,
/// until a panel contributes less than `rel_tol` of the running total or the
/// panel budget is exhausted. This matches the power-law and exponential
/// tails that appear in the ranking model.
pub fn integrate_tail<F: Fn(f64) -> f64>(f: F, a: f64, rel_tol: f64, max_panels: usize) -> f64 {
    let mut lo = a;
    let mut total = 0.0;
    // Initial panel width: proportional to |a| for scale-free integrands.
    let mut width = if a.abs() > 1.0 { a.abs() } else { 1.0 };
    for _ in 0..max_panels {
        let hi = lo + width;
        let piece = gauss_legendre(&f, lo, hi);
        total += piece;
        if piece.abs() <= rel_tol * total.abs().max(f64::MIN_POSITIVE) && total != 0.0 {
            break;
        }
        lo = hi;
        width *= 2.0;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        let diff = (a - b).abs();
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(diff <= tol * scale, "expected {a} ≈ {b} (diff {diff})");
    }

    #[test]
    fn gauss_legendre_polynomials_exact() {
        // ∫₀¹ x³ dx = 1/4
        assert_close(gauss_legendre(|x| x * x * x, 0.0, 1.0), 0.25, 1e-14);
        // ∫₋₂³ (5x⁴ − 2x) dx = x⁵ − x² |₋₂³ = (243−9) − (−32−4) = 270
        assert_close(
            gauss_legendre(|x| 5.0 * x.powi(4) - 2.0 * x, -2.0, 3.0),
            270.0,
            1e-12,
        );
        assert_eq!(gauss_legendre(|x| x, 1.0, 1.0), 0.0);
    }

    #[test]
    fn gauss_legendre_transcendental() {
        // ∫₀^π sin x dx = 2
        assert_close(
            gauss_legendre(f64::sin, 0.0, std::f64::consts::PI),
            2.0,
            1e-12,
        );
        // ∫₀¹ e^x dx = e − 1
        assert_close(
            gauss_legendre(f64::exp, 0.0, 1.0),
            std::f64::consts::E - 1.0,
            1e-14,
        );
    }

    #[test]
    fn composite_improves_oscillatory() {
        // ∫₀^{20π} sin²x dx = 10π
        let f = |x: f64| x.sin().powi(2);
        let exact = 10.0 * std::f64::consts::PI;
        let coarse = gauss_legendre(f, 0.0, 20.0 * std::f64::consts::PI);
        let fine = gauss_legendre_composite(f, 0.0, 20.0 * std::f64::consts::PI, 40);
        assert!((fine - exact).abs() < (coarse - exact).abs());
        assert_close(fine, exact, 1e-10);
        assert_eq!(gauss_legendre_composite(f, 0.0, 1.0, 0), 0.0);
    }

    #[test]
    fn adaptive_simpson_known_integrals() {
        assert_close(
            adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-12, 30),
            std::f64::consts::E - 1.0,
            1e-10,
        );
        assert_close(
            adaptive_simpson(|x| 1.0 / (1.0 + x * x), 0.0, 1.0, 1e-12, 30),
            std::f64::consts::FRAC_PI_4,
            1e-10,
        );
        assert_eq!(adaptive_simpson(|x| x, 2.0, 2.0, 1e-10, 10), 0.0);
    }

    #[test]
    fn adaptive_simpson_handles_peaked_integrand() {
        // Narrow Gaussian centred at 0.3: ∫ℝ ≈ σ√(2π); over [0,1] almost all mass.
        let sigma = 0.01;
        let f = |x: f64| (-((x - 0.3) / sigma).powi(2) / 2.0).exp();
        let exact = sigma * (2.0 * std::f64::consts::PI).sqrt();
        assert_close(adaptive_simpson(f, 0.0, 1.0, 1e-12, 40), exact, 1e-7);
    }

    #[test]
    fn tail_integration_exponential() {
        // ∫₂^∞ e^{-x} dx = e^{-2}
        assert_close(
            integrate_tail(|x| (-x).exp(), 2.0, 1e-12, 200),
            (-2.0_f64).exp(),
            1e-10,
        );
    }

    #[test]
    fn tail_integration_power_law() {
        // ∫₁^∞ x^{-2.5} dx = 1/1.5
        assert_close(
            integrate_tail(|x| x.powf(-2.5), 1.0, 1e-12, 300),
            1.0 / 1.5,
            1e-8,
        );
        // Pareto mean: ∫_a^∞ x β a^β x^{-β-1} dx = aβ/(β−1), a = 3.2, β = 1.5.
        let a = 3.2;
        let beta = 1.5;
        assert_close(
            integrate_tail(
                |x| x * beta * a.powf(beta) * x.powf(-beta - 1.0),
                a,
                1e-13,
                400,
            ),
            a * beta / (beta - 1.0),
            1e-6,
        );
    }

    #[test]
    fn tail_integration_from_zero() {
        // ∫₀^∞ e^{-x²/2} dx = √(π/2)
        assert_close(
            integrate_tail(|x| (-(x * x) / 2.0).exp(), 0.0, 1e-13, 100),
            (std::f64::consts::PI / 2.0).sqrt(),
            1e-10,
        );
    }
}

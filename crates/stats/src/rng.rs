//! Deterministic, seedable pseudo-random number generators.
//!
//! The trace-driven experiments of the paper (Sec. 8) average the ranking
//! metric over 30 independent sampling runs; the synthetic trace generators
//! must also be reproducible so that a given figure can be regenerated
//! bit-for-bit. To guarantee that across platforms we ship small, well-known
//! generators rather than depending on an external crate whose stream might
//! change between versions:
//!
//! * [`SplitMix64`] — used for seed expansion and deriving per-run seeds.
//! * [`Pcg64`] — the default general-purpose generator (PCG XSL RR 128/64).
//! * [`Xoshiro256StarStar`] — an alternative generator used by property tests
//!   to make sure nothing silently depends on a particular stream.
//!
//! All generators implement the [`Rng`] trait, which provides the derived
//! sampling helpers (uniform floats, Bernoulli trials, ranges, shuffling).

/// Minimal random-number-generator interface used throughout the workspace.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits of [`Rng::next_u64`], which yields every
    /// representable multiple of 2⁻⁵³ with equal probability.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling of distributions whose transform is
    /// singular at 0 (e.g. the Pareto and exponential distributions).
    fn next_open_f64(&mut self) -> f64 {
        loop {
            let v = self.next_f64();
            if v > 0.0 {
                return v;
            }
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// This is the random packet-sampling decision of the paper: each packet
    /// is retained independently with probability `p`. Values outside
    /// `[0, 1]` are clamped.
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    /// Returns 0 when `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: recompute the threshold only when needed.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` index in `[0, len)`.
    fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — a tiny generator used for seed expansion.
///
/// Its main role in this workspace is deriving independent sub-seeds for the
/// 30 sampling runs of each trace-driven experiment and for initialising the
/// state of the larger generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new SplitMix64 generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        // Sebastiano Vigna's SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG XSL RR 128/64 — the workspace's default generator.
///
/// 128-bit LCG state with an output permutation; passes BigCrush and has a
/// 2¹²⁸ period, far more than any experiment here consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

const PCG_MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Creates a generator from an explicit 128-bit state and stream.
    pub fn new(state: u128, stream: u128) -> Self {
        let increment = (stream << 1) | 1;
        let mut rng = Self {
            state: 0,
            increment,
        };
        rng.state = rng
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(increment);
        rng.state = rng.state.wrapping_add(state);
        rng.state = rng
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(increment);
        rng
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state/stream with SplitMix64.
        let mut sm = SplitMix64::new(seed);
        let state = ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128;
        let stream = ((sm.next_u64() as u128) << 64) | sm.next_u64() as u128;
        Self::new(state, stream)
    }
}

impl Rng for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.increment);
        // XSL-RR output function.
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }
}

/// xoshiro256** — alternative generator with a different structure from PCG.
///
/// Used by property tests to check that results do not depend on the
/// particular generator family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be absorbing; SplitMix64 cannot produce four
        // consecutive zeros, but guard anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Derives `count` independent 64-bit seeds from a master seed.
///
/// Each trace-driven experiment uses this to give every one of its sampling
/// runs its own reproducible stream.
pub fn derive_seeds(master: u64, count: usize) -> Vec<u64> {
    let mut sm = SplitMix64::new(master);
    (0..count).map(|_| sm.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference output of SplitMix64 seeded with 1234567.
        let mut rng = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        // Determinism: same seed, same stream.
        let mut rng2 = SplitMix64::new(1234567);
        let second: Vec<u64> = (0..3).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, second);
        // Different seeds give different streams.
        let mut rng3 = SplitMix64::new(7654321);
        assert_ne!(first[0], rng3.next_u64());
    }

    #[test]
    fn pcg_determinism_and_spread() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Pcg64::seed_from_u64(43);
        let overlaps = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(overlaps < 3, "different seeds should rarely collide");
    }

    #[test]
    fn xoshiro_determinism() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "value {v} outside [0,1)");
        }
    }

    #[test]
    fn next_f64_mean_is_about_half() {
        let mut rng = Pcg64::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let mut rng = Pcg64::seed_from_u64(3);
        let p = 0.1;
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.bernoulli(p)).count();
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - p).abs() < 0.005,
            "empirical {freq} too far from {p}"
        );
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Pcg64::seed_from_u64(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.3));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn next_below_unbiased_range() {
        let mut rng = Pcg64::seed_from_u64(17);
        let bound = 10u64;
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            let v = rng.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "bucket {i} count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    fn next_below_zero_bound() {
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::seed_from_u64(23);
        let mut values: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // With overwhelming probability the order changed.
        assert_ne!(values, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.range_f64(5.0, 9.0);
            assert!((5.0..9.0).contains(&v));
        }
    }

    #[test]
    fn derive_seeds_unique_and_deterministic() {
        let a = derive_seeds(123, 30);
        let b = derive_seeds(123, 30);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "derived seeds should be distinct");
    }

    #[test]
    fn open_f64_never_zero() {
        let mut rng = SplitMix64::new(0);
        for _ in 0..1000 {
            assert!(rng.next_open_f64() > 0.0);
        }
    }
}
